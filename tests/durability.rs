//! File-backed storage integration: trees over real page files, flush,
//! reopen of the raw store, and cache-vs-cold accounting.

use hybridtree_repro::page::{FileStorage, MemStorage, Storage};
use hybridtree_repro::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("hyt_it_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn points(n: usize, dim: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new((0..dim).map(|_| rng.gen::<f32>()).collect()))
        .collect()
}

#[test]
fn hybrid_tree_on_file_storage_equals_memory() {
    let pts = points(2_000, 6, 1);
    let cfg = HybridTreeConfig::default();
    let path = tmp("hybrid_eq.pages");

    let mut mem = HybridTree::new(6, cfg.clone()).unwrap();
    let file = FileStorage::create(&path, cfg.page_size).unwrap();
    let mut disk = HybridTree::with_storage(6, cfg, file).unwrap();
    for (i, p) in pts.iter().enumerate() {
        mem.insert(p.clone(), i as u64).unwrap();
        disk.insert(p.clone(), i as u64).unwrap();
    }
    let rect = Rect::new(vec![0.2; 6], vec![0.7; 6]);
    let mut a = mem.box_query(&rect).unwrap();
    let mut b = disk.box_query(&rect).unwrap();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b);
    disk.check_invariants().unwrap();
    std::fs::remove_file(&path).ok();
}

#[test]
fn raw_pages_survive_reopen() {
    let path = tmp("reopen.pages");
    let page_size = 512;
    {
        let mut s = FileStorage::create(&path, page_size).unwrap();
        for i in 0..20u8 {
            let id = s.allocate().unwrap();
            s.write(id, &[i; 100]).unwrap();
        }
        s.sync().unwrap();
    }
    {
        let s = FileStorage::open(&path, page_size).unwrap();
        assert_eq!(s.live_pages(), 20);
        let mut buf = vec![0u8; page_size];
        for i in 0..20u8 {
            s.read(hybridtree_repro::page::PageId(u32::from(i)), &mut buf)
                .unwrap();
            assert!(buf[..100].iter().all(|&b| b == i));
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn pool_capacity_trades_physical_for_logical_reads() {
    let pts = points(3_000, 4, 2);
    let run = |pool_pages: usize| -> (u64, u64) {
        let cfg = HybridTreeConfig {
            pool_pages,
            ..HybridTreeConfig::default()
        };
        let mut t = HybridTree::new(4, cfg).unwrap();
        for (i, p) in pts.iter().enumerate() {
            t.insert(p.clone(), i as u64).unwrap();
        }
        t.reset_io_stats();
        let q = Point::new(vec![0.5; 4]);
        for _ in 0..20 {
            t.knn(&q, 5, &L2).unwrap();
        }
        let s = t.io_stats();
        (s.logical_reads, s.physical_reads)
    };
    let (log_cold, phys_cold) = run(0);
    let (log_hot, phys_hot) = run(512);
    assert_eq!(log_cold, phys_cold, "capacity 0 = every access physical");
    assert_eq!(log_cold, log_hot, "logical work independent of caching");
    assert!(
        phys_hot < phys_cold / 2,
        "a large pool must absorb repeated reads ({phys_hot} vs {phys_cold})"
    );
}

#[test]
fn mem_storage_reuse_does_not_leak_pages() {
    // Insert then delete everything; live pages should shrink back to a
    // handful (root + empties), demonstrating free-list recycling.
    let pts = points(1_500, 3, 3);
    let cfg = HybridTreeConfig {
        page_size: 256,
        ..HybridTreeConfig::default()
    };
    let storage = MemStorage::with_page_size(256);
    let mut t = HybridTree::with_storage(3, cfg, storage).unwrap();
    for (i, p) in pts.iter().enumerate() {
        t.insert(p.clone(), i as u64).unwrap();
    }
    for (i, p) in pts.iter().enumerate() {
        assert!(t.delete(p, i as u64).unwrap());
    }
    assert!(t.is_empty());
    t.check_invariants().unwrap();
}
