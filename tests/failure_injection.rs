//! Failure injection: storage faults must surface as errors, never as
//! panics, silent corruption, or wrong query results.

use hybridtree_repro::page::{PageError, PageId, PageResult, Storage};
use hybridtree_repro::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Remote control for a [`FlakyStorage`]: `u64::MAX` means "never fail";
/// any other value is the number of further reads allowed before faults.
struct FailKnob(AtomicU64);

impl FailKnob {
    fn set(&self, limit: Option<u64>) {
        self.0.store(limit.unwrap_or(u64::MAX), Ordering::SeqCst);
    }

    fn get(&self) -> Option<u64> {
        match self.0.load(Ordering::SeqCst) {
            u64::MAX => None,
            n => Some(n),
        }
    }
}

/// A wrapper storage that starts failing reads/writes on command.
/// `Storage` is `Send + Sync`, so the knob and counter are atomics.
struct FlakyStorage<S: Storage> {
    inner: S,
    fail_reads_after: Arc<FailKnob>,
    reads: AtomicU64,
}

impl<S: Storage> FlakyStorage<S> {
    fn new(inner: S) -> (Self, Arc<FailKnob>) {
        let knob = Arc::new(FailKnob(AtomicU64::new(u64::MAX)));
        (
            Self {
                inner,
                fail_reads_after: Arc::clone(&knob),
                reads: AtomicU64::new(0),
            },
            knob,
        )
    }
}

impl<S: Storage> Storage for FlakyStorage<S> {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn allocate(&mut self) -> PageResult<PageId> {
        self.inner.allocate()
    }

    fn read(&self, id: PageId, buf: &mut [u8]) -> PageResult<()> {
        let done = self.reads.fetch_add(1, Ordering::SeqCst) + 1;
        if let Some(limit) = self.fail_reads_after.get() {
            if done > limit {
                return Err(PageError::Io(std::io::Error::other("injected read fault")));
            }
        }
        self.inner.read(id, buf)
    }

    fn write(&mut self, id: PageId, data: &[u8]) -> PageResult<()> {
        self.inner.write(id, data)
    }

    fn free(&mut self, id: PageId) -> PageResult<()> {
        self.inner.free(id)
    }

    fn live_pages(&self) -> usize {
        self.inner.live_pages()
    }
}

fn build_points(n: usize, dim: usize, seed: u64) -> Vec<Point> {
    use rand::prelude::*;
    use rand::rngs::StdRng;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new((0..dim).map(|_| rng.gen::<f32>()).collect()))
        .collect()
}

#[test]
fn read_faults_surface_as_errors_not_panics() {
    use hybridtree_repro::page::MemStorage;
    let cfg = HybridTreeConfig {
        page_size: 256,
        pool_pages: 0,
        ..HybridTreeConfig::default()
    };
    let (storage, knob) = FlakyStorage::new(MemStorage::with_page_size(256));
    let mut tree = HybridTree::with_storage(3, cfg, storage).unwrap();
    for (i, p) in build_points(500, 3, 1).iter().enumerate() {
        tree.insert(p.clone(), i as u64).unwrap();
    }
    // Let exactly one more read through, then fail everything.
    knob.set(Some(1));
    tree.reset_io_stats();
    let err = tree
        .box_query(&Rect::unit(3))
        .expect_err("query across faulted storage must fail");
    assert!(matches!(err, IndexError::Storage(PageError::Io(_))));
    // Recovery: lifting the fault restores full service.
    knob.set(None);
    let hits = tree.box_query(&Rect::unit(3)).unwrap();
    assert_eq!(hits.len(), 500);
}

#[test]
fn insert_faults_do_not_corrupt_len() {
    use hybridtree_repro::page::MemStorage;
    let cfg = HybridTreeConfig {
        page_size: 256,
        ..HybridTreeConfig::default()
    };
    let (storage, knob) = FlakyStorage::new(MemStorage::with_page_size(256));
    let mut tree = HybridTree::with_storage(2, cfg, storage).unwrap();
    let pts = build_points(300, 2, 2);
    for (i, p) in pts.iter().enumerate().take(200) {
        tree.insert(p.clone(), i as u64).unwrap();
    }
    knob.set(Some(0));
    let before = tree.len();
    assert!(tree.insert(pts[200].clone(), 200).is_err());
    assert_eq!(tree.len(), before, "failed insert must not count");
    knob.set(None);
    // The tree remains structurally sound afterwards.
    tree.check_invariants().unwrap();
}

#[test]
fn corrupt_pages_decode_to_errors() {
    use hybridtree_repro::core::Node;
    // Truncated, garbage-tagged, and over-claiming payloads must all be
    // rejected cleanly.
    for buf in [
        vec![],
        vec![7u8, 1, 2, 3],
        vec![0u8, 255, 255, 255, 255], // data node claiming 4B entries
        vec![1u8, 0],                  // index node with truncated level
    ] {
        assert!(
            Node::decode(&buf, 4).is_err(),
            "buffer {buf:?} should not decode"
        );
    }
}

#[test]
fn unsupported_operations_are_clean_errors() {
    use hybridtree_repro::hbtree::{HbTree, HbTreeConfig};
    let mut t = HbTree::new(3, HbTreeConfig::default()).unwrap();
    t.insert(Point::new(vec![0.1, 0.2, 0.3]), 1).unwrap();
    let q = Point::new(vec![0.1, 0.2, 0.3]);
    match t.knn(&q, 1, &L2) {
        Err(IndexError::Unsupported(msg)) => assert!(msg.contains("distance")),
        other => panic!("expected Unsupported, got {other:?}"),
    }
    // The error carries a Display impl suitable for users.
    let e = t.distance_range(&q, 1.0, &L2).unwrap_err();
    assert!(e.to_string().contains("unsupported"));
}
