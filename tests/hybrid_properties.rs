//! Property-based tests of the hybrid tree: arbitrary operation
//! sequences must keep the tree equivalent to a naive multiset oracle
//! and keep every structural invariant intact.

use hybridtree_repro::prelude::*;
use proptest::prelude::*;

/// Operations the fuzzer can apply.
#[derive(Clone, Debug)]
enum Op {
    Insert(Vec<f32>),
    /// Delete the i-th still-live entry (modulo live count).
    Delete(usize),
    Box(Vec<f32>, f32),
    Range(Vec<f32>, f64),
    Knn(Vec<f32>, usize),
}

fn op_strategy(dim: usize) -> impl Strategy<Value = Op> {
    let coord = -1.0f32..2.0; // roam outside the unit cube on purpose
    let point = proptest::collection::vec(coord, dim);
    prop_oneof![
        4 => point.clone().prop_map(Op::Insert),
        1 => (0usize..1024).prop_map(Op::Delete),
        1 => (point.clone(), 0.01f32..0.8).prop_map(|(c, h)| Op::Box(c, h)),
        1 => (point.clone(), 0.01f64..1.0).prop_map(|(c, r)| Op::Range(c, r)),
        1 => (point, 1usize..12).prop_map(|(c, k)| Op::Knn(c, k)),
    ]
}

fn tiny_page_config() -> HybridTreeConfig {
    HybridTreeConfig {
        page_size: 256, // force frequent splits
        ..HybridTreeConfig::default()
    }
}

fn run_ops(dim: usize, ops: Vec<Op>, cfg: HybridTreeConfig) {
    let mut tree = HybridTree::new(dim, cfg).unwrap();
    let mut oracle: Vec<(Point, u64)> = Vec::new();
    let mut next_oid = 0u64;
    for op in ops {
        match op {
            Op::Insert(coords) => {
                let p = Point::new(coords);
                tree.insert(p.clone(), next_oid).unwrap();
                oracle.push((p, next_oid));
                next_oid += 1;
            }
            Op::Delete(i) => {
                if oracle.is_empty() {
                    continue;
                }
                let (p, oid) = oracle.swap_remove(i % oracle.len());
                assert!(tree.delete(&p, oid).unwrap(), "oracle entry must exist");
            }
            Op::Box(center, h) => {
                let rect = Rect::new(
                    center.iter().map(|c| c - h).collect(),
                    center.iter().map(|c| c + h).collect(),
                );
                let mut got = tree.box_query(&rect).unwrap();
                got.sort_unstable();
                let mut want: Vec<u64> = oracle
                    .iter()
                    .filter(|(p, _)| rect.contains_point(p))
                    .map(|(_, o)| *o)
                    .collect();
                want.sort_unstable();
                assert_eq!(got, want, "box query diverged from oracle");
            }
            Op::Range(center, r) => {
                let q = Point::new(center);
                let mut got = tree.distance_range(&q, r, &L1).unwrap();
                got.sort_unstable();
                let mut want: Vec<u64> = oracle
                    .iter()
                    .filter(|(p, _)| L1.distance(&q, p) <= r)
                    .map(|(_, o)| *o)
                    .collect();
                want.sort_unstable();
                assert_eq!(got, want, "range query diverged from oracle");
            }
            Op::Knn(center, k) => {
                let q = Point::new(center);
                let got = tree.knn(&q, k, &L2).unwrap();
                assert_eq!(got.len(), k.min(oracle.len()));
                let mut want: Vec<f64> = oracle.iter().map(|(p, _)| L2.distance(&q, p)).collect();
                want.sort_by(f64::total_cmp);
                for (i, (_, d)) in got.iter().enumerate() {
                    assert!(
                        (d - want[i]).abs() < 1e-9,
                        "kNN rank {i}: {d} vs oracle {}",
                        want[i]
                    );
                }
            }
        }
    }
    assert_eq!(tree.len(), oracle.len());
    tree.check_invariants().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64, ..ProptestConfig::default()
    })]

    /// 2-d with tiny pages: deep trees, many splits and eliminations.
    #[test]
    fn random_ops_match_oracle_2d(ops in proptest::collection::vec(op_strategy(2), 1..300)) {
        run_ops(2, ops, tiny_page_config());
    }

    /// 5-d exercises multi-dimensional split choices.
    #[test]
    fn random_ops_match_oracle_5d(ops in proptest::collection::vec(op_strategy(5), 1..200)) {
        run_ops(5, ops, tiny_page_config());
    }

    /// ELS disabled must behave identically (pruning is an optimization).
    #[test]
    fn random_ops_match_oracle_without_els(
        ops in proptest::collection::vec(op_strategy(3), 1..200)
    ) {
        run_ops(3, ops, HybridTreeConfig { els_bits: 0, ..tiny_page_config() });
    }

    /// High-precision ELS must also be conservative.
    #[test]
    fn random_ops_match_oracle_els16(
        ops in proptest::collection::vec(op_strategy(3), 1..150)
    ) {
        run_ops(3, ops, HybridTreeConfig { els_bits: 16, ..tiny_page_config() });
    }

    /// Duplicate-heavy workloads: coordinates snapped to a coarse grid.
    #[test]
    fn duplicate_heavy_ops_match_oracle(
        raw in proptest::collection::vec(op_strategy(2), 1..250)
    ) {
        let ops: Vec<Op> = raw
            .into_iter()
            .map(|op| match op {
                Op::Insert(c) => {
                    Op::Insert(c.into_iter().map(|x| (x * 4.0).round() / 4.0).collect())
                }
                other => other,
            })
            .collect();
        run_ops(2, ops, tiny_page_config());
    }

    /// VAM split policy under fuzzing (the Fig 5 comparator must be
    /// correct, not just slower).
    #[test]
    fn vam_policy_matches_oracle(ops in proptest::collection::vec(op_strategy(3), 1..150)) {
        run_ops(
            3,
            ops,
            HybridTreeConfig { split_policy: SplitPolicy::Vam, ..tiny_page_config() },
        );
    }
}
