//! Cross-engine integration tests: every index structure must return
//! exactly the same answers as a brute-force oracle, on every dataset
//! family the paper uses, for every query kind it supports.

use hybridtree_repro::data::{clustered, colhist, fourier, uniform};
use hybridtree_repro::eval::{build_engine, Engine};
use hybridtree_repro::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;

const ENGINES: [Engine; 5] = [
    Engine::Hybrid,
    Engine::Hb,
    Engine::Sr,
    Engine::Kdb,
    Engine::Scan,
];

fn datasets() -> Vec<(&'static str, Vec<Point>)> {
    vec![
        ("uniform-4d", uniform(1_500, 4, 11)),
        ("clustered-6d", clustered(1_500, 6, 5, 0.02, 12)),
        ("colhist-16d", colhist(1_200, 16, 13)),
        ("fourier-8d", fourier(1_200, 8, 14)),
    ]
}

fn brute_box(data: &[Point], rect: &Rect) -> Vec<u64> {
    let mut v: Vec<u64> = data
        .iter()
        .enumerate()
        .filter(|(_, p)| rect.contains_point(p))
        .map(|(i, _)| i as u64)
        .collect();
    v.sort_unstable();
    v
}

fn query_boxes(data: &[Point], n: usize, seed: u64) -> Vec<Rect> {
    let mut rng = StdRng::seed_from_u64(seed);
    let _dim = data[0].dim();
    (0..n)
        .map(|_| {
            let c = &data[rng.gen_range(0..data.len())];
            let h = rng.gen_range(0.02..0.3f32);
            Rect::new(
                c.coords().iter().map(|x| x - h).collect(),
                c.coords().iter().map(|x| x + h).collect(),
            )
        })
        .collect()
}

#[test]
fn box_queries_agree_with_brute_force_on_all_engines() {
    for (name, data) in datasets() {
        let queries = query_boxes(&data, 12, 21);
        let expected: Vec<Vec<u64>> = queries.iter().map(|q| brute_box(&data, q)).collect();
        for engine in ENGINES {
            let (idx, _) = build_engine(engine, &data).unwrap();
            for (q, want) in queries.iter().zip(&expected) {
                let mut got = idx.box_query(q).unwrap();
                got.sort_unstable();
                assert_eq!(&got, want, "{} on {name}", engine.name());
            }
        }
    }
}

#[test]
fn distance_queries_agree_where_supported() {
    for (name, data) in datasets() {
        let dim = data[0].dim();
        let mut rng = StdRng::seed_from_u64(31);
        let centers: Vec<Point> = (0..8)
            .map(|_| data[rng.gen_range(0..data.len())].clone())
            .collect();
        for engine in [Engine::Hybrid, Engine::Sr, Engine::Kdb, Engine::Scan] {
            let (idx, _) = build_engine(engine, &data).unwrap();
            for metric in [&L1 as &dyn Metric, &L2] {
                for c in &centers {
                    let radius = 0.2 * (dim as f64).sqrt() * 0.3;
                    let mut got = idx.distance_range(c, radius, metric).unwrap();
                    got.sort_unstable();
                    let mut want: Vec<u64> = data
                        .iter()
                        .enumerate()
                        .filter(|(_, p)| metric.distance(c, p) <= radius)
                        .map(|(i, _)| i as u64)
                        .collect();
                    want.sort_unstable();
                    assert_eq!(
                        got,
                        want,
                        "{} on {name} under {}",
                        engine.name(),
                        metric.name()
                    );
                }
            }
        }
    }
}

#[test]
fn knn_distances_agree_where_supported() {
    for (name, data) in datasets() {
        let mut rng = StdRng::seed_from_u64(41);
        let q = data[rng.gen_range(0..data.len())].clone();
        let mut want: Vec<f64> = data.iter().map(|p| L2.distance(&q, p)).collect();
        want.sort_by(f64::total_cmp);
        for engine in [Engine::Hybrid, Engine::Sr, Engine::Kdb, Engine::Scan] {
            let (idx, _) = build_engine(engine, &data).unwrap();
            let got = idx.knn(&q, 15, &L2).unwrap();
            assert_eq!(got.len(), 15);
            for (i, (_, d)) in got.iter().enumerate() {
                assert!(
                    (d - want[i]).abs() < 1e-9,
                    "{} on {name}: rank {i} dist {d} != {}",
                    engine.name(),
                    want[i]
                );
            }
        }
    }
}

#[test]
fn deletes_are_respected_by_all_engines() {
    let data = uniform(800, 3, 51);
    let mut rng = StdRng::seed_from_u64(52);
    let mut dead = vec![false; data.len()];
    for _ in 0..250 {
        dead[rng.gen_range(0..data.len())] = true;
    }
    let rect = Rect::new(vec![0.15; 3], vec![0.85; 3]);
    let mut want: Vec<u64> = data
        .iter()
        .enumerate()
        .filter(|(i, p)| !dead[*i] && rect.contains_point(p))
        .map(|(i, _)| i as u64)
        .collect();
    want.sort_unstable();
    for engine in ENGINES {
        let (mut idx, _) = build_engine(engine, &data).unwrap();
        for (i, p) in data.iter().enumerate() {
            if dead[i] {
                assert!(
                    idx.delete(p, i as u64).unwrap(),
                    "{}: delete {i}",
                    engine.name()
                );
            }
        }
        assert_eq!(idx.len(), data.len() - dead.iter().filter(|d| **d).count());
        let mut got = idx.box_query(&rect).unwrap();
        got.sort_unstable();
        assert_eq!(got, want, "{} after deletes", engine.name());
    }
}

#[test]
fn dimension_mismatch_rejected_everywhere() {
    let data = uniform(50, 4, 61);
    for engine in ENGINES {
        let (mut idx, _) = build_engine(engine, &data).unwrap();
        assert!(matches!(
            idx.insert(Point::origin(5), 0),
            Err(IndexError::DimensionMismatch { .. })
        ));
        assert!(idx.box_query(&Rect::unit(3)).is_err(), "{}", engine.name());
    }
}

#[test]
fn empty_query_results_are_empty_not_errors() {
    let data = uniform(300, 3, 71);
    for engine in ENGINES {
        let (idx, _) = build_engine(engine, &data).unwrap();
        // A window far outside the data.
        let rect = Rect::new(vec![5.0; 3], vec![6.0; 3]);
        assert!(
            idx.box_query(&rect).unwrap().is_empty(),
            "{}",
            engine.name()
        );
    }
}
