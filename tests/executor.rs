//! Streaming-kNN cursor vs. batch kNN: on every engine that supports
//! distance search, draining the cursor `k` yields must reproduce the
//! batch `knn_ctx` answer *exactly* — same oids in the same order, same
//! tie-breaks, same distances — because both run the same executor
//! kernel over the same page reads. The equivalence must also survive
//! governance: under a read budget the cursor's yields form a prefix of
//! the batch query's (equally degraded) partial answer.

use hybridtree_repro::data::{clustered, colhist, uniform};
use hybridtree_repro::eval::{build_engine, run_knn_stream, Engine};
use hybridtree_repro::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;

const STREAMING_ENGINES: [Engine; 4] = [Engine::Hybrid, Engine::Sr, Engine::Kdb, Engine::Scan];

fn datasets() -> Vec<(&'static str, Vec<Point>)> {
    vec![
        ("uniform-4d", uniform(1_200, 4, 71)),
        ("clustered-6d", clustered(1_200, 6, 5, 0.02, 72)),
        ("colhist-16d", colhist(900, 16, 73)),
    ]
}

fn query_points(data: &[Point], n: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| data[rng.gen_range(0..data.len())].clone())
        .collect()
}

/// Drains at most `k` hits from a fresh cursor, returning the hits and
/// the degradation reason (if the budget stopped the stream early).
fn drain(
    idx: &dyn MultidimIndex,
    q: &Point,
    k: usize,
    metric: &dyn Metric,
    ctx: &QueryContext,
) -> (Vec<(u64, f64)>, Option<DegradeReason>) {
    let (hits, _, reason) = run_knn_stream(idx, q, k, metric, ctx).unwrap();
    (hits, reason)
}

#[test]
fn cursor_prefixes_equal_batch_knn_on_all_engines() {
    for (name, data) in datasets() {
        let queries = query_points(&data, 8, 81);
        for engine in STREAMING_ENGINES {
            let (idx, _) = build_engine(engine, &data).unwrap();
            for metric in [&L1 as &dyn Metric, &L2] {
                for q in &queries {
                    let (outcome, _) = idx
                        .knn_ctx(q, 10, metric, QueryContext::unlimited())
                        .unwrap();
                    let batch = outcome.into_results();
                    // Full drain reproduces the batch answer bit for bit:
                    // same oids, same order (ties broken identically).
                    let (stream, reason) = drain(&*idx, q, 10, metric, QueryContext::unlimited());
                    assert_eq!(reason, None, "{} on {name}", engine.name());
                    assert_eq!(stream, batch, "{} on {name}", engine.name());
                    // Every shorter drain is a strict prefix — the cursor
                    // never reorders later knowledge into earlier yields.
                    for prefix_len in [1usize, 3, 7] {
                        let (prefix, _) =
                            drain(&*idx, q, prefix_len, metric, QueryContext::unlimited());
                        assert_eq!(
                            prefix,
                            batch[..prefix_len.min(batch.len())].to_vec(),
                            "{} on {name} (k={prefix_len})",
                            engine.name()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn degraded_cursor_prefixes_equal_degraded_batch_answers() {
    for (name, data) in datasets() {
        let queries = query_points(&data, 4, 91);
        for engine in STREAMING_ENGINES {
            let (idx, _) = build_engine(engine, &data).unwrap();
            for q in &queries {
                // Find the I/O a complete k=10 search needs, then starve
                // the budget below it so both paths degrade mid-search.
                let (_, full_io) = idx.knn_ctx(q, 10, &L2, QueryContext::unlimited()).unwrap();
                let full_reads = full_io.logical_reads + full_io.seq_reads;
                assert!(full_reads > 1, "{} on {name}", engine.name());
                for budget in [full_reads / 2, full_reads - 1] {
                    let ctx = QueryContext {
                        max_logical_reads: Some(budget),
                        ..QueryContext::default()
                    };
                    let (outcome, _) = idx.knn_ctx(q, 10, &L2, &ctx).unwrap();
                    assert_eq!(
                        outcome.degrade_reason(),
                        Some(DegradeReason::BudgetExhausted),
                        "{} on {name}",
                        engine.name()
                    );
                    let batch = outcome.into_results();
                    let (stream, _, reason) = run_knn_stream(&*idx, q, 10, &L2, &ctx).unwrap();
                    // The cursor reads pages in the same order, so it hits
                    // the same budget wall; its yields are a prefix of the
                    // batch's settled partial answer (the batch settles
                    // *all* candidates found so far, the cursor only what
                    // it had proven when the budget ran out).
                    assert_eq!(
                        reason,
                        Some(DegradeReason::BudgetExhausted),
                        "{} on {name}",
                        engine.name()
                    );
                    assert!(stream.len() <= batch.len(), "{} on {name}", engine.name());
                    assert_eq!(
                        stream,
                        batch[..stream.len()].to_vec(),
                        "{} on {name} (budget={budget})",
                        engine.name()
                    );
                }
            }
        }
    }
}

#[test]
fn hb_tree_reports_streaming_unsupported() {
    let data = uniform(400, 4, 99);
    let (idx, _) = build_engine(Engine::Hb, &data).unwrap();
    let q = data[0].clone();
    let err = idx
        .knn_stream(&q, &L2, QueryContext::unlimited())
        .err()
        .expect("hB-tree must refuse to open a kNN cursor");
    assert!(matches!(err, IndexError::Unsupported(_)), "got {err}");
}

#[test]
fn cursor_result_cap_degrades_stream() {
    let data = uniform(800, 4, 101);
    for engine in STREAMING_ENGINES {
        let (idx, _) = build_engine(engine, &data).unwrap();
        let ctx = QueryContext {
            max_results: Some(3),
            ..QueryContext::default()
        };
        let q = data[5].clone();
        let (hits, _, reason) = run_knn_stream(&*idx, &q, 10, &L2, &ctx).unwrap();
        assert_eq!(hits.len(), 3, "{}", engine.name());
        assert_eq!(
            reason,
            Some(DegradeReason::BudgetExhausted),
            "{}",
            engine.name()
        );
        // The capped stream agrees with the clamped batch answer.
        let (outcome, _) = idx.knn_ctx(&q, 10, &L2, &ctx).unwrap();
        assert_eq!(hits, outcome.into_results(), "{}", engine.name());
    }
}
