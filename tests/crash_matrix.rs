//! Crash-matrix fault injection: kill the process (simulated) at every
//! write site, reopen, and demand either a fully consistent tree or a
//! typed corruption error — never a panic, never silently wrong results.
//!
//! The stack under test is the production durability stack with a fault
//! layer spliced in *below* the checksums, so injected damage hits the
//! framed bytes exactly as real torn writes and bit rot would:
//!
//! ```text
//! ChecksumStorage  (CRC frames, epochs — what production runs)
//!   FaultStorage   (scripted crashes, torn writes, bit flips)
//!     FileStorage  (the real page file)
//! ```

use hybridtree_repro::core::{scrub_index, scrub_pages, HybridTree, HybridTreeConfig};
use hybridtree_repro::geom::{Point, Rect};
use hybridtree_repro::index::{IndexError, IndexResult, MultidimIndex};
use hybridtree_repro::page::{
    ChecksumStorage, FaultScript, FaultStorage, FileStorage, FRAME_HEADER_BYTES,
};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::path::{Path, PathBuf};
use std::sync::Arc;

type FaultyStack = ChecksumStorage<FaultStorage<FileStorage>>;

const DIM: usize = 4;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hyt_crash_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn cfg() -> HybridTreeConfig {
    HybridTreeConfig {
        page_size: 512,
        els_bits: 4,
        pool_pages: 16, // small pool: evictions force writes mid-workload
        ..HybridTreeConfig::default()
    }
}

fn points(n: usize) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    (0..n)
        .map(|_| Point::new((0..DIM).map(|_| rng.gen::<f32>()).collect()))
        .collect()
}

/// Builds the faulted stack over a fresh page file.
fn faulty_stack(pages: &Path) -> (FaultyStack, Arc<FaultScript>) {
    let slot = cfg().page_size + FRAME_HEADER_BYTES;
    let file = FileStorage::create(pages, slot).unwrap();
    let (faulty, script) = FaultStorage::new(file);
    (ChecksumStorage::new(faulty), script)
}

/// The scripted workload: inserts with a mid-way commit, then deletes,
/// then a final commit. Every step is fallible; after a scripted crash
/// the first error aborts the rest, like a dying process would. Returns
/// the mutation count observed right after the mid-way commit.
fn workload(
    tree: &mut HybridTree<FaultyStack>,
    pts: &[Point],
    meta: &Path,
    script: &FaultScript,
) -> IndexResult<u64> {
    let mut mid_mark = 0;
    for (i, p) in pts.iter().enumerate() {
        tree.insert(p.clone(), i as u64)?;
        if i == pts.len() / 2 {
            tree.persist(meta)?;
            mid_mark = script.writes_seen();
        }
    }
    for (i, p) in pts.iter().take(pts.len() / 4).enumerate() {
        tree.delete(p, i as u64)?;
    }
    tree.persist(meta)?;
    Ok(mid_mark)
}

/// Deep consistency check on a reopened tree: structural invariants hold
/// and a whole-space query returns exactly `len` results (no phantom or
/// lost entries relative to the tree's own metadata). Reads every page,
/// so payload corruption that `open` verifies lazily surfaces here as a
/// typed error.
fn deep_check(tree: &HybridTree<hybridtree_repro::page::DurableStorage>) -> IndexResult<()> {
    tree.check_invariants()?;
    let everything = Rect::new(vec![-1.0; DIM], vec![2.0; DIM]);
    let hits = tree.box_query(&everything)?;
    assert_eq!(
        hits.len(),
        tree.len(),
        "whole-space query disagrees with entry count"
    );
    Ok(())
}

#[test]
fn crash_at_every_write_site_recovers_or_fails_typed() {
    let pts = points(400);
    let pages = tmp("matrix.pages");
    let meta = tmp("matrix.meta");

    // Dry run with the script disarmed to count write sites.
    let (total_writes, mid_mark) = {
        std::fs::remove_file(&meta).ok();
        let (storage, script) = faulty_stack(&pages);
        let mut tree = HybridTree::with_storage(DIM, cfg(), storage).unwrap();
        let mid = workload(&mut tree, &pts, &meta, &script).unwrap();
        (script.writes_seen(), mid)
    };
    assert!(total_writes > 50, "workload too small to be a matrix");
    assert!(mid_mark > 0, "mid-way commit never happened");

    // Crash at a spread of write sites covering the whole workload, with
    // rotating torn-write fractions (0 = clean kill before the write, up
    // to 900‰ of the page landing). The extra (mid_mark, 0) case kills
    // the first mutation after the mid-way commit with nothing landing —
    // the disk then holds exactly the committed state, so open MUST
    // succeed; it anchors the `recovered > 0` assertion below.
    let step = (total_writes / 48).max(1);
    let mut cases: Vec<(u64, u64)> = (0..total_writes)
        .step_by(step as usize)
        .map(|k| (k, [0, 250, 500, 900][(k % 4) as usize]))
        .collect();
    cases.push((mid_mark, 0));
    let mut recovered = 0usize;
    let mut refused = 0usize;
    for (k, torn) in cases {
        std::fs::remove_file(&meta).ok();
        let (storage, script) = faulty_stack(&pages);
        script.crash_at_write(k, torn);
        // Everything from here until reopen may fail — that's the point.
        // What it must never do is panic.
        if let Ok(mut tree) = HybridTree::with_storage(DIM, cfg(), storage) {
            let _ = workload(&mut tree, &pts, &meta, &script);
        }

        // Scrub first (read-only): if it says the files are fully clean,
        // a normal open must succeed.
        let scrub_clean = if meta.exists() {
            scrub_index(&pages, &meta).is_ok_and(|r| r.is_clean())
        } else {
            false
        };
        match HybridTree::open(&pages, &meta) {
            Ok(tree) => match deep_check(&tree) {
                Ok(()) => recovered += 1,
                Err(e) => {
                    // `open` verifies payload checksums lazily; damage it
                    // did not touch yet must still surface typed.
                    assert!(
                        e.is_corruption(),
                        "crash at write {k}: untyped deep-check error {e:?}"
                    );
                    assert!(
                        !scrub_clean,
                        "crash at write {k}: scrub clean but reads fail: {e}"
                    );
                    refused += 1;
                }
            },
            Err(e) => {
                assert!(
                    matches!(e, IndexError::Storage(_)),
                    "crash at write {k}: untyped error {e:?}"
                );
                assert!(
                    !scrub_clean,
                    "crash at write {k}: scrub says clean but open failed: {e}"
                );
                refused += 1;
            }
        }
        // A second reopen attempt behaves identically (recovery did not
        // scribble the files into a worse state).
        match HybridTree::open(&pages, &meta) {
            Ok(tree) => {
                if let Err(e) = deep_check(&tree) {
                    assert!(e.is_corruption(), "{e:?}");
                }
            }
            Err(e) => assert!(matches!(e, IndexError::Storage(_))),
        }
    }
    // The matrix must exercise both outcomes: early crashes (before the
    // first commit) refuse, late crashes (after the last commit, or with
    // recoverable divergence) come back.
    assert!(recovered > 0, "no crash point ever recovered");
    assert!(
        refused > 0,
        "no crash point was ever refused — matrix too soft"
    );
    std::fs::remove_file(&pages).ok();
    std::fs::remove_file(&meta).ok();
}

#[test]
fn the_commit_point_is_durable() {
    // Kill the process on the very next mutation after a commit, with
    // nothing landing: reopen must reproduce the committed tree exactly.
    // (Mutations that LAND after a commit rewrite pages in place — there
    // is no WAL — so the guarantee for those is detect-and-refuse, which
    // the matrix test covers; the commit itself must be a hard point.)
    let pts = points(300);
    let pages = tmp("durable.pages");
    let meta = tmp("durable.meta");
    std::fs::remove_file(&meta).ok();

    let (storage, script) = faulty_stack(&pages);
    let mut tree = HybridTree::with_storage(DIM, cfg(), storage).unwrap();
    for (i, p) in pts.iter().enumerate() {
        tree.insert(p.clone(), i as u64).unwrap();
    }
    tree.persist(&meta).unwrap();
    let committed_len = tree.len();

    // The storage dies before the next mutation persists anything.
    script.crash_at_write(script.writes_seen(), 0);
    let mut oid = pts.len() as u64;
    let mut rng = StdRng::seed_from_u64(99);
    loop {
        let p = Point::new((0..DIM).map(|_| rng.gen::<f32>()).collect());
        match tree.insert(p, oid) {
            Ok(()) => oid += 1, // cache-only mutation, nothing hit disk
            Err(_) => break,    // the crash fired
        }
    }
    assert!(script.crashed());
    drop(tree);

    let tree = HybridTree::open(&pages, &meta).expect("committed state must reopen");
    assert_eq!(
        tree.len(),
        committed_len,
        "committed entries lost or gained"
    );
    deep_check(&tree).expect("committed state must verify");
    // Every committed point is findable (the ELS that came back with the
    // catalog prunes correctly — a wrong table would drop results
    // silently).
    for (i, p) in pts.iter().enumerate().step_by(29) {
        let hits = tree.point_query(p).unwrap();
        assert!(hits.contains(&(i as u64)), "committed point {i} lost");
    }
    std::fs::remove_file(&pages).ok();
    std::fs::remove_file(&meta).ok();
}

#[test]
fn transient_read_faults_are_invisible_to_queries() {
    let pts = points(250);
    let pages = tmp("transient.pages");
    let meta = tmp("transient.meta");
    std::fs::remove_file(&meta).ok();

    let (storage, script) = faulty_stack(&pages);
    let mut tree = HybridTree::with_storage(DIM, cfg(), storage).unwrap();
    for (i, p) in pts.iter().enumerate() {
        tree.insert(p.clone(), i as u64).unwrap();
    }
    // Two consecutive failures per physical read is within the retry
    // budget (3): queries must succeed without surfacing an error.
    script.fail_next_reads(2);
    let hits = tree.point_query(&pts[17]).unwrap();
    assert!(hits.contains(&17));
    std::fs::remove_file(&pages).ok();
    std::fs::remove_file(&meta).ok();
}

#[test]
fn bit_rot_on_the_read_path_is_a_typed_error_not_garbage() {
    let pts = points(250);
    let pages = tmp("rot.pages");

    let (storage, script) = faulty_stack(&pages);
    let mut tree = HybridTree::with_storage(DIM, cfg(), storage).unwrap();
    for (i, p) in pts.iter().enumerate() {
        tree.insert(p.clone(), i as u64).unwrap();
    }
    // Flip one payload bit on the next physical read. The checksum layer
    // must catch it; the pool must NOT retry it (corruption is not
    // transient) and the query must fail typed.
    script.flip_on_read(script.reads_seen() + 1, FRAME_HEADER_BYTES + 9, 0x20);
    let everything = Rect::new(vec![-1.0; DIM], vec![2.0; DIM]);
    let mut saw_corrupt = false;
    // Capacity-16 pool: scan until the flip's victim page is actually
    // fetched from disk (cached pages never touch the fault layer).
    for _ in 0..4 {
        match tree.box_query(&everything) {
            Ok(hits) => assert_eq!(hits.len(), tree.len(), "silently wrong result"),
            Err(e) => {
                assert!(e.is_corruption(), "expected Corrupt, got {e:?}");
                saw_corrupt = true;
                break;
            }
        }
    }
    assert!(saw_corrupt, "injected bit flip was never read back");
    std::fs::remove_file(&pages).ok();
}

#[test]
fn scrub_finds_every_on_disk_flip_a_reopen_would_trust() {
    // Corruption injected below the checksums while the index is at
    // rest: scrub and open must agree — whatever scrub misses, open must
    // survive, and whatever open trusts, scrub must have verified.
    let pts = points(300);
    let pages = tmp("restrot.pages");
    let meta = tmp("restrot.meta");
    std::fs::remove_file(&meta).ok();
    {
        let (storage, _script) = faulty_stack(&pages);
        let mut tree = HybridTree::with_storage(DIM, cfg(), storage).unwrap();
        for (i, p) in pts.iter().enumerate() {
            tree.insert(p.clone(), i as u64).unwrap();
        }
        tree.persist(&meta).unwrap();
    }
    let clean = std::fs::read(&pages).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..40 {
        let mut bad = clean.clone();
        let pos = rng.gen_range(0..bad.len());
        let mask = 1u8 << rng.gen_range(0..8);
        bad[pos] ^= mask;
        std::fs::write(&pages, &bad).unwrap();
        let report = scrub_index(&pages, &meta).unwrap();
        match HybridTree::open(&pages, &meta) {
            Ok(tree) => match deep_check(&tree) {
                // The flip was harmless (freed slot, padding bytes) or
                // recovery healed around it — either way results are
                // right. A harmful flip that open missed must fail typed
                // at read time AND have been caught by the scrub.
                Ok(()) => {}
                Err(e) => {
                    assert!(e.is_corruption(), "flip at {pos}: {e:?}");
                    assert!(
                        !report.is_clean(),
                        "flip at {pos}: scrub clean but reads fail: {e}"
                    );
                }
            },
            Err(e) => {
                assert!(matches!(e, IndexError::Storage(_)), "{e:?}");
                assert!(
                    !report.is_clean(),
                    "open refused a file scrub called clean (flip at {pos})"
                );
            }
        }
    }
    // Pages-only scrub (no catalog) sees the same frame damage.
    let mut bad = clean.clone();
    bad[clean.len() / 3] ^= 0x40;
    std::fs::write(&pages, &bad).unwrap();
    let rep = scrub_pages(&pages, cfg().page_size).unwrap();
    assert!(!rep.is_clean() || rep.free > 0);
    std::fs::remove_file(&pages).ok();
    std::fs::remove_file(&meta).ok();
}
