//! Decoded-node cache: invalidation regression tests and the
//! cache-on ≡ cache-off equivalence property across every engine.
//!
//! The cache memoizes *decoded* nodes keyed by `(page, write epoch)`;
//! enabling it must be invisible in every observable except decode
//! counts — same answers, same logical/sequential read accounting, same
//! degradation points under PR 3 read budgets. These tests pin that
//! contract, plus the invalidation rules (rewrite bumps the epoch, free
//! evicts, stale-epoch inserts are discarded).

use hybridtree_repro::eval::{
    build_engine_cached, run_batch_governed, BatchPolicy, BatchQuery, Engine,
};
use hybridtree_repro::page::{BufferPool, IoStats, MemStorage, NodeCache, PageId};
use hybridtree_repro::prelude::*;
use proptest::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;

const ENGINES: [Engine; 5] = [
    Engine::Hybrid,
    Engine::Hb,
    Engine::Sr,
    Engine::Kdb,
    Engine::Scan,
];

// ---------------------------------------------------------------------
// Pool-level invalidation regression
// ---------------------------------------------------------------------

fn decoded_first_byte(pool: &BufferPool<MemStorage>, id: PageId) -> u8 {
    let mut io = IoStats::default();
    let node: std::sync::Arc<u8> = pool
        .read_decoded_tracked(id, &mut io, |buf| {
            Ok::<_, hybridtree_repro::page::PageError>(buf[0])
        })
        .unwrap();
    *node
}

#[test]
fn rewrite_invalidates_cached_decode() {
    let pool = BufferPool::with_node_cache(MemStorage::new(), 8, 16);
    let id = pool.allocate().unwrap();
    pool.write(id, &[1u8; 8]).unwrap();
    assert_eq!(decoded_first_byte(&pool, id), 1);
    assert!(pool.node_cache().contains(id), "decode populated the cache");
    // Rewriting the page must drop the decoded form; the next read
    // decodes the *new* bytes, never the memoized old ones.
    pool.write(id, &[2u8; 8]).unwrap();
    assert!(!pool.node_cache().contains(id), "rewrite evicts the entry");
    assert_eq!(decoded_first_byte(&pool, id), 2, "stale decode served");
    let s = pool.node_cache_stats();
    assert!(s.invalidations >= 1);
}

#[test]
fn free_evicts_and_reallocation_cannot_alias() {
    let pool = BufferPool::with_node_cache(MemStorage::new(), 8, 16);
    let id = pool.allocate().unwrap();
    pool.write(id, &[7u8; 8]).unwrap();
    assert_eq!(decoded_first_byte(&pool, id), 7);
    let epoch_before = pool.node_cache().epoch(id);
    pool.free(id).unwrap();
    assert!(!pool.node_cache().contains(id), "free evicts the entry");
    assert!(
        pool.node_cache().epoch(id) > epoch_before,
        "free advances the page epoch so a reallocated id cannot alias"
    );
    // Reallocate the same slot and write different content: the decode
    // must see the new bytes.
    let id2 = pool.allocate().unwrap();
    pool.write(id2, &[9u8; 8]).unwrap();
    assert_eq!(decoded_first_byte(&pool, id2), 9);
}

#[test]
fn stale_epoch_insert_never_publishes() {
    let cache = NodeCache::new(8);
    let id = PageId(3);
    let observed = cache.epoch(id);
    // A writer intervenes between the epoch snapshot and the insert.
    cache.invalidate(id);
    cache.insert(id, observed, std::sync::Arc::new(41u32));
    assert!(
        cache.get_as::<u32>(id).is_none(),
        "insert carrying a superseded epoch must be discarded"
    );
}

// ---------------------------------------------------------------------
// Tree-level invalidation through splits and deletes
// ---------------------------------------------------------------------

/// Grows a cached tree past several splits with queries interleaved, so
/// cached decodes of pre-split nodes are repeatedly superseded; a twin
/// without the cache is the oracle.
#[test]
fn hybrid_tree_cache_survives_splits_and_deletes() {
    let dim = 6;
    let data = hybridtree_repro::data::uniform(3_000, dim, 99);
    let mut cached = HybridTree::new(
        dim,
        HybridTreeConfig {
            node_cache_entries: 64, // small: forces LRU churn too
            ..HybridTreeConfig::default()
        },
    )
    .unwrap();
    let mut plain = HybridTree::new(dim, HybridTreeConfig::default()).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let probe = |t: &HybridTree<MemStorage>, c: &Point| {
        let mut hits = t.distance_range(c, 0.35, &L2).unwrap();
        hits.sort_unstable();
        let knn: Vec<(u64, f64)> = t.knn(c, 8, &L2).unwrap();
        (hits, knn)
    };
    for (i, p) in data.iter().enumerate() {
        cached.insert(p.clone(), i as u64).unwrap();
        plain.insert(p.clone(), i as u64).unwrap();
        // Query mid-growth every so often: any stale cached node (split
        // pages are rewritten, siblings freed on merge) would diverge.
        if i % 257 == 0 {
            let c = &data[rng.gen_range(0..=i)];
            assert_eq!(probe(&cached, c), probe(&plain, c), "after insert {i}");
        }
    }
    for i in (0..data.len()).step_by(3) {
        assert!(cached.delete(&data[i], i as u64).unwrap());
        assert!(plain.delete(&data[i], i as u64).unwrap());
        if i % 300 == 0 {
            let c = &data[rng.gen_range(0..data.len())];
            assert_eq!(probe(&cached, c), probe(&plain, c), "after delete {i}");
        }
    }
    assert!(
        cached.cache_stats().invalidations > 0,
        "splits/deletes must have invalidated cached decodes"
    );
}

// ---------------------------------------------------------------------
// Cache-on ≡ cache-off equivalence property, all five engines
// ---------------------------------------------------------------------

/// Strips the fields a decoded-node cache hit may legitimately change
/// (physical reads / pool hit counters); everything else must be
/// bit-identical.
fn observable(a: &hybridtree_repro::eval::GovernedAnswer) -> impl PartialEq + std::fmt::Debug {
    (
        a.answer.oids.clone(),
        a.answer.distances.clone(),
        a.answer.io.logical_reads,
        a.answer.io.seq_reads,
        a.status.clone(),
        a.retries,
    )
}

fn mixed_queries(data: &[Point], seed: u64, box_only: bool) -> Vec<BatchQuery> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..10)
        .map(|i| {
            let c = data[rng.gen_range(0..data.len())].clone();
            if box_only || i % 3 == 0 {
                let h = rng.gen_range(0.05..0.4f32);
                BatchQuery::Box(Rect::new(
                    c.coords().iter().map(|x| x - h).collect(),
                    c.coords().iter().map(|x| (x + h).min(2.0)).collect(),
                ))
            } else if i % 3 == 1 {
                BatchQuery::Knn(c, 1 + i % 7)
            } else {
                BatchQuery::Distance(c, 0.1 + 0.05 * i as f64)
            }
        })
        .collect()
}

/// Runs the same governed batch cache-on and cache-off and demands
/// identical observables — including the *degradation points* under a
/// read budget, since cache hits still charge logical reads. Returns
/// whether any query degraded (so callers that picked a budget to force
/// partials can verify it actually bit).
fn assert_cache_transparent(data: &[Point], seed: u64, max_reads: Option<u64>) -> bool {
    let policy = BatchPolicy {
        max_reads,
        ..BatchPolicy::default()
    };
    let mut any_degraded = false;
    for engine in ENGINES {
        let queries = mixed_queries(data, seed, engine == Engine::Hb);
        let (off, _) = build_engine_cached(engine, data, 0).unwrap();
        let (on, _) = build_engine_cached(engine, data, 512).unwrap();
        let base = run_batch_governed(off.as_ref(), &L2, &queries, 1, &policy, None).unwrap();
        // Two passes over the cached build: the second runs against a
        // warm cache, where hits actually happen.
        for pass in 0..2 {
            let got = run_batch_governed(on.as_ref(), &L2, &queries, 1, &policy, None).unwrap();
            assert_eq!(base.len(), got.len());
            for (i, (b, g)) in base.iter().zip(&got).enumerate() {
                assert_eq!(
                    observable(b),
                    observable(g),
                    "{} query {i} pass {pass} (max_reads {max_reads:?})",
                    engine.name()
                );
            }
        }
        any_degraded |= base.iter().any(|a| !a.status.is_complete());
    }
    any_degraded
}

#[test]
fn cache_is_transparent_on_complete_queries() {
    let data = hybridtree_repro::data::clustered(2_000, 5, 4, 0.03, 17);
    assert_cache_transparent(&data, 23, None);
}

#[test]
fn cache_is_transparent_on_degraded_partials() {
    let data = hybridtree_repro::data::uniform(2_500, 4, 31);
    // A tight per-query read budget: many queries stop mid-traversal.
    // Cache hits charge the budget exactly like decoded reads, so the
    // partial answers truncate at the same node in both modes.
    let degraded = assert_cache_transparent(&data, 29, Some(6));
    assert!(degraded, "budget chosen to force degradation did not");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Randomized datasets, query mixes, and budgets: enabling the
    /// decoded-node cache never changes any observable on any engine.
    #[test]
    fn cache_equivalence_holds_for_arbitrary_workloads(
        seed in 0u64..1_000,
        n in 400usize..1_200,
        dim in 2usize..6,
        budget in prop_oneof![Just(None), (4u64..40).prop_map(Some)],
    ) {
        let data = hybridtree_repro::data::uniform(n, dim, seed);
        assert_cache_transparent(&data, seed ^ 0xC0FFEE, budget);
    }
}
