//! Property-based cross-engine testing: every index structure must stay
//! equivalent to a naive oracle under arbitrary interleavings of
//! inserts, deletes, and queries — the same harness the hybrid tree gets
//! in `hybrid_properties.rs`, applied to the baselines.

use hybridtree_repro::hbtree::{HbTree, HbTreeConfig};
use hybridtree_repro::kdbtree::{KdbTree, KdbTreeConfig};
use hybridtree_repro::prelude::*;
use hybridtree_repro::scan::SeqScan;
use hybridtree_repro::srtree::{SrTree, SrTreeConfig};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Insert(Vec<f32>),
    Delete(usize),
    Box(Vec<f32>, f32),
}

fn op_strategy(dim: usize) -> impl Strategy<Value = Op> {
    let coord = -1.0f32..2.0;
    let point = proptest::collection::vec(coord, dim);
    prop_oneof![
        4 => point.clone().prop_map(Op::Insert),
        1 => (0usize..1024).prop_map(Op::Delete),
        2 => (point, 0.05f32..0.8).prop_map(|(c, h)| Op::Box(c, h)),
    ]
}

fn run_ops(mut idx: Box<dyn MultidimIndex>, ops: Vec<Op>) {
    let mut oracle: Vec<(Point, u64)> = Vec::new();
    let mut next_oid = 0u64;
    for op in ops {
        match op {
            Op::Insert(coords) => {
                let p = Point::new(coords);
                idx.insert(p.clone(), next_oid).unwrap();
                oracle.push((p, next_oid));
                next_oid += 1;
            }
            Op::Delete(i) => {
                if oracle.is_empty() {
                    continue;
                }
                let (p, oid) = oracle.swap_remove(i % oracle.len());
                assert!(idx.delete(&p, oid).unwrap(), "{}: lost entry", idx.name());
            }
            Op::Box(center, h) => {
                let rect = Rect::new(
                    center.iter().map(|c| c - h).collect(),
                    center.iter().map(|c| c + h).collect(),
                );
                let mut got = idx.box_query(&rect).unwrap();
                got.sort_unstable();
                let mut want: Vec<u64> = oracle
                    .iter()
                    .filter(|(p, _)| rect.contains_point(p))
                    .map(|(_, o)| *o)
                    .collect();
                want.sort_unstable();
                assert_eq!(got, want, "{} diverged from oracle", idx.name());
            }
        }
    }
    assert_eq!(idx.len(), oracle.len());
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn srtree_matches_oracle(ops in proptest::collection::vec(op_strategy(3), 1..200)) {
        let cfg = SrTreeConfig { page_size: 512, ..SrTreeConfig::default() };
        run_ops(Box::new(SrTree::new(3, cfg).unwrap()), ops);
    }

    #[test]
    fn hbtree_matches_oracle(ops in proptest::collection::vec(op_strategy(3), 1..200)) {
        let cfg = HbTreeConfig { page_size: 256, ..HbTreeConfig::default() };
        run_ops(Box::new(HbTree::new(3, cfg).unwrap()), ops);
    }

    #[test]
    fn kdbtree_matches_oracle(ops in proptest::collection::vec(op_strategy(3), 1..200)) {
        let cfg = KdbTreeConfig { page_size: 256, ..KdbTreeConfig::default() };
        run_ops(Box::new(KdbTree::new(3, cfg).unwrap()), ops);
    }

    #[test]
    fn seqscan_matches_oracle(ops in proptest::collection::vec(op_strategy(3), 1..150)) {
        run_ops(Box::new(SeqScan::with_page_size(3, 256).unwrap()), ops);
    }

    /// Duplicate-heavy: coordinates snapped to a coarse grid stress the
    /// rank-split / boundary-routing paths of the SP structures.
    #[test]
    fn sp_trees_survive_duplicates(raw in proptest::collection::vec(op_strategy(2), 1..200)) {
        let ops: Vec<Op> = raw
            .into_iter()
            .map(|op| match op {
                Op::Insert(c) => Op::Insert(
                    c.into_iter().map(|x| (x * 3.0).round() / 3.0).collect(),
                ),
                other => other,
            })
            .collect();
        let kdb_cfg = KdbTreeConfig { page_size: 256, ..KdbTreeConfig::default() };
        run_ops(Box::new(KdbTree::new(2, kdb_cfg).unwrap()), ops.clone());
        let hb_cfg = HbTreeConfig { page_size: 256, ..HbTreeConfig::default() };
        run_ops(Box::new(HbTree::new(2, hb_cfg).unwrap()), ops);
    }
}
