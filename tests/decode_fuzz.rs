//! Decode-path fuzzing: every deserializer in the read path must map
//! arbitrary, truncated, bit-flipped, or zeroed input to a *typed*
//! [`PageError`] — never a panic, never an out-of-bounds access. These
//! are the code paths that face bytes straight off a disk that may have
//! been torn, rotted, or overwritten by another program.

use hybridtree_repro::core::{scrub_index, ElsTable, HybridTree, HybridTreeConfig, KdTree, Node};
use hybridtree_repro::geom::Point;
use hybridtree_repro::index::MultidimIndex;
use hybridtree_repro::page::{
    inspect_frame, inspect_header, ByteReader, DurableStorage, FrameStatus, FRAME_HEADER_BYTES,
};
use proptest::prelude::*;

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("hyt_fuzz_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// A valid encoded data node to mutate.
fn valid_data_node(dim: usize, n: usize) -> Vec<u8> {
    let entries: Vec<_> = (0..n)
        .map(|i| {
            let p = Point::new((0..dim).map(|d| (i * dim + d) as f32 / 64.0).collect());
            hybridtree_repro::core::DataEntry {
                point: p,
                oid: i as u64,
            }
        })
        .collect();
    Node::Data(entries).encode(dim)
}

proptest! {
    // Arbitrary garbage: the decoder must classify, not crash.
    #[test]
    fn node_decode_never_panics_on_garbage(
        raw in proptest::collection::vec(0u16..256, 0..600),
        dim in 1usize..20,
    ) {
        let bytes: Vec<u8> = raw.iter().map(|&v| v as u8).collect();
        let _ = Node::decode(&bytes, dim);
    }

    // Truncations of a valid node: every cut is Ok (a shorter valid
    // prefix cannot exist for this format, so in practice Corrupt) or a
    // typed error.
    #[test]
    fn node_decode_survives_truncation(cut in 0usize..400, dim in 1usize..9) {
        let buf = valid_data_node(dim, 8);
        let cut = cut.min(buf.len());
        let _ = Node::decode(&buf[..cut], dim);
    }

    // Bit flips in a valid node, decoded at the SAME dim: no panic; and
    // decoded at a DIFFERENT dim (a cross-linked page): no panic.
    #[test]
    fn node_decode_survives_bit_flips(
        pos in 0usize..300,
        bit in 0u8..8,
        dim in 1usize..9,
        other_dim in 1usize..9,
    ) {
        let mut buf = valid_data_node(dim, 8);
        let pos = pos % buf.len();
        buf[pos] ^= 1 << bit;
        let _ = Node::decode(&buf, dim);
        let _ = Node::decode(&buf, other_dim);
    }

    // The kd-tree decoder walks a recursive format — hostile bytes must
    // not blow the stack or panic.
    #[test]
    fn kdtree_decode_never_panics(raw in proptest::collection::vec(0u16..256, 0..400)) {
        let bytes: Vec<u8> = raw.iter().map(|&v| v as u8).collect();
        let _ = KdTree::decode(&mut ByteReader::new(&bytes));
    }

    // The ELS side-table decoder (catalog section).
    #[test]
    fn els_decode_never_panics(raw in proptest::collection::vec(0u16..256, 0..400)) {
        let bytes: Vec<u8> = raw.iter().map(|&v| v as u8).collect();
        let _ = ElsTable::decode(&mut ByteReader::new(&bytes));
    }

    // Frame inspection over arbitrary slot contents: must classify as
    // Live/Free/Corrupt, never panic, and never claim a payload longer
    // than the slot.
    #[test]
    fn frame_inspection_never_panics(
        raw in proptest::collection::vec(0u16..256, 0..256),
        id in 0u32..64,
    ) {
        let bytes: Vec<u8> = raw.iter().map(|&v| v as u8).collect();
        let id = hybridtree_repro::page::PageId(id);
        if bytes.len() >= FRAME_HEADER_BYTES {
            let mut hdr = [0u8; FRAME_HEADER_BYTES];
            hdr.copy_from_slice(&bytes[..FRAME_HEADER_BYTES]);
            let _ = inspect_header(id, &hdr);
        }
        match inspect_frame(id, &bytes) {
            FrameStatus::Live { payload_len, .. } => {
                prop_assert!(FRAME_HEADER_BYTES + payload_len as usize <= bytes.len());
            }
            FrameStatus::Free | FrameStatus::Corrupt(_) => {}
        }
    }
}

proptest! {
    // File-per-case is slower; keep the case count moderate.
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    // A catalog file of arbitrary bytes: open and scrub must both fail
    // typed (or, absurdly unlikely, succeed), never panic.
    #[test]
    fn catalog_decode_never_panics_on_garbage(
        raw in proptest::collection::vec(0u16..256, 0..256),
        with_magic in 0u8..2,
    ) {
        let pages = tmp("garbage.pages");
        let meta = tmp("garbage.meta");
        let _ = DurableStorage::create(&pages, 256).unwrap();
        let mut body: Vec<u8> = raw.iter().map(|&v| v as u8).collect();
        if with_magic == 1 {
            // Force the parser past the magic check into section parsing.
            let mut m = b"HYTREE03".to_vec();
            m.extend_from_slice(&body);
            body = m;
        }
        std::fs::write(&meta, &body).unwrap();
        let _ = HybridTree::open(&pages, &meta);
        let _ = scrub_index(&pages, &meta);
    }
}

/// Zeroed page file regions: a page file of all zeros is all free slots —
/// decodable, scrubbable, and refusing to open as a tree.
#[test]
fn zeroed_page_file_is_free_slots_not_a_crash() {
    let pages = tmp("zeros.pages");
    let meta = tmp("zeros.meta");
    let cfg = HybridTreeConfig {
        page_size: 256,
        ..HybridTreeConfig::default()
    };
    {
        let mut t = HybridTree::create_durable(3, cfg, &pages).unwrap();
        for i in 0..200u64 {
            let x = i as f32 / 200.0;
            t.insert(Point::new(vec![x, 1.0 - x, 0.5]), i).unwrap();
        }
        t.persist(&meta).unwrap();
    }
    let len = std::fs::metadata(&pages).unwrap().len() as usize;
    std::fs::write(&pages, vec![0u8; len]).unwrap();
    // Every slot now reads as free: scrub reports no live pages, open
    // fails typed (the root the catalog points at is gone).
    let report = scrub_index(&pages, &meta).unwrap();
    assert_eq!(report.live, 0);
    assert!(!report.is_clean());
    assert!(HybridTree::open(&pages, &meta).is_err());
    std::fs::remove_file(&pages).ok();
    std::fs::remove_file(&meta).ok();
}
