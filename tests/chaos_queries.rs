//! Chaos suite for governed query execution: concurrent governed
//! batches against a fault-injected tree, with transient read failures,
//! random cancellation, and tight deadlines all firing at once.
//!
//! Invariants demanded throughout:
//!
//! * no panic and no hang (a watchdog bounds the whole run);
//! * every query returns a typed outcome — `Complete`, `Degraded`, or
//!   `Shed` — never a corruption error from a *transient* fault;
//! * every `Complete` outcome is bit-identical to the unfaulted serial
//!   answer for that query;
//! * after the chaos, the tree's invariants still verify and an
//!   unfaulted serial run reproduces the reference answers exactly.

use hybridtree_repro::core::{HybridTree, HybridTreeConfig};
use hybridtree_repro::eval::{
    run_batch, run_batch_governed, AdmissionGate, BatchPolicy, BatchQuery, QueryStatus,
};
use hybridtree_repro::geom::{Point, Rect, L2};
use hybridtree_repro::index::{CancelToken, MultidimIndex};
use hybridtree_repro::page::{
    ChecksumStorage, FaultScript, FaultStorage, MemStorage, FRAME_HEADER_BYTES,
};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

type ChaosStack = ChecksumStorage<FaultStorage<MemStorage>>;

const DIM: usize = 4;
const N_POINTS: usize = 3_000;
const ROUNDS: usize = 8;
/// Upper bound on the whole chaos phase; tripping it means a hang.
const WATCHDOG: Duration = Duration::from_secs(90);

fn build_tree() -> (Arc<HybridTree<ChaosStack>>, Arc<FaultScript>, Vec<Point>) {
    let cfg = HybridTreeConfig {
        page_size: 512,
        pool_pages: 24, // small pool: queries must actually hit storage
        ..HybridTreeConfig::default()
    };
    let mem = MemStorage::with_page_size(cfg.page_size + FRAME_HEADER_BYTES);
    let (faulty, script) = FaultStorage::new(mem);
    let storage = ChecksumStorage::new(faulty);
    let mut tree = HybridTree::with_storage(DIM, cfg, storage).unwrap();
    let mut rng = StdRng::seed_from_u64(0xBADC0DE);
    let pts: Vec<Point> = (0..N_POINTS)
        .map(|_| Point::new((0..DIM).map(|_| rng.gen::<f32>()).collect()))
        .collect();
    for (i, p) in pts.iter().enumerate() {
        tree.insert(p.clone(), i as u64).unwrap();
    }
    (Arc::new(tree), script, pts)
}

fn mixed_batch(pts: &[Point], n: usize, seed: u64) -> Vec<BatchQuery> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let c = pts[rng.gen_range(0..pts.len())].clone();
            match i % 3 {
                0 => {
                    let half = 0.05 + rng.gen::<f64>() * 0.2;
                    let lo: Vec<f32> = c.coords().iter().map(|&x| x - half as f32).collect();
                    let hi: Vec<f32> = c.coords().iter().map(|&x| x + half as f32).collect();
                    BatchQuery::Box(Rect::new(lo, hi))
                }
                1 => BatchQuery::Distance(c, 0.2 + rng.gen::<f64>() * 0.3),
                _ => BatchQuery::Knn(c, rng.gen_range(1..13)),
            }
        })
        .collect()
}

#[test]
fn chaos_concurrent_governed_batches_survive_fault_load() {
    let (tree, script, pts) = build_tree();
    let batch = mixed_batch(&pts, 48, 0x5EED);

    // Reference answers: unfaulted, serial, ungoverned.
    let reference = run_batch(tree.as_ref(), &L2, &batch).unwrap();

    // The chaos phase runs in its own thread so the test thread can act
    // as a watchdog: a hang anywhere fails the test instead of wedging
    // the suite.
    let (done_tx, done_rx) = mpsc::channel::<Result<(), String>>();
    let chaos_tree = Arc::clone(&tree);
    let chaos_script = Arc::clone(&script);
    let chaos_batch = batch.clone();
    let chaos_reference = reference.clone();
    std::thread::spawn(move || {
        let verdict = chaos_rounds(&chaos_tree, &chaos_script, &chaos_batch, &chaos_reference);
        let _ = done_tx.send(verdict);
    });
    match done_rx.recv_timeout(WATCHDOG) {
        Ok(Ok(())) => {}
        Ok(Err(msg)) => panic!("chaos round failed: {msg}"),
        Err(_) => panic!("chaos phase hung past the {WATCHDOG:?} watchdog"),
    }

    // Scrub-clean afterwards: invariants hold and an unfaulted serial
    // re-run reproduces the reference answers bit for bit.
    script.disarm();
    tree.check_invariants().unwrap();
    let after = run_batch(tree.as_ref(), &L2, &batch).unwrap();
    for (i, (a, r)) in after.iter().zip(&reference).enumerate() {
        assert_eq!(a.oids, r.oids, "query {i} answers drifted after chaos");
        assert_eq!(a.distances, r.distances, "query {i} distances drifted");
    }
}

/// One full chaos campaign: `ROUNDS` governed parallel batches, each
/// under a different mix of fault load, cancellation, deadline pressure
/// and admission control.
fn chaos_rounds(
    tree: &HybridTree<ChaosStack>,
    script: &Arc<FaultScript>,
    batch: &[BatchQuery],
    reference: &[hybridtree_repro::eval::BatchAnswer],
) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(0xC4A05);
    let mut complete = 0usize;
    let mut non_complete = 0usize;
    for round in 0..ROUNDS {
        let token = CancelToken::new();
        let policy = BatchPolicy {
            // Rotate the pressure: some rounds squeeze wall time, some
            // squeeze reads, some only face faults.
            timeout: (round % 3 == 1).then(|| Duration::from_millis(rng.gen_range(1..40))),
            max_reads: (round % 3 == 2).then(|| rng.gen_range(1..30)),
            cancel: Some(token.clone()),
            max_results: None,
            retry_limit: 4,
            retry_backoff: Duration::from_micros(200),
        };
        let gate = (round % 2 == 0).then(|| AdmissionGate::new(3, Duration::from_millis(50)));

        // Fault injector: bursts of transient read failures while the
        // batch runs, plus one random cancel in cancel-heavy rounds.
        script.fail_next_reads(rng.gen_range(1..20));
        let stop_chaos = CancelToken::new();
        let injector = {
            let script = Arc::clone(script);
            let stop = stop_chaos.clone();
            let cancel_after: Option<u64> = (round % 4 == 3).then(|| rng.gen_range(1..25));
            let token = token.clone();
            let burst: u64 = rng.gen_range(1..12);
            std::thread::spawn(move || {
                let mut waited = 0u64;
                while !stop.is_cancelled() {
                    std::thread::sleep(Duration::from_millis(2));
                    waited += 2;
                    script.fail_next_reads(burst);
                    if cancel_after.is_some_and(|at| waited >= at) {
                        token.cancel();
                    }
                }
            })
        };

        let got = run_batch_governed(tree, &L2, batch, 4, &policy, gate.as_ref());
        stop_chaos.cancel();
        injector
            .join()
            .map_err(|_| "injector panicked".to_string())?;
        script.disarm();

        let answers = got.map_err(|e| format!("round {round}: hard error {e}"))?;
        if answers.len() != batch.len() {
            return Err(format!(
                "round {round}: {} answers for {} queries",
                answers.len(),
                batch.len()
            ));
        }
        for (i, (g, r)) in answers.iter().zip(reference).enumerate() {
            match &g.status {
                QueryStatus::Complete => {
                    complete += 1;
                    // Complete outcomes must be bit-identical to the
                    // unfaulted serial answers, whatever chaos ran.
                    if g.answer.oids != r.oids || g.answer.distances != r.distances {
                        return Err(format!(
                            "round {round} query {i}: Complete answer differs from reference"
                        ));
                    }
                }
                QueryStatus::Degraded(_) | QueryStatus::Shed(_) => non_complete += 1,
            }
        }
    }
    // The campaign must exercise both sides: governance that bites
    // (degraded/shed outcomes exist) and recovery that works (complete
    // outcomes exist despite the fault load).
    if complete == 0 {
        return Err("no query ever completed under chaos".into());
    }
    if non_complete == 0 {
        return Err("chaos never degraded or shed a single query — injection inert".into());
    }
    Ok(())
}
