//! Concurrency smoke tests: a built index shared across threads must
//! answer every query identically to a serial run, and per-query I/O
//! attribution must be schedule-independent.

use hybridtree_repro::eval::{
    build_engine, run_batch, run_batch_parallel, total_io, BatchQuery, Engine,
};
use hybridtree_repro::prelude::*;
use std::sync::Arc;

fn build_points(n: usize, dim: usize, seed: u64) -> Vec<Point> {
    use rand::prelude::*;
    use rand::rngs::StdRng;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new((0..dim).map(|_| rng.gen::<f32>()).collect()))
        .collect()
}

fn mixed_queries(data: &[Point], n: usize) -> Vec<BatchQuery> {
    data.iter()
        .take(n)
        .enumerate()
        .map(|(i, p)| match i % 3 {
            0 => {
                let lo: Vec<f32> = p.coords().iter().map(|c| (c - 0.2).max(0.0)).collect();
                let hi: Vec<f32> = p.coords().iter().map(|c| (c + 0.2).min(1.0)).collect();
                BatchQuery::Box(Rect::new(lo, hi))
            }
            1 => BatchQuery::Distance(p.clone(), 0.35),
            _ => BatchQuery::Knn(p.clone(), 7),
        })
        .collect()
}

/// N worker threads × M queries each over one shared tree: every answer
/// and every per-query logical-read count must equal the serial run's,
/// and the summed per-query I/O must match on the schedule-independent
/// counters.
#[test]
fn parallel_batches_match_serial_across_engines() {
    let data = build_points(4000, 6, 1);
    for engine in [Engine::Hybrid, Engine::Sr, Engine::Kdb, Engine::Scan] {
        let (idx, _) = build_engine(engine, &data).unwrap();
        let queries = mixed_queries(&data, 24);
        let serial = run_batch(idx.as_ref(), &L1, &queries).unwrap();
        for threads in [2, 4, 8] {
            let parallel = run_batch_parallel(idx.as_ref(), &L1, &queries, threads).unwrap();
            assert_eq!(
                serial, parallel,
                "{engine:?} parallel batch at {threads} threads differs from serial"
            );
            let s = total_io(&serial);
            let p = total_io(&parallel);
            assert_eq!(
                s.logical_reads, p.logical_reads,
                "{engine:?} summed reads differ"
            );
            assert_eq!(
                s.seq_reads, p.seq_reads,
                "{engine:?} summed seq reads differ"
            );
        }
    }
}

/// Raw `std::thread` sharing (no runner): concurrent queries straight on
/// a `HybridTree` behind an `Arc`, interleaved with a nearest-neighbor
/// cursor, all agreeing with the single-threaded answers.
#[test]
fn hybrid_tree_is_shareable_across_threads() {
    let data = build_points(3000, 4, 2);
    let mut tree = HybridTree::new(4, HybridTreeConfig::default()).unwrap();
    for (i, p) in data.iter().enumerate() {
        tree.insert(p.clone(), i as u64).unwrap();
    }
    let tree = Arc::new(tree);
    let centers: Vec<Point> = data.iter().step_by(300).cloned().collect();
    let expected: Vec<Vec<(u64, f64)>> = centers
        .iter()
        .map(|c| tree.knn(c, 5, &L2).unwrap())
        .collect();

    let mut handles = Vec::new();
    for _ in 0..4 {
        let tree = Arc::clone(&tree);
        let centers = centers.clone();
        handles.push(std::thread::spawn(move || {
            let mut answers = Vec::new();
            for c in &centers {
                answers.push(tree.knn(c, 5, &L2).unwrap());
            }
            // A streaming cursor shares the tree with the other threads.
            let mut iter = tree.nearest_iter(&centers[0], &L2).unwrap();
            let first = iter.next().unwrap().unwrap();
            (answers, first)
        }));
    }
    for h in handles {
        let (answers, first) = h.join().unwrap();
        assert_eq!(answers, expected);
        assert_eq!(first.0, expected[0][0].0);
        assert!((first.1 - expected[0][0].1).abs() < 1e-12);
    }
}

/// Per-query `logical_reads` summed over a parallel run equals the
/// pool-global counter delta: nothing double-counted, nothing dropped.
#[test]
fn per_query_io_sums_to_global_counters() {
    let data = build_points(5000, 5, 3);
    let mut tree = HybridTree::new(5, HybridTreeConfig::default()).unwrap();
    for (i, p) in data.iter().enumerate() {
        tree.insert(p.clone(), i as u64).unwrap();
    }
    let queries = mixed_queries(&data, 32);
    tree.reset_io_stats();
    let answers = run_batch_parallel(&tree, &L1, &queries, 4).unwrap();
    let per_query = total_io(&answers);
    let global = tree.io_stats();
    assert_eq!(per_query.logical_reads, global.logical_reads);
    assert_eq!(per_query.seq_reads, global.seq_reads);
    assert!(per_query.logical_reads > 0);
}
