//! End-to-end test of the `hyt` command-line tool: generate → build →
//! persist → reopen in a fresh process → query, with results checked
//! against an in-process brute-force oracle.

use std::path::PathBuf;
use std::process::Command;

fn hyt() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hyt"))
}

fn workdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hyt_cli_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn generate_build_query_pipeline() {
    let dir = workdir();
    let csv = dir.join("vectors.csv");
    let pages = dir.join("db.pages");
    let meta = dir.join("db.meta");

    // 1. generate
    let out = hyt()
        .args([
            "generate", "--kind", "uniform", "--n", "2000", "--dim", "4", "--seed", "7", "--out",
        ])
        .arg(&csv)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // 2. build (bulk path)
    let out = hyt()
        .args(["build", "--input"])
        .arg(&csv)
        .args(["--index"])
        .arg(&pages)
        .args(["--meta"])
        .arg(&meta)
        .args(["--bulk"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("built 2000 entries"));

    // 3. stats on the persisted index (separate process)
    let out = hyt()
        .args(["stats", "--index"])
        .arg(&pages)
        .args(["--meta"])
        .arg(&meta)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stats = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(stats.contains("entries            2000"));
    assert!(stats.contains("dimensionality     4"));

    // 4. box query, checked against the CSV itself.
    let body = std::fs::read_to_string(&csv).unwrap();
    let vectors: Vec<Vec<f32>> = body
        .lines()
        .map(|l| l.split(',').map(|t| t.parse().unwrap()).collect())
        .collect();
    let lo = [0.2f32, 0.2, 0.2, 0.2];
    let hi = [0.6f32, 0.7, 0.8, 0.9];
    let mut want: Vec<u64> = vectors
        .iter()
        .enumerate()
        .filter(|(_, v)| {
            v.iter().zip(&lo).all(|(x, l)| x >= l) && v.iter().zip(&hi).all(|(x, h)| x <= h)
        })
        .map(|(i, _)| i as u64)
        .collect();
    want.sort_unstable();
    let out = hyt()
        .args(["box", "--index"])
        .arg(&pages)
        .args(["--meta"])
        .arg(&meta)
        .args(["--lo", "0.2,0.2,0.2,0.2", "--hi", "0.6,0.7,0.8,0.9"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let got: Vec<u64> = String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(|l| l.trim().parse().unwrap())
        .collect();
    assert_eq!(got, want);

    // 5. knn: the nearest neighbor of a stored vector is itself.
    let q = body.lines().nth(42).unwrap();
    let out = hyt()
        .args(["knn", "--index"])
        .arg(&pages)
        .args(["--meta"])
        .arg(&meta)
        .args(["--query", q, "--k", "1", "--metric", "l2"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let line = String::from_utf8_lossy(&out.stdout)
        .lines()
        .next()
        .unwrap()
        .to_string();
    assert!(
        line.starts_with("42\t"),
        "expected oid 42 first, got {line}"
    );

    // 6. scrub: the freshly built index verifies clean (exit 0)...
    let out = hyt()
        .args(["scrub", "--index"])
        .arg(&pages)
        .args(["--meta"])
        .arg(&meta)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("clean"));

    // ...and a single flipped bit in the page file makes scrub exit 1.
    let mut bytes = std::fs::read(&pages).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&pages, &bytes).unwrap();
    let out = hyt()
        .args(["scrub", "--index"])
        .arg(&pages)
        .args(["--meta"])
        .arg(&meta)
        .output()
        .unwrap();
    assert!(
        !out.status.success(),
        "scrub missed an injected bit flip: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("problem"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_reports_usage_on_bad_input() {
    let out = hyt().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(err.contains("unknown command"));
    assert!(err.contains("usage:"));

    let out = hyt().args(["knn", "--index"]).output().unwrap();
    assert!(!out.status.success());

    let out = hyt()
        .args([
            "generate",
            "--kind",
            "nope",
            "--n",
            "5",
            "--dim",
            "2",
            "--out",
            "/dev/null",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
}
