//! Resource-governance contracts, checked end to end:
//!
//! * every engine observes its read budget at page-fetch granularity;
//! * a budget expiring mid-traversal leaks nothing — every pin is
//!   released and the index stays fully usable;
//! * cancellation and deadlines land within one (possibly slow) page
//!   fetch, verified against a storage layer with a read-latency hook.

use hybridtree_repro::core::{HybridTree, HybridTreeConfig};
use hybridtree_repro::eval::{build_engine, Engine};
use hybridtree_repro::geom::{Point, Rect, L2};
use hybridtree_repro::index::{
    CancelToken, DegradeReason, MultidimIndex, QueryContext, QueryOutcome,
};
use hybridtree_repro::page::{FaultScript, FaultStorage, MemStorage};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

const DIM: usize = 4;

fn points(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new((0..DIM).map(|_| rng.gen::<f32>()).collect()))
        .collect()
}

fn everything() -> Rect {
    Rect::new(vec![-1.0; DIM], vec![2.0; DIM])
}

/// A small-page hybrid tree over fault-injectable storage, so tests can
/// add per-read latency.
fn faulted_tree(pts: &[Point]) -> (HybridTree<FaultStorage<MemStorage>>, Arc<FaultScript>) {
    let cfg = HybridTreeConfig {
        page_size: 512,
        pool_pages: 16,
        ..HybridTreeConfig::default()
    };
    let (storage, script) = FaultStorage::new(MemStorage::with_page_size(cfg.page_size));
    let mut tree = HybridTree::with_storage(DIM, cfg, storage).unwrap();
    for (i, p) in pts.iter().enumerate() {
        tree.insert(p.clone(), i as u64).unwrap();
    }
    (tree, script)
}

/// Satellite check: a read budget expiring mid-traversal must release
/// every buffer-pool pin, and the next (unbudgeted) query must return
/// the full, correct answer — degradation is per-query, never sticky.
#[test]
fn budget_mid_traversal_releases_pins_and_recovers() {
    let pts = points(2_000, 7);
    let (tree, _script) = faulted_tree(&pts);
    let (_, pinned_baseline) = tree.pool_residency();
    assert_eq!(pinned_baseline, 0, "pins outstanding before any query");

    let ctx = QueryContext::default().with_max_reads(3);
    let (outcome, io) = tree.box_query_ctx(&everything(), &ctx).unwrap();
    assert_eq!(
        outcome.degrade_reason(),
        Some(DegradeReason::BudgetExhausted),
        "a 3-read budget cannot cover a 2000-point tree"
    );
    assert!(
        io.logical_reads + io.seq_reads <= 3,
        "budget overshot: {io:?}"
    );

    let (_, pinned) = tree.pool_residency();
    assert_eq!(pinned, 0, "degraded query leaked {pinned} pin(s)");

    // The same index, unbudgeted, still answers completely and correctly.
    let mut full = tree.box_query(&everything()).unwrap();
    full.sort_unstable();
    let expect: Vec<u64> = (0..pts.len() as u64).collect();
    assert_eq!(full, expect, "post-degradation query is wrong");
    assert_eq!(tree.pool_residency().1, 0);
}

/// Acceptance: every engine observes `max_logical_reads` at page-fetch
/// granularity — no engine exceeds the budget by even one page.
#[test]
fn every_engine_observes_read_budget_at_page_granularity() {
    let data = points(2_500, 11);
    for engine in [
        Engine::Hybrid,
        Engine::Hb,
        Engine::Sr,
        Engine::Kdb,
        Engine::Scan,
    ] {
        let (idx, _) = build_engine(engine, &data).unwrap();
        for budget in [1u64, 2, 5] {
            let ctx = QueryContext::default().with_max_reads(budget);
            let (outcome, io) = idx.box_query_ctx(&everything(), &ctx).unwrap();
            assert!(
                io.logical_reads + io.seq_reads <= budget,
                "{} spent {} reads against a budget of {budget}",
                engine.name(),
                io.logical_reads + io.seq_reads,
            );
            assert_eq!(
                outcome.degrade_reason(),
                Some(DegradeReason::BudgetExhausted),
                "{}: whole-space query cannot finish in {budget} reads",
                engine.name()
            );
        }
    }
}

/// Acceptance: the distance-capable engines observe budgets on the
/// distance and kNN paths too, and degraded box/range answers are true
/// subsets of the full answer.
#[test]
fn distance_paths_observe_budget_and_stay_subsets() {
    let data = points(2_500, 13);
    let center = data[0].clone();
    for engine in [Engine::Hybrid, Engine::Sr, Engine::Kdb, Engine::Scan] {
        let (idx, _) = build_engine(engine, &data).unwrap();
        let full = {
            let mut v = idx.distance_range(&center, 0.6, &L2).unwrap();
            v.sort_unstable();
            v
        };
        let ctx = QueryContext::default().with_max_reads(4);
        let (outcome, io) = idx.distance_range_ctx(&center, 0.6, &L2, &ctx).unwrap();
        assert!(io.logical_reads + io.seq_reads <= 4, "{}", engine.name());
        let partial = outcome.into_results();
        assert!(
            partial.iter().all(|o| full.binary_search(o).is_ok()),
            "{}: degraded range answer is not a subset",
            engine.name()
        );
        let (outcome, io) = idx.knn_ctx(&center, 10, &L2, &ctx).unwrap();
        assert!(io.logical_reads + io.seq_reads <= 4, "{}", engine.name());
        assert!(outcome.into_results().len() <= 10, "{}", engine.name());
    }
}

/// Acceptance: with the fault layer's read-latency hook making every
/// page fetch slow, a cancel raised mid-query surfaces as `Degraded`
/// within a bounded number of further fetches — the traversal never
/// runs to completion first.
#[test]
fn cancel_mid_query_returns_degraded_in_bounded_time() {
    let pts = points(3_000, 17);
    let (tree, script) = faulted_tree(&pts);
    let total_pages = tree.structure_stats().unwrap().total_nodes;
    assert!(total_pages > 60, "tree too small to measure cancellation");

    const READ_DELAY: Duration = Duration::from_millis(3);
    script.delay_reads(READ_DELAY.as_micros() as u64);
    let token = CancelToken::new();
    let ctx = QueryContext::default().with_cancel(token.clone());

    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(15));
            token.cancel();
        })
    };
    let reads_before = script.reads_seen();
    let start = Instant::now();
    let (outcome, _) = tree.box_query_ctx(&everything(), &ctx).unwrap();
    let elapsed = start.elapsed();
    canceller.join().unwrap();
    script.disarm();

    assert_eq!(outcome.degrade_reason(), Some(DegradeReason::Cancelled));
    // Far less than the ~total_pages * READ_DELAY a full traversal costs.
    let full_cost = READ_DELAY * total_pages as u32;
    assert!(
        elapsed < full_cost / 2,
        "cancel took {elapsed:?}; full traversal ≈ {full_cost:?}"
    );
    let reads = script.reads_seen() - reads_before;
    assert!(
        (reads as usize) < total_pages,
        "query read all {total_pages} pages despite the cancel"
    );
}

/// Acceptance: a deadline is observed within one page fetch even when
/// fetches are slow — the traversal stops at the first fetch past the
/// deadline instead of finishing the tree.
#[test]
fn deadline_observed_within_one_page_fetch() {
    let pts = points(3_000, 19);
    let (tree, script) = faulted_tree(&pts);
    let total_pages = tree.structure_stats().unwrap().total_nodes;
    script.delay_reads(3_000);

    let ctx = QueryContext::default().with_timeout(Duration::from_millis(12));
    let start = Instant::now();
    let (outcome, io) = tree.box_query_ctx(&everything(), &ctx).unwrap();
    let elapsed = start.elapsed();
    script.disarm();

    assert_eq!(
        outcome.degrade_reason(),
        Some(DegradeReason::DeadlineExceeded)
    );
    assert!(
        (io.logical_reads + io.seq_reads) < total_pages as u64,
        "deadline ignored: all pages read"
    );
    assert!(
        elapsed < Duration::from_millis(500),
        "deadline overshot by {elapsed:?}"
    );
}

/// Degraded kNN answers are the best-so-far: every reported distance is
/// at least as small as the true k-th distance's upper bound would
/// allow, and the list stays sorted.
#[test]
fn degraded_knn_is_sorted_best_so_far() {
    let pts = points(2_000, 23);
    let (tree, _script) = faulted_tree(&pts);
    let q = pts[42].clone();
    let ctx = QueryContext::default().with_max_reads(3);
    let (outcome, _) = tree.knn_ctx(&q, 8, &L2, &ctx).unwrap();
    let hits = match outcome {
        QueryOutcome::Degraded { partial, reason } => {
            assert_eq!(reason, DegradeReason::BudgetExhausted);
            partial
        }
        QueryOutcome::Complete(_) => panic!("3 reads cannot complete an 8-NN search"),
    };
    assert!(
        hits.windows(2).all(|w| w[0].1 <= w[1].1),
        "partial kNN answer is not sorted by distance: {hits:?}"
    );
    assert!(hits.len() <= 8);
}
