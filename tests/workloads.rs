//! Workload/calibration integration: the constant-selectivity machinery
//! must hit its targets on the synthetic datasets at realistic sizes,
//! and the datasets must have the statistical shape the experiments
//! assume.

use hybridtree_repro::data::{calibrate_box_side, colhist, fourier, BoxWorkload, DistanceWorkload};
use hybridtree_repro::prelude::*;

#[test]
fn colhist_box_selectivity_calibrates_to_paper_target() {
    // The paper's COLHIST setting: 0.2% selectivity.
    let data = colhist(8_000, 32, 1);
    let wl = BoxWorkload::calibrated(&data, 30, 0.002, 2);
    let mut hits = 0usize;
    for q in &wl.queries {
        hits += data.iter().filter(|p| q.contains_point(p)).count();
    }
    let sel = hits as f64 / (data.len() * wl.queries.len()) as f64;
    assert!(
        (sel - 0.002).abs() < 0.002,
        "COLHIST selectivity {sel}, wanted ~0.002"
    );
}

#[test]
fn fourier_box_selectivity_calibrates_to_paper_target() {
    // The paper's FOURIER setting: 0.07% selectivity.
    let data = fourier(10_000, 16, 3);
    let wl = BoxWorkload::calibrated(&data, 30, 0.0007, 4);
    let mut hits = 0usize;
    for q in &wl.queries {
        hits += data.iter().filter(|p| q.contains_point(p)).count();
    }
    let sel = hits as f64 / (data.len() * wl.queries.len()) as f64;
    assert!(
        (sel - 0.0007).abs() < 0.0012,
        "FOURIER selectivity {sel}, wanted ~0.0007"
    );
}

#[test]
fn l1_distance_workload_calibrates_on_colhist() {
    // Fig 7(c,d)'s setting: L1 range queries on COLHIST.
    let data = colhist(6_000, 64, 5);
    let wl = DistanceWorkload::calibrated(&data, 25, 0.002, &L1, 6);
    let mut hits = 0usize;
    for c in &wl.centers {
        hits += data
            .iter()
            .filter(|p| L1.distance(c, p) <= wl.radius)
            .count();
    }
    let sel = hits as f64 / (data.len() * wl.centers.len()) as f64;
    assert!(
        (sel - 0.002).abs() < 0.002,
        "L1 selectivity {sel}, wanted ~0.002"
    );
}

#[test]
fn higher_dimensions_need_larger_query_sides() {
    // The curse of dimensionality that drives the paper's story: at a
    // fixed selectivity over uniform data, the calibrated box side grows
    // with dimensionality (side ~ selectivity^(1/dim)).
    use hybridtree_repro::data::uniform;
    let sides: Vec<f64> = [4usize, 8, 16]
        .iter()
        .map(|&dim| {
            let data = uniform(4_000, dim, 7);
            let centers: Vec<Point> = data[..20].to_vec();
            calibrate_box_side(&data, &centers, 0.002)
        })
        .collect();
    assert!(
        sides[0] < sides[1] && sides[1] < sides[2],
        "query side must grow with dimensionality: {sides:?}"
    );
}

#[test]
fn selectivity_holds_when_executed_through_an_index() {
    // End-to-end: the calibrated workload run through the hybrid tree
    // returns roughly target-selectivity result sets.
    let data = colhist(6_000, 16, 9);
    let wl = BoxWorkload::calibrated(&data, 20, 0.002, 10);
    let mut tree = HybridTree::new(16, HybridTreeConfig::default()).unwrap();
    for (i, p) in data.iter().enumerate() {
        tree.insert(p.clone(), i as u64).unwrap();
    }
    let mut hits = 0usize;
    for q in &wl.queries {
        hits += tree.box_query(q).unwrap().len();
    }
    let sel = hits as f64 / (data.len() * wl.queries.len()) as f64;
    assert!((sel - 0.002).abs() < 0.002, "indexed selectivity {sel}");
}
