//! Umbrella crate for the hybrid tree reproduction.
//!
//! Re-exports the whole workspace under one roof so examples, integration
//! tests, and downstream users can depend on a single crate:
//!
//! ```
//! use hybridtree_repro::prelude::*;
//!
//! let mut tree = HybridTree::new(2, HybridTreeConfig::default()).unwrap();
//! tree.insert(Point::new(vec![0.25, 0.75]), 1).unwrap();
//! let hits = tree
//!     .box_query(&Rect::new(vec![0.0, 0.5], vec![0.5, 1.0]))
//!     .unwrap();
//! assert_eq!(hits, vec![1]);
//! ```

pub use hybrid_tree as core;
pub use hyt_data as data;
pub use hyt_eval as eval;
pub use hyt_exec as exec;
pub use hyt_geom as geom;
pub use hyt_hbtree as hbtree;
pub use hyt_index as index;
pub use hyt_kdbtree as kdbtree;
pub use hyt_page as page;
pub use hyt_scan as scan;
pub use hyt_srtree as srtree;

/// Commonly used items, for `use hybridtree_repro::prelude::*`.
pub mod prelude {
    pub use hybrid_tree::{HybridTree, HybridTreeConfig, SplitPolicy};
    pub use hyt_geom::{Chebyshev, Lp, Metric, Point, Rect, WeightedEuclidean, L1, L2};
    pub use hyt_index::{
        CancelToken, DegradeReason, IndexError, IndexResult, KnnStream, MultidimIndex,
        QueryContext, QueryOutcome, StructureStats,
    };
    pub use hyt_page::IoStats;
}
