//! `hyt` — command-line front end for the hybrid tree.
//!
//! ```text
//! hyt generate --kind colhist --n 20000 --dim 32 --out data.csv
//! hyt build    --input data.csv --index db.pages --meta db.meta
//! hyt stats    --index db.pages --meta db.meta
//! hyt knn      --index db.pages --meta db.meta --query 0.1,0.2,... --k 5 --metric l1
//! hyt range    --index db.pages --meta db.meta --query 0.1,0.2,... --radius 0.4
//! hyt box      --index db.pages --meta db.meta --lo 0.1,0.1 --hi 0.4,0.4
//! hyt batch    --index db.pages --meta db.meta --queries batch.txt --threads 4
//! ```
//!
//! Vectors are CSV lines of `f32`; the object id is the 0-based line
//! number. The index persists as a page file plus a catalog sidecar
//! (root/height/config/ELS), so build and query can run in separate
//! processes.

use hybridtree_repro::core::{scrub_index, scrub_pages, HybridTree, HybridTreeConfig};
use hybridtree_repro::data::{colhist, fourier, uniform};
use hybridtree_repro::eval::{
    run_batch_governed, AdmissionGate, BatchPolicy, BatchQuery, QueryStatus,
};
use hybridtree_repro::geom::{Chebyshev, Lp, Metric, Point, Rect, L1, L2};
use hybridtree_repro::index::{MultidimIndex, QueryContext, QueryOutcome};
use hybridtree_repro::page::DurableStorage;
use std::collections::HashMap;
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  hyt generate --kind colhist|fourier|uniform --n N --dim D [--seed S] --out FILE
  hyt build    --input FILE --index PAGES --meta META [--page-size 4096]
               [--els-bits 4] [--bulk] [--node-cache-entries 0]
  hyt stats    --index PAGES --meta META [--node-cache-entries N]
  hyt knn      --index PAGES --meta META --query V [--k 10] [--metric l2]
               [--stream] [--timeout-ms T] [--max-reads N] [--node-cache-entries N]
  hyt range    --index PAGES --meta META --query V --radius R [--metric l2]
               [--timeout-ms T] [--max-reads N] [--node-cache-entries N]
  hyt box      --index PAGES --meta META --lo V --hi V
               [--timeout-ms T] [--max-reads N] [--node-cache-entries N]
  hyt batch    --index PAGES --meta META --queries FILE [--threads N] [--metric l2]
               [--timeout-ms T] [--max-reads N] [--max-inflight N]
               [--node-cache-entries N]
  hyt scrub    --index PAGES [--meta META] [--page-size 4096]
metrics: l1, l2, linf, lp:<p>     V: comma-separated f32 coordinates
batch file: one query per line — `box LO HI` | `range CENTER R` | `knn CENTER K`
--timeout-ms caps wall time (whole batch for `batch`), --max-reads caps page
reads per query; a query hitting a limit returns its partial answer, marked
degraded. --max-inflight bounds concurrent queries; excess queries are shed.
--stream prints each neighbor as soon as it is proven (incremental distance
browsing) instead of after the search completes; same answers, same I/O.
--node-cache-entries overrides the decoded-node cache size for this process
(0 disables; decode-per-visit); query results and page-read counts are
unaffected, only decode work.
scrub verifies every page checksum (and, with --meta, every tree invariant)
without loading the index; exits 1 if any corruption is found";

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err("no command given".into());
    };
    let opts = parse_opts(rest)?;
    match cmd.as_str() {
        "generate" => generate(&opts).map(|()| ExitCode::SUCCESS),
        "build" => build(&opts).map(|()| ExitCode::SUCCESS),
        "stats" => stats(&opts).map(|()| ExitCode::SUCCESS),
        "knn" => knn(&opts).map(|()| ExitCode::SUCCESS),
        "range" => range(&opts).map(|()| ExitCode::SUCCESS),
        "box" => box_query(&opts).map(|()| ExitCode::SUCCESS),
        "batch" => batch(&opts).map(|()| ExitCode::SUCCESS),
        "scrub" => scrub(&opts),
        other => Err(format!("unknown command `{other}`")),
    }
}

fn scrub(opts: &HashMap<String, String>) -> Result<ExitCode, String> {
    let index = req(opts, "index")?;
    let report = match opts.get("meta") {
        Some(meta) => scrub_index(index, meta).map_err(|e| e.to_string())?,
        None => {
            let page_size: usize = opt_parse(opts, "page-size", 4096)?;
            scrub_pages(index, page_size).map_err(|e| e.to_string())?
        }
    };
    println!(
        "pages     {} slots ({} live, {} free), logical page size {}",
        report.slots, report.live, report.free, report.page_size
    );
    if let Some(cat) = &report.catalog {
        println!(
            "catalog   {} entries, height {}, committed at epoch {}",
            cat.len, cat.height, cat.epoch
        );
    }
    for d in &report.damage {
        println!("DAMAGED   {}: {}", d.page, d.detail);
    }
    if let Some(cat) = &report.catalog {
        for issue in &cat.issues {
            println!("ISSUE     {issue}");
        }
    }
    if report.is_clean() {
        println!("clean: every checksum and invariant verifies");
        Ok(ExitCode::SUCCESS)
    } else {
        println!("scrub found {} problem(s)", report.problem_count());
        Ok(ExitCode::FAILURE)
    }
}

fn parse_opts(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected --option, found `{key}`"));
        };
        if name == "bulk" || name == "stream" {
            out.insert(name.to_string(), "true".to_string());
            continue;
        }
        let Some(value) = it.next() else {
            return Err(format!("--{name} needs a value"));
        };
        out.insert(name.to_string(), value.clone());
    }
    Ok(out)
}

fn req<'a>(opts: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    opts.get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required option --{key}"))
}

fn opt_parse<T: std::str::FromStr>(
    opts: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad value for --{key}: {v}")),
    }
}

fn parse_vector(s: &str) -> Result<Vec<f32>, String> {
    s.split(',')
        .map(|t| {
            t.trim()
                .parse()
                .map_err(|_| format!("bad coordinate `{t}`"))
        })
        .collect()
}

fn parse_metric(s: &str) -> Result<Box<dyn Metric>, String> {
    match s {
        "l1" => Ok(Box::new(L1)),
        "l2" => Ok(Box::new(L2)),
        "linf" => Ok(Box::new(Chebyshev)),
        other => {
            if let Some(p) = other.strip_prefix("lp:") {
                let p: f64 = p.parse().map_err(|_| format!("bad lp order `{p}`"))?;
                if p < 1.0 {
                    return Err("lp order must be >= 1".into());
                }
                Ok(Box::new(Lp::new(p)))
            } else {
                Err(format!("unknown metric `{other}` (l1, l2, linf, lp:<p>)"))
            }
        }
    }
}

fn generate(opts: &HashMap<String, String>) -> Result<(), String> {
    let kind = req(opts, "kind")?;
    let n: usize = req(opts, "n")?.parse().map_err(|_| "bad --n")?;
    let dim: usize = req(opts, "dim")?.parse().map_err(|_| "bad --dim")?;
    let seed: u64 = opt_parse(opts, "seed", 42)?;
    let out = req(opts, "out")?;
    let data = match kind {
        "colhist" => colhist(n, dim, seed),
        "fourier" => fourier(n, dim, seed),
        "uniform" => uniform(n, dim, seed),
        other => return Err(format!("unknown dataset kind `{other}`")),
    };
    let mut body = String::with_capacity(n * dim * 10);
    for p in &data {
        let line: Vec<String> = p.coords().iter().map(|c| format!("{c}")).collect();
        body.push_str(&line.join(","));
        body.push('\n');
    }
    std::fs::write(out, body).map_err(|e| e.to_string())?;
    println!("wrote {n} {kind} vectors ({dim}-d) to {out}");
    Ok(())
}

fn load_csv(path: &str) -> Result<Vec<Point>, String> {
    let body = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let mut out = Vec::new();
    for (i, line) in body.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let coords = parse_vector(line).map_err(|e| format!("{path}:{}: {e}", i + 1))?;
        out.push(Point::new(coords));
    }
    if out.is_empty() {
        return Err(format!("{path} holds no vectors"));
    }
    let dim = out[0].dim();
    if out.iter().any(|p| p.dim() != dim) {
        return Err(format!("{path} mixes dimensionalities"));
    }
    Ok(out)
}

fn build(opts: &HashMap<String, String>) -> Result<(), String> {
    let input = req(opts, "input")?;
    let index = req(opts, "index")?;
    let meta = req(opts, "meta")?;
    let page_size: usize = opt_parse(opts, "page-size", 4096)?;
    let els_bits: u8 = opt_parse(opts, "els-bits", 4)?;
    let node_cache_entries: usize = opt_parse(opts, "node-cache-entries", 0)?;
    let bulk = opts.contains_key("bulk");
    let data = load_csv(input)?;
    let dim = data[0].dim();
    let cfg = HybridTreeConfig {
        page_size,
        els_bits,
        node_cache_entries,
        ..HybridTreeConfig::default()
    };
    let start = std::time::Instant::now();
    let mut tree = if bulk {
        let storage = DurableStorage::create(index, page_size).map_err(|e| e.to_string())?;
        let entries: Vec<(Point, u64)> = data
            .into_iter()
            .enumerate()
            .map(|(i, p)| (p, i as u64))
            .collect();
        HybridTree::bulk_load_into(storage, cfg, entries).map_err(|e| e.to_string())?
    } else {
        let storage = DurableStorage::create(index, page_size).map_err(|e| e.to_string())?;
        let mut tree = HybridTree::with_storage(dim, cfg, storage).map_err(|e| e.to_string())?;
        for (i, p) in data.into_iter().enumerate() {
            tree.insert(p, i as u64).map_err(|e| e.to_string())?;
        }
        tree
    };
    tree.persist(meta).map_err(|e| e.to_string())?;
    println!(
        "built {} entries ({dim}-d) in {:.2}s — height {}, {} data-entries/page, \
         ELS table {} bytes\nindex: {index}\ncatalog: {meta}",
        tree.len(),
        start.elapsed().as_secs_f64(),
        tree.height(),
        tree.data_capacity(),
        tree.els_overhead_bytes(),
    );
    Ok(())
}

fn open_tree(opts: &HashMap<String, String>) -> Result<HybridTree<DurableStorage>, String> {
    let index = req(opts, "index")?;
    let meta = req(opts, "meta")?;
    match opts.get("node-cache-entries") {
        Some(n) => {
            let entries: usize = n.parse().map_err(|_| "bad --node-cache-entries")?;
            HybridTree::open_with_node_cache(index, meta, entries)
        }
        None => HybridTree::open(index, meta),
    }
    .map_err(|e| e.to_string())
}

/// Renders the decoded-node cache counters for a footer line.
fn cache_line(tree: &HybridTree<DurableStorage>) -> String {
    let cs = tree.cache_stats();
    format!(
        "{} decoded-cache hits, {} misses ({:.0}% hit rate)",
        cs.hits,
        cs.misses,
        cs.hit_rate() * 100.0
    )
}

fn stats(opts: &HashMap<String, String>) -> Result<(), String> {
    let tree = open_tree(opts)?;
    let st = tree.structure_stats().map_err(|e| e.to_string())?;
    println!("entries            {}", tree.len());
    println!("dimensionality     {}", tree.dim());
    println!("height             {}", st.height);
    println!(
        "pages              {} ({} index, {} data)",
        st.total_nodes, st.index_nodes, st.data_nodes
    );
    println!("avg fanout         {:.1}", st.avg_fanout);
    println!("leaf utilization   {:.0}%", st.avg_leaf_utilization * 100.0);
    println!("overlap fraction   {:.5}", st.avg_overlap_fraction);
    println!(
        "split dims used    {} of {}",
        st.distinct_split_dims,
        tree.dim()
    );
    println!(
        "ELS overhead       {} bytes in memory",
        tree.els_overhead_bytes()
    );
    let cs = tree.cache_stats();
    println!(
        "decoded cache      {} entries capacity — {} hits, {} misses this session",
        tree.config().node_cache_entries,
        cs.hits,
        cs.misses
    );
    Ok(())
}

fn query_point(
    opts: &HashMap<String, String>,
    tree: &HybridTree<DurableStorage>,
) -> Result<Point, String> {
    let q = parse_vector(req(opts, "query")?)?;
    if q.len() != tree.dim() {
        return Err(format!(
            "query has {} coordinates, index is {}-d",
            q.len(),
            tree.dim()
        ));
    }
    Ok(Point::new(q))
}

/// Builds the [`QueryContext`] from `--timeout-ms` / `--max-reads`.
fn parse_query_context(opts: &HashMap<String, String>) -> Result<QueryContext, String> {
    let mut ctx = QueryContext::default();
    if let Some(ms) = opts.get("timeout-ms") {
        let ms: u64 = ms.parse().map_err(|_| "bad --timeout-ms")?;
        ctx = ctx.with_timeout(Duration::from_millis(ms));
    }
    if let Some(n) = opts.get("max-reads") {
        let n: u64 = n.parse().map_err(|_| "bad --max-reads")?;
        ctx = ctx.with_max_reads(n);
    }
    Ok(ctx)
}

/// Unwraps a query outcome, warning on stderr when the answer is
/// partial.
fn settle<T>(outcome: QueryOutcome<T>) -> T {
    if let Some(reason) = outcome.degrade_reason() {
        eprintln!("[degraded: {reason} — results below are partial]");
    }
    outcome.into_results()
}

fn knn(opts: &HashMap<String, String>) -> Result<(), String> {
    let tree = open_tree(opts)?;
    let q = query_point(opts, &tree)?;
    let k: usize = opt_parse(opts, "k", 10)?;
    let metric = parse_metric(opts.get("metric").map(String::as_str).unwrap_or("l2"))?;
    let ctx = parse_query_context(opts)?;
    tree.reset_io_stats();
    if opts.contains_key("stream") {
        // Incremental distance browsing: each neighbor is printed the
        // moment the cursor proves no closer object remains, instead of
        // after the whole search settles.
        let mut cursor = tree
            .knn_stream(&q, metric.as_ref(), &ctx)
            .map_err(|e| e.to_string())?;
        let mut yielded = 0usize;
        while yielded < k {
            match cursor.next() {
                Some((oid, d)) => {
                    println!("{oid}\t{d:.6}");
                    yielded += 1;
                }
                None => break,
            }
        }
        if let Some(e) = cursor.take_error() {
            return Err(e.to_string());
        }
        if let Some(reason) = cursor.degrade_reason() {
            eprintln!("[degraded: {reason} — results above are partial]");
        }
        eprintln!("[{} page reads]", tree.io_stats().logical_reads);
        return Ok(());
    }
    let (outcome, _) = tree
        .knn_ctx(&q, k, metric.as_ref(), &ctx)
        .map_err(|e| e.to_string())?;
    let hits = settle(outcome);
    for (oid, d) in &hits {
        println!("{oid}\t{d:.6}");
    }
    eprintln!("[{} page reads]", tree.io_stats().logical_reads);
    Ok(())
}

fn range(opts: &HashMap<String, String>) -> Result<(), String> {
    let tree = open_tree(opts)?;
    let q = query_point(opts, &tree)?;
    let radius: f64 = req(opts, "radius")?.parse().map_err(|_| "bad --radius")?;
    let metric = parse_metric(opts.get("metric").map(String::as_str).unwrap_or("l2"))?;
    let ctx = parse_query_context(opts)?;
    tree.reset_io_stats();
    let (outcome, _) = tree
        .distance_range_ctx(&q, radius, metric.as_ref(), &ctx)
        .map_err(|e| e.to_string())?;
    let mut hits = settle(outcome);
    hits.sort_unstable();
    for oid in &hits {
        println!("{oid}");
    }
    eprintln!(
        "[{} results, {} page reads]",
        hits.len(),
        tree.io_stats().logical_reads
    );
    Ok(())
}

/// Parses one batch-file line into a query against a `dim`-d index.
fn parse_batch_line(line: &str, dim: usize) -> Result<BatchQuery, String> {
    let mut parts = line.split_whitespace();
    let kind = parts.next().ok_or("empty query line")?;
    let q = match kind {
        "box" => {
            let lo = parse_vector(parts.next().ok_or("box needs LO and HI")?)?;
            let hi = parse_vector(parts.next().ok_or("box needs LO and HI")?)?;
            if lo.len() != dim || hi.len() != dim {
                return Err(format!("box corners must have {dim} coordinates"));
            }
            if lo.iter().zip(&hi).any(|(l, h)| l > h) {
                return Err("box LO must be <= HI in every dimension".into());
            }
            BatchQuery::Box(Rect::new(lo, hi))
        }
        "range" => {
            let c = parse_vector(parts.next().ok_or("range needs CENTER and R")?)?;
            let r: f64 = parts
                .next()
                .ok_or("range needs CENTER and R")?
                .parse()
                .map_err(|_| "bad range radius")?;
            if c.len() != dim {
                return Err(format!("range center must have {dim} coordinates"));
            }
            BatchQuery::Distance(Point::new(c), r)
        }
        "knn" => {
            let c = parse_vector(parts.next().ok_or("knn needs CENTER and K")?)?;
            let k: usize = parts
                .next()
                .ok_or("knn needs CENTER and K")?
                .parse()
                .map_err(|_| "bad knn k")?;
            if c.len() != dim {
                return Err(format!("knn center must have {dim} coordinates"));
            }
            BatchQuery::Knn(Point::new(c), k)
        }
        other => return Err(format!("unknown query kind `{other}`")),
    };
    if parts.next().is_some() {
        return Err("trailing tokens after query".into());
    }
    Ok(q)
}

fn batch(opts: &HashMap<String, String>) -> Result<(), String> {
    let tree = open_tree(opts)?;
    let path = req(opts, "queries")?;
    let threads: usize = opt_parse(opts, "threads", 1)?;
    if threads == 0 {
        return Err("--threads must be >= 1".into());
    }
    let metric = parse_metric(opts.get("metric").map(String::as_str).unwrap_or("l2"))?;
    let body = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let mut queries = Vec::new();
    for (i, line) in body.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        queries.push(
            parse_batch_line(line, tree.dim()).map_err(|e| format!("{path}:{}: {e}", i + 1))?,
        );
    }
    if queries.is_empty() {
        return Err(format!("{path} holds no queries"));
    }
    let mut policy = BatchPolicy::default();
    if let Some(ms) = opts.get("timeout-ms") {
        let ms: u64 = ms.parse().map_err(|_| "bad --timeout-ms")?;
        policy.timeout = Some(Duration::from_millis(ms));
    }
    if let Some(n) = opts.get("max-reads") {
        policy.max_reads = Some(n.parse().map_err(|_| "bad --max-reads")?);
    }
    let gate = match opts.get("max-inflight") {
        Some(n) => {
            let slots: usize = n.parse().map_err(|_| "bad --max-inflight")?;
            if slots == 0 {
                return Err("--max-inflight must be >= 1".into());
            }
            // Queries queue for at most the batch timeout (default 1s)
            // before being shed.
            let patience = policy.timeout.unwrap_or(Duration::from_secs(1));
            Some(AdmissionGate::new(slots, patience))
        }
        None => None,
    };
    let start = std::time::Instant::now();
    let answers = run_batch_governed(
        &tree,
        metric.as_ref(),
        &queries,
        threads,
        &policy,
        gate.as_ref(),
    )
    .map_err(|e| e.to_string())?;
    let elapsed = start.elapsed();
    let mut total = hybridtree_repro::page::IoStats::default();
    let mut degraded = 0usize;
    let mut shed = 0usize;
    for (i, a) in answers.iter().enumerate() {
        let status = match &a.status {
            QueryStatus::Complete => "complete".to_string(),
            QueryStatus::Degraded(reason) => {
                degraded += 1;
                format!("degraded ({reason})")
            }
            QueryStatus::Shed(_) => {
                shed += 1;
                "shed (overloaded)".to_string()
            }
        };
        println!(
            "#{i}\t{} results\t{} page reads\t{status}",
            a.answer.oids.len(),
            a.answer.io.logical_reads
        );
        total.merge(&a.answer.io);
    }
    eprintln!(
        "[{} queries on {} thread(s) in {:.3}s — {} page reads, {:.1} weighted accesses, \
         {} complete, {degraded} degraded, {shed} shed]",
        answers.len(),
        threads,
        elapsed.as_secs_f64(),
        total.logical_reads,
        total.weighted_accesses(),
        answers.len() - degraded - shed,
    );
    eprintln!("[{}]", cache_line(&tree));
    Ok(())
}

fn box_query(opts: &HashMap<String, String>) -> Result<(), String> {
    let tree = open_tree(opts)?;
    let lo = parse_vector(req(opts, "lo")?)?;
    let hi = parse_vector(req(opts, "hi")?)?;
    if lo.len() != tree.dim() || hi.len() != tree.dim() {
        return Err(format!("--lo/--hi must have {} coordinates", tree.dim()));
    }
    if lo.iter().zip(&hi).any(|(l, h)| l > h) {
        return Err("--lo must be <= --hi in every dimension".into());
    }
    let rect = Rect::new(lo, hi);
    let ctx = parse_query_context(opts)?;
    tree.reset_io_stats();
    let (outcome, _) = tree.box_query_ctx(&rect, &ctx).map_err(|e| e.to_string())?;
    let mut hits = settle(outcome);
    hits.sort_unstable();
    for oid in &hits {
        println!("{oid}");
    }
    eprintln!(
        "[{} results, {} page reads]",
        hits.len(),
        tree.io_stats().logical_reads
    );
    Ok(())
}
