//! Approximate and incremental nearest-neighbor search — the paper's
//! stated future work ("we intend to support new types of queries like
//! approximate nearest neighbor queries efficiently using the hybrid
//! tree"), implemented on top of the same index.
//!
//! ```sh
//! cargo run --release --example approximate_nn
//! ```

use hybridtree_repro::data::colhist;
use hybridtree_repro::prelude::*;

fn main() -> Result<(), IndexError> {
    let dim = 32;
    let images = colhist(40_000, dim, 21);
    let mut tree = HybridTree::new(dim, HybridTreeConfig::default())?;
    for (oid, p) in images.iter().enumerate() {
        tree.insert(p.clone(), oid as u64)?;
    }
    println!("indexed {} histograms ({dim}-d)\n", tree.len());
    let q = images[4321].clone();

    // Exact kNN as the reference.
    tree.reset_io_stats();
    let exact = tree.knn(&q, 10, &L2)?;
    let exact_io = tree.io_stats().logical_reads;
    println!(
        "exact 10-NN: {exact_io} page reads; k-th distance {:.5}",
        exact[9].1
    );

    // (1+eps)-approximate kNN: fewer reads, bounded error.
    for eps in [0.2, 1.0, 3.0] {
        tree.reset_io_stats();
        let approx = tree.knn_approximate(&q, 10, eps, &L2)?;
        let io = tree.io_stats().logical_reads;
        let worst_ratio = approx
            .iter()
            .zip(&exact)
            .map(|(a, e)| if e.1 > 0.0 { a.1 / e.1 } else { 1.0 })
            .fold(1.0f64, f64::max);
        println!(
            "eps={eps:<4} {io:>4} page reads ({:.0}% of exact); worst rank-distance ratio {:.3} (bound {:.1})",
            100.0 * io as f64 / exact_io as f64,
            worst_ratio,
            1.0 + eps
        );
    }

    // Incremental ranked retrieval: pull results one at a time, stop
    // whenever the user is satisfied — no k fixed up front.
    tree.reset_io_stats();
    let mut cursor = tree.nearest_iter(&q, &L1)?;
    println!("\nstreaming the 5 nearest under L1 (pulled lazily):");
    for rank in 1..=5 {
        if let Some((oid, d)) = cursor.next()? {
            println!("  #{rank}: image {oid:>6} at distance {d:.5}");
        }
    }
    drop(cursor);
    println!(
        "cursor cost so far: {} page reads (of {} total pages)",
        tree.io_stats().logical_reads,
        tree.structure_stats()?.total_nodes
    );
    Ok(())
}
