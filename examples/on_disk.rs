//! On-disk indexing: the hybrid tree over a real page file, with buffer
//! pool caching, flush, and a look at logical vs physical I/O.
//!
//! ```sh
//! cargo run --release --example on_disk
//! ```

use hybridtree_repro::data::clustered;
use hybridtree_repro::page::FileStorage;
use hybridtree_repro::prelude::*;

fn main() -> Result<(), IndexError> {
    let dim = 12;
    let path = std::env::temp_dir().join("hybrid_tree_demo.pages");
    let page_size = 4096;

    // A tree whose pages live in a file, cached by a 256-page pool.
    let storage = FileStorage::create(&path, page_size).map_err(IndexError::Storage)?;
    let cfg = HybridTreeConfig {
        pool_pages: 256,
        ..HybridTreeConfig::default()
    };
    let mut tree = HybridTree::with_storage(dim, cfg, storage)?;

    let points = clustered(50_000, dim, 12, 0.03, 5);
    for (oid, p) in points.iter().enumerate() {
        tree.insert(p.clone(), oid as u64)?;
    }
    let build = tree.io_stats();
    println!(
        "built on disk: {} points, height {}, file {}",
        tree.len(),
        tree.height(),
        path.display()
    );
    println!(
        "build I/O: {} logical writes, {} physical writes (write-back pool absorbed {:.0}%)",
        build.logical_writes,
        build.physical_writes,
        100.0 * (1.0 - build.physical_writes as f64 / build.logical_writes.max(1) as f64)
    );

    // Hot queries: the pool turns repeated accesses into cache hits.
    tree.reset_io_stats();
    let q = Point::new(vec![0.5; dim]);
    for _ in 0..50 {
        tree.knn(&q, 10, &L2)?;
    }
    let hot = tree.io_stats();
    println!(
        "50 hot kNN queries: {} logical reads, {} physical reads, {} pool hits",
        hot.logical_reads, hot.physical_reads, hot.hits
    );

    let file_len = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!(
        "page file size: {:.1} MiB; ELS side table: {:.1} KiB in memory",
        file_len as f64 / (1024.0 * 1024.0),
        tree.els_overhead_bytes() as f64 / 1024.0
    );

    std::fs::remove_file(&path).ok();
    Ok(())
}
