//! Bake-off: every index structure in the workspace on one workload —
//! a miniature of the paper's Figure 6(c,d) comparison.
//!
//! ```sh
//! cargo run --release --example bakeoff
//! ```

use hybridtree_repro::data::{colhist, BoxWorkload};
use hybridtree_repro::eval::{compare_box, Engine};

fn main() {
    let dim = 32;
    let n = 15_000;
    let data = colhist(n, dim, 99);
    // Constant 0.2% selectivity, as in the paper's COLHIST experiments.
    let wl = BoxWorkload::calibrated(&data, 30, 0.002, 100);
    println!(
        "{n} color histograms, {dim}-d, {} box queries of side {:.3} (0.2% selectivity)\n",
        wl.queries.len(),
        wl.side
    );

    let rows = compare_box(
        &[Engine::Hybrid, Engine::Hb, Engine::Sr, Engine::Kdb],
        &data,
        &wl.queries,
    )
    .expect("bakeoff failed");

    println!(
        "{:<12} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "engine", "accesses/q", "cpu(us)/q", "norm-io", "norm-cpu", "build(ms)"
    );
    for r in &rows {
        println!(
            "{:<12} {:>12.1} {:>12.1} {:>10.4} {:>10.3} {:>10.0}",
            r.engine,
            r.avg_accesses,
            r.avg_cpu.as_secs_f64() * 1e6,
            r.normalized_io,
            r.normalized_cpu,
            r.build_time.as_secs_f64() * 1e3,
        );
    }
    println!(
        "\nnorm-io reads as: fraction of a sequential scan's I/O budget; \
         the scan itself costs 0.1 (sequential reads are 10x cheaper). \
         Anything above 0.1 loses to the scan — the fate of DP trees in \
         high dimensions (paper §4)."
    );
}
