//! Quickstart: build a hybrid tree, run every query kind, inspect stats.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hybridtree_repro::prelude::*;

fn main() -> Result<(), IndexError> {
    // An 8-dimensional feature space with the paper's defaults:
    // 4096-byte pages, EDA-optimal splits, 4-bit encoded live space.
    let dim = 8;
    let mut tree = HybridTree::new(dim, HybridTreeConfig::default())?;

    // Index 10,000 synthetic feature vectors.
    let points = hybridtree_repro::data::uniform(10_000, dim, 42);
    for (oid, p) in points.iter().enumerate() {
        tree.insert(p.clone(), oid as u64)?;
    }
    println!(
        "built: {} vectors, height {}, {} entries/page capacity",
        tree.len(),
        tree.height(),
        tree.data_capacity()
    );

    // 1. Window (bounding-box) query.
    let window = Rect::new(vec![0.25; dim], vec![0.75; dim]);
    tree.reset_io_stats();
    let in_window = tree.box_query(&window)?;
    println!(
        "window query: {} hits using {} disk accesses",
        in_window.len(),
        tree.io_stats().logical_reads
    );

    // 2. Distance range query — metric chosen *at query time*.
    let q = Point::new(vec![0.5; dim]);
    let near_l1 = tree.distance_range(&q, 1.0, &L1)?;
    let near_l2 = tree.distance_range(&q, 1.0, &L2)?;
    println!(
        "within 1.0 of the center: {} (L1), {} (L2)",
        near_l1.len(),
        near_l2.len()
    );

    // 3. k-nearest neighbors.
    let nn = tree.knn(&q, 5, &L2)?;
    println!("5 nearest neighbors (L2):");
    for (oid, dist) in &nn {
        println!("  oid {oid:>5}  distance {dist:.4}");
    }

    // 4. The index is fully dynamic: delete and re-query.
    let (victim, _) = nn[0];
    tree.delete(&points[victim as usize], victim)?;
    let nn_after = tree.knn(&q, 1, &L2)?;
    assert_ne!(nn_after[0].0, victim, "deleted point no longer returned");
    println!("deleted oid {victim}; new nearest is oid {}", nn_after[0].0);

    // 5. Structural statistics (the numbers behind the paper's Table 1).
    let st = tree.structure_stats()?;
    println!(
        "structure: {} nodes ({} index / {} data), avg fanout {:.1}, leaf fill {:.0}%, \
         {} of {dim} dims ever split",
        st.total_nodes,
        st.index_nodes,
        st.data_nodes,
        st.avg_fanout,
        st.avg_leaf_utilization * 100.0,
        st.distinct_split_dims
    );
    Ok(())
}
