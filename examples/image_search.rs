//! Content-based image retrieval with relevance feedback — the MARS
//! scenario that motivates the hybrid tree (paper §1, §3.5).
//!
//! Images are represented by 32-bin color histograms. A user issues a
//! query image; the system returns the k most similar images under L1
//! (histogram intersection's metric twin). The user marks some results
//! relevant, and the feedback loop *re-weights the feature dimensions*
//! (MindReader-style): dimensions on which the relevant images agree get
//! high weight. Distance-based index structures (SS-tree, M-tree) would
//! need a rebuild per weighting; the hybrid tree, being feature-based,
//! serves every iteration from the same index.
//!
//! ```sh
//! cargo run --release --example image_search
//! ```

use hybridtree_repro::data::colhist;
use hybridtree_repro::prelude::*;

const BINS: usize = 32;
const K: usize = 8;

fn main() -> Result<(), IndexError> {
    // "Image collection": 30,000 synthetic Corel-like histograms.
    let images = colhist(30_000, BINS, 7);
    let mut index = HybridTree::new(BINS, HybridTreeConfig::default())?;
    for (oid, hist) in images.iter().enumerate() {
        index.insert(hist.clone(), oid as u64)?;
    }
    println!("indexed {} images ({} bins each)", index.len(), BINS);

    // Iteration 1: plain L1 search around a query image.
    let query = images[1234].clone();
    index.reset_io_stats();
    let first = index.knn(&query, K, &L1)?;
    println!(
        "\niteration 1 (L1): top-{K} in {} disk accesses",
        index.io_stats().logical_reads
    );
    for (oid, d) in &first {
        println!("  image {oid:>6}  distance {d:.4}");
    }

    // The user marks the top 4 as relevant. Re-weight dimensions by the
    // inverse variance of the relevant set (MindReader): consistent bins
    // matter, noisy bins are ignored.
    let relevant: Vec<&Point> = first[..4]
        .iter()
        .map(|(oid, _)| &images[*oid as usize])
        .collect();
    let weights: Vec<f64> = (0..BINS)
        .map(|d| {
            let mean: f64 =
                relevant.iter().map(|p| f64::from(p.coord(d))).sum::<f64>() / relevant.len() as f64;
            let var: f64 = relevant
                .iter()
                .map(|p| {
                    let x = f64::from(p.coord(d)) - mean;
                    x * x
                })
                .sum::<f64>()
                / relevant.len() as f64;
            1.0 / (var + 1e-6)
        })
        .collect();
    let max_w = weights.iter().cloned().fold(0.0, f64::max);
    let feedback = WeightedEuclidean::new(weights.iter().map(|w| w / max_w).collect());

    // Iteration 2: same index, new metric — no rebuild.
    index.reset_io_stats();
    let second = index.knn(&query, K, &feedback)?;
    println!(
        "\niteration 2 (weighted, after feedback): top-{K} in {} disk accesses",
        index.io_stats().logical_reads
    );
    for (oid, d) in &second {
        println!("  image {oid:>6}  distance {d:.4}");
    }

    let kept = second
        .iter()
        .filter(|(oid, _)| first.iter().any(|(o, _)| o == oid))
        .count();
    println!(
        "\n{kept}/{K} results survived re-weighting; the rest were re-ranked \
         by the user's feedback — all from one index."
    );
    Ok(())
}
