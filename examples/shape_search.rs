//! Shape similarity search over Fourier descriptors — the FOURIER
//! workload of the paper's evaluation, and a direct comparison against
//! the linear scan that high-dimensional indexes must beat (§4).
//!
//! ```sh
//! cargo run --release --example shape_search
//! ```

use hybridtree_repro::data::fourier;
use hybridtree_repro::prelude::*;
use hybridtree_repro::scan::SeqScan;

const DIM: usize = 16;

fn main() -> Result<(), IndexError> {
    // 100,000 polygon shapes as 16-d Fourier descriptors.
    let shapes = fourier(100_000, DIM, 3);

    let mut tree = HybridTree::new(DIM, HybridTreeConfig::default())?;
    let mut scan = SeqScan::new(DIM)?;
    for (oid, s) in shapes.iter().enumerate() {
        tree.insert(s.clone(), oid as u64)?;
        scan.insert(s.clone(), oid as u64)?;
    }
    println!(
        "indexed {} shapes ({DIM}-d Fourier descriptors)",
        tree.len()
    );

    // Range search: all shapes within L2 distance 0.05 of a probe shape.
    let probe = shapes[777].clone();
    let radius = 0.05;

    tree.reset_io_stats();
    let mut from_tree = tree.distance_range(&probe, radius, &L2)?;
    let tree_io = tree.io_stats();

    scan.reset_io_stats();
    let mut from_scan = scan.distance_range(&probe, radius, &L2)?;
    let scan_io = scan.io_stats();

    from_tree.sort_unstable();
    from_scan.sort_unstable();
    assert_eq!(from_tree, from_scan, "index and scan must agree");

    println!("\nshapes within {radius} of probe: {}", from_tree.len());
    println!(
        "hybrid tree: {} random accesses (weighted cost {:.1})",
        tree_io.logical_reads,
        tree_io.weighted_accesses()
    );
    println!(
        "linear scan: {} sequential accesses (weighted cost {:.1})",
        scan_io.seq_reads,
        scan_io.weighted_accesses()
    );
    println!(
        "speedup under the paper's cost model: {:.1}x",
        scan_io.weighted_accesses() / tree_io.weighted_accesses().max(1e-9)
    );

    // Nearest-neighbor under a different metric, same index.
    let nn = tree.knn(&probe, 5, &L1)?;
    println!("\n5 most similar shapes under L1:");
    for (oid, d) in nn {
        println!("  shape {oid:>6}  distance {d:.4}");
    }
    Ok(())
}
