#!/usr/bin/env bash
# Perf-trajectory benchmark: regenerates BENCH_pr4.json at the repo root.
#
# Runs every engine over a warm repeated mixed workload with the decoded-
# node cache off and on, asserts the answers bit-identical, and records
# per-engine p50/p95 query latency, Node::decode invocation counts, and
# cache hit rate. The acceptance metric is the decode-count reduction
# (>= 2x warm); wall-clock percentiles are advisory on shared CI hosts.
#
#   HYT_SCALE=paper ./scripts/bench.sh     # full-size datasets
#   HYT_QUERIES=64  ./scripts/bench.sh     # override query count
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== pr4 decode/latency trajectory -> BENCH_pr4.json"
cargo bench -p hyt-bench --bench pr4

echo "== wrote $(pwd)/BENCH_pr4.json"
