#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, and the full test suite.
# Run from the repository root before sending a change for review.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo clippy hyt-page (read paths must be panic-free: unwrap/expect denied)"
cargo clippy -p hyt-page --lib -- -D warnings -D clippy::unwrap_used -D clippy::expect_used

echo "== cargo clippy hyt-exec (the shared traversal kernel: warnings are errors)"
cargo clippy -p hyt-exec --all-targets -- -D warnings

echo "== cargo test"
cargo test --workspace -q

echo "== crash matrix (fault injection: kill at every write site, reopen)"
cargo test -q --test crash_matrix

echo "== chaos queries (governed batches under fault load; must finish, not hang)"
timeout 120 cargo test -q --test chaos_queries

echo "== executor equivalence (cursor prefixes == batch kNN on every engine)"
cargo test -q --test executor

echo "== cargo doc (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "== cargo doc hyt-exec (kernel contract docs must build clean, private items included)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -p hyt-exec --document-private-items --quiet

echo "== bench smoke (criterion micro benches, shortened sampling)"
HYT_BENCH_MS=200 cargo bench -p hyt-bench --bench micro

echo "tier-1 green"
