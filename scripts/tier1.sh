#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, and the full test suite.
# Run from the repository root before sending a change for review.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test --workspace -q

echo "tier-1 green"
