//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this workspace member
//! implements the subset of proptest the test suites use: the
//! [`Strategy`] trait with `prop_map`, `prop_recursive`, tuple and range
//! strategies, [`collection::vec`], `prop_oneof!`, and the [`proptest!`]
//! macro with `prop_assert!` / `prop_assert_eq!` / `prop_assume!` and
//! `ProptestConfig { cases }`.
//!
//! Differences from upstream, deliberate for an offline shim:
//!
//! * **no shrinking** — a failing case reports its seed and case number
//!   instead of a minimized input; rerunning is deterministic, so the
//!   failure reproduces exactly;
//! * inputs are generated from a per-test deterministic RNG (seeded from
//!   the test's module path and name), so runs are stable across
//!   processes and machines.

use rand::prelude::*;

pub mod strategy;
pub use strategy::Strategy;

/// Runtime configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum generated-but-rejected (`prop_assume!`) cases tolerated
    /// before the test errors out as too selective.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is discarded.
    Reject,
    /// An assertion failed; the test fails.
    Fail(String),
}

/// Outcome alias used by generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Drives one property test: generates inputs, runs the body, stops on
/// the first failure with a reproducible report.
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
    seed: u64,
}

impl TestRunner {
    /// Creates a runner for the named test; the name seeds the RNG.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        // FNV-1a over the test name: stable, collision-free enough for
        // seeding purposes.
        let mut seed = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x100000001b3);
        }
        // HYT_PROPTEST_SEED reruns the whole suite on a different stream.
        if let Ok(extra) = std::env::var("HYT_PROPTEST_SEED") {
            if let Ok(x) = extra.parse::<u64>() {
                seed ^= x.rotate_left(17);
            }
        }
        Self { config, name, seed }
    }

    /// Runs `case` until `config.cases` successes, a failure, or the
    /// reject budget is exhausted. Panics (normal Rust test failure) on
    /// the first failing case.
    pub fn run<F>(&mut self, mut case: F)
    where
        F: FnMut(&mut StdRng) -> TestCaseResult,
    {
        let mut passed = 0u32;
        let mut rejects = 0u32;
        let mut attempt = 0u64;
        while passed < self.config.cases {
            attempt += 1;
            // Each case gets its own child rng so a failure can name the
            // exact (seed, attempt) pair that reproduces it.
            let mut case_rng =
                StdRng::seed_from_u64(self.seed ^ attempt.wrapping_mul(0x9e3779b97f4a7c15));
            match case(&mut case_rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejects += 1;
                    if rejects > self.config.max_global_rejects {
                        panic!(
                            "property `{}` rejected {} inputs before reaching {} cases — \
                             assume() is too selective",
                            self.name, rejects, self.config.cases
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "property `{}` failed at case {} (seed {:#x}, attempt {}):\n{}",
                        self.name, passed, self.seed, attempt, msg
                    );
                }
            }
        }
    }
}

/// Collection strategies (`proptest::collection` subset).
pub mod collection {
    use super::strategy::Strategy;
    use rand::prelude::*;
    use std::ops::Range;

    /// Vector length specification: a fixed size or a size range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.size.hi - self.size.lo <= 1 {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: element strategy + size (fixed or range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Numeric strategies (`proptest::num` subset).
pub mod num {
    /// `f32` strategies.
    pub mod f32 {
        use crate::strategy::Strategy;
        use rand::prelude::*;

        /// Any bit pattern, including infinities and NaNs — matches the
        /// upstream `proptest::num::f32::ANY` contract closely enough
        /// for codec round-trip tests.
        #[derive(Clone, Copy, Debug)]
        pub struct Any;

        /// The canonical instance of [`Any`].
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = f32;
            fn generate(&self, rng: &mut StdRng) -> f32 {
                f32::from_bits(rng.gen::<u32>())
            }
        }
    }
}

/// The `proptest::prelude` subset: what `use proptest::prelude::*`
/// must bring into scope.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig,
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args..)` — fails the
/// current case without panicking so the runner can report context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// `prop_assert_eq!(a, b)` with optional message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    }};
}

/// `prop_assert_ne!(a, b)` with optional message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a != b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    }};
}

/// `prop_assume!(cond)` — discards the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Weighted union of strategies: `prop_oneof![3 => a, 1 => b]` or the
/// unweighted `prop_oneof![a, b, c]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// The `proptest!` macro: wraps `fn name(arg in strategy, ..) { body }`
/// items into `#[test]` functions driven by a [`TestRunner`].
#[macro_export]
macro_rules! proptest {
    // With a config header.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };
    // Without a config header.
    ($(#[$meta:meta])* fn $($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::ProptestConfig::default()) $(#[$meta])* fn $($rest)*);
    };
    // Item muncher.
    (@fns ($cfg:expr) $(#[$meta:meta])* fn $name:ident(
        $($arg:pat_param in $strat:expr),+ $(,)?
    ) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::new(
                config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            runner.run(|proptest_case_rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), proptest_case_rng);)+
                (|| -> $crate::TestCaseResult {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })()
            });
        }
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };
    (@fns ($cfg:expr)) => {};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Shape {
        Dot,
        Pair(Box<Shape>, Box<Shape>),
    }

    fn shape_strategy() -> impl Strategy<Value = Shape> {
        Just(Shape::Dot).prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Shape::Pair(Box::new(a), Box::new(b)))
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -1.0f32..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..2.0).contains(&y));
        }

        #[test]
        fn vec_sizes_respect_range(v in crate::collection::vec(0u32..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn oneof_maps_and_tuples(op in prop_oneof![
            3 => (0usize..5).prop_map(|i| i * 2),
            1 => (0usize..5, 1usize..3).prop_map(|(a, b)| a + b),
        ]) {
            prop_assert!(op <= 10);
        }

        #[test]
        fn assume_discards(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn recursion_terminates(s in shape_strategy()) {
            fn depth(s: &Shape) -> usize {
                match s {
                    Shape::Dot => 1,
                    Shape::Pair(a, b) => 1 + depth(a).max(depth(b)),
                }
            }
            prop_assert!(depth(&s) <= 6);
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failures_panic_with_context() {
        let mut runner = crate::TestRunner::new(
            ProptestConfig {
                cases: 8,
                ..Default::default()
            },
            "demo",
        );
        runner.run(|_| Err(crate::TestCaseError::Fail("boom".into())));
    }

    #[test]
    fn deterministic_across_runners() {
        use rand::prelude::*;
        let strat = crate::collection::vec(0u32..1000, 5);
        let gen_with = |name| {
            let mut r = crate::TestRunner::new(
                ProptestConfig {
                    cases: 1,
                    ..Default::default()
                },
                name,
            );
            let mut out = Vec::new();
            r.run(|rng| {
                out = Strategy::generate(&strat, rng);
                Ok(())
            });
            out
        };
        assert_eq!(gen_with("same"), gen_with("same"));
        assert_ne!(gen_with("same"), gen_with("different"));
        // Ensure StdRng is actually in scope/usable from dependents.
        let _ = StdRng::seed_from_u64(1).gen::<f64>();
    }
}
