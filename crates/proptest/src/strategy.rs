//! Generate-only strategies: the composable value-generation half of
//! proptest's `Strategy`, without shrink trees.

use rand::prelude::*;
use std::ops::Range;
use std::rc::Rc;

/// A recipe for generating values of one type.
///
/// Mirrors `proptest::strategy::Strategy` closely enough that test code
/// written against the real crate compiles unchanged for the combinators
/// this workspace uses: `prop_map`, `prop_recursive`, `boxed`, ranges,
/// tuples, and [`crate::collection::vec`].
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Recursive strategies: `self` generates leaves; `expand` turns a
    /// strategy for subtrees into a strategy for branches. `depth` bounds
    /// recursion; `_desired_size` and `_expected_branch` are accepted for
    /// API compatibility and unused (no shrinking, no size budget).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        expand: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        Recursive {
            inner: Rc::new(RecursiveDef {
                base: self.boxed(),
                expand: Box::new(move |s| expand(s).boxed()),
            }),
            depth,
        }
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Always generates clones of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.generate(rng)
    }
}

struct RecursiveDef<T> {
    base: BoxedStrategy<T>,
    expand: Box<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    inner: Rc<RecursiveDef<T>>,
    depth: u32,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Rc::clone(&self.inner),
            depth: self.depth,
        }
    }
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        // Recurse with dwindling probability so generated structures vary
        // between near-leaves and full-depth trees.
        if self.depth == 0 || rng.gen::<f32>() >= 0.75 {
            return self.inner.base.generate(rng);
        }
        let sub = Recursive {
            inner: Rc::clone(&self.inner),
            depth: self.depth - 1,
        };
        (self.inner.expand)(sub.boxed()).generate(rng)
    }
}

/// Weighted choice between type-erased strategies (`prop_oneof!`).
#[derive(Clone)]
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union; weights must sum to a positive value.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Self { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights changed mid-generate")
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_respects_weights_roughly() {
        let u = Union::new(vec![(9, Just(0usize).boxed()), (1, Just(1usize).boxed())]);
        let mut rng = StdRng::seed_from_u64(1);
        let ones: usize = (0..10_000).map(|_| u.generate(&mut rng)).sum();
        assert!(
            (500..1500).contains(&ones),
            "9:1 union gave {ones}/10000 ones"
        );
    }

    #[test]
    fn map_and_tuple_compose() {
        let s = (0u32..4, 0u32..4).prop_map(|(a, b)| a * 10 + b);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v / 10 < 4 && v % 10 < 4);
        }
    }
}
