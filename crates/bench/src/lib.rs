//! Shared plumbing for the figure-regeneration bench targets.
//!
//! Every table and figure of the paper has its own `cargo bench` target
//! (`cargo bench -p hyt-bench --bench fig6ab`, etc.). Each target runs
//! the corresponding [`hyt_eval::figures`] driver once at the scale
//! chosen by `HYT_SCALE` (`quick` default, `paper` for full sizes),
//! prints the regenerated table, and archives it under `results/`.

use hyt_eval::{FigureReport, Scale};
use std::path::PathBuf;

/// Runs a figure driver, prints its report, and saves it to
/// `results/<name>.txt` (relative to the workspace root when available).
pub fn emit(
    name: &str,
    driver: impl FnOnce(&Scale) -> Result<FigureReport, hyt_index::IndexError>,
) {
    let scale = Scale::from_env();
    eprintln!("[{name}] running at scale {scale:?} (set HYT_SCALE=paper for full sizes)");
    let started = std::time::Instant::now();
    let report = match driver(&scale) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("[{name}] failed: {e}");
            std::process::exit(1);
        }
    };
    let rendered = report.to_string();
    println!("{rendered}");
    eprintln!("[{name}] done in {:.1}s", started.elapsed().as_secs_f64());
    let dir = results_dir();
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{name}.txt"));
        if let Err(e) = std::fs::write(&path, &rendered) {
            eprintln!("[{name}] could not archive to {}: {e}", path.display());
        } else {
            eprintln!("[{name}] archived to {}", path.display());
        }
    }
}

fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; results live at the repo root.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("results");
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_is_repo_root_results() {
        let d = results_dir();
        assert!(d.ends_with("results"));
        assert!(d.parent().unwrap().join("Cargo.toml").exists());
    }
}
