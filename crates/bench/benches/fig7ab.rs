//! Regenerates the paper's fig7ab (see hyt_eval::figures::fig7ab).
fn main() {
    hyt_bench::emit("fig7ab", hyt_eval::figures::fig7ab);
}
