//! Regenerates the paper's fig7cd (see hyt_eval::figures::fig7cd).
fn main() {
    hyt_bench::emit("fig7cd", hyt_eval::figures::fig7cd);
}
