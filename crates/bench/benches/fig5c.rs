//! Regenerates the paper's fig5c (see hyt_eval::figures::fig5c).
fn main() {
    hyt_bench::emit("fig5c", hyt_eval::figures::fig5c);
}
