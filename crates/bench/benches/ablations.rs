//! Regenerates the DESIGN.md ablation tables (split dimension, split
//! position, implicit dimensionality reduction, overlap relaxation).
fn main() {
    hyt_bench::emit("ablate_split_dim", hyt_eval::figures::ablate_split_dim);
    hyt_bench::emit("ablate_split_pos", hyt_eval::figures::ablate_split_pos);
    hyt_bench::emit("ablate_dim_elim", hyt_eval::figures::ablate_dim_elim);
    hyt_bench::emit("ablate_overlap", hyt_eval::figures::ablate_overlap);
}
