//! Criterion micro-benchmarks for the hot paths of the hybrid tree:
//! metric evaluation, kd navigation, node splitting, insertion, and the
//! three query kinds. These complement the figure benches (which measure
//! whole experiments) by tracking per-operation regressions.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hybrid_tree::{bipartition_1d, HybridTree, HybridTreeConfig};
use hyt_data::{colhist, uniform, BoxWorkload};
use hyt_eval::{run_batch_parallel, BatchQuery};
use hyt_geom::{Metric, Point, Rect, L1, L2};
use hyt_index::{MultidimIndex, QueryContext};
use rand::prelude::*;
use rand::rngs::StdRng;

fn bench_metrics(c: &mut Criterion) {
    let mut g = c.benchmark_group("metric");
    for dim in [16usize, 64] {
        let a = Point::new(vec![0.25; dim]);
        let b = Point::new(vec![0.75; dim]);
        let r = Rect::new(vec![0.4; dim], vec![0.6; dim]);
        g.bench_with_input(BenchmarkId::new("l2_distance", dim), &dim, |bch, _| {
            bch.iter(|| L2.distance(black_box(&a), black_box(&b)))
        });
        g.bench_with_input(BenchmarkId::new("l1_mindist_rect", dim), &dim, |bch, _| {
            bch.iter(|| L1.min_dist_rect(black_box(&a), black_box(&r)))
        });
    }
    g.finish();
}

fn bench_bipartition(c: &mut Criterion) {
    let mut g = c.benchmark_group("split");
    for n in [16usize, 128] {
        let mut rng = StdRng::seed_from_u64(1);
        let segs: Vec<(f32, f32)> = (0..n)
            .map(|_| {
                let lo: f32 = rng.gen();
                (lo, lo + rng.gen::<f32>() * 0.2)
            })
            .collect();
        g.bench_with_input(BenchmarkId::new("bipartition_1d", n), &n, |bch, _| {
            bch.iter(|| bipartition_1d(black_box(&segs), n / 3))
        });
    }
    g.finish();
}

fn bench_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("insert");
    g.sample_size(10);
    for dim in [16usize, 64] {
        let data = colhist(5_000, dim, 7);
        g.bench_with_input(BenchmarkId::new("hybrid_5k", dim), &dim, |bch, _| {
            bch.iter(|| {
                let mut t = HybridTree::new(dim, HybridTreeConfig::default()).unwrap();
                for (i, p) in data.iter().enumerate() {
                    t.insert(p.clone(), i as u64).unwrap();
                }
                black_box(t.len())
            })
        });
    }
    g.finish();
}

fn bench_queries(c: &mut Criterion) {
    let mut g = c.benchmark_group("query");
    let dim = 16usize;
    let data = uniform(20_000, dim, 11);
    let wl = BoxWorkload::calibrated(&data, 16, 0.002, 12);
    let mut tree = HybridTree::new(dim, HybridTreeConfig::default()).unwrap();
    for (i, p) in data.iter().enumerate() {
        tree.insert(p.clone(), i as u64).unwrap();
    }
    let q = data[42].clone();

    g.bench_function("box_query_16d_20k", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % wl.queries.len();
            black_box(tree.box_query(&wl.queries[i]).unwrap().len())
        })
    });
    g.bench_function("knn10_l2_16d_20k", |b| {
        b.iter(|| black_box(tree.knn(&q, 10, &L2).unwrap().len()))
    });
    g.bench_function("range_l1_16d_20k", |b| {
        b.iter(|| black_box(tree.distance_range(&q, 0.3, &L1).unwrap().len()))
    });
    g.finish();
}

/// Batch-query throughput: the same kNN batch over one shared tree,
/// scheduled on 1/2/4 worker threads. The pool is sized to hold the
/// whole tree (the sharded read path serves warm hits concurrently), so
/// this tracks the scalability of the concurrent query engine.
fn bench_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("batch");
    g.sample_size(10);
    let dim = 16usize;
    let data = uniform(20_000, dim, 19);
    let mut tree = HybridTree::new(
        dim,
        HybridTreeConfig {
            pool_pages: 8192,
            ..HybridTreeConfig::default()
        },
    )
    .unwrap();
    for (i, p) in data.iter().enumerate() {
        tree.insert(p.clone(), i as u64).unwrap();
    }
    let queries: Vec<BatchQuery> = data
        .iter()
        .step_by(250)
        .take(64)
        .map(|p| BatchQuery::Knn(p.clone(), 10))
        .collect();
    g.throughput(Throughput::Elements(queries.len() as u64));
    for threads in [1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::new("knn10_16d_20k", threads),
            &threads,
            |b, &t| {
                b.iter(|| black_box(run_batch_parallel(&tree, &L2, &queries, t).unwrap().len()))
            },
        );
    }
    g.finish();
}

/// Decoded-node cache effect on the kNN hot path: the same warm query
/// stream with the cache off (decode per visit) and on (decode per page
/// epoch). Wall-clock deltas are modest on small trees; the decode-count
/// trajectory lives in the `pr4` bench target.
fn bench_decoded_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("decoded_cache");
    let dim = 16usize;
    let data = uniform(20_000, dim, 23);
    for entries in [0usize, 4096] {
        let mut tree = HybridTree::new(
            dim,
            HybridTreeConfig {
                node_cache_entries: entries,
                ..HybridTreeConfig::default()
            },
        )
        .unwrap();
        for (i, p) in data.iter().enumerate() {
            tree.insert(p.clone(), i as u64).unwrap();
        }
        let q = data[42].clone();
        let label = if entries == 0 { "off" } else { "on" };
        g.bench_function(format!("knn10_16d_20k/{label}"), |b| {
            b.iter(|| black_box(tree.knn(&q, 10, &L2).unwrap().len()))
        });
    }
    g.finish();
}

/// Unified-executor group: pins the refactored kNN hot loop (now the
/// shared `hyt-exec` best-first driver) against the `query/knn10_l2_16d_20k`
/// trajectory, and measures the incremental cursor draining the same k —
/// the executor refactor must not make either slower than the engine-local
/// loops it replaced.
fn bench_executor(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor");
    let dim = 16usize;
    let data = uniform(20_000, dim, 11);
    let mut tree = HybridTree::new(dim, HybridTreeConfig::default()).unwrap();
    for (i, p) in data.iter().enumerate() {
        tree.insert(p.clone(), i as u64).unwrap();
    }
    let q = data[42].clone();

    g.bench_function("knn10_l2_16d_20k", |b| {
        b.iter(|| black_box(tree.knn(&q, 10, &L2).unwrap().len()))
    });
    g.bench_function("knn10_cursor_l2_16d_20k", |b| {
        b.iter(|| {
            let mut cursor = tree.knn_stream(&q, &L2, QueryContext::unlimited()).unwrap();
            let mut n = 0usize;
            while n < 10 && cursor.next().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_metrics,
    bench_bipartition,
    bench_insert,
    bench_queries,
    bench_batch,
    bench_decoded_cache,
    bench_executor
);
criterion_main!(benches);
