//! Regenerates the paper's table2 (see hyt_eval::figures::table2).
fn main() {
    hyt_bench::emit("table2", hyt_eval::figures::table2);
}
