//! Regenerates the paper's table1 (see hyt_eval::figures::table1).
fn main() {
    hyt_bench::emit("table1", hyt_eval::figures::table1);
}
