//! Beyond-the-paper comparisons: kNN cost across engines and build
//! costs (insertion vs bulk load).
fn main() {
    hyt_bench::emit("knn_comparison", hyt_eval::figures::knn_comparison);
    hyt_bench::emit("build_costs", hyt_eval::figures::build_costs);
}
