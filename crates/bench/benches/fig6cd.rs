//! Regenerates the paper's fig6cd (see hyt_eval::figures::fig6cd).
fn main() {
    hyt_bench::emit("fig6cd", hyt_eval::figures::fig6cd);
}
