//! Hot-path trajectory bench: decoded-node cache effect per engine.
//!
//! Runs the warm repeated-query workload of [`hyt_eval::run_decode_bench`]
//! — every engine, cache off then cache on, answers asserted identical —
//! and writes the machine-readable report to `BENCH_pr4.json` at the repo
//! root (the decode-count metric is the acceptance number; wall-clock
//! percentiles ride along for trend-watching on noisy CI hosts).
//!
//! `HYT_SCALE=paper` scales the dataset up; `HYT_QUERIES` overrides the
//! query count.

use hyt_eval::Scale;
use std::path::PathBuf;

fn main() {
    let scale = Scale::from_env();
    // A fraction of the figure scale: this bench runs each workload
    // 2 × repeats times across five engines.
    let n = (scale.colhist_n / 2).max(2_000);
    let dim = 16;
    let queries = scale.queries.clamp(8, 32);
    let repeats = 4;
    let cache_entries = 4096;
    eprintln!(
        "[pr4] decode bench: n={n} dim={dim} queries={queries} repeats={repeats} \
         cache_entries={cache_entries}"
    );
    let started = std::time::Instant::now();
    let report = match hyt_eval::run_decode_bench(n, dim, queries, repeats, cache_entries) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("[pr4] failed: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("[pr4] done in {:.1}s", started.elapsed().as_secs_f64());

    println!(
        "{:<12} {:>7} {:>8} {:>10} {:>10} {:>9} {:>9} {:>9}",
        "engine", "cache", "queries", "p50_us", "p95_us", "decodes", "hits", "hit_rate"
    );
    for r in &report.rows {
        println!(
            "{:<12} {:>7} {:>8} {:>10.1} {:>10.1} {:>9} {:>9} {:>9.3}",
            r.engine,
            r.cache_entries,
            r.queries,
            r.p50_us,
            r.p95_us,
            r.decodes,
            r.cache_hits,
            r.hit_rate
        );
    }
    let reduction = report.min_decode_reduction();
    println!("min decode reduction (off/on): {reduction:.2}x");

    let json = report.to_json();
    let mut path = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop();
    path.pop();
    path.push("BENCH_pr4.json");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("[pr4] wrote {}", path.display()),
        Err(e) => {
            eprintln!("[pr4] could not write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    if reduction < 2.0 {
        eprintln!("[pr4] WARNING: decode reduction {reduction:.2}x below the 2x target");
        std::process::exit(1);
    }
}
