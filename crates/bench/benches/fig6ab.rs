//! Regenerates the paper's fig6ab (see hyt_eval::figures::fig6ab).
fn main() {
    hyt_bench::emit("fig6ab", hyt_eval::figures::fig6ab);
}
