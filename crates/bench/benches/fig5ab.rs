//! Regenerates the paper's fig5ab (see hyt_eval::figures::fig5ab).
fn main() {
    hyt_bench::emit("fig5ab", hyt_eval::figures::fig5ab);
}
