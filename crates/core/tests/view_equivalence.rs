//! Property test: zero-copy page navigation ([`NodeView`]) must agree
//! exactly with the decoded [`KdTree`]/[`Node`] walks on arbitrary
//! trees, queries, and points — the hot path is an optimization, never
//! a semantic change.

use hybrid_tree::{KdTree, Node, NodeView};
use hyt_geom::{Point, Rect};
use hyt_page::PageId;
use proptest::prelude::*;

/// Strategy for random kd-trees over `dim` dimensions with `n` leaves.
fn kd_strategy(dim: u16, depth: u32) -> impl Strategy<Value = KdTree> {
    let leaf = (0u32..1000).prop_map(|p| KdTree::leaf(PageId(p)));
    leaf.prop_recursive(depth, 64, 2, move |inner| {
        (0..dim, -1.0f32..2.0, -1.0f32..2.0, inner.clone(), inner)
            .prop_map(|(d, lsp, rsp, l, r)| KdTree::split(d, lsp, rsp, l, r))
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn view_box_walk_equals_tree_walk(
        kd in kd_strategy(4, 5),
        lo in proptest::collection::vec(-1.0f32..2.0, 4),
        ext in proptest::collection::vec(0.0f32..1.5, 4),
    ) {
        let hi: Vec<f32> = lo.iter().zip(&ext).map(|(l, e)| l + e).collect();
        let query = Rect::new(lo, hi);
        let buf = Node::Index { level: 1, kd: kd.clone() }.encode(4);
        let NodeView::Index(view) = NodeView::parse(&buf, 4).unwrap() else {
            panic!("expected index view");
        };
        let mut from_view = Vec::new();
        view.children_overlapping_box(&query, &mut from_view).unwrap();
        let mut from_tree = Vec::new();
        kd.children_overlapping_box_ids(&query, &mut from_tree);
        prop_assert_eq!(from_view, from_tree);
    }

    #[test]
    fn view_point_walk_equals_tree_walk(
        kd in kd_strategy(4, 5),
        p in proptest::collection::vec(-1.0f32..2.0, 4),
    ) {
        let point = Point::new(p);
        let buf = Node::Index { level: 1, kd: kd.clone() }.encode(4);
        let NodeView::Index(view) = NodeView::parse(&buf, 4).unwrap() else {
            panic!("expected index view");
        };
        let mut from_view = Vec::new();
        view.children_containing_point(&point, &mut from_view).unwrap();
        let mut from_tree = Vec::new();
        kd.children_containing_point_ids(&point, &mut from_tree);
        prop_assert_eq!(from_view, from_tree);
    }

    #[test]
    fn view_child_ids_equals_tree_child_ids(kd in kd_strategy(6, 6)) {
        let buf = Node::Index { level: 1, kd: kd.clone() }.encode(6);
        let NodeView::Index(view) = NodeView::parse(&buf, 6).unwrap() else {
            panic!("expected index view");
        };
        let mut from_view = Vec::new();
        view.child_ids(&mut from_view).unwrap();
        prop_assert_eq!(from_view, kd.child_ids());
    }

    #[test]
    fn kd_roundtrips_through_bytes(kd in kd_strategy(8, 6)) {
        let node = Node::Index { level: 3, kd: kd.clone() };
        let buf = node.encode(8);
        prop_assert_eq!(buf.len(), node.encoded_size(8));
        let (level, decoded) = Node::decode(&buf, 8).unwrap().expect_index();
        prop_assert_eq!(level, 3);
        prop_assert_eq!(decoded, kd);
    }

    /// Truncating a valid page at any offset must produce an error, not
    /// a panic or an out-of-bounds read.
    #[test]
    fn truncated_pages_fail_cleanly(kd in kd_strategy(3, 4), cut in 0usize..200) {
        let buf = Node::Index { level: 1, kd }.encode(3);
        prop_assume!(cut < buf.len());
        let truncated = &buf[..cut];
        // Decode and every view operation either errors or returns
        // something — never panics.
        let _ = Node::decode(truncated, 3);
        if let Ok(NodeView::Index(view)) = NodeView::parse(truncated, 3) {
            let mut out = Vec::new();
            let _ = view.child_ids(&mut out);
            let _ = view.children_overlapping_box(&Rect::unit(3), &mut out);
            let _ = view.children_containing_point(&Point::origin(3), &mut out);
        }
    }
}
