//! Construction-time parameters of a hybrid tree.

use hyt_page::DEFAULT_PAGE_SIZE;

/// Which node-splitting algorithm the tree uses.
///
/// The paper's Figure 5(a,b) compares its EDA-optimal algorithms against
/// the VAMSplit algorithm of White & Jain; both are provided so the
/// experiment can be regenerated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SplitPolicy {
    /// The paper's choice: data nodes split on the maximum-extent
    /// dimension as close to the middle as utilization permits; index
    /// nodes pick the dimension minimizing the expected-disk-access
    /// increase of the best 1-d bipartition (§3.2–§3.3).
    EdaOptimal,
    /// VAMSplit-style: maximum-*variance* dimension, split at the median.
    Vam,
    /// Round-robin split dimension (ablation; the LSDh-tree's default),
    /// split at the median.
    RoundRobin,
    /// Maximum-extent dimension but median position (ablation isolating
    /// the paper's "middle, not median" position rule, §3.2).
    MaxExtentMedian,
}

/// Probability distribution of the range-query side length `r`, used when
/// scoring index-node split dimensions (§3.3): the split minimizes
/// `E_r[(w_d + r)/(s_d + r)]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QuerySizeDist {
    /// All queries have the same side length (the paper's experimental
    /// setting: constant selectivity implies a fixed calibrated side).
    Fixed(f64),
    /// `r` uniform on `[0, max]`; the expectation has the closed form
    /// `1 + ((w - s)/max) * ln((s + max)/s)`.
    Uniform {
        /// Upper end of the uniform range.
        max: f64,
    },
}

impl QuerySizeDist {
    /// The paper's index-split score: expected increase in disk accesses if
    /// a split with overlap `w` happens along a dimension of extent `s`.
    ///
    /// Lower is better. Degenerate extents (`s <= 0`) score worst (1.0 —
    /// both children always accessed together).
    pub fn split_cost(&self, w: f64, s: f64) -> f64 {
        debug_assert!(w >= -1e-9, "negative overlap {w}");
        let w = w.max(0.0);
        if s <= 0.0 {
            return 1.0;
        }
        match *self {
            QuerySizeDist::Fixed(r) => (w + r) / (s + r),
            QuerySizeDist::Uniform { max } => {
                if max <= 0.0 {
                    // Point queries: probability both sides contain the
                    // query point is w / s.
                    return w / s;
                }
                1.0 + ((w - s) / max) * (((s + max) / s).ln())
            }
        }
    }
}

/// Parameters fixed at tree construction.
#[derive(Clone, Debug)]
pub struct HybridTreeConfig {
    /// Disk page size in bytes (paper: 4096).
    pub page_size: usize,
    /// Minimum node utilization guaranteed by splits, as a fraction of
    /// capacity (also the data-node underflow threshold for deletes).
    pub min_fill: f64,
    /// Bits per boundary for encoded-live-space dead-space elimination
    /// (§3.4); `0` disables ELS. The paper finds 4 bits captures most of
    /// the benefit.
    pub els_bits: u8,
    /// Node splitting algorithm.
    pub split_policy: SplitPolicy,
    /// Query-size distribution assumed by index-node splits.
    pub query_size: QuerySizeDist,
    /// Buffer-pool capacity in pages. `0` (the default) disables caching
    /// so every logical access is also physical — the paper's cold-cache
    /// disk-access accounting.
    pub pool_pages: usize,
    /// Capacity (in entries) of the decoded-node cache attached to the
    /// buffer pool. `0` (the default) disables it, so every node visit
    /// pays a full decode — the configuration all correctness baselines
    /// run under. Enabling it never changes query results or logical
    /// I/O accounting, only the number of `Node::decode` invocations.
    pub node_cache_entries: usize,
}

impl Default for HybridTreeConfig {
    fn default() -> Self {
        Self {
            page_size: DEFAULT_PAGE_SIZE,
            min_fill: 0.35,
            els_bits: 4,
            split_policy: SplitPolicy::EdaOptimal,
            query_size: QuerySizeDist::Uniform { max: 1.0 },
            pool_pages: 0,
            node_cache_entries: 0,
        }
    }
}

impl HybridTreeConfig {
    /// Validates ranges that would otherwise fail far from their cause.
    pub(crate) fn validate(&self) -> Result<(), String> {
        if !(0.0..=0.5).contains(&self.min_fill) {
            return Err(format!(
                "min_fill must be in [0, 0.5], got {}",
                self.min_fill
            ));
        }
        if self.els_bits > 16 {
            return Err(format!("els_bits must be <= 16, got {}", self.els_bits));
        }
        if self.page_size < 64 {
            return Err(format!("page_size too small: {}", self.page_size));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_setting() {
        let c = HybridTreeConfig::default();
        assert_eq!(c.page_size, 4096);
        assert_eq!(c.els_bits, 4);
        assert_eq!(c.split_policy, SplitPolicy::EdaOptimal);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_ranges() {
        let bad_fill = HybridTreeConfig {
            min_fill: 0.9,
            ..HybridTreeConfig::default()
        };
        assert!(bad_fill.validate().is_err());
        let bad_bits = HybridTreeConfig {
            els_bits: 32,
            ..HybridTreeConfig::default()
        };
        assert!(bad_bits.validate().is_err());
        let bad_page = HybridTreeConfig {
            page_size: 16,
            ..HybridTreeConfig::default()
        };
        assert!(bad_page.validate().is_err());
    }

    #[test]
    fn fixed_cost_matches_formula() {
        let d = QuerySizeDist::Fixed(0.1);
        // No overlap: r / (s + r).
        assert!((d.split_cost(0.0, 0.4) - 0.1 / 0.5).abs() < 1e-12);
        // Full overlap (w = s): cost 1.
        assert!((d.split_cost(0.4, 0.4) - 1.0).abs() < 1e-12);
        // Monotone in w.
        assert!(d.split_cost(0.1, 0.4) < d.split_cost(0.2, 0.4));
        // Decreasing in s for fixed w.
        assert!(d.split_cost(0.05, 0.8) < d.split_cost(0.05, 0.4));
    }

    #[test]
    fn uniform_cost_properties() {
        let d = QuerySizeDist::Uniform { max: 1.0 };
        // Full overlap costs 1 regardless of s.
        assert!((d.split_cost(0.3, 0.3) - 1.0).abs() < 1e-9);
        // No overlap costs strictly less than 1 and decreases with s.
        let c_small = d.split_cost(0.0, 0.1);
        let c_big = d.split_cost(0.0, 0.9);
        assert!(c_small < 1.0 && c_big < c_small);
        // Monotone in w.
        assert!(d.split_cost(0.05, 0.5) < d.split_cost(0.25, 0.5));
    }

    #[test]
    fn uniform_cost_agrees_with_numeric_integral() {
        let d = QuerySizeDist::Uniform { max: 1.0 };
        let (w, s) = (0.07, 0.42);
        let n = 100_000;
        let numeric: f64 = (0..n)
            .map(|i| {
                let r = (i as f64 + 0.5) / n as f64;
                (w + r) / (s + r)
            })
            .sum::<f64>()
            / n as f64;
        assert!((d.split_cost(w, s) - numeric).abs() < 1e-6);
    }

    #[test]
    fn degenerate_extent_scores_worst() {
        for d in [
            QuerySizeDist::Fixed(0.1),
            QuerySizeDist::Uniform { max: 1.0 },
        ] {
            assert_eq!(d.split_cost(0.0, 0.0), 1.0);
        }
    }
}
