//! Offline integrity verification (the `hyt scrub` subcommand): checks
//! every page checksum and the tree's structural invariants by reading
//! the raw page file directly — no buffer pool, no [`HybridTree`] in
//! memory, and strictly read-only. Scrubbing a damaged index never makes
//! it worse.
//!
//! Two entry points:
//!
//! * [`scrub_pages`] — frame-level scan: every slot is classified as
//!   live (header and payload checksums verify), free (zeroed), or
//!   damaged, given only the page file and its logical page size.
//! * [`scrub_index`] — everything above plus the catalog: validates both
//!   catalog section checksums, walks the tree from the root checking
//!   node decode, level consistency, double references, kd-region
//!   containment of data points, ELS conservativeness, the entry count
//!   against the catalog, reachability of every live page, and that no
//!   page carries a write epoch newer than the catalog.
//!
//! [`HybridTree`]: crate::HybridTree

use crate::els::ElsTable;
use crate::node::Node;
use crate::persist::read_catalog;
use hyt_geom::{Point, Rect};
use hyt_index::IndexResult;
use hyt_page::{
    inspect_frame, FileStorage, FrameStatus, PageError, PageId, Storage, FRAME_HEADER_BYTES,
};
use std::collections::{HashMap, HashSet};
use std::path::Path;

/// One damaged page slot.
#[derive(Debug)]
pub struct PageDamage {
    /// Which slot.
    pub page: PageId,
    /// What the frame inspection found.
    pub detail: String,
}

/// Catalog-level findings from [`scrub_index`].
#[derive(Debug)]
pub struct CatalogScrub {
    /// Entry count the catalog records.
    pub len: usize,
    /// Tree height the catalog records.
    pub height: usize,
    /// Storage write epoch at the last commit.
    pub epoch: u64,
    /// Structural problems found; empty means the tree checks out.
    pub issues: Vec<String>,
}

/// The result of a scrub pass.
#[derive(Debug)]
pub struct ScrubReport {
    /// Logical page size (payload bytes per slot).
    pub page_size: usize,
    /// Total slots in the page file.
    pub slots: u32,
    /// Slots whose checksums verify.
    pub live: usize,
    /// Zeroed (freed) slots.
    pub free: usize,
    /// Newest write epoch seen on any live page.
    pub max_live_epoch: u64,
    /// Slots that failed verification.
    pub damage: Vec<PageDamage>,
    /// Catalog findings; `None` for a pages-only scrub.
    pub catalog: Option<CatalogScrub>,
}

impl ScrubReport {
    /// Whether the scrub found nothing wrong.
    pub fn is_clean(&self) -> bool {
        self.damage.is_empty() && self.catalog.as_ref().is_none_or(|c| c.issues.is_empty())
    }

    /// Total number of problems found.
    pub fn problem_count(&self) -> usize {
        self.damage.len() + self.catalog.as_ref().map_or(0, |c| c.issues.len())
    }
}

/// Frame scan shared by both scrub modes: classifies every slot and
/// collects the payload of each verified-live page for the tree walk.
struct FrameScan {
    report: ScrubReport,
    payloads: HashMap<PageId, Vec<u8>>,
}

fn scan_frames(pages_path: &Path, logical_page_size: usize) -> Result<FrameScan, PageError> {
    let slot_size = logical_page_size + FRAME_HEADER_BYTES;
    let storage = FileStorage::open(pages_path, slot_size)?;
    let slots = storage.page_slots();
    let mut scan = FrameScan {
        report: ScrubReport {
            page_size: logical_page_size,
            slots,
            live: 0,
            free: 0,
            max_live_epoch: 0,
            damage: Vec::new(),
            catalog: None,
        },
        payloads: HashMap::new(),
    };
    let mut buf = vec![0u8; slot_size];
    for i in 0..slots {
        let id = PageId(i);
        if let Err(e) = storage.read(id, &mut buf) {
            scan.report.damage.push(PageDamage {
                page: id,
                detail: format!("unreadable: {e}"),
            });
            continue;
        }
        match inspect_frame(id, &buf) {
            FrameStatus::Live { epoch, payload_len } => {
                scan.report.live += 1;
                scan.report.max_live_epoch = scan.report.max_live_epoch.max(epoch);
                scan.payloads.insert(
                    id,
                    buf[FRAME_HEADER_BYTES..FRAME_HEADER_BYTES + payload_len as usize].to_vec(),
                );
            }
            FrameStatus::Free => scan.report.free += 1,
            FrameStatus::Corrupt(detail) => {
                scan.report.damage.push(PageDamage { page: id, detail })
            }
        }
    }
    Ok(scan)
}

/// Verifies every page frame in `pages_path` (magic, page id, both
/// CRC-32s) without consulting a catalog. `logical_page_size` is the
/// tree's configured page size, i.e. the payload bytes per slot.
pub fn scrub_pages<P: AsRef<Path>>(
    pages_path: P,
    logical_page_size: usize,
) -> IndexResult<ScrubReport> {
    let scan = scan_frames(pages_path.as_ref(), logical_page_size)?;
    Ok(scan.report)
}

/// Verifies page frames *and* the catalog plus tree structure (see the
/// module docs for the full checklist). Returns `Err` only when the
/// files cannot be scrubbed at all (e.g. the catalog core section is
/// unreadable, so the page size is unknown); damage found inside a
/// scrubbable index is reported in the [`ScrubReport`].
pub fn scrub_index<P: AsRef<Path>, Q: AsRef<Path>>(
    pages_path: P,
    meta_path: Q,
) -> IndexResult<ScrubReport> {
    let catalog = read_catalog(meta_path.as_ref())?;
    let core = catalog.core;
    let mut scan = scan_frames(pages_path.as_ref(), core.cfg.page_size)?;
    let mut issues = Vec::new();
    let els = match catalog.els {
        Ok(els) => Some(els),
        Err(e) => {
            issues.push(format!("catalog ELS section damaged: {e}"));
            None
        }
    };
    if scan.report.max_live_epoch > core.epoch {
        issues.push(format!(
            "page file has writes from epoch {} but the catalog committed at epoch {} \
             (pages diverged after the last commit)",
            scan.report.max_live_epoch, core.epoch
        ));
    }
    if scan.report.live != core.live_pages as usize {
        issues.push(format!(
            "{} live pages on disk, catalog records {}",
            scan.report.live, core.live_pages
        ));
    }

    let root_region = core
        .global_br
        .clone()
        .unwrap_or_else(|| Rect::from_point(&Point::origin(core.dim)));
    let mut walk = Walk {
        payloads: &scan.payloads,
        dim: core.dim,
        els: els.as_ref(),
        seen: HashSet::new(),
        issues: Vec::new(),
    };
    let (total, _) = walk.visit(core.root, &root_region, (core.height - 1) as u16);
    issues.append(&mut walk.issues);
    if total != core.len {
        issues.push(format!(
            "tree walk reached {total} entries, catalog records {}",
            core.len
        ));
    }
    let seen = walk.seen;
    for (&id, _) in scan.payloads.iter() {
        if !seen.contains(&id) {
            issues.push(format!("{id}: live page unreachable from the root"));
        }
    }
    issues.sort();
    scan.report.catalog = Some(CatalogScrub {
        len: core.len,
        height: core.height,
        epoch: core.epoch,
        issues,
    });
    Ok(scan.report)
}

/// Recursive structure walk over the verified-live payload map.
struct Walk<'a> {
    payloads: &'a HashMap<PageId, Vec<u8>>,
    dim: usize,
    els: Option<&'a ElsTable>,
    seen: HashSet<PageId>,
    issues: Vec<String>,
}

impl Walk<'_> {
    /// Returns `(entry count, live bounding box)` for the subtree at
    /// `pid`; structural problems are recorded rather than aborting, so
    /// one damaged subtree does not mask damage elsewhere.
    fn visit(&mut self, pid: PageId, region: &Rect, expected_level: u16) -> (usize, Option<Rect>) {
        if !self.seen.insert(pid) {
            self.issues
                .push(format!("{pid}: page referenced more than once"));
            return (0, None);
        }
        let Some(payload) = self.payloads.get(&pid) else {
            self.issues
                .push(format!("{pid}: referenced page is not live on disk"));
            return (0, None);
        };
        let node = match Node::decode(payload, self.dim) {
            Ok(n) => n,
            Err(e) => {
                self.issues.push(format!("{pid}: undecodable node: {e}"));
                return (0, None);
            }
        };
        match node {
            Node::Data(entries) => {
                if expected_level != 0 {
                    self.issues
                        .push(format!("{pid}: data node at level {expected_level}"));
                    return (0, None);
                }
                let mut bb: Option<Rect> = None;
                let mut escaped = false;
                for e in &entries {
                    escaped |= !region.contains_point(&e.point);
                    let p = Rect::from_point(&e.point);
                    bb = Some(match bb {
                        None => p,
                        Some(b) => b.union(&p),
                    });
                }
                if escaped {
                    self.issues
                        .push(format!("{pid}: data point outside its kd region"));
                }
                (entries.len(), bb)
            }
            Node::Index { level, kd } => {
                if level != expected_level || expected_level == 0 {
                    self.issues.push(format!(
                        "{pid}: index node at level {level}, expected {expected_level}"
                    ));
                    return (0, None);
                }
                let mut total = 0usize;
                let mut acc: Option<Rect> = None;
                for (child, child_region) in kd.children_with_regions(region) {
                    let (count, live) = self.visit(child, &child_region, expected_level - 1);
                    if let Some(live) = &live {
                        if let Some(els) = self.els {
                            match els.exact_live(child) {
                                Some(ex) if ex.contains_rect(live) => {}
                                Some(_) => self.issues.push(format!(
                                    "{child}: ELS entry does not cover the live data"
                                )),
                                None => self
                                    .issues
                                    .push(format!("{child}: non-empty subtree missing from ELS")),
                            }
                        }
                        acc = Some(match acc {
                            None => live.clone(),
                            Some(a) => a.union(live),
                        });
                    }
                    total += count;
                }
                (total, acc)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HybridTreeConfig;
    use crate::tree::HybridTree;
    use hyt_index::MultidimIndex;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("hyt_scrub_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn build(name: &str, n: usize) -> (std::path::PathBuf, std::path::PathBuf, usize) {
        let pages = tmp(&format!("{name}.pages"));
        let meta = tmp(&format!("{name}.meta"));
        let cfg = HybridTreeConfig {
            page_size: 512,
            els_bits: 4,
            ..HybridTreeConfig::default()
        };
        let page_size = cfg.page_size;
        let mut rng = StdRng::seed_from_u64(42);
        let mut t = HybridTree::create_durable(4, cfg, &pages).unwrap();
        for i in 0..n {
            let p = Point::new((0..4).map(|_| rng.gen::<f32>()).collect());
            t.insert(p, i as u64).unwrap();
        }
        t.persist(&meta).unwrap();
        (pages, meta, page_size)
    }

    #[test]
    fn clean_index_scrubs_clean() {
        let (pages, meta, page_size) = build("clean", 600);
        let rep = scrub_pages(&pages, page_size).unwrap();
        assert!(rep.is_clean(), "{:?}", rep.damage);
        assert!(rep.live > 1);
        let rep = scrub_index(&pages, &meta).unwrap();
        assert!(rep.is_clean(), "{:?}", rep);
        assert_eq!(rep.catalog.as_ref().unwrap().len, 600);
        std::fs::remove_file(&pages).ok();
        std::fs::remove_file(&meta).ok();
    }

    #[test]
    fn every_page_bit_flip_is_detected() {
        let (pages, meta, page_size) = build("flip", 400);
        let clean = std::fs::read(&pages).unwrap();
        let slot = page_size + FRAME_HEADER_BYTES;
        // Flip one bit somewhere in every slot of the file; the scrub
        // must flag exactly the slots whose live bytes were damaged.
        let rep = scrub_index(&pages, &meta).unwrap();
        let live_before = rep.live;
        for s in 0..(clean.len() / slot) {
            let mut bad = clean.clone();
            let pos = s * slot + (s * 13) % slot;
            bad[pos] ^= 0x10;
            std::fs::write(&pages, &bad).unwrap();
            let was_zero = clean[pos] == 0 && {
                // A flip inside a freed (all-zero) slot's payload region
                // is outside any checksum; only header bytes matter there.
                let off = pos % slot;
                let header_zero = clean[s * slot..s * slot + FRAME_HEADER_BYTES]
                    .iter()
                    .all(|&b| b == 0);
                header_zero && off >= FRAME_HEADER_BYTES
            };
            let rep = scrub_index(&pages, &meta).unwrap();
            if was_zero {
                // Damage to a freed slot's payload is harmless by design.
                continue;
            }
            assert!(
                !rep.is_clean(),
                "flip at byte {pos} (slot {s}) went undetected"
            );
            assert!(rep.live < live_before || rep.problem_count() > 0);
        }
        std::fs::write(&pages, &clean).unwrap();
        assert!(scrub_index(&pages, &meta).unwrap().is_clean());
        std::fs::remove_file(&pages).ok();
        std::fs::remove_file(&meta).ok();
    }

    #[test]
    fn truncated_page_file_is_flagged() {
        let (pages, meta, page_size) = build("trunc", 300);
        let clean = std::fs::read(&pages).unwrap();
        let slot = page_size + FRAME_HEADER_BYTES;
        // Drop the last slot entirely (file still a multiple of the slot
        // size, as after a partial extension that never landed).
        std::fs::write(&pages, &clean[..clean.len() - slot]).unwrap();
        let rep = scrub_index(&pages, &meta).unwrap();
        assert!(!rep.is_clean(), "lost slot went undetected");
        std::fs::remove_file(&pages).ok();
        std::fs::remove_file(&meta).ok();
    }

    #[test]
    fn scrub_never_modifies_the_files() {
        let (pages, meta, page_size) = build("ro", 200);
        let before_pages = std::fs::read(&pages).unwrap();
        let before_meta = std::fs::read(&meta).unwrap();
        scrub_pages(&pages, page_size).unwrap();
        scrub_index(&pages, &meta).unwrap();
        assert_eq!(std::fs::read(&pages).unwrap(), before_pages);
        assert_eq!(std::fs::read(&meta).unwrap(), before_meta);
        std::fs::remove_file(&pages).ok();
        std::fs::remove_file(&meta).ok();
    }
}
