//! The hybrid tree proper: construction, insertion, deletion, and search.

use crate::config::HybridTreeConfig;
use crate::els::ElsTable;
use crate::kdtree::KdTree;
use crate::node::{data_capacity, DataEntry, Node, INDEX_HEADER_BYTES};
use crate::split::{build_kd, split_data, split_index};
use crate::view::NodeView;
use hyt_exec::{Child, EntrySink, KnnCursor, NearQuery, NodeExpand, NodeKind};
use hyt_geom::{Coord, Metric, Point, Rect};
use hyt_index::{
    check_dim, IndexError, IndexResult, KnnStream, MultidimIndex, QueryContext, QueryOutcome,
    StructureStats,
};
use hyt_page::{
    BufferPool, IoStats, MemStorage, NodeCacheStats, PageError, PageId, PageResult, Storage,
};
use std::sync::Arc;

/// A split propagating up from a child: the child kept the lower half and
/// `new_page` received the upper half, separated along `dim` with split
/// positions `lsp`/`rsp`.
struct SplitPost {
    dim: u16,
    lsp: Coord,
    rsp: Coord,
    new_page: PageId,
}

/// Outcome of a recursive delete.
enum DelOutcome {
    /// No matching entry beneath this node.
    NotFound,
    /// Entry removed; carries data entries orphaned by eliminated nodes.
    Done(Vec<DataEntry>),
    /// Entry removed *and* this node fell below utilization and was
    /// dissolved; the caller must unlink and free it.
    Eliminated(Vec<DataEntry>),
}

/// The hybrid tree (paper §3): a paged feature-space index with 1-d
/// splits, kd-tree intra-node organization, overlapping partitions when
/// clean splits would cascade, EDA-optimal split selection, and encoded
/// live space dead-space elimination.
///
/// See the [crate docs](crate) for an overview and example.
pub struct HybridTree<S: Storage = MemStorage> {
    pub(crate) pool: BufferPool<S>,
    pub(crate) root: PageId,
    /// Number of levels; 1 means the root is a data node.
    pub(crate) height: usize,
    pub(crate) dim: usize,
    pub(crate) len: usize,
    pub(crate) cfg: HybridTreeConfig,
    /// Max entries per data node (derived from the page size).
    pub(crate) data_cap: usize,
    /// Utilization quota for data nodes.
    pub(crate) data_min: usize,
    /// Bounding box of everything ever inserted (the root's region).
    pub(crate) global_br: Option<Rect>,
    pub(crate) els: ElsTable,
    rr_state: usize,
}

impl HybridTree<MemStorage> {
    /// Creates an empty tree over in-memory pages.
    pub fn new(dim: usize, cfg: HybridTreeConfig) -> IndexResult<Self> {
        let storage = MemStorage::with_page_size(cfg.page_size);
        Self::with_storage(dim, cfg, storage)
    }
}

impl<S: Storage> HybridTree<S> {
    /// Creates an empty tree over the given page store (e.g. a
    /// [`FileStorage`](hyt_page::FileStorage) for an on-disk index).
    pub fn with_storage(dim: usize, cfg: HybridTreeConfig, storage: S) -> IndexResult<Self> {
        cfg.validate().map_err(IndexError::Internal)?;
        if dim == 0 || dim > u16::MAX as usize {
            return Err(IndexError::Internal(format!(
                "unsupported dimensionality {dim}"
            )));
        }
        if storage.page_size() != cfg.page_size {
            return Err(IndexError::Internal(format!(
                "storage page size {} != configured {}",
                storage.page_size(),
                cfg.page_size
            )));
        }
        let data_cap = data_capacity(cfg.page_size, dim);
        if data_cap < 2 {
            return Err(IndexError::Internal(format!(
                "page size {} cannot hold 2 entries of dimension {dim}",
                cfg.page_size
            )));
        }
        let data_min = ((cfg.min_fill * data_cap as f64).floor() as usize).max(1);
        let els = ElsTable::new(dim, cfg.els_bits);
        let pool = BufferPool::with_node_cache(storage, cfg.pool_pages, cfg.node_cache_entries);
        let root = pool.allocate()?;
        let empty = Node::Data(Vec::new());
        pool.write(root, &empty.encode(dim))?;
        Ok(Self {
            pool,
            root,
            height: 1,
            dim,
            len: 0,
            cfg,
            data_cap,
            data_min,
            global_br: None,
            els,
            rr_state: 0,
        })
    }

    /// Assembles a tree from parts already written to storage (the bulk
    /// loader's back door; invariants are the caller's responsibility
    /// and are checked by its tests).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        pool: BufferPool<S>,
        root: PageId,
        height: usize,
        dim: usize,
        len: usize,
        cfg: HybridTreeConfig,
        data_cap: usize,
        data_min: usize,
        global_br: Option<Rect>,
        els: ElsTable,
    ) -> Self {
        Self {
            pool,
            root,
            height,
            dim,
            len,
            cfg,
            data_cap,
            data_min,
            global_br,
            els,
            rr_state: 0,
        }
    }

    /// The tree's configuration.
    pub fn config(&self) -> &HybridTreeConfig {
        &self.cfg
    }

    /// Height in levels (1 = the root is a data node).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Max entries per data page (the paper's dimensionality-dependent
    /// leaf capacity; e.g. 15 for 64-d vectors on 4 KiB pages).
    pub fn data_capacity(&self) -> usize {
        self.data_cap
    }

    /// Bytes the memory-resident ELS table would occupy when quantized
    /// (the paper's <1%-of-database overhead figure).
    pub fn els_overhead_bytes(&self) -> usize {
        self.els.encoded_bytes()
    }

    /// Exact-match query: oids of entries whose point equals `p`.
    pub fn point_query(&self, p: &Point) -> IndexResult<Vec<u64>> {
        check_dim(self.dim, p.dim())?;
        if self.len == 0 {
            return Ok(Vec::new());
        }
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        let mut kids = Vec::new();
        let mut io = IoStats::default();
        while let Some(pid) = stack.pop() {
            kids.clear();
            self.pool
                .read_tracked_with(pid, &mut io, |buf| -> PageResult<()> {
                    match NodeView::parse(buf, self.dim)? {
                        NodeView::Data(view) => view.filter_point(p, &mut out),
                        NodeView::Index(view) => view.children_containing_point(p, &mut kids)?,
                    }
                    Ok(())
                })??;
            stack.extend(kids.iter().filter(|c| self.els.may_contain(**c, p)));
        }
        Ok(out)
    }

    /// Runs the full structural invariant checker (containment,
    /// utilization, page-size, ELS conservativeness, level consistency,
    /// entry count). Intended for tests; `O(size of tree)`.
    pub fn check_invariants(&self) -> IndexResult<()> {
        crate::verify::check(self)
    }

    /// Flushes dirty pages and fsyncs the store without committing a
    /// catalog — simulates the crash window between page writes and the
    /// next [`persist`](Self::persist).
    #[cfg(test)]
    pub(crate) fn flush_for_test(&self) {
        self.pool.sync_storage().expect("flush");
    }

    /// Allocates (and abandons) a page, simulating a crash between an
    /// allocation and the commit that would have referenced it.
    #[cfg(test)]
    pub(crate) fn leak_page_for_test(&self) {
        self.pool.allocate().expect("allocate");
        self.pool.sync_storage().expect("flush");
    }

    /// Live page count as seen by the backing store.
    #[cfg(test)]
    pub(crate) fn pool_live_pages_for_test(&self) -> usize {
        self.pool.live_pages()
    }

    // ------------------------------------------------------------------
    // internals
    // ------------------------------------------------------------------

    pub(crate) fn root_region(&self) -> Rect {
        self.global_br
            .clone()
            .unwrap_or_else(|| Rect::from_point(&Point::origin(self.dim)))
    }

    /// Owned node read for mutation paths: decodes straight from the
    /// borrowed pool frame (no payload copy before decode).
    pub(crate) fn read_node_owned(&self, pid: PageId) -> IndexResult<Node> {
        let mut io = IoStats::default();
        Ok(self
            .pool
            .read_tracked_with(pid, &mut io, |buf| Node::decode(buf, self.dim))??)
    }

    /// Governed node read: `ctx` must admit the fetch (cancel, deadline,
    /// read budget) or this fails with an interrupt before touching the
    /// pool. Returns the shared decoded form: with the decoded-node
    /// cache enabled a repeat visit skips `Node::decode` entirely while
    /// still counting one logical read.
    pub(crate) fn read_node_ctx(
        &self,
        pid: PageId,
        io: &mut IoStats,
        ctx: &QueryContext,
    ) -> IndexResult<Arc<Node>> {
        self.pool
            .read_decoded_ctx(pid, io, ctx, |buf| Ok(Node::decode(buf, self.dim)?))
    }

    /// Resident and pinned frame counts of the tree's buffer pool
    /// (`(resident, pinned)`), exposed for resource-governance tests:
    /// an interrupted traversal must leave no pins behind.
    pub fn pool_residency(&self) -> (usize, usize) {
        (self.pool.resident_frames(), self.pool.pinned_frames())
    }

    fn write_node(&mut self, pid: PageId, node: &Node) -> IndexResult<()> {
        let buf = node.encode(self.dim);
        if buf.len() > self.cfg.page_size {
            return Err(IndexError::Internal(format!(
                "node for {pid} is {} bytes, page is {} — missing split",
                buf.len(),
                self.cfg.page_size
            )));
        }
        self.pool.write(pid, &buf)?;
        Ok(())
    }

    fn insert_entry(&mut self, point: Point, oid: u64) -> IndexResult<()> {
        match &mut self.global_br {
            Some(r) => r.extend_to_point(&point),
            None => self.global_br = Some(Rect::from_point(&point)),
        }
        let region = self.root_region();
        if let Some(post) = self.insert_rec(self.root, &region, &point, oid)? {
            // Root split: grow the tree by one level.
            let new_level = self.height as u16;
            let kd = KdTree::split(
                post.dim,
                post.lsp,
                post.rsp,
                KdTree::leaf(self.root),
                KdTree::leaf(post.new_page),
            );
            let new_root = self.pool.allocate()?;
            self.write_node(
                new_root,
                &Node::Index {
                    level: new_level,
                    kd,
                },
            )?;
            self.root = new_root;
            self.height += 1;
        }
        Ok(())
    }

    fn insert_rec(
        &mut self,
        pid: PageId,
        region: &Rect,
        p: &Point,
        oid: u64,
    ) -> IndexResult<Option<SplitPost>> {
        match self.read_node_owned(pid)? {
            Node::Data(mut entries) => {
                entries.push(DataEntry {
                    point: p.clone(),
                    oid,
                });
                if entries.len() > self.data_cap {
                    let ds = split_data(
                        entries,
                        region,
                        self.dim,
                        self.data_min,
                        self.cfg.split_policy,
                        &mut self.rr_state,
                    );
                    let new_pid = self.pool.allocate()?;
                    let d = ds.dim as usize;
                    self.els.set_from_points(
                        pid,
                        ds.left.iter().map(|e| &e.point),
                        &region.clamp_above(d, ds.pos),
                    );
                    self.els.set_from_points(
                        new_pid,
                        ds.right.iter().map(|e| &e.point),
                        &region.clamp_below(d, ds.pos),
                    );
                    self.write_node(pid, &Node::Data(ds.left))?;
                    self.write_node(new_pid, &Node::Data(ds.right))?;
                    Ok(Some(SplitPost {
                        dim: ds.dim,
                        lsp: ds.pos,
                        rsp: ds.pos,
                        new_page: new_pid,
                    }))
                } else {
                    self.write_node(pid, &Node::Data(entries))?;
                    Ok(None)
                }
            }
            Node::Index { level, mut kd } => {
                let choice = kd.choose_insert_leaf(region, p);
                match self.insert_rec(choice.child, &choice.region, p, oid)? {
                    Some(post) => {
                        // Post the child split: the kd leaf becomes an
                        // internal kd node over the two halves.
                        let replaced = kd.replace_leaf(
                            choice.child,
                            KdTree::split(
                                post.dim,
                                post.lsp,
                                post.rsp,
                                KdTree::leaf(choice.child),
                                KdTree::leaf(post.new_page),
                            ),
                        );
                        debug_assert!(replaced, "split child not found in parent kd-tree");
                        if INDEX_HEADER_BYTES + kd.encoded_size() > self.cfg.page_size {
                            self.split_index_node(pid, level, kd, region).map(Some)
                        } else {
                            self.write_node(pid, &Node::Index { level, kd })?;
                            Ok(None)
                        }
                    }
                    None => {
                        self.els.extend(choice.child, p, &choice.region);
                        if choice.enlarged {
                            self.write_node(pid, &Node::Index { level, kd })?;
                        }
                        Ok(None)
                    }
                }
            }
        }
    }

    fn split_index_node(
        &mut self,
        pid: PageId,
        level: u16,
        kd: KdTree,
        region: &Rect,
    ) -> IndexResult<SplitPost> {
        let children = kd.children_with_regions(region);
        let candidates = kd.split_dims();
        let n = children.len();
        let m = ((self.cfg.min_fill * n as f64).floor() as usize).max(1);
        let is = if self.cfg.split_policy == crate::config::SplitPolicy::Vam {
            // Figure 5(a,b) comparator: VAMSplit at every level.
            crate::split::split_index_vam(&children, m)
        } else {
            split_index(&children, region, &candidates, m, &self.cfg.query_size)
        };
        // Each side keeps the pruned original kd structure (no rebuild —
        // rebuilding would manufacture overlap the incremental structure
        // never had). Fall back to a fresh build only if pruning fails.
        let keep_left: std::collections::HashSet<_> = is.left.iter().map(|(p, _)| *p).collect();
        let keep_right: std::collections::HashSet<_> = is.right.iter().map(|(p, _)| *p).collect();
        let kd_left = kd
            .restricted_to(&keep_left)
            .unwrap_or_else(|| build_kd(&is.left, &self.cfg.query_size));
        let kd_right = kd
            .restricted_to(&keep_right)
            .unwrap_or_else(|| build_kd(&is.right, &self.cfg.query_size));
        let new_pid = self.pool.allocate()?;

        // Live space of each half = union of its children's live spaces.
        let live_of = |els: &ElsTable, group: &[(PageId, Rect)]| -> Vec<Rect> {
            group
                .iter()
                .map(|(cpid, creg)| els.exact_live(*cpid).unwrap_or_else(|| creg.clone()))
                .collect()
        };
        let left_live = live_of(&self.els, &is.left);
        let right_live = live_of(&self.els, &is.right);
        let d = is.dim as usize;
        self.els
            .set_from_rects(pid, left_live.iter(), &region.clamp_above(d, is.lsp));
        self.els
            .set_from_rects(new_pid, right_live.iter(), &region.clamp_below(d, is.rsp));

        self.write_node(pid, &Node::Index { level, kd: kd_left })?;
        self.write_node(
            new_pid,
            &Node::Index {
                level,
                kd: kd_right,
            },
        )?;
        Ok(SplitPost {
            dim: is.dim,
            lsp: is.lsp,
            rsp: is.rsp,
            new_page: new_pid,
        })
    }

    fn delete_rec(
        &mut self,
        pid: PageId,
        region: &Rect,
        p: &Point,
        oid: u64,
        is_root: bool,
    ) -> IndexResult<DelOutcome> {
        match self.read_node_owned(pid)? {
            Node::Data(mut entries) => {
                let Some(i) = entries
                    .iter()
                    .position(|e| e.oid == oid && e.point.same_coords(p))
                else {
                    return Ok(DelOutcome::NotFound);
                };
                entries.swap_remove(i);
                if !is_root && entries.len() < self.data_min {
                    // Eliminate-and-reinsert (paper §3.5, after [11]).
                    return Ok(DelOutcome::Eliminated(entries));
                }
                self.els
                    .set_from_points(pid, entries.iter().map(|e| &e.point), region);
                self.write_node(pid, &Node::Data(entries))?;
                Ok(DelOutcome::Done(Vec::new()))
            }
            Node::Index { level, mut kd } => {
                for (child, child_region) in kd.children_containing_point(region, p) {
                    if !self.els.may_contain(child, p) {
                        continue;
                    }
                    match self.delete_rec(child, &child_region, p, oid, false)? {
                        DelOutcome::NotFound => continue,
                        DelOutcome::Done(orphans) => return Ok(DelOutcome::Done(orphans)),
                        DelOutcome::Eliminated(mut orphans) => {
                            self.pool.free(child)?;
                            self.els.remove(child);
                            if !kd.remove_leaf(child) {
                                // kd was a single leaf: this node is empty.
                                debug_assert_eq!(kd.fanout(), 1);
                                if is_root {
                                    self.write_node(pid, &Node::Data(Vec::new()))?;
                                    self.height = 1;
                                    return Ok(DelOutcome::Done(orphans));
                                }
                                return Ok(DelOutcome::Eliminated(orphans));
                            }
                            if kd.fanout() < 2 && !is_root {
                                // Dissolve the underflowing directory node;
                                // its remaining subtree reinserts from data.
                                let rest = kd.child_ids()[0];
                                orphans.extend(self.collect_and_free(rest)?);
                                return Ok(DelOutcome::Eliminated(orphans));
                            }
                            self.write_node(pid, &Node::Index { level, kd })?;
                            return Ok(DelOutcome::Done(orphans));
                        }
                    }
                }
                Ok(DelOutcome::NotFound)
            }
        }
    }

    /// Frees an entire subtree, returning its data entries for reinsertion.
    fn collect_and_free(&mut self, pid: PageId) -> IndexResult<Vec<DataEntry>> {
        let mut out = Vec::new();
        let mut stack = vec![pid];
        while let Some(pid) = stack.pop() {
            match self.read_node_owned(pid)? {
                Node::Data(entries) => out.extend(entries),
                Node::Index { kd, .. } => stack.extend(kd.child_ids()),
            }
            self.pool.free(pid)?;
            self.els.remove(pid);
        }
        Ok(out)
    }

    fn maybe_shrink_root(&mut self) -> IndexResult<()> {
        while self.height > 1 {
            let node = self.read_node_owned(self.root)?;
            match node {
                Node::Index { kd, .. } if kd.fanout() == 1 => {
                    let child = kd.child_ids()[0];
                    self.pool.free(self.root)?;
                    self.els.remove(self.root);
                    self.els.remove(child); // the new root needs no entry
                    self.root = child;
                    self.height -= 1;
                }
                _ => break,
            }
        }
        Ok(())
    }
}

/// [`NodeExpand`] node reference for the hybrid tree. Box queries need
/// only the page id; distance-bounded traversal tracks either the node's
/// depth (ELS enabled: quantized live-space boxes bound children in
/// absolute coordinates, and depth alone tells data and index pages
/// apart in the balanced tree) or the kd-region handed down from the
/// parent (ELS disabled).
struct HyRef {
    pid: PageId,
    depth: usize,
    region: Option<Rect>,
}

/// [`NodeExpand`] adapter for the hybrid tree. Each query kind keeps the
/// exact read path of the former engine-local loop: box queries and
/// ELS-mode range directory levels navigate the serialized node in place
/// (paper §3.1: kd-based intra-node search, zero-copy), while kNN and
/// data pages go through the governed decoded-node path.
struct HyExpand<'t, S: Storage> {
    tree: &'t HybridTree<S>,
}

impl<S: Storage> NodeExpand for HyExpand<'_, S> {
    type Ref = HyRef;

    fn node_id(&self, r: &HyRef) -> u64 {
        u64::from(r.pid.0)
    }

    fn roots(&self) -> Vec<HyRef> {
        if self.tree.len == 0 {
            return Vec::new();
        }
        vec![HyRef {
            pid: self.tree.root,
            depth: 0,
            region: if self.tree.els.enabled() {
                None
            } else {
                Some(self.tree.root_region())
            },
        }]
    }

    fn expand_box(
        &self,
        r: HyRef,
        rect: &Rect,
        io: &mut IoStats,
        ctx: &QueryContext,
        out: &mut Vec<u64>,
        children: &mut Vec<HyRef>,
    ) -> IndexResult<NodeKind> {
        let t = self.tree;
        let mut kids: Vec<PageId> = Vec::new();
        // Navigate the serialized node in place (paper §3.1: kd-based
        // intra-node search beats scanning an array of BRs), borrowing
        // the resident frame instead of copying the page out first.
        let is_leaf = t
            .pool
            .read_tracked_ctx_with(r.pid, io, ctx, |buf| -> PageResult<bool> {
                match NodeView::parse(buf, t.dim)? {
                    NodeView::Data(view) => {
                        view.filter_box(rect, out);
                        Ok(true)
                    }
                    NodeView::Index(view) => {
                        // Two-step overlap check (paper §3.4): the kd
                        // split positions prune first; the quantized
                        // live-space BR is consulted only for children
                        // that survive.
                        view.children_overlapping_box(rect, &mut kids)?;
                        Ok(false)
                    }
                }
            })
            .and_then(|r| r)?;
        if is_leaf {
            return Ok(NodeKind::Leaf);
        }
        children.extend(
            kids.into_iter()
                .filter(|c| t.els.may_intersect(*c, rect))
                .map(|pid| HyRef {
                    pid,
                    depth: 0,
                    region: None,
                }),
        );
        Ok(NodeKind::Index)
    }

    fn expand_range(
        &self,
        r: HyRef,
        nq: NearQuery<'_>,
        io: &mut IoStats,
        ctx: &QueryContext,
        sink: &mut dyn EntrySink,
        children: &mut Vec<Child<HyRef>>,
    ) -> IndexResult<NodeKind> {
        let t = self.tree;
        if t.els.enabled() {
            // Region-free traversal: index pages are walked in serialized
            // form, data pages go through the decoded-node path (shared,
            // cacheable — this is the scan-heavy side of the query).
            let leaf_depth = t.height - 1;
            if r.depth == leaf_depth {
                let node = t.read_node_ctx(r.pid, io, ctx)?;
                let Node::Data(entries) = &*node else {
                    return Err(IndexError::Storage(PageError::Corrupt(format!(
                        "{}: expected a data node at the leaf level",
                        r.pid
                    ))));
                };
                for e in entries {
                    sink.offer(e.oid, &e.point);
                }
                return Ok(NodeKind::Leaf);
            }
            let mut kids: Vec<PageId> = Vec::new();
            t.pool
                .read_tracked_ctx_with(r.pid, io, ctx, |buf| -> PageResult<()> {
                    match NodeView::parse(buf, t.dim)? {
                        NodeView::Index(view) => view.child_ids(&mut kids),
                        NodeView::Data(_) => Err(PageError::Corrupt(format!(
                            "{}: expected an index node above the leaf level",
                            r.pid
                        ))),
                    }
                })
                .and_then(|x| x)?;
            children.extend(kids.into_iter().map(|pid| {
                Child {
                    bound: t
                        .els
                        .quant_rect(pid)
                        .map_or(0.0, |b| nq.metric.min_dist_rect_sq(nq.q, b)),
                    node: HyRef {
                        pid,
                        depth: r.depth + 1,
                        region: None,
                    },
                }
            }));
            return Ok(NodeKind::Index);
        }
        // ELS disabled: prune with kd-regions tracked down the tree.
        self.expand_regioned(r, nq, io, ctx, sink, children)
    }

    fn expand_near(
        &self,
        r: HyRef,
        nq: NearQuery<'_>,
        io: &mut IoStats,
        ctx: &QueryContext,
        sink: &mut dyn EntrySink,
        children: &mut Vec<Child<HyRef>>,
    ) -> IndexResult<NodeKind> {
        let t = self.tree;
        if !t.els.enabled() {
            return self.expand_regioned(r, nq, io, ctx, sink, children);
        }
        // Quantized live boxes bound every child; regions are not needed.
        // Unlike box/range, every page goes through the decoded-node path:
        // best-first search revisits levels out of order, which is where
        // the cache pays.
        let node = t.read_node_ctx(r.pid, io, ctx)?;
        match &*node {
            Node::Data(entries) => {
                for e in entries {
                    sink.offer(e.oid, &e.point);
                }
                Ok(NodeKind::Leaf)
            }
            Node::Index { kd, .. } => {
                children.extend(kd.child_ids().into_iter().map(|pid| {
                    Child {
                        bound: t
                            .els
                            .quant_rect(pid)
                            .map_or(0.0, |b| nq.metric.min_dist_rect_sq(nq.q, b)),
                        node: HyRef {
                            pid,
                            depth: r.depth + 1,
                            region: None,
                        },
                    }
                }));
                Ok(NodeKind::Index)
            }
        }
    }
}

impl<S: Storage> HyExpand<'_, S> {
    /// Shared ELS-disabled expansion: decoded reads with kd-regions
    /// handed down the tree bounding every child.
    fn expand_regioned(
        &self,
        r: HyRef,
        nq: NearQuery<'_>,
        io: &mut IoStats,
        ctx: &QueryContext,
        sink: &mut dyn EntrySink,
        children: &mut Vec<Child<HyRef>>,
    ) -> IndexResult<NodeKind> {
        let t = self.tree;
        let node = t.read_node_ctx(r.pid, io, ctx)?;
        match &*node {
            Node::Data(entries) => {
                for e in entries {
                    sink.offer(e.oid, &e.point);
                }
                Ok(NodeKind::Leaf)
            }
            Node::Index { kd, .. } => {
                let region = r.region.as_ref().ok_or_else(|| {
                    IndexError::Internal("kd-region missing in region-tracked traversal".into())
                })?;
                children.extend(kd.children_with_regions(region).into_iter().map(
                    |(pid, child_region)| Child {
                        bound: nq.metric.min_dist_rect_sq(nq.q, &child_region),
                        node: HyRef {
                            pid,
                            depth: r.depth + 1,
                            region: Some(child_region),
                        },
                    },
                ));
                Ok(NodeKind::Index)
            }
        }
    }
}

impl<S: Storage> MultidimIndex for HybridTree<S> {
    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn len(&self) -> usize {
        self.len
    }

    fn insert(&mut self, point: Point, oid: u64) -> IndexResult<()> {
        check_dim(self.dim, point.dim())?;
        self.insert_entry(point, oid)?;
        self.len += 1;
        Ok(())
    }

    fn delete(&mut self, point: &Point, oid: u64) -> IndexResult<bool> {
        check_dim(self.dim, point.dim())?;
        if self.len == 0 {
            return Ok(false);
        }
        let region = self.root_region();
        match self.delete_rec(self.root, &region, point, oid, true)? {
            DelOutcome::NotFound => Ok(false),
            DelOutcome::Done(orphans) => {
                self.len -= 1;
                self.maybe_shrink_root()?;
                for e in orphans {
                    self.insert_entry(e.point, e.oid)?;
                }
                Ok(true)
            }
            DelOutcome::Eliminated(_) => Err(IndexError::Internal(
                "root node cannot be eliminated".into(),
            )),
        }
    }

    fn box_query_ctx(
        &self,
        rect: &Rect,
        ctx: &QueryContext,
    ) -> IndexResult<(QueryOutcome<Vec<u64>>, IoStats)> {
        check_dim(self.dim, rect.dim())?;
        hyt_exec::run_box_query(&HyExpand { tree: self }, rect, ctx)
    }

    fn distance_range_ctx(
        &self,
        q: &Point,
        radius: f64,
        metric: &dyn Metric,
        ctx: &QueryContext,
    ) -> IndexResult<(QueryOutcome<Vec<u64>>, IoStats)> {
        check_dim(self.dim, q.dim())?;
        hyt_exec::run_distance_range(&HyExpand { tree: self }, q, radius, metric, ctx)
    }

    fn knn_ctx(
        &self,
        q: &Point,
        k: usize,
        metric: &dyn Metric,
        ctx: &QueryContext,
    ) -> IndexResult<(QueryOutcome<Vec<(u64, f64)>>, IoStats)> {
        check_dim(self.dim, q.dim())?;
        hyt_exec::run_knn(&HyExpand { tree: self }, q, k, metric, ctx)
    }

    fn knn_stream<'a>(
        &'a self,
        q: &Point,
        metric: &'a dyn Metric,
        ctx: &QueryContext,
    ) -> IndexResult<Box<dyn KnnStream + 'a>> {
        check_dim(self.dim, q.dim())?;
        Ok(Box::new(KnnCursor::new(
            HyExpand { tree: self },
            q.clone(),
            metric,
            ctx.clone(),
        )))
    }

    fn io_stats(&self) -> IoStats {
        self.pool.stats()
    }

    fn reset_io_stats(&self) {
        self.pool.reset_stats();
        self.pool.node_cache().reset_stats();
    }

    fn cache_stats(&self) -> NodeCacheStats {
        self.pool.node_cache_stats()
    }

    fn structure_stats(&self) -> IndexResult<StructureStats> {
        crate::stats::compute(self)
    }
}

/// Compile-time proof that a built tree can be shared across query
/// threads: `&HybridTree<S>` is the read-only search handle.
#[allow(dead_code)]
fn _assert_thread_safe<S: Storage>() {
    fn check<T: Send + Sync>() {}
    check::<HybridTree<S>>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SplitPolicy;
    use hyt_geom::{L1, L2};
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn small_cfg() -> HybridTreeConfig {
        HybridTreeConfig {
            page_size: 256, // tiny pages force deep trees in tests
            ..HybridTreeConfig::default()
        }
    }

    fn rand_points(n: usize, dim: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new((0..dim).map(|_| rng.gen::<f32>()).collect()))
            .collect()
    }

    fn build(points: &[Point], cfg: HybridTreeConfig) -> HybridTree {
        let dim = points[0].dim();
        let mut t = HybridTree::new(dim, cfg).unwrap();
        for (i, p) in points.iter().enumerate() {
            t.insert(p.clone(), i as u64).unwrap();
        }
        t
    }

    fn brute_box(points: &[Point], rect: &Rect) -> Vec<u64> {
        let mut v: Vec<u64> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| rect.contains_point(p))
            .map(|(i, _)| i as u64)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_tree_queries() {
        let mut t = HybridTree::new(3, small_cfg()).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.box_query(&Rect::unit(3)).unwrap(), Vec::<u64>::new());
        assert_eq!(t.knn(&Point::origin(3), 5, &L2).unwrap().len(), 0);
        assert!(!t.delete(&Point::origin(3), 0).unwrap());
        t.check_invariants().unwrap();
    }

    #[test]
    fn single_insert_and_point_query() {
        let mut t = HybridTree::new(2, small_cfg()).unwrap();
        let p = Point::new(vec![0.25, 0.75]);
        t.insert(p.clone(), 7).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.point_query(&p).unwrap(), vec![7]);
        assert!(t
            .point_query(&Point::new(vec![0.5, 0.5]))
            .unwrap()
            .is_empty());
        t.check_invariants().unwrap();
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut t = HybridTree::new(2, small_cfg()).unwrap();
        assert!(matches!(
            t.insert(Point::origin(3), 0),
            Err(IndexError::DimensionMismatch { .. })
        ));
        assert!(t.box_query(&Rect::unit(3)).is_err());
    }

    #[test]
    fn page_too_small_for_dimension_rejected() {
        let cfg = HybridTreeConfig {
            page_size: 64,
            ..HybridTreeConfig::default()
        };
        // 64-byte pages cannot hold two 32-d entries (136 bytes each).
        assert!(HybridTree::new(32, cfg).is_err());
    }

    #[test]
    fn splits_grow_tree_and_preserve_entries() {
        let pts = rand_points(500, 2, 1);
        let t = build(&pts, small_cfg());
        assert!(t.height() > 1, "500 points on 256-byte pages must split");
        t.check_invariants().unwrap();
        for (i, p) in pts.iter().enumerate() {
            assert!(
                t.point_query(p).unwrap().contains(&(i as u64)),
                "point {i} lost after splits"
            );
        }
    }

    #[test]
    fn box_query_matches_brute_force() {
        let pts = rand_points(800, 3, 2);
        let t = build(&pts, small_cfg());
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..40 {
            let lo: Vec<f32> = (0..3).map(|_| rng.gen::<f32>() * 0.8).collect();
            let hi: Vec<f32> = lo.iter().map(|l| l + 0.2).collect();
            let rect = Rect::new(lo, hi);
            let mut got = t.box_query(&rect).unwrap();
            got.sort_unstable();
            assert_eq!(got, brute_box(&pts, &rect));
        }
    }

    #[test]
    fn distance_range_matches_brute_force() {
        let pts = rand_points(600, 4, 4);
        let t = build(&pts, small_cfg());
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..25 {
            let q = Point::new((0..4).map(|_| rng.gen::<f32>()).collect());
            for metric in [&L1 as &dyn Metric, &L2] {
                let radius = 0.4;
                let mut got = t.distance_range(&q, radius, metric).unwrap();
                got.sort_unstable();
                let mut want: Vec<u64> = pts
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| metric.distance(&q, p) <= radius)
                    .map(|(i, _)| i as u64)
                    .collect();
                want.sort_unstable();
                assert_eq!(got, want, "metric {}", metric.name());
            }
        }
    }

    #[test]
    fn knn_matches_brute_force() {
        let pts = rand_points(400, 3, 6);
        let t = build(&pts, small_cfg());
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..25 {
            let q = Point::new((0..3).map(|_| rng.gen::<f32>()).collect());
            let k = rng.gen_range(1..20);
            let got = t.knn(&q, k, &L2).unwrap();
            assert_eq!(got.len(), k.min(pts.len()));
            let mut want: Vec<f64> = pts.iter().map(|p| L2.distance(&q, p)).collect();
            want.sort_by(f64::total_cmp);
            for (i, (_, d)) in got.iter().enumerate() {
                assert!(
                    (d - want[i]).abs() < 1e-9,
                    "k={k} neighbor {i}: got {d}, want {}",
                    want[i]
                );
            }
            // Distances must be non-decreasing.
            for w in got.windows(2) {
                assert!(w[0].1 <= w[1].1);
            }
        }
    }

    #[test]
    fn knn_with_k_larger_than_n() {
        let pts = rand_points(10, 2, 8);
        let t = build(&pts, small_cfg());
        let got = t.knn(&Point::new(vec![0.5, 0.5]), 50, &L2).unwrap();
        assert_eq!(got.len(), 10);
    }

    #[test]
    fn duplicate_points_are_all_retrievable() {
        let mut t = HybridTree::new(2, small_cfg()).unwrap();
        let p = Point::new(vec![0.5, 0.5]);
        for i in 0..100 {
            t.insert(p.clone(), i).unwrap();
        }
        let mut got = t.point_query(&p).unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        t.check_invariants().unwrap();
    }

    #[test]
    fn delete_removes_exactly_one_entry() {
        let pts = rand_points(300, 2, 9);
        let mut t = build(&pts, small_cfg());
        assert!(t.delete(&pts[42], 42).unwrap());
        assert_eq!(t.len(), 299);
        assert!(t.point_query(&pts[42]).unwrap().is_empty());
        // Deleting again reports absence.
        assert!(!t.delete(&pts[42], 42).unwrap());
        // Mismatched oid does not delete.
        assert!(!t.delete(&pts[43], 999).unwrap());
        t.check_invariants().unwrap();
    }

    #[test]
    fn delete_everything_then_reuse() {
        let pts = rand_points(400, 2, 10);
        let mut t = build(&pts, small_cfg());
        let mut order: Vec<usize> = (0..pts.len()).collect();
        let mut rng = StdRng::seed_from_u64(11);
        order.shuffle(&mut rng);
        for (step, &i) in order.iter().enumerate() {
            assert!(t.delete(&pts[i], i as u64).unwrap(), "delete {i}");
            if step % 57 == 0 {
                t.check_invariants().unwrap();
            }
        }
        assert!(t.is_empty());
        t.check_invariants().unwrap();
        // The tree remains usable after total deletion.
        t.insert(Point::new(vec![0.3, 0.3]), 1).unwrap();
        assert_eq!(t.point_query(&Point::new(vec![0.3, 0.3])).unwrap(), vec![1]);
    }

    #[test]
    fn interleaved_inserts_deletes_queries() {
        let pts = rand_points(600, 3, 12);
        let mut t = HybridTree::new(3, small_cfg()).unwrap();
        let mut live: Vec<bool> = vec![false; pts.len()];
        let mut rng = StdRng::seed_from_u64(13);
        // Insert the first half.
        for i in 0..300 {
            t.insert(pts[i].clone(), i as u64).unwrap();
            live[i] = true;
        }
        // Interleave.
        for i in 300..600 {
            t.insert(pts[i].clone(), i as u64).unwrap();
            live[i] = true;
            let victim = rng.gen_range(0..i);
            if live[victim] {
                assert!(t.delete(&pts[victim], victim as u64).unwrap());
                live[victim] = false;
            }
        }
        t.check_invariants().unwrap();
        let rect = Rect::new(vec![0.2; 3], vec![0.7; 3]);
        let mut got = t.box_query(&rect).unwrap();
        got.sort_unstable();
        let mut want: Vec<u64> = pts
            .iter()
            .enumerate()
            .filter(|(i, p)| live[*i] && rect.contains_point(p))
            .map(|(i, _)| i as u64)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn clustered_data_exercises_overlap_splits() {
        // Tight clusters force overlapping index splits; correctness must
        // be unaffected.
        let mut rng = StdRng::seed_from_u64(14);
        let mut pts = Vec::new();
        for c in 0..5 {
            let center: Vec<f32> = (0..4).map(|_| 0.2 * c as f32 + 0.1).collect();
            for _ in 0..150 {
                pts.push(Point::new(
                    center
                        .iter()
                        .map(|&x| x + rng.gen::<f32>() * 0.01)
                        .collect(),
                ));
            }
        }
        let t = build(&pts, small_cfg());
        t.check_invariants().unwrap();
        for (i, p) in pts.iter().enumerate().step_by(17) {
            assert!(t.point_query(p).unwrap().contains(&(i as u64)));
        }
    }

    #[test]
    fn els_disabled_still_correct() {
        let cfg = HybridTreeConfig {
            els_bits: 0,
            ..small_cfg()
        };
        let pts = rand_points(500, 3, 15);
        let t = build(&pts, cfg);
        t.check_invariants().unwrap();
        let rect = Rect::new(vec![0.1; 3], vec![0.4; 3]);
        let mut got = t.box_query(&rect).unwrap();
        got.sort_unstable();
        assert_eq!(got, brute_box(&pts, &rect));
        assert_eq!(t.els_overhead_bytes(), 0);
    }

    #[test]
    fn els_reduces_accesses_on_clustered_data() {
        // Clustered data leaves much dead space; ELS should prune it.
        let mut rng = StdRng::seed_from_u64(16);
        let mut pts = Vec::new();
        for c in 0..8 {
            for _ in 0..100 {
                let base = c as f32 / 8.0;
                pts.push(Point::new(
                    (0..4).map(|_| base + rng.gen::<f32>() * 0.02).collect(),
                ));
            }
        }
        let queries: Vec<Rect> = (0..30)
            .map(|_| {
                let lo: Vec<f32> = (0..4).map(|_| rng.gen::<f32>() * 0.9).collect();
                let hi: Vec<f32> = lo.iter().map(|l| l + 0.1).collect();
                Rect::new(lo, hi)
            })
            .collect();
        let run = |bits: u8| -> u64 {
            let cfg = HybridTreeConfig {
                els_bits: bits,
                ..small_cfg()
            };
            let t = build(&pts, cfg);
            t.reset_io_stats();
            for q in &queries {
                t.box_query(q).unwrap();
            }
            t.io_stats().logical_reads
        };
        let without = run(0);
        let with = run(4);
        assert!(
            with <= without,
            "ELS must not increase accesses: {with} vs {without}"
        );
    }

    #[test]
    fn vam_and_round_robin_policies_remain_correct() {
        for policy in [SplitPolicy::Vam, SplitPolicy::RoundRobin] {
            let cfg = HybridTreeConfig {
                split_policy: policy,
                ..small_cfg()
            };
            let pts = rand_points(400, 3, 17);
            let t = build(&pts, cfg);
            t.check_invariants().unwrap();
            let rect = Rect::new(vec![0.3; 3], vec![0.6; 3]);
            let mut got = t.box_query(&rect).unwrap();
            got.sort_unstable();
            assert_eq!(got, brute_box(&pts, &rect), "{policy:?}");
        }
    }

    #[test]
    fn io_stats_count_queries() {
        let pts = rand_points(500, 2, 18);
        let t = build(&pts, small_cfg());
        t.reset_io_stats();
        assert_eq!(t.io_stats().logical_reads, 0);
        t.box_query(&Rect::new(vec![0.4, 0.4], vec![0.6, 0.6]))
            .unwrap();
        let s = t.io_stats();
        assert!(s.logical_reads > 0);
        // Cold-cache accounting: every logical read is physical.
        assert_eq!(s.logical_reads, s.physical_reads);
    }

    #[test]
    fn buffer_pool_reduces_physical_reads() {
        let cfg = HybridTreeConfig {
            pool_pages: 64,
            ..small_cfg()
        };
        let pts = rand_points(500, 2, 19);
        let t = build(&pts, cfg);
        t.reset_io_stats();
        for _ in 0..3 {
            t.box_query(&Rect::new(vec![0.4, 0.4], vec![0.6, 0.6]))
                .unwrap();
        }
        let s = t.io_stats();
        assert!(s.physical_reads < s.logical_reads);
        assert!(s.hits > 0);
    }

    #[test]
    fn structure_stats_are_plausible() {
        let pts = rand_points(1000, 4, 20);
        let t = build(&pts, small_cfg());
        let st = t.structure_stats().unwrap();
        assert_eq!(st.height, t.height());
        assert!(st.data_nodes > 1);
        assert_eq!(st.total_nodes, st.data_nodes + st.index_nodes);
        assert!(st.avg_fanout >= 2.0);
        assert!(st.avg_leaf_utilization > 0.3 && st.avg_leaf_utilization <= 1.0);
        assert!(st.distinct_split_dims >= 1 && st.distinct_split_dims <= 4);
        assert_eq!(st.redundant_bytes, 0);
    }

    #[test]
    fn file_backed_tree_works() {
        use hyt_page::FileStorage;
        let dir = std::env::temp_dir().join(format!("hyt_tree_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tree.pages");
        let storage = FileStorage::create(&path, 256).unwrap();
        let cfg = small_cfg();
        let mut t = HybridTree::with_storage(2, cfg, storage).unwrap();
        let pts = rand_points(200, 2, 21);
        for (i, p) in pts.iter().enumerate() {
            t.insert(p.clone(), i as u64).unwrap();
        }
        t.check_invariants().unwrap();
        let rect = Rect::new(vec![0.2, 0.2], vec![0.8, 0.8]);
        let mut got = t.box_query(&rect).unwrap();
        got.sort_unstable();
        assert_eq!(got, brute_box(&pts, &rect));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn high_dimensional_tree_fanout_is_dimension_independent() {
        // The defining property: index-node fanout does not collapse with
        // dimensionality (paper Table 1). Compare 4-d and 32-d trees.
        let cfg = HybridTreeConfig::default(); // 4 KiB pages
        let fanout_at = |dim: usize| -> f64 {
            let pts = rand_points(3000, dim, 22);
            let mut t = HybridTree::new(dim, cfg.clone()).unwrap();
            for (i, p) in pts.iter().enumerate() {
                t.insert(p.clone(), i as u64).unwrap();
            }
            t.structure_stats().unwrap().avg_fanout
        };
        let f4 = fanout_at(4);
        let f32d = fanout_at(32);
        // An R-tree's fanout would shrink ~8x; the hybrid tree's barely
        // moves (data-node count differs, so allow generous slack).
        assert!(
            f32d > f4 * 0.5,
            "fanout collapsed with dimensionality: {f4} -> {f32d}"
        );
    }

    #[test]
    fn weighted_metric_at_query_time() {
        use hyt_geom::WeightedEuclidean;
        let pts = rand_points(300, 4, 23);
        let t = build(&pts, small_cfg());
        let q = Point::new(vec![0.5; 4]);
        // Two different relevance-feedback weightings, same index.
        let m1 = WeightedEuclidean::new(vec![1.0, 1.0, 1.0, 1.0]);
        let m2 = WeightedEuclidean::new(vec![10.0, 0.1, 0.1, 0.1]);
        for m in [&m1, &m2] {
            let got = t.knn(&q, 5, m).unwrap();
            let mut want: Vec<(u64, f64)> = pts
                .iter()
                .enumerate()
                .map(|(i, p)| (i as u64, m.distance(&q, p)))
                .collect();
            want.sort_by(|a, b| a.1.total_cmp(&b.1));
            for (i, (_, d)) in got.iter().enumerate() {
                assert!((d - want[i].1).abs() < 1e-9);
            }
        }
    }
}
