//! The modified kd-tree that organizes space partitioning *within* a
//! hybrid tree index node (§3.1 of the paper).
//!
//! Each internal kd node stores the split dimension and **two** split
//! positions: `lsp`, the right (upper) boundary of the left partition, and
//! `rsp`, the left (lower) boundary of the right partition. `lsp <= rsp`
//! represents disjoint partitions (a regular kd split, possibly with a
//! dead-space gap); `lsp > rsp` represents *overlapping* partitions — the
//! hybrid tree's relaxation that avoids the kDB-tree's cascading splits.
//!
//! The kd leaves are the children of the index node (pages one level
//! down). The paper's "logical mapping to an array of BRs" is implemented
//! by threading a region (`Rect`) through traversals: the left child of an
//! internal node with region `R` has region `R ∩ {x_d <= lsp}` and the
//! right child `R ∩ {x_d >= rsp}`.

use hyt_geom::{Coord, Point, Rect};
use hyt_page::{ByteReader, ByteWriter, PageError, PageId, PageResult};

/// Tag bytes in the serialized form.
const TAG_LEAF: u8 = 0;
const TAG_INTERNAL: u8 = 1;

/// Encoded size of a leaf (tag + page id).
pub const LEAF_BYTES: usize = 1 + 4;
/// Encoded size of an internal node header (tag + dim + lsp + rsp +
/// left-subtree byte length). The length field lets searches skip the
/// left subtree in O(1) and navigate the serialized form *in place* —
/// the paper's fast intra-node search, without materializing the tree.
pub const INTERNAL_BYTES: usize = 1 + 2 + 4 + 4 + 2;

/// The intra-node kd-tree of a hybrid tree index node.
#[derive(Clone, Debug, PartialEq)]
pub enum KdTree {
    /// Points at a child page one level below.
    Leaf {
        /// The child page.
        child: PageId,
    },
    /// A single-dimension split with two split positions.
    Internal {
        /// Split dimension.
        dim: u16,
        /// Right boundary of the left partition.
        lsp: Coord,
        /// Left boundary of the right partition.
        rsp: Coord,
        /// Subtree for `x_dim <= lsp`.
        left: Box<KdTree>,
        /// Subtree for `x_dim >= rsp`.
        right: Box<KdTree>,
    },
}

/// Outcome of [`KdTree::choose_insert_leaf`].
pub struct InsertChoice {
    /// The chosen child page.
    pub child: PageId,
    /// The child's kd-region (after any enlargement).
    pub region: Rect,
    /// Whether any `lsp`/`rsp` was enlarged on the way down (the node must
    /// be rewritten).
    pub enlarged: bool,
}

impl KdTree {
    /// A kd-tree with a single child.
    pub fn leaf(child: PageId) -> Self {
        KdTree::Leaf { child }
    }

    /// A single split over two children.
    pub fn split(dim: u16, lsp: Coord, rsp: Coord, left: KdTree, right: KdTree) -> Self {
        KdTree::Internal {
            dim,
            lsp,
            rsp,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Number of children (kd leaves) — the index node's fanout.
    pub fn fanout(&self) -> usize {
        match self {
            KdTree::Leaf { .. } => 1,
            KdTree::Internal { left, right, .. } => left.fanout() + right.fanout(),
        }
    }

    /// Maximum depth of the kd-tree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            KdTree::Leaf { .. } => 1,
            KdTree::Internal { left, right, .. } => 1 + left.depth().max(right.depth()),
        }
    }

    /// Serialized size in bytes.
    pub fn encoded_size(&self) -> usize {
        match self {
            KdTree::Leaf { .. } => LEAF_BYTES,
            KdTree::Internal { left, right, .. } => {
                INTERNAL_BYTES + left.encoded_size() + right.encoded_size()
            }
        }
    }

    /// Serializes the tree in preorder.
    pub fn encode(&self, w: &mut ByteWriter) {
        match self {
            KdTree::Leaf { child } => {
                w.put_u8(TAG_LEAF);
                w.put_u32(child.0);
            }
            KdTree::Internal {
                dim,
                lsp,
                rsp,
                left,
                right,
            } => {
                w.put_u8(TAG_INTERNAL);
                w.put_u16(*dim);
                w.put_f32(*lsp);
                w.put_f32(*rsp);
                let left_len = left.encoded_size();
                debug_assert!(left_len <= u16::MAX as usize, "kd subtree exceeds u16");
                w.put_u16(left_len as u16);
                left.encode(w);
                right.encode(w);
            }
        }
    }

    /// Parses a tree serialized by [`encode`](Self::encode).
    pub fn decode(r: &mut ByteReader<'_>) -> PageResult<Self> {
        match r.get_u8()? {
            TAG_LEAF => Ok(KdTree::Leaf {
                child: PageId(r.get_u32()?),
            }),
            TAG_INTERNAL => {
                let dim = r.get_u16()?;
                let lsp = r.get_f32()?;
                let rsp = r.get_f32()?;
                let _left_len = r.get_u16()?; // navigation hint only
                let left = Box::new(KdTree::decode(r)?);
                let right = Box::new(KdTree::decode(r)?);
                Ok(KdTree::Internal {
                    dim,
                    lsp,
                    rsp,
                    left,
                    right,
                })
            }
            t => Err(PageError::Corrupt(format!("bad kd-tree tag {t}"))),
        }
    }

    /// All children with their kd-regions, given the node's region
    /// (the paper's logical "array of BRs" mapping).
    pub fn children_with_regions(&self, region: &Rect) -> Vec<(PageId, Rect)> {
        let mut out = Vec::with_capacity(self.fanout());
        self.collect_children(region, &mut out);
        out
    }

    fn collect_children(&self, region: &Rect, out: &mut Vec<(PageId, Rect)>) {
        match self {
            KdTree::Leaf { child } => out.push((*child, region.clone())),
            KdTree::Internal {
                dim,
                lsp,
                rsp,
                left,
                right,
            } => {
                let d = *dim as usize;
                left.collect_children(&region.clamp_above(d, *lsp), out);
                right.collect_children(&region.clamp_below(d, *rsp), out);
            }
        }
    }

    /// Children whose kd-region intersects the query box, using the
    /// kd-tree for sub-linear intra-node search.
    pub fn children_overlapping_box(&self, region: &Rect, query: &Rect) -> Vec<(PageId, Rect)> {
        let mut out = Vec::new();
        self.collect_box(region, query, &mut out);
        out
    }

    fn collect_box(&self, region: &Rect, query: &Rect, out: &mut Vec<(PageId, Rect)>) {
        match self {
            KdTree::Leaf { child } => out.push((*child, region.clone())),
            KdTree::Internal {
                dim,
                lsp,
                rsp,
                left,
                right,
            } => {
                let d = *dim as usize;
                if query.lo(d) <= *lsp {
                    left.collect_box(&region.clamp_above(d, *lsp), query, out);
                }
                if query.hi(d) >= *rsp {
                    right.collect_box(&region.clamp_below(d, *rsp), query, out);
                }
            }
        }
    }

    /// Children whose kd-region intersects the query box, *without*
    /// materializing regions — the hot path for box queries (regions are
    /// only needed when ELS pruning is disabled or for distance bounds).
    pub fn children_overlapping_box_ids(&self, query: &Rect, out: &mut Vec<PageId>) {
        match self {
            KdTree::Leaf { child } => out.push(*child),
            KdTree::Internal {
                dim,
                lsp,
                rsp,
                left,
                right,
            } => {
                let d = *dim as usize;
                if query.lo(d) <= *lsp {
                    left.children_overlapping_box_ids(query, out);
                }
                if query.hi(d) >= *rsp {
                    right.children_overlapping_box_ids(query, out);
                }
            }
        }
    }

    /// Children whose kd-region contains the point, without regions.
    pub fn children_containing_point_ids(&self, p: &Point, out: &mut Vec<PageId>) {
        match self {
            KdTree::Leaf { child } => out.push(*child),
            KdTree::Internal {
                dim,
                lsp,
                rsp,
                left,
                right,
            } => {
                let x = p.coord(*dim as usize);
                if x <= *lsp {
                    left.children_containing_point_ids(p, out);
                }
                if x >= *rsp {
                    right.children_containing_point_ids(p, out);
                }
            }
        }
    }

    /// Children whose kd-region contains the point (used by exact-match
    /// search and deletion; overlap means there can be several).
    pub fn children_containing_point(&self, region: &Rect, p: &Point) -> Vec<(PageId, Rect)> {
        let mut out = Vec::new();
        self.collect_point(region, p, &mut out);
        out
    }

    fn collect_point(&self, region: &Rect, p: &Point, out: &mut Vec<(PageId, Rect)>) {
        match self {
            KdTree::Leaf { child } => out.push((*child, region.clone())),
            KdTree::Internal {
                dim,
                lsp,
                rsp,
                left,
                right,
            } => {
                let d = *dim as usize;
                let x = p.coord(d);
                if x <= *lsp {
                    left.collect_point(&region.clamp_above(d, *lsp), p, out);
                }
                if x >= *rsp {
                    right.collect_point(&region.clamp_below(d, *rsp), p, out);
                }
            }
        }
    }

    /// Greedy single-path descent for insertion (paper §3.5: pick the
    /// child needing minimum enlargement; the kd organization makes the
    /// choice per split rather than over the whole child array).
    ///
    /// * contained on exactly one side → that side (no enlargement);
    /// * contained on both (overlap zone) → the side where the point lies
    ///   deeper inside;
    /// * contained on neither (dead-space gap) → the side needing the
    ///   smaller boundary enlargement, committing the enlargement.
    pub fn choose_insert_leaf(&mut self, region: &Rect, p: &Point) -> InsertChoice {
        match self {
            KdTree::Leaf { child } => InsertChoice {
                child: *child,
                region: region.clone(),
                enlarged: false,
            },
            KdTree::Internal {
                dim,
                lsp,
                rsp,
                left,
                right,
            } => {
                let d = *dim as usize;
                let x = p.coord(d);
                let in_left = x <= *lsp;
                let in_right = x >= *rsp;
                let mut enlarged = false;
                let go_left = match (in_left, in_right) {
                    (true, false) => true,
                    (false, true) => false,
                    (true, true) => (*lsp - x) >= (x - *rsp),
                    (false, false) => {
                        // Dead-space gap (lsp < x < rsp): enlarge the
                        // nearer boundary.
                        enlarged = true;
                        if (x - *lsp) <= (*rsp - x) {
                            *lsp = x;
                            true
                        } else {
                            *rsp = x;
                            false
                        }
                    }
                };
                let mut choice = if go_left {
                    left.choose_insert_leaf(&region.clamp_above(d, *lsp), p)
                } else {
                    right.choose_insert_leaf(&region.clamp_below(d, *rsp), p)
                };
                choice.enlarged |= enlarged;
                choice
            }
        }
    }

    /// Replaces the (unique) leaf pointing at `child` with `replacement`;
    /// returns whether the leaf was found. Used to post a child split into
    /// its parent.
    pub fn replace_leaf(&mut self, child: PageId, replacement: KdTree) -> bool {
        match self {
            KdTree::Leaf { child: c } if *c == child => {
                *self = replacement;
                true
            }
            KdTree::Leaf { .. } => false,
            KdTree::Internal { left, right, .. } => {
                left.replace_leaf(child, replacement.clone())
                    || right.replace_leaf(child, replacement)
            }
        }
    }

    /// Removes the (unique) leaf pointing at `child`, replacing its parent
    /// kd split with the sibling subtree. Returns `false` when the leaf is
    /// absent or is the root of the kd-tree (a one-child node cannot shed
    /// its only child here; the tree layer handles that case).
    pub fn remove_leaf(&mut self, child: PageId) -> bool {
        match self {
            KdTree::Leaf { .. } => false,
            KdTree::Internal { left, right, .. } => {
                if matches!(**left, KdTree::Leaf { child: c } if c == child) {
                    *self = (**right).clone();
                    return true;
                }
                if matches!(**right, KdTree::Leaf { child: c } if c == child) {
                    *self = (**left).clone();
                    return true;
                }
                left.remove_leaf(child) || right.remove_leaf(child)
            }
        }
    }

    /// All child page ids (kd leaves), left to right.
    pub fn child_ids(&self) -> Vec<PageId> {
        match self {
            KdTree::Leaf { child } => vec![*child],
            KdTree::Internal { left, right, .. } => {
                let mut v = left.child_ids();
                v.extend(right.child_ids());
                v
            }
        }
    }

    /// Restricts the kd-tree to the children in `keep`: leaves outside
    /// the set are removed and unary internal nodes collapse away.
    /// Returns `None` when nothing remains.
    ///
    /// This is how an index-node split divides its kd-tree between the
    /// two new nodes: the bipartition assigns whole children to sides and
    /// each side keeps the (pruned) original structure, so no new overlap
    /// is introduced beyond the split itself. Collapsing only loosens
    /// child regions, so containment of the data beneath is preserved.
    pub fn restricted_to(&self, keep: &std::collections::HashSet<PageId>) -> Option<KdTree> {
        match self {
            KdTree::Leaf { child } => keep
                .contains(child)
                .then_some(KdTree::Leaf { child: *child }),
            KdTree::Internal {
                dim,
                lsp,
                rsp,
                left,
                right,
            } => match (left.restricted_to(keep), right.restricted_to(keep)) {
                (Some(l), Some(r)) => Some(KdTree::split(*dim, *lsp, *rsp, l, r)),
                (Some(l), None) => Some(l),
                (None, Some(r)) => Some(r),
                (None, None) => None,
            },
        }
    }

    /// Distinct dimensions used by splits in this kd-tree — the candidate
    /// set for index-node split dimensions (Lemma 1, implicit
    /// dimensionality reduction).
    pub fn split_dims(&self) -> Vec<u16> {
        let mut dims = Vec::new();
        self.collect_dims(&mut dims);
        dims.sort_unstable();
        dims.dedup();
        dims
    }

    fn collect_dims(&self, out: &mut Vec<u16>) {
        if let KdTree::Internal {
            dim, left, right, ..
        } = self
        {
            out.push(*dim);
            left.collect_dims(out);
            right.collect_dims(out);
        }
    }

    /// Visits every internal kd node with its sub-region, for structural
    /// statistics (overlap fractions etc.).
    pub fn visit_internal<F: FnMut(u16, Coord, Coord, &Rect)>(&self, region: &Rect, f: &mut F) {
        if let KdTree::Internal {
            dim,
            lsp,
            rsp,
            left,
            right,
        } = self
        {
            f(*dim, *lsp, *rsp, region);
            let d = *dim as usize;
            left.visit_internal(&region.clamp_above(d, *lsp), f);
            right.visit_internal(&region.clamp_below(d, *rsp), f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The kd-tree of node N1 from the paper's Figure 1:
    /// dim 1 split at 3/3; left side splits dim 2 at 3/2 (overlapping);
    /// right side splits dim 2 at 4/4.
    fn paper_figure1_top() -> KdTree {
        KdTree::split(
            0,
            3.0,
            3.0,
            KdTree::split(
                1,
                3.0,
                2.0,
                KdTree::leaf(PageId(10)),
                KdTree::leaf(PageId(11)),
            ),
            KdTree::split(
                1,
                4.0,
                4.0,
                KdTree::leaf(PageId(12)),
                KdTree::leaf(PageId(13)),
            ),
        )
    }

    fn space() -> Rect {
        Rect::new(vec![0.0, 0.0], vec![6.0, 6.0])
    }

    #[test]
    fn fanout_and_depth() {
        let t = paper_figure1_top();
        assert_eq!(t.fanout(), 4);
        assert_eq!(t.depth(), 3);
        assert_eq!(KdTree::leaf(PageId(1)).fanout(), 1);
    }

    #[test]
    fn regions_follow_paper_mapping() {
        let t = paper_figure1_top();
        let kids = t.children_with_regions(&space());
        assert_eq!(kids.len(), 4);
        // Left-bottom: [0,3] x [0,3].
        assert_eq!(kids[0].0, PageId(10));
        assert_eq!(kids[0].1, Rect::new(vec![0.0, 0.0], vec![3.0, 3.0]));
        // Left-top overlaps: y >= 2 (rsp = 2): [0,3] x [2,6].
        assert_eq!(kids[1].1, Rect::new(vec![0.0, 2.0], vec![3.0, 6.0]));
        // Overlap between siblings 10 and 11 is y in [2,3].
        assert!(kids[0].1.intersects(&kids[1].1));
        // Right side is clean: [3,6] x [0,4] and [3,6] x [4,6].
        assert_eq!(kids[2].1, Rect::new(vec![3.0, 0.0], vec![6.0, 4.0]));
        assert_eq!(kids[3].1, Rect::new(vec![3.0, 4.0], vec![6.0, 6.0]));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let t = paper_figure1_top();
        let mut w = ByteWriter::new();
        t.encode(&mut w);
        let buf = w.into_inner();
        assert_eq!(buf.len(), t.encoded_size());
        let got = KdTree::decode(&mut ByteReader::new(&buf)).unwrap();
        assert_eq!(got, t);
    }

    #[test]
    fn decode_rejects_garbage() {
        let buf = [9u8, 0, 0, 0, 0];
        assert!(KdTree::decode(&mut ByteReader::new(&buf)).is_err());
    }

    #[test]
    fn encoded_size_formula() {
        // fanout F costs (F-1) internals + F leaves.
        let t = paper_figure1_top();
        assert_eq!(t.encoded_size(), 3 * INTERNAL_BYTES + 4 * LEAF_BYTES);
    }

    #[test]
    fn box_search_prunes_by_split_positions() {
        let t = paper_figure1_top();
        // Query strictly right of x=3 only reaches children 12, 13.
        let q = Rect::new(vec![3.5, 0.0], vec![5.0, 6.0]);
        let kids = t.children_overlapping_box(&space(), &q);
        let ids: Vec<_> = kids.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![12, 13]);
        // Query in the overlap zone y in [2,3], x < 3 reaches both left kids.
        let q = Rect::new(vec![0.0, 2.2], vec![1.0, 2.8]);
        let ids: Vec<_> = t
            .children_overlapping_box(&space(), &q)
            .iter()
            .map(|(id, _)| id.0)
            .collect();
        assert_eq!(ids, vec![10, 11]);
    }

    #[test]
    fn point_search_visits_all_qualifying_children() {
        let t = paper_figure1_top();
        // Point in the left overlap zone belongs to both 10 and 11.
        let p = Point::new(vec![1.0, 2.5]);
        let ids: Vec<_> = t
            .children_containing_point(&space(), &p)
            .iter()
            .map(|(id, _)| id.0)
            .collect();
        assert_eq!(ids, vec![10, 11]);
        // Boundary point x=3 qualifies on both sides of the top split.
        let p = Point::new(vec![3.0, 5.0]);
        let ids: Vec<_> = t
            .children_containing_point(&space(), &p)
            .iter()
            .map(|(id, _)| id.0)
            .collect();
        assert_eq!(ids, vec![11, 13]);
    }

    #[test]
    fn insert_descent_prefers_containment() {
        let mut t = paper_figure1_top();
        let c = t.choose_insert_leaf(&space(), &Point::new(vec![1.0, 1.0]));
        assert_eq!(c.child, PageId(10));
        assert!(!c.enlarged);
        // Overlap zone: deeper inside 10 (distance to lsp=3 larger than to rsp=2).
        let c = t.choose_insert_leaf(&space(), &Point::new(vec![1.0, 2.1]));
        assert_eq!(c.child, PageId(10));
        assert!(!c.enlarged);
    }

    #[test]
    fn insert_descent_enlarges_in_gap() {
        // Clean split with a gap: left covers x<=2, right covers x>=4.
        let mut t = KdTree::split(
            0,
            2.0,
            4.0,
            KdTree::leaf(PageId(1)),
            KdTree::leaf(PageId(2)),
        );
        let c = t.choose_insert_leaf(&space(), &Point::new(vec![2.5, 0.0]));
        assert_eq!(c.child, PageId(1), "closer to the left boundary");
        assert!(c.enlarged);
        match &t {
            KdTree::Internal { lsp, rsp, .. } => {
                assert_eq!(*lsp, 2.5, "left boundary enlarged to cover the point");
                assert_eq!(*rsp, 4.0);
            }
            _ => unreachable!(),
        }
        // The returned region covers the point.
        assert!(c.region.contains_point(&Point::new(vec![2.5, 0.0])));
    }

    #[test]
    fn replace_leaf_posts_a_child_split() {
        let mut t = paper_figure1_top();
        let posted = KdTree::split(
            0,
            1.0,
            1.0,
            KdTree::leaf(PageId(10)),
            KdTree::leaf(PageId(99)),
        );
        assert!(t.replace_leaf(PageId(10), posted));
        assert_eq!(t.fanout(), 5);
        let ids: Vec<_> = t.child_ids().iter().map(|p| p.0).collect();
        assert_eq!(ids, vec![10, 99, 11, 12, 13]);
        // Unknown child is reported.
        assert!(!t.replace_leaf(PageId(77), KdTree::leaf(PageId(1))));
    }

    #[test]
    fn remove_leaf_collapses_parent() {
        let mut t = paper_figure1_top();
        assert!(t.remove_leaf(PageId(11)));
        assert_eq!(t.fanout(), 3);
        let ids: Vec<_> = t.child_ids().iter().map(|p| p.0).collect();
        assert_eq!(ids, vec![10, 12, 13]);
        // Removing from a bare leaf is refused.
        let mut l = KdTree::leaf(PageId(5));
        assert!(!l.remove_leaf(PageId(5)));
    }

    #[test]
    fn split_dims_deduplicates() {
        let t = paper_figure1_top();
        assert_eq!(t.split_dims(), vec![0, 1]);
    }

    #[test]
    fn visit_internal_reports_overlap() {
        let t = paper_figure1_top();
        let mut overlaps = Vec::new();
        t.visit_internal(&space(), &mut |_, lsp, rsp, _| {
            overlaps.push((lsp - rsp).max(0.0));
        });
        // Exactly one overlapping split (lsp=3 > rsp=2).
        assert_eq!(overlaps.iter().filter(|o| **o > 0.0).count(), 1);
    }

    #[test]
    fn children_regions_subset_of_node_region() {
        let t = paper_figure1_top();
        let region = space();
        for (_, r) in t.children_with_regions(&region) {
            assert!(region.contains_rect(&r));
        }
    }
}
