//! Zero-copy node views: query-path navigation directly over page bytes.
//!
//! The paper credits the hybrid tree's low CPU cost to navigating an
//! index node's kd-tree instead of scanning an array of BRs (§3.1, §3.6).
//! Materializing the kd-tree on every visit would forfeit that: decoding
//! allocates `O(fanout)` boxed nodes even though a search touches only
//! the qualifying root-to-leaf paths. These views walk the *serialized*
//! preorder form in place — the internal-node header stores the byte
//! length of its left subtree, so skipping to the right child is O(1) —
//! and data-node filtering reads coordinates straight out of the page
//! with early exit on the first failing dimension.
//!
//! Mutating operations (insert, delete, splits) still use the owned
//! [`KdTree`](crate::kdtree::KdTree)/[`Node`](crate::node::Node) forms.

use crate::kdtree::{INTERNAL_BYTES, LEAF_BYTES};
use crate::node::entry_bytes;
use hyt_geom::{Point, Rect};
use hyt_page::{PageError, PageId, PageResult};

const TAG_DATA: u8 = 0;
const TAG_INDEX: u8 = 1;
const KD_LEAF: u8 = 0;
const KD_INTERNAL: u8 = 1;

/// A parsed-but-not-decoded node.
pub enum NodeView<'a> {
    /// A data page: raw entry bytes plus entry count.
    Data(DataView<'a>),
    /// An index page: raw kd-tree bytes.
    Index(KdView<'a>),
}

impl<'a> NodeView<'a> {
    /// Classifies the page and wraps the payload.
    pub fn parse(buf: &'a [u8], dim: usize) -> PageResult<NodeView<'a>> {
        match buf.first() {
            Some(&TAG_DATA) => {
                if buf.len() < 5 {
                    return Err(PageError::Corrupt("truncated data node".into()));
                }
                let count = u32::from_le_bytes(buf[1..5].try_into().unwrap()) as usize;
                let need = 5 + count * entry_bytes(dim);
                if buf.len() < need {
                    return Err(PageError::Corrupt(format!(
                        "data node claims {count} entries but page has {} bytes",
                        buf.len()
                    )));
                }
                Ok(NodeView::Data(DataView {
                    entries: &buf[5..need],
                    count,
                    dim,
                }))
            }
            Some(&TAG_INDEX) => {
                if buf.len() < 3 {
                    return Err(PageError::Corrupt("truncated index node".into()));
                }
                Ok(NodeView::Index(KdView { buf: &buf[3..] }))
            }
            Some(&t) => Err(PageError::Corrupt(format!("bad node tag {t}"))),
            None => Err(PageError::Corrupt("empty page".into())),
        }
    }
}

/// Zero-copy access to a data node's entries.
pub struct DataView<'a> {
    entries: &'a [u8],
    count: usize,
    dim: usize,
}

impl<'a> DataView<'a> {
    /// Number of entries.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the node has no entries.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    #[inline]
    fn coord(&self, entry: usize, d: usize) -> f32 {
        let off = entry * entry_bytes(self.dim) + 4 * d;
        f32::from_le_bytes(self.entries[off..off + 4].try_into().unwrap())
    }

    #[inline]
    fn oid(&self, entry: usize) -> u64 {
        let off = entry * entry_bytes(self.dim) + 4 * self.dim;
        u64::from_le_bytes(self.entries[off..off + 8].try_into().unwrap())
    }

    /// Appends the oids of entries inside `rect`, reading coordinates in
    /// place with early exit on the first failing dimension.
    pub fn filter_box(&self, rect: &Rect, out: &mut Vec<u64>) {
        'entry: for i in 0..self.count {
            for d in 0..self.dim {
                let x = self.coord(i, d);
                if x < rect.lo(d) || x > rect.hi(d) {
                    continue 'entry;
                }
            }
            out.push(self.oid(i));
        }
    }

    /// Appends the oids of entries whose point equals `p` exactly.
    pub fn filter_point(&self, p: &Point, out: &mut Vec<u64>) {
        'entry: for i in 0..self.count {
            for d in 0..self.dim {
                if self.coord(i, d).to_bits() != p.coord(d).to_bits() {
                    continue 'entry;
                }
            }
            out.push(self.oid(i));
        }
    }
}

/// Zero-copy navigation of a serialized kd-tree.
pub struct KdView<'a> {
    buf: &'a [u8],
}

impl<'a> KdView<'a> {
    fn leaf_child(&self, off: usize) -> PageResult<PageId> {
        let s = self
            .buf
            .get(off + 1..off + LEAF_BYTES)
            .ok_or_else(|| PageError::Corrupt("kd leaf out of bounds".into()))?;
        Ok(PageId(u32::from_le_bytes(s.try_into().unwrap())))
    }

    #[inline]
    fn internal_header(&self, off: usize) -> PageResult<(usize, f32, f32, usize, usize)> {
        let s = self
            .buf
            .get(off + 1..off + INTERNAL_BYTES)
            .ok_or_else(|| PageError::Corrupt("kd internal out of bounds".into()))?;
        let dim = u16::from_le_bytes(s[0..2].try_into().unwrap()) as usize;
        let lsp = f32::from_le_bytes(s[2..6].try_into().unwrap());
        let rsp = f32::from_le_bytes(s[6..10].try_into().unwrap());
        let left_len = u16::from_le_bytes(s[10..12].try_into().unwrap()) as usize;
        let left_off = off + INTERNAL_BYTES;
        let right_off = left_off + left_len;
        Ok((dim, lsp, rsp, left_off, right_off))
    }

    /// Children on qualifying paths for a box query.
    pub fn children_overlapping_box(&self, query: &Rect, out: &mut Vec<PageId>) -> PageResult<()> {
        self.walk_box(0, query, out)
    }

    fn walk_box(&self, off: usize, query: &Rect, out: &mut Vec<PageId>) -> PageResult<()> {
        match self.buf.get(off) {
            Some(&KD_LEAF) => {
                out.push(self.leaf_child(off)?);
                Ok(())
            }
            Some(&KD_INTERNAL) => {
                let (dim, lsp, rsp, left_off, right_off) = self.internal_header(off)?;
                if dim >= query.dim() {
                    return Err(PageError::Corrupt(format!("kd dim {dim} out of range")));
                }
                if query.lo(dim) <= lsp {
                    self.walk_box(left_off, query, out)?;
                }
                if query.hi(dim) >= rsp {
                    self.walk_box(right_off, query, out)?;
                }
                Ok(())
            }
            Some(&t) => Err(PageError::Corrupt(format!("bad kd tag {t}"))),
            None => Err(PageError::Corrupt("kd walk out of bounds".into())),
        }
    }

    /// Every child page id, in kd order (used by distance queries, which
    /// prune per child with the ELS quantized box instead of descending
    /// by region).
    pub fn child_ids(&self, out: &mut Vec<PageId>) -> PageResult<()> {
        self.walk_all(0, out)
    }

    fn walk_all(&self, off: usize, out: &mut Vec<PageId>) -> PageResult<()> {
        match self.buf.get(off) {
            Some(&KD_LEAF) => {
                out.push(self.leaf_child(off)?);
                Ok(())
            }
            Some(&KD_INTERNAL) => {
                let (_, _, _, left_off, right_off) = self.internal_header(off)?;
                self.walk_all(left_off, out)?;
                self.walk_all(right_off, out)
            }
            Some(&t) => Err(PageError::Corrupt(format!("bad kd tag {t}"))),
            None => Err(PageError::Corrupt("kd walk out of bounds".into())),
        }
    }

    /// Children on qualifying paths for an exact point probe.
    pub fn children_containing_point(&self, p: &Point, out: &mut Vec<PageId>) -> PageResult<()> {
        self.walk_point(0, p, out)
    }

    fn walk_point(&self, off: usize, p: &Point, out: &mut Vec<PageId>) -> PageResult<()> {
        match self.buf.get(off) {
            Some(&KD_LEAF) => {
                out.push(self.leaf_child(off)?);
                Ok(())
            }
            Some(&KD_INTERNAL) => {
                let (dim, lsp, rsp, left_off, right_off) = self.internal_header(off)?;
                if dim >= p.dim() {
                    return Err(PageError::Corrupt(format!("kd dim {dim} out of range")));
                }
                let x = p.coord(dim);
                if x <= lsp {
                    self.walk_point(left_off, p, out)?;
                }
                if x >= rsp {
                    self.walk_point(right_off, p, out)?;
                }
                Ok(())
            }
            Some(&t) => Err(PageError::Corrupt(format!("bad kd tag {t}"))),
            None => Err(PageError::Corrupt("kd walk out of bounds".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kdtree::KdTree;
    use crate::node::{DataEntry, Node};

    fn paper_kd() -> KdTree {
        KdTree::split(
            0,
            3.0,
            3.0,
            KdTree::split(
                1,
                3.0,
                2.0,
                KdTree::leaf(PageId(10)),
                KdTree::leaf(PageId(11)),
            ),
            KdTree::split(
                1,
                4.0,
                4.0,
                KdTree::leaf(PageId(12)),
                KdTree::leaf(PageId(13)),
            ),
        )
    }

    #[test]
    fn view_box_walk_matches_decoded_walk() {
        let kd = paper_kd();
        let node = Node::Index {
            level: 1,
            kd: kd.clone(),
        };
        let buf = node.encode(2);
        let NodeView::Index(view) = NodeView::parse(&buf, 2).unwrap() else {
            panic!("expected index view");
        };
        for query in [
            Rect::new(vec![3.5, 0.0], vec![5.0, 6.0]),
            Rect::new(vec![0.0, 2.2], vec![1.0, 2.8]),
            Rect::new(vec![0.0, 0.0], vec![6.0, 6.0]),
            Rect::new(vec![2.9, 3.9], vec![3.1, 4.1]),
        ] {
            let mut from_view = Vec::new();
            view.children_overlapping_box(&query, &mut from_view)
                .unwrap();
            let mut from_tree = Vec::new();
            kd.children_overlapping_box_ids(&query, &mut from_tree);
            assert_eq!(from_view, from_tree, "query {query:?}");
        }
    }

    #[test]
    fn view_point_walk_matches_decoded_walk() {
        let kd = paper_kd();
        let buf = Node::Index {
            level: 1,
            kd: kd.clone(),
        }
        .encode(2);
        let NodeView::Index(view) = NodeView::parse(&buf, 2).unwrap() else {
            panic!()
        };
        for p in [
            Point::new(vec![1.0, 2.5]),
            Point::new(vec![3.0, 5.0]),
            Point::new(vec![5.9, 0.1]),
        ] {
            let mut from_view = Vec::new();
            view.children_containing_point(&p, &mut from_view).unwrap();
            let mut from_tree = Vec::new();
            kd.children_containing_point_ids(&p, &mut from_tree);
            assert_eq!(from_view, from_tree, "point {p:?}");
        }
    }

    #[test]
    fn data_view_filters_in_place() {
        let entries: Vec<DataEntry> = (0..10)
            .map(|i| DataEntry {
                point: Point::new(vec![i as f32 / 10.0, 0.5]),
                oid: i,
            })
            .collect();
        let buf = Node::Data(entries).encode(2);
        let NodeView::Data(view) = NodeView::parse(&buf, 2).unwrap() else {
            panic!()
        };
        assert_eq!(view.len(), 10);
        let mut out = Vec::new();
        view.filter_box(&Rect::new(vec![0.25, 0.0], vec![0.65, 1.0]), &mut out);
        assert_eq!(out, vec![3, 4, 5, 6]);
        out.clear();
        view.filter_point(&Point::new(vec![0.3, 0.5]), &mut out);
        assert_eq!(out, vec![3]);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(NodeView::parse(&[], 2).is_err());
        assert!(NodeView::parse(&[9, 0, 0], 2).is_err());
        // Data node claiming more entries than the page holds.
        let mut buf = vec![0u8; 5];
        buf[1..5].copy_from_slice(&1000u32.to_le_bytes());
        assert!(NodeView::parse(&buf, 2).is_err());
    }

    #[test]
    fn empty_data_view() {
        let buf = Node::Data(vec![]).encode(3);
        let NodeView::Data(view) = NodeView::parse(&buf, 3).unwrap() else {
            panic!()
        };
        assert!(view.is_empty());
        let mut out = Vec::new();
        view.filter_box(&Rect::unit(3), &mut out);
        assert!(out.is_empty());
    }
}
