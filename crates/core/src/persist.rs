//! Durable open/close: a hybrid tree over a page file can be persisted
//! and reopened in another process, surviving crashes at any point.
//!
//! Pages live in a checksummed page file
//! ([`DurableStorage`](hyt_page::DurableStorage)); what survives here is
//! the *catalog*: root page, height, entry count, configuration, the
//! data-space bounding box, the storage write epoch, and the
//! memory-resident ELS table (the paper keeps ELS in memory; on shutdown
//! it must go somewhere, and rebuilding it costs a tree walk). The catalog
//! is a small sidecar file next to the page file.
//!
//! ## Commit protocol
//!
//! [`HybridTree::persist`] is the durability point:
//!
//! 1. flush every dirty page and `fsync` the page file;
//! 2. write the catalog — two independently CRC-32-protected sections
//!    (core, ELS) — to a temp file, `fsync` it, `rename` it over the old
//!    catalog, and `fsync` the directory;
//! 3. advance the storage write epoch, so every page flushed *after* this
//!    commit carries a newer epoch than the catalog records.
//!
//! A crash before the rename leaves the previous catalog intact; a crash
//! after it leaves the new one. Either way the catalog on disk is a
//! complete, checksummed snapshot that matches a page-file state that was
//! fsynced before it.
//!
//! ## Open and recovery
//!
//! [`HybridTree::open`] validates the catalog magic and both section CRCs,
//! then opens the page file (which rebuilds the free list and the newest
//! live epoch from the page frame headers). If the ELS section is damaged,
//! or any live page carries an epoch newer than the catalog (proof the
//! page file diverged after the last commit), or the live-page count
//! disagrees with the catalog, `open` falls back to a [`recover`] pass:
//! walk the tree from the catalog root, rebuild the ELS table bottom-up,
//! re-derive the set of live pages (reclaiming leaked ones), and
//! cross-check the result against the full structural invariant suite in
//! `verify.rs`. Recovery either returns a consistent tree or fails with a
//! typed [`PageError::Corrupt`] — never a panic, never silently wrong
//! query results.
//!
//! [`recover`]: HybridTree::recover

use crate::config::{HybridTreeConfig, QuerySizeDist, SplitPolicy};
use crate::els::ElsTable;
use crate::node::Node;
use crate::tree::HybridTree;
use hyt_geom::{Point, Rect};
use hyt_index::{IndexError, IndexResult};
use hyt_page::{
    crc32, BufferPool, ByteReader, ByteWriter, DurableStorage, PageError, PageId, Storage,
};
use std::collections::HashSet;
use std::io::Write as _;
use std::path::Path;

const MAGIC: &[u8; 8] = b"HYTREE03";

fn encode_cfg(w: &mut ByteWriter, cfg: &HybridTreeConfig) {
    w.put_u32(cfg.page_size as u32);
    w.put_f64(cfg.min_fill);
    w.put_u8(cfg.els_bits);
    w.put_u8(match cfg.split_policy {
        SplitPolicy::EdaOptimal => 0,
        SplitPolicy::Vam => 1,
        SplitPolicy::RoundRobin => 2,
        SplitPolicy::MaxExtentMedian => 3,
    });
    match cfg.query_size {
        QuerySizeDist::Fixed(r) => {
            w.put_u8(0);
            w.put_f64(r);
        }
        QuerySizeDist::Uniform { max } => {
            w.put_u8(1);
            w.put_f64(max);
        }
    }
    w.put_u32(cfg.pool_pages as u32);
    w.put_u32(cfg.node_cache_entries as u32);
}

fn decode_cfg(r: &mut ByteReader<'_>) -> Result<HybridTreeConfig, PageError> {
    let page_size = r.get_u32()? as usize;
    let min_fill = r.get_f64()?;
    let els_bits = r.get_u8()?;
    let split_policy = match r.get_u8()? {
        0 => SplitPolicy::EdaOptimal,
        1 => SplitPolicy::Vam,
        2 => SplitPolicy::RoundRobin,
        3 => SplitPolicy::MaxExtentMedian,
        t => return Err(PageError::Corrupt(format!("bad split policy {t}"))),
    };
    let query_size = match r.get_u8()? {
        0 => QuerySizeDist::Fixed(r.get_f64()?),
        1 => QuerySizeDist::Uniform { max: r.get_f64()? },
        t => return Err(PageError::Corrupt(format!("bad query dist {t}"))),
    };
    let pool_pages = r.get_u32()? as usize;
    let node_cache_entries = r.get_u32()? as usize;
    Ok(HybridTreeConfig {
        page_size,
        min_fill,
        els_bits,
        split_policy,
        query_size,
        pool_pages,
        node_cache_entries,
    })
}

/// The fixed-size part of the catalog: everything needed to reopen or
/// recover a tree except the (rebuildable) ELS table.
pub(crate) struct CatalogCore {
    pub dim: usize,
    pub len: usize,
    pub root: PageId,
    pub height: usize,
    /// Storage write epoch recorded at commit time.
    pub epoch: u64,
    /// Live pages in the page file at commit time.
    pub live_pages: u32,
    pub cfg: HybridTreeConfig,
    pub global_br: Option<Rect>,
}

/// A parsed catalog; `els` is `Err` when only the ELS section failed its
/// checksum (the core is intact, so recovery can rebuild the table).
pub(crate) struct Catalog {
    pub core: CatalogCore,
    pub els: Result<ElsTable, PageError>,
}

fn corrupt(msg: impl Into<String>) -> PageError {
    PageError::Corrupt(msg.into())
}

fn encode_core(w: &mut ByteWriter, core: &CatalogCore) {
    w.put_u32(core.dim as u32);
    w.put_u64(core.len as u64);
    w.put_u32(core.root.0);
    w.put_u32(core.height as u32);
    w.put_u64(core.epoch);
    w.put_u32(core.live_pages);
    encode_cfg(w, &core.cfg);
    match &core.global_br {
        Some(br) => {
            w.put_u8(1);
            for d in 0..core.dim {
                w.put_f32(br.lo(d));
            }
            for d in 0..core.dim {
                w.put_f32(br.hi(d));
            }
        }
        None => w.put_u8(0),
    }
}

fn decode_core(buf: &[u8]) -> Result<CatalogCore, PageError> {
    let mut r = ByteReader::new(buf);
    let dim = r.get_u32()? as usize;
    let len = r.get_u64()? as usize;
    let root = PageId(r.get_u32()?);
    let height = r.get_u32()? as usize;
    let epoch = r.get_u64()?;
    let live_pages = r.get_u32()?;
    let cfg = decode_cfg(&mut r)?;
    let global_br = match r.get_u8()? {
        0 => None,
        1 => {
            let mut lo = Vec::with_capacity(dim);
            for _ in 0..dim {
                lo.push(r.get_f32()?);
            }
            let mut hi = Vec::with_capacity(dim);
            for _ in 0..dim {
                hi.push(r.get_f32()?);
            }
            Some(Rect::new(lo, hi))
        }
        t => return Err(corrupt(format!("bad bounding-box tag {t}"))),
    };
    if dim == 0 || height == 0 {
        return Err(corrupt(format!(
            "implausible catalog: dim {dim}, height {height}"
        )));
    }
    Ok(CatalogCore {
        dim,
        len,
        root,
        height,
        epoch,
        live_pages,
        cfg,
        global_br,
    })
}

/// Serializes the full catalog: magic, then a length-prefixed,
/// CRC-32-trailed core section, then a likewise-framed ELS section.
fn encode_catalog(core: &CatalogCore, els: &ElsTable) -> Vec<u8> {
    let mut core_w = ByteWriter::new();
    encode_core(&mut core_w, core);
    let mut els_w = ByteWriter::new();
    els.encode(&mut els_w);

    let mut w = ByteWriter::new();
    w.put_bytes(MAGIC);
    w.put_u32(core_w.len() as u32);
    w.put_bytes(core_w.as_slice());
    w.put_u32(crc32(core_w.as_slice()));
    w.put_u32(els_w.len() as u32);
    w.put_bytes(els_w.as_slice());
    w.put_u32(crc32(els_w.as_slice()));
    w.into_inner()
}

/// Reads and validates a catalog file. A damaged core section is a hard
/// error; a damaged ELS section is reported in `Catalog::els` so the
/// caller can rebuild it.
pub(crate) fn read_catalog(meta_path: &Path) -> Result<Catalog, PageError> {
    let buf = std::fs::read(meta_path).map_err(PageError::Io)?;
    let mut r = ByteReader::new(&buf);
    let magic = r.get_bytes(8)?;
    if magic != MAGIC {
        return Err(corrupt("not a hybrid tree catalog (bad magic)"));
    }
    let core_len = r.get_u32()? as usize;
    let core_bytes = r.get_bytes(core_len)?;
    let core_crc = r.get_u32()?;
    if crc32(core_bytes) != core_crc {
        return Err(corrupt("catalog core section failed its checksum"));
    }
    let core = decode_core(core_bytes)?;
    let els = (|| {
        let els_len = r.get_u32()? as usize;
        let els_bytes = r.get_bytes(els_len)?;
        let els_crc = r.get_u32()?;
        if crc32(els_bytes) != els_crc {
            return Err(corrupt("catalog ELS section failed its checksum"));
        }
        ElsTable::decode(&mut ByteReader::new(els_bytes))
    })();
    Ok(Catalog { core, els })
}

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// `fsync`, `rename`, `fsync` the directory. A crash at any point leaves
/// either the old file or the new one, never a torn mix.
fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp_name);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    #[cfg(unix)]
    {
        // Make the rename itself durable: fsync the containing directory.
        let dir = match path.parent() {
            Some(d) if !d.as_os_str().is_empty() => d,
            _ => Path::new("."),
        };
        std::fs::File::open(dir)?.sync_all()?;
    }
    Ok(())
}

impl<S: Storage> HybridTree<S> {
    /// Commits the tree: flushes and fsyncs every dirty page, then
    /// atomically replaces the catalog at `meta_path` (see the module docs
    /// for the protocol). After this call, [`HybridTree::open`] restores
    /// exactly this state even if the process dies immediately.
    pub fn persist<P: AsRef<Path>>(&mut self, meta_path: P) -> IndexResult<()> {
        self.pool.sync_storage()?;
        let core = CatalogCore {
            dim: self.dim,
            len: self.len,
            root: self.root,
            height: self.height,
            epoch: self.pool.with_storage(|s| s.epoch()),
            live_pages: self.pool.live_pages() as u32,
            cfg: self.cfg.clone(),
            global_br: self.global_br.clone(),
        };
        let bytes = encode_catalog(&core, &self.els);
        write_atomic(meta_path.as_ref(), &bytes).map_err(PageError::Io)?;
        // Pages flushed from now on are provably newer than this catalog.
        self.pool.with_storage_mut(|s| s.advance_epoch());
        Ok(())
    }
}

impl HybridTree<DurableStorage> {
    /// Creates an empty tree over a fresh checksummed page file.
    pub fn create_durable<P: AsRef<Path>>(
        dim: usize,
        cfg: HybridTreeConfig,
        pages_path: P,
    ) -> IndexResult<Self> {
        let storage = DurableStorage::create(pages_path, cfg.page_size)?;
        Self::with_storage(dim, cfg, storage)
    }

    /// Reopens a tree persisted with [`persist`](Self::persist).
    ///
    /// Validates the catalog magic and checksums, then cross-checks the
    /// page file against the catalog (write epochs, live-page count). If
    /// the ELS section is damaged or the page file diverged from the
    /// catalog, this falls back to [`recover`](Self::recover)'s walk
    /// instead of serving possibly stale metadata.
    pub fn open<P: AsRef<Path>, Q: AsRef<Path>>(pages_path: P, meta_path: Q) -> IndexResult<Self> {
        Self::open_inner(pages_path, meta_path, None)
    }

    /// Like [`open`](Self::open), but overrides the catalog's persisted
    /// `node_cache_entries`. Cache sizing is a property of the serving
    /// host, not of the index file, so deployments can tune it per
    /// process without rewriting the catalog.
    pub fn open_with_node_cache<P: AsRef<Path>, Q: AsRef<Path>>(
        pages_path: P,
        meta_path: Q,
        node_cache_entries: usize,
    ) -> IndexResult<Self> {
        Self::open_inner(pages_path, meta_path, Some(node_cache_entries))
    }

    fn open_inner<P: AsRef<Path>, Q: AsRef<Path>>(
        pages_path: P,
        meta_path: Q,
        cache_override: Option<usize>,
    ) -> IndexResult<Self> {
        let mut catalog = read_catalog(meta_path.as_ref()).map_err(IndexError::Storage)?;
        if let Some(entries) = cache_override {
            catalog.core.cfg.node_cache_entries = entries;
        }
        let storage = DurableStorage::open(pages_path, catalog.core.cfg.page_size)?;
        let diverged = storage.max_live_epoch() > catalog.core.epoch
            || storage.live_pages() != catalog.core.live_pages as usize;
        match catalog.els {
            Ok(els) if !diverged => {
                let core = catalog.core;
                let data_cap = crate::node::data_capacity(core.cfg.page_size, core.dim);
                let data_min = ((core.cfg.min_fill * data_cap as f64).floor() as usize).max(1);
                let pool = BufferPool::with_node_cache(
                    storage,
                    core.cfg.pool_pages,
                    core.cfg.node_cache_entries,
                );
                Ok(Self::assemble(
                    pool,
                    core.root,
                    core.height,
                    core.dim,
                    core.len,
                    core.cfg,
                    data_cap,
                    data_min,
                    core.global_br,
                    els,
                ))
            }
            _ => Self::recover_with(storage, catalog.core),
        }
    }

    /// Forces a recovery pass: walks the tree from the catalog root,
    /// rebuilding the ELS table and the live-page set from the pages
    /// themselves, then cross-checks every structural invariant. Returns a
    /// consistent tree or a typed [`PageError::Corrupt`] error.
    pub fn recover<P: AsRef<Path>, Q: AsRef<Path>>(
        pages_path: P,
        meta_path: Q,
    ) -> IndexResult<Self> {
        let catalog = read_catalog(meta_path.as_ref()).map_err(IndexError::Storage)?;
        let storage = DurableStorage::open(pages_path, catalog.core.cfg.page_size)?;
        Self::recover_with(storage, catalog.core)
    }

    fn recover_with(mut storage: DurableStorage, core: CatalogCore) -> IndexResult<Self> {
        let dim = core.dim;
        let cfg = core.cfg.clone();
        let mut els = ElsTable::new(dim, cfg.els_bits);
        let mut reachable = HashSet::new();
        let root_region = core
            .global_br
            .clone()
            .unwrap_or_else(|| Rect::from_point(&Point::origin(dim)));
        let expected_level = (core.height - 1) as u16;
        let (total, _) = walk_rebuild(
            &storage,
            core.root,
            &root_region,
            expected_level,
            dim,
            cfg.page_size,
            &mut els,
            &mut reachable,
        )
        .map_err(IndexError::Storage)?;
        if total != core.len {
            return Err(IndexError::Storage(corrupt(format!(
                "recovery walk found {total} entries, catalog records {}",
                core.len
            ))));
        }
        // Reclaim pages the tree cannot reach (leaked by a crash between
        // an allocation and the commit that would have referenced it).
        // Freeing zeroes the slot, so the reclamation is durable.
        for i in 0..storage.page_slots() {
            let id = PageId(i);
            if !storage.is_freed(id) && !reachable.contains(&id) {
                storage.free(id)?;
            }
        }
        let data_cap = crate::node::data_capacity(cfg.page_size, dim);
        let data_min = ((cfg.min_fill * data_cap as f64).floor() as usize).max(1);
        let pool = BufferPool::with_node_cache(storage, cfg.pool_pages, cfg.node_cache_entries);
        let tree = Self::assemble(
            pool,
            core.root,
            core.height,
            dim,
            core.len,
            cfg,
            data_cap,
            data_min,
            core.global_br,
            els,
        );
        // Cross-check against the full invariant suite (regions, levels,
        // utilization, ELS conservativeness, reachable count).
        tree.check_invariants().map_err(|e| {
            IndexError::Storage(corrupt(format!("recovery cross-check failed: {e}")))
        })?;
        Ok(tree)
    }
}

/// Recursive recovery walk: validates node decode and levels, accumulates
/// the reachable-page set, rebuilds ELS entries bottom-up, and returns
/// `(entry count, live bounding box)` for the subtree.
#[allow(clippy::too_many_arguments)]
fn walk_rebuild(
    storage: &DurableStorage,
    pid: PageId,
    region: &Rect,
    expected_level: u16,
    dim: usize,
    page_size: usize,
    els: &mut ElsTable,
    reachable: &mut HashSet<PageId>,
) -> Result<(usize, Option<Rect>), PageError> {
    if !reachable.insert(pid) {
        return Err(corrupt(format!("{pid}: page referenced more than once")));
    }
    let mut buf = vec![0u8; page_size];
    storage.read(pid, &mut buf)?;
    match Node::decode(&buf, dim)? {
        Node::Data(entries) => {
            if expected_level != 0 {
                return Err(corrupt(format!(
                    "{pid}: data node at level {expected_level}"
                )));
            }
            let mut bb: Option<Rect> = None;
            for e in &entries {
                bb = Some(match bb {
                    None => Rect::from_point(&e.point),
                    Some(b) => {
                        let mut lo = Vec::with_capacity(dim);
                        let mut hi = Vec::with_capacity(dim);
                        for d in 0..dim {
                            lo.push(b.lo(d).min(e.point.coord(d)));
                            hi.push(b.hi(d).max(e.point.coord(d)));
                        }
                        Rect::new(lo, hi)
                    }
                });
            }
            Ok((entries.len(), bb))
        }
        Node::Index { level, kd } => {
            if level != expected_level || expected_level == 0 {
                return Err(corrupt(format!(
                    "{pid}: index node at level {level}, expected {expected_level}"
                )));
            }
            let mut total = 0usize;
            let mut acc: Option<Rect> = None;
            for (child, child_region) in kd.children_with_regions(region) {
                let (count, live) = walk_rebuild(
                    storage,
                    child,
                    &child_region,
                    expected_level - 1,
                    dim,
                    page_size,
                    els,
                    reachable,
                )?;
                if let Some(live) = &live {
                    els.set_from_rects(child, std::iter::once(live), &child_region);
                    acc = Some(match acc {
                        None => live.clone(),
                        Some(a) => a.union(live),
                    });
                }
                total += count;
            }
            Ok((total, acc))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyt_geom::{Point, L2};
    use hyt_index::MultidimIndex;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("hyt_persist_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn build_tree(
        pages: &Path,
        cfg: &HybridTreeConfig,
        dim: usize,
        pts: &[Point],
    ) -> HybridTree<DurableStorage> {
        let mut t = HybridTree::create_durable(dim, cfg.clone(), pages).unwrap();
        for (i, p) in pts.iter().enumerate() {
            t.insert(p.clone(), i as u64).unwrap();
        }
        t
    }

    fn random_points(n: usize, dim: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new((0..dim).map(|_| rng.gen::<f32>()).collect()))
            .collect()
    }

    #[test]
    fn persist_and_reopen_roundtrip() {
        let pages = tmp("rt.pages");
        let meta = tmp("rt.meta");
        let pts = random_points(800, 5, 1);
        let cfg = HybridTreeConfig {
            page_size: 512,
            els_bits: 4,
            ..HybridTreeConfig::default()
        };
        {
            let mut t = build_tree(&pages, &cfg, 5, &pts);
            t.persist(&meta).unwrap();
        }
        {
            let mut t = HybridTree::open(&pages, &meta).unwrap();
            assert_eq!(t.len(), 800);
            assert_eq!(t.dim(), 5);
            t.check_invariants().unwrap();
            // Queries agree with brute force after the round trip.
            let rect = Rect::new(vec![0.2; 5], vec![0.8; 5]);
            let mut got = t.box_query(&rect).unwrap();
            got.sort_unstable();
            let mut want: Vec<u64> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| rect.contains_point(p))
                .map(|(i, _)| i as u64)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want);
            // And the reopened tree stays fully dynamic.
            t.insert(Point::new(vec![0.5; 5]), 9000).unwrap();
            assert!(t.delete(&pts[0], 0).unwrap());
            t.check_invariants().unwrap();
            let nn = t.knn(&Point::new(vec![0.5; 5]), 1, &L2).unwrap();
            assert_eq!(nn[0].0, 9000);
        }
        std::fs::remove_file(&pages).ok();
        std::fs::remove_file(&meta).ok();
    }

    #[test]
    fn open_rejects_garbage_catalog() {
        let pages = tmp("bad.pages");
        let meta = tmp("bad.meta");
        let _ = DurableStorage::create(&pages, 512).unwrap();
        std::fs::write(&meta, b"definitely not a catalog").unwrap();
        assert!(HybridTree::open(&pages, &meta).is_err());
        std::fs::write(&meta, b"HY").unwrap();
        assert!(HybridTree::open(&pages, &meta).is_err());
        std::fs::remove_file(&pages).ok();
        std::fs::remove_file(&meta).ok();
    }

    #[test]
    fn config_roundtrips_through_catalog() {
        let pages = tmp("cfg.pages");
        let meta = tmp("cfg.meta");
        let cfg = HybridTreeConfig {
            page_size: 1024,
            min_fill: 0.25,
            els_bits: 7,
            split_policy: SplitPolicy::Vam,
            query_size: QuerySizeDist::Fixed(0.125),
            pool_pages: 33,
            node_cache_entries: 12,
        };
        {
            let mut t = HybridTree::create_durable(3, cfg.clone(), &pages).unwrap();
            t.insert(Point::new(vec![0.1, 0.2, 0.3]), 1).unwrap();
            t.persist(&meta).unwrap();
        }
        let t = HybridTree::open(&pages, &meta).unwrap();
        let got = t.config();
        assert_eq!(got.page_size, cfg.page_size);
        assert_eq!(got.min_fill, cfg.min_fill);
        assert_eq!(got.els_bits, cfg.els_bits);
        assert_eq!(got.split_policy, cfg.split_policy);
        assert_eq!(got.query_size, cfg.query_size);
        assert_eq!(got.pool_pages, cfg.pool_pages);
        assert_eq!(got.node_cache_entries, cfg.node_cache_entries);
        std::fs::remove_file(&pages).ok();
        std::fs::remove_file(&meta).ok();
    }

    #[test]
    fn catalog_bit_flips_are_always_detected() {
        let pages = tmp("flip.pages");
        let meta = tmp("flip.meta");
        let pts = random_points(300, 3, 7);
        let cfg = HybridTreeConfig {
            page_size: 512,
            ..HybridTreeConfig::default()
        };
        {
            let mut t = build_tree(&pages, &cfg, 3, &pts);
            t.persist(&meta).unwrap();
        }
        let clean = std::fs::read(&meta).unwrap();
        // Flip a bit at a spread of offsets; open must either refuse with
        // a typed error or (ELS-section damage) recover to a correct tree.
        for pos in (0..clean.len()).step_by(7) {
            let mut bad = clean.clone();
            bad[pos] ^= 0x04;
            std::fs::write(&meta, &bad).unwrap();
            match HybridTree::open(&pages, &meta) {
                Ok(t) => {
                    assert_eq!(t.len(), 300, "flip at {pos} changed the tree");
                    t.check_invariants().unwrap();
                }
                Err(e) => {
                    assert!(
                        matches!(e, IndexError::Storage(_)),
                        "flip at {pos}: unexpected error {e:?}"
                    );
                }
            }
        }
        std::fs::remove_file(&pages).ok();
        std::fs::remove_file(&meta).ok();
    }

    #[test]
    fn truncated_catalog_is_rejected_at_every_length() {
        let pages = tmp("trunc.pages");
        let meta = tmp("trunc.meta");
        let pts = random_points(120, 2, 9);
        let cfg = HybridTreeConfig {
            page_size: 256,
            ..HybridTreeConfig::default()
        };
        {
            let mut t = build_tree(&pages, &cfg, 2, &pts);
            t.persist(&meta).unwrap();
        }
        let clean = std::fs::read(&meta).unwrap();
        for cut in 0..clean.len() {
            std::fs::write(&meta, &clean[..cut]).unwrap();
            match HybridTree::open(&pages, &meta) {
                // Cuts inside the (trailing, rebuildable) ELS section can
                // recover; everything else must fail typed.
                Ok(t) => assert_eq!(t.len(), 120, "cut at {cut}"),
                Err(IndexError::Storage(_)) => {}
                Err(e) => panic!("cut at {cut}: unexpected error {e:?}"),
            }
        }
        std::fs::remove_file(&pages).ok();
        std::fs::remove_file(&meta).ok();
    }

    #[test]
    fn damaged_els_section_triggers_recovery_with_identical_results() {
        let pages = tmp("els.pages");
        let meta = tmp("els.meta");
        let pts = random_points(500, 4, 11);
        let cfg = HybridTreeConfig {
            page_size: 512,
            els_bits: 4,
            ..HybridTreeConfig::default()
        };
        {
            let mut t = build_tree(&pages, &cfg, 4, &pts);
            t.persist(&meta).unwrap();
        }
        // Corrupt one byte in the middle of the ELS section.
        let mut bytes = std::fs::read(&meta).unwrap();
        let n = bytes.len();
        bytes[n - 20] ^= 0xFF;
        std::fs::write(&meta, &bytes).unwrap();
        let t = HybridTree::open(&pages, &meta).unwrap();
        assert_eq!(t.len(), 500);
        t.check_invariants().unwrap();
        let rect = Rect::new(vec![0.1; 4], vec![0.6; 4]);
        let mut got = t.box_query(&rect).unwrap();
        got.sort_unstable();
        let mut want: Vec<u64> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| rect.contains_point(p))
            .map(|(i, _)| i as u64)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want, "recovered ELS must not change results");
        std::fs::remove_file(&pages).ok();
        std::fs::remove_file(&meta).ok();
    }

    #[test]
    fn pages_newer_than_catalog_force_recovery_not_stale_reads() {
        let pages = tmp("epoch.pages");
        let meta = tmp("epoch.meta");
        let pts = random_points(400, 3, 13);
        let cfg = HybridTreeConfig {
            page_size: 512,
            ..HybridTreeConfig::default()
        };
        {
            let mut t = build_tree(&pages, &cfg, 3, &pts[..300]);
            t.persist(&meta).unwrap();
            // Keep mutating *after* the commit, then flush pages without
            // committing a catalog — the crash window that used to produce
            // silently stale opens.
            for (i, p) in pts[300..].iter().enumerate() {
                t.insert(p.clone(), (300 + i) as u64).unwrap();
            }
            t.flush_for_test();
        }
        // Open must notice the divergence (newer page epochs) and take the
        // recovery path; the result must be a consistent tree, never a
        // silent mix of old catalog and new pages.
        match HybridTree::open(&pages, &meta) {
            Ok(t) => {
                t.check_invariants().unwrap();
                let got = t.box_query(&Rect::new(vec![0.0; 3], vec![1.0; 3])).unwrap();
                assert_eq!(got.len(), t.len(), "whole-space query matches len");
            }
            Err(e) => assert!(matches!(e, IndexError::Storage(_)), "{e:?}"),
        }
        std::fs::remove_file(&pages).ok();
        std::fs::remove_file(&meta).ok();
    }

    #[test]
    fn recovery_reclaims_leaked_pages() {
        let pages = tmp("leak.pages");
        let meta = tmp("leak.meta");
        let pts = random_points(200, 3, 17);
        let cfg = HybridTreeConfig {
            page_size: 512,
            ..HybridTreeConfig::default()
        };
        let live_committed;
        {
            let mut t = build_tree(&pages, &cfg, 3, &pts);
            t.persist(&meta).unwrap();
            live_committed = t.pool_live_pages_for_test();
            // Leak a page: allocated and flushed but never linked into
            // the tree or committed (a crash mid-split does this).
            t.leak_page_for_test();
        }
        let t = HybridTree::recover(&pages, &meta).unwrap();
        assert_eq!(t.len(), 200);
        t.check_invariants().unwrap();
        assert_eq!(
            t.pool_live_pages_for_test(),
            live_committed,
            "recovery reclaimed the leaked page"
        );
        std::fs::remove_file(&pages).ok();
        std::fs::remove_file(&meta).ok();
    }

    #[test]
    fn persist_leaves_no_temp_file() {
        let pages = tmp("tmpf.pages");
        let meta = tmp("tmpf.meta");
        {
            let mut t = HybridTree::create_durable(
                2,
                HybridTreeConfig {
                    page_size: 256,
                    ..HybridTreeConfig::default()
                },
                &pages,
            )
            .unwrap();
            t.insert(Point::new(vec![0.5, 0.5]), 1).unwrap();
            t.persist(&meta).unwrap();
            t.persist(&meta).unwrap(); // idempotent re-commit
        }
        let mut tmp_name = meta.as_os_str().to_owned();
        tmp_name.push(".tmp");
        assert!(!std::path::PathBuf::from(tmp_name).exists());
        assert!(HybridTree::open(&pages, &meta).is_ok());
        std::fs::remove_file(&pages).ok();
        std::fs::remove_file(&meta).ok();
    }
}
