//! Durable open/close: a hybrid tree over a page file can be persisted
//! and reopened in another process.
//!
//! Pages already live in the [`FileStorage`](hyt_page::FileStorage); what
//! survives here is the *catalog*: root page, height, entry count,
//! configuration, the data-space bounding box, and the memory-resident
//! ELS table (the paper keeps ELS in memory; on shutdown it must go
//! somewhere, and rebuilding it would cost a full scan). The catalog is
//! written as a small sidecar file next to the page file.

use crate::config::{HybridTreeConfig, QuerySizeDist, SplitPolicy};
use crate::els::ElsTable;
use crate::tree::HybridTree;
use hyt_geom::Rect;
use hyt_index::{IndexError, IndexResult};
use hyt_page::{BufferPool, ByteReader, ByteWriter, FileStorage, PageError, PageId};
use std::path::Path;

const MAGIC: &[u8; 8] = b"HYTREE01";

fn encode_cfg(w: &mut ByteWriter, cfg: &HybridTreeConfig) {
    w.put_u32(cfg.page_size as u32);
    w.put_f64(cfg.min_fill);
    w.put_u8(cfg.els_bits);
    w.put_u8(match cfg.split_policy {
        SplitPolicy::EdaOptimal => 0,
        SplitPolicy::Vam => 1,
        SplitPolicy::RoundRobin => 2,
        SplitPolicy::MaxExtentMedian => 3,
    });
    match cfg.query_size {
        QuerySizeDist::Fixed(r) => {
            w.put_u8(0);
            w.put_f64(r);
        }
        QuerySizeDist::Uniform { max } => {
            w.put_u8(1);
            w.put_f64(max);
        }
    }
    w.put_u32(cfg.pool_pages as u32);
}

fn decode_cfg(r: &mut ByteReader<'_>) -> Result<HybridTreeConfig, PageError> {
    let page_size = r.get_u32()? as usize;
    let min_fill = r.get_f64()?;
    let els_bits = r.get_u8()?;
    let split_policy = match r.get_u8()? {
        0 => SplitPolicy::EdaOptimal,
        1 => SplitPolicy::Vam,
        2 => SplitPolicy::RoundRobin,
        3 => SplitPolicy::MaxExtentMedian,
        t => return Err(PageError::Corrupt(format!("bad split policy {t}"))),
    };
    let query_size = match r.get_u8()? {
        0 => QuerySizeDist::Fixed(r.get_f64()?),
        1 => QuerySizeDist::Uniform { max: r.get_f64()? },
        t => return Err(PageError::Corrupt(format!("bad query dist {t}"))),
    };
    let pool_pages = r.get_u32()? as usize;
    Ok(HybridTreeConfig {
        page_size,
        min_fill,
        els_bits,
        split_policy,
        query_size,
        pool_pages,
    })
}

impl HybridTree<FileStorage> {
    /// Flushes all dirty pages and writes the catalog to `meta_path`.
    ///
    /// The page file itself is the one the tree was created over; after
    /// this call, [`open`](Self::open) can restore the tree.
    pub fn persist<P: AsRef<Path>>(&mut self, meta_path: P) -> IndexResult<()> {
        self.pool.flush_all()?;
        let mut w = ByteWriter::new();
        w.put_bytes(MAGIC);
        w.put_u32(self.dim as u32);
        w.put_u64(self.len as u64);
        w.put_u32(self.root.0);
        w.put_u32(self.height as u32);
        encode_cfg(&mut w, &self.cfg);
        match &self.global_br {
            Some(br) => {
                w.put_u8(1);
                for d in 0..self.dim {
                    w.put_f32(br.lo(d));
                }
                for d in 0..self.dim {
                    w.put_f32(br.hi(d));
                }
            }
            None => w.put_u8(0),
        }
        self.els.encode(&mut w);
        std::fs::write(meta_path, w.as_slice()).map_err(PageError::Io)?;
        Ok(())
    }

    /// Reopens a tree persisted with [`persist`](Self::persist).
    pub fn open<P: AsRef<Path>, Q: AsRef<Path>>(pages_path: P, meta_path: Q) -> IndexResult<Self> {
        let buf = std::fs::read(meta_path).map_err(PageError::Io)?;
        let mut r = ByteReader::new(&buf);
        let magic = r.get_bytes(8)?;
        if magic != MAGIC {
            return Err(IndexError::Storage(PageError::Corrupt(
                "not a hybrid tree catalog (bad magic)".into(),
            )));
        }
        let dim = r.get_u32()? as usize;
        let len = r.get_u64()? as usize;
        let root = PageId(r.get_u32()?);
        let height = r.get_u32()? as usize;
        let cfg = decode_cfg(&mut r)?;
        let global_br = match r.get_u8()? {
            0 => None,
            1 => {
                let mut lo = Vec::with_capacity(dim);
                for _ in 0..dim {
                    lo.push(r.get_f32()?);
                }
                let mut hi = Vec::with_capacity(dim);
                for _ in 0..dim {
                    hi.push(r.get_f32()?);
                }
                Some(Rect::new(lo, hi))
            }
            t => {
                return Err(IndexError::Storage(PageError::Corrupt(format!(
                    "bad bounding-box tag {t}"
                ))))
            }
        };
        let els = ElsTable::decode(&mut r)?;
        let storage = FileStorage::open(pages_path, cfg.page_size)?;
        let data_cap = crate::node::data_capacity(cfg.page_size, dim);
        let data_min = ((cfg.min_fill * data_cap as f64).floor() as usize).max(1);
        let pool = BufferPool::new(storage, cfg.pool_pages);
        Ok(Self::assemble(
            pool, root, height, dim, len, cfg, data_cap, data_min, global_br, els,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyt_geom::{Point, L2};
    use hyt_index::MultidimIndex;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("hyt_persist_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn persist_and_reopen_roundtrip() {
        let pages = tmp("rt.pages");
        let meta = tmp("rt.meta");
        let mut rng = StdRng::seed_from_u64(1);
        let pts: Vec<Point> = (0..800)
            .map(|_| Point::new((0..5).map(|_| rng.gen::<f32>()).collect()))
            .collect();
        let cfg = HybridTreeConfig {
            page_size: 512,
            els_bits: 4,
            ..HybridTreeConfig::default()
        };
        {
            let storage = FileStorage::create(&pages, 512).unwrap();
            let mut t = HybridTree::with_storage(5, cfg, storage).unwrap();
            for (i, p) in pts.iter().enumerate() {
                t.insert(p.clone(), i as u64).unwrap();
            }
            t.persist(&meta).unwrap();
        }
        {
            let mut t = HybridTree::open(&pages, &meta).unwrap();
            assert_eq!(t.len(), 800);
            assert_eq!(t.dim(), 5);
            t.check_invariants().unwrap();
            // Queries agree with brute force after the round trip.
            let rect = Rect::new(vec![0.2; 5], vec![0.8; 5]);
            let mut got = t.box_query(&rect).unwrap();
            got.sort_unstable();
            let mut want: Vec<u64> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| rect.contains_point(p))
                .map(|(i, _)| i as u64)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want);
            // And the reopened tree stays fully dynamic.
            t.insert(Point::new(vec![0.5; 5]), 9000).unwrap();
            assert!(t.delete(&pts[0], 0).unwrap());
            t.check_invariants().unwrap();
            let nn = t.knn(&Point::new(vec![0.5; 5]), 1, &L2).unwrap();
            assert_eq!(nn[0].0, 9000);
        }
        std::fs::remove_file(&pages).ok();
        std::fs::remove_file(&meta).ok();
    }

    #[test]
    fn open_rejects_garbage_catalog() {
        let pages = tmp("bad.pages");
        let meta = tmp("bad.meta");
        let _ = FileStorage::create(&pages, 512).unwrap();
        std::fs::write(&meta, b"definitely not a catalog").unwrap();
        assert!(HybridTree::open(&pages, &meta).is_err());
        std::fs::write(&meta, b"HY").unwrap();
        assert!(HybridTree::open(&pages, &meta).is_err());
        std::fs::remove_file(&pages).ok();
        std::fs::remove_file(&meta).ok();
    }

    #[test]
    fn config_roundtrips_through_catalog() {
        let pages = tmp("cfg.pages");
        let meta = tmp("cfg.meta");
        let cfg = HybridTreeConfig {
            page_size: 1024,
            min_fill: 0.25,
            els_bits: 7,
            split_policy: SplitPolicy::Vam,
            query_size: QuerySizeDist::Fixed(0.125),
            pool_pages: 33,
        };
        {
            let storage = FileStorage::create(&pages, 1024).unwrap();
            let mut t = HybridTree::with_storage(3, cfg.clone(), storage).unwrap();
            t.insert(Point::new(vec![0.1, 0.2, 0.3]), 1).unwrap();
            t.persist(&meta).unwrap();
        }
        let t = HybridTree::open(&pages, &meta).unwrap();
        let got = t.config();
        assert_eq!(got.page_size, cfg.page_size);
        assert_eq!(got.min_fill, cfg.min_fill);
        assert_eq!(got.els_bits, cfg.els_bits);
        assert_eq!(got.split_policy, cfg.split_policy);
        assert_eq!(got.query_size, cfg.query_size);
        assert_eq!(got.pool_pages, cfg.pool_pages);
        std::fs::remove_file(&pages).ok();
        std::fs::remove_file(&meta).ok();
    }
}
