//! Structural invariant checker (used heavily by tests and fuzzing).

use crate::node::{Node, INDEX_HEADER_BYTES};
use crate::tree::HybridTree;
use hyt_geom::Rect;
use hyt_index::{IndexError, IndexResult, QueryContext};
use hyt_page::{IoStats, PageId, Storage};

/// Verifies every documented structural invariant of the tree:
///
/// 1. every stored point lies inside its node's kd-region chain;
/// 2. the ELS effective region of a child contains every point beneath it
///    (no false dismissals);
/// 3. node levels decrease by exactly one per tree level, data nodes at
///    level 0;
/// 4. non-root data nodes respect the utilization quota and the capacity;
/// 5. non-root index nodes have fanout >= 2;
/// 6. every serialized node fits in a page;
/// 7. the number of reachable entries equals `len()`;
/// 8. no page is referenced twice.
pub(crate) fn check<S: Storage>(tree: &HybridTree<S>) -> IndexResult<()> {
    let root_region = tree.root_region();
    let expected_level = (tree.height - 1) as u16;
    let mut seen = std::collections::HashSet::new();
    let total = check_rec(
        tree,
        tree.root,
        &root_region,
        expected_level,
        true,
        &mut seen,
    )?;
    if total != tree.len {
        return Err(IndexError::Internal(format!(
            "reachable entries {total} != len {}",
            tree.len
        )));
    }
    Ok(())
}

fn err(pid: PageId, msg: String) -> IndexError {
    IndexError::Internal(format!("{pid}: {msg}"))
}

fn check_rec<S: Storage>(
    tree: &HybridTree<S>,
    pid: PageId,
    region: &Rect,
    expected_level: u16,
    is_root: bool,
    seen: &mut std::collections::HashSet<PageId>,
) -> IndexResult<usize> {
    if !seen.insert(pid) {
        return Err(err(pid, "page referenced more than once".into()));
    }
    let mut io = IoStats::default();
    let node = tree.read_node_ctx(pid, &mut io, QueryContext::unlimited())?;
    let size = node.encoded_size(tree.dim);
    if size > tree.cfg.page_size {
        return Err(err(pid, format!("encoded size {size} exceeds page")));
    }
    match &*node {
        Node::Data(entries) => {
            if expected_level != 0 {
                return Err(err(pid, format!("data node at level {expected_level}")));
            }
            if entries.len() > tree.data_cap {
                return Err(err(pid, format!("over capacity: {}", entries.len())));
            }
            if !is_root && entries.len() < tree.data_min {
                return Err(err(
                    pid,
                    format!(
                        "utilization violated: {} < {}",
                        entries.len(),
                        tree.data_min
                    ),
                ));
            }
            for e in entries {
                if !region.contains_point(&e.point) {
                    return Err(err(
                        pid,
                        format!("point {:?} outside region {region:?}", e.point),
                    ));
                }
            }
            Ok(entries.len())
        }
        Node::Index { level, kd } => {
            if *level != expected_level {
                return Err(err(
                    pid,
                    format!("level {level}, expected {expected_level}"),
                ));
            }
            if expected_level == 0 {
                return Err(err(pid, "index node at data level".into()));
            }
            let fanout = kd.fanout();
            if fanout < 2 && !is_root {
                return Err(err(pid, format!("fanout {fanout} < 2")));
            }
            if INDEX_HEADER_BYTES + kd.encoded_size() > tree.cfg.page_size {
                return Err(err(pid, "kd-tree exceeds page".into()));
            }
            let mut total = 0usize;
            for (child, child_region) in kd.children_with_regions(region) {
                if !region.contains_rect(&child_region) {
                    return Err(err(
                        pid,
                        format!("child region {child_region:?} escapes {region:?}"),
                    ));
                }
                // ELS conservativeness: the effective region must contain
                // every point beneath the child; checked by verifying all
                // entries below fall inside it.
                let eff = tree.els.effective_region(child, &child_region);
                let count = check_rec(tree, child, &child_region, expected_level - 1, false, seen)?;
                check_points_within(tree, child, &eff)?;
                total += count;
            }
            Ok(total)
        }
    }
}

/// Asserts every data point beneath `pid` lies inside `eff`.
fn check_points_within<S: Storage>(
    tree: &HybridTree<S>,
    pid: PageId,
    eff: &Rect,
) -> IndexResult<()> {
    let mut io = IoStats::default();
    let mut stack = vec![pid];
    while let Some(pid) = stack.pop() {
        let node = tree.read_node_ctx(pid, &mut io, QueryContext::unlimited())?;
        match &*node {
            Node::Data(entries) => {
                for e in entries {
                    if !eff.contains_point(&e.point) {
                        return Err(err(
                            pid,
                            format!("ELS region {eff:?} misses point {:?}", e.point),
                        ));
                    }
                }
            }
            Node::Index { kd, .. } => stack.extend(kd.child_ids()),
        }
    }
    Ok(())
}
