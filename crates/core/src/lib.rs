//! # The Hybrid Tree
//!
//! A reproduction of *"The Hybrid Tree: An Index Structure for High
//! Dimensional Feature Spaces"* (Chakrabarti & Mehrotra, ICDE 1999).
//!
//! The hybrid tree is a paged, disk-resident index for k-dimensional
//! feature vectors that combines the strengths of space-partitioning (SP)
//! and data-partitioning (DP) structures:
//!
//! * Nodes always split along a **single dimension**, so the fanout of an
//!   index page is independent of dimensionality (unlike R-tree-family
//!   structures whose per-entry BRs shrink fanout linearly in k).
//! * The space partitioning inside an index node is organized as a
//!   **kd-tree**, enabling `O(log fanout)` intra-node search; each kd
//!   split stores **two split positions** (`lsp`, `rsp`), allowing the two
//!   subspaces to **overlap** (`lsp > rsp`) exactly when a clean split
//!   would force cascading downward splits and break utilization
//!   guarantees (the kDB-tree's failure mode).
//! * Split dimensions and positions are chosen to minimize the increase in
//!   **expected disk accesses (EDA)** per query: data nodes split the
//!   maximum-extent dimension at the middle; index nodes evaluate, for
//!   every candidate dimension, the best 1-d bipartition of their
//!   children's projections and pick the dimension with the smallest
//!   normalized overlap `E_r[(w + r) / (s + r)]` (paper §3.2–§3.3).
//! * **Dead space** inside kd-regions is eliminated with *encoded live
//!   space* (ELS): a per-child live-space BR quantized to a few bits per
//!   boundary, held in a memory-resident side table (paper §3.4).
//! * Queries are **feature-based**: bounding-box, distance-range, and
//!   k-NN search all accept an arbitrary [`Metric`](hyt_geom::Metric)
//!   supplied at query time.
//!
//! ## Quick start
//!
//! ```
//! use hybrid_tree::{HybridTree, HybridTreeConfig};
//! use hyt_geom::{Point, Rect, L1};
//! use hyt_index::MultidimIndex;
//!
//! let mut tree = HybridTree::new(4, HybridTreeConfig::default()).unwrap();
//! for i in 0..100u64 {
//!     let x = (i as f32) / 100.0;
//!     tree.insert(Point::new(vec![x, x * x, 1.0 - x, 0.5]), i).unwrap();
//! }
//! // Window query.
//! let hits = tree
//!     .box_query(&Rect::new(vec![0.0; 4], vec![0.2, 1.0, 1.0, 1.0]))
//!     .unwrap();
//! assert_eq!(hits.len(), 21);
//! // 3 nearest neighbors under L1, chosen at query time.
//! let nn = tree.knn(&Point::new(vec![0.5, 0.25, 0.5, 0.5]), 3, &L1).unwrap();
//! assert_eq!(nn.len(), 3);
//! ```

mod bulk;
mod config;
mod els;
mod iter;
mod kdtree;
mod node;
mod persist;
mod scrub;
mod split;
mod stats;
mod tree;
mod verify;
mod view;

pub use config::{HybridTreeConfig, QuerySizeDist, SplitPolicy};
pub use els::ElsTable;
pub use iter::NearestIter;
pub use kdtree::KdTree;
pub use node::{DataEntry, Node};
pub use scrub::{scrub_index, scrub_pages, CatalogScrub, PageDamage, ScrubReport};
pub use split::{bipartition_1d, Bipartition};
pub use tree::HybridTree;
pub use view::{DataView, KdView, NodeView};
