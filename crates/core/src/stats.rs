//! Structural statistics of a built hybrid tree (Table 1 / Table 2 data).

use crate::node::Node;
use crate::tree::HybridTree;
use hyt_index::{IndexResult, QueryContext, StructureStats};
use hyt_page::{IoStats, Storage};

/// Walks the whole tree and aggregates the properties compared in the
/// paper's Tables 1–2: fanout, utilization, overlap, split-dimension use.
pub(crate) fn compute<S: Storage>(tree: &HybridTree<S>) -> IndexResult<StructureStats> {
    let mut st = StructureStats {
        height: tree.height,
        ..StructureStats::default()
    };
    if tree.len == 0 {
        st.total_nodes = 1;
        st.data_nodes = 1;
        return Ok(st);
    }
    let mut fanout_sum = 0usize;
    let mut util_sum = 0.0f64;
    let mut overlap_sum = 0.0f64;
    let mut overlap_n = 0usize;
    let mut dims = std::collections::HashSet::new();

    let mut io = IoStats::default();
    let mut stack = vec![(tree.root, tree.root_region())];
    while let Some((pid, region)) = stack.pop() {
        let node = tree.read_node_ctx(pid, &mut io, QueryContext::unlimited())?;
        match &*node {
            Node::Data(_) => {
                st.data_nodes += 1;
                let used = node.encoded_size(tree.dim);
                util_sum += used as f64 / tree.cfg.page_size as f64;
            }
            Node::Index { kd, .. } => {
                st.index_nodes += 1;
                fanout_sum += kd.fanout();
                for d in kd.split_dims() {
                    dims.insert(d);
                }
                kd.visit_internal(&region, &mut |dim, lsp, rsp, sub| {
                    let s = sub.extent(dim as usize);
                    if s > 0.0 {
                        let w = (f64::from(lsp) - f64::from(rsp)).max(0.0).min(s);
                        overlap_sum += w / s;
                        overlap_n += 1;
                    }
                });
                for (child, child_region) in kd.children_with_regions(&region) {
                    stack.push((child, child_region));
                }
            }
        }
    }

    st.total_nodes = st.data_nodes + st.index_nodes;
    st.avg_fanout = if st.index_nodes > 0 {
        fanout_sum as f64 / st.index_nodes as f64
    } else {
        0.0
    };
    st.avg_leaf_utilization = if st.data_nodes > 0 {
        util_sum / st.data_nodes as f64
    } else {
        0.0
    };
    st.avg_overlap_fraction = if overlap_n > 0 {
        overlap_sum / overlap_n as f64
    } else {
        0.0
    };
    st.distinct_split_dims = dims.len();
    st.redundant_bytes = 0; // the hybrid tree posts no redundant paths
    Ok(st)
}
