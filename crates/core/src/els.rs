//! Encoded Live Space (ELS) — dead-space elimination (paper §3.4).
//!
//! Space-partitioning structures index *dead space*: regions that contain
//! no data. The hybrid tree removes most of it by remembering, per child,
//! the bounding box of the data actually beneath the child (its *live
//! space*), quantized relative to the child's kd-region using a small
//! number of bits per boundary. At query time the kd-region is checked
//! first and the live-space BR is consulted only if the kd-region
//! qualifies (§3.4).
//!
//! The paper stores the encoded table in memory ("for 8K page, 4 bit
//! precision and 64-d space, the overhead is less than 1% of the database
//! size and can be stored in memory"). This implementation keeps, per
//! child, both the *exact* live BR (needed to re-derive live space after
//! splits) and the `bits`-precision *quantized* BR in absolute
//! coordinates. Quantization happens at update time, against the child's
//! kd-region of that moment; the quantized box conservatively contains
//! the live space forever after (regions only ever grow), so queries can
//! prune with it directly — no kd-region needed on the hot path.
//! [`ElsTable::encoded_bytes`] reports the size the table would occupy at
//! the configured precision, which is what the paper's <1% figure
//! measures.

use hyt_geom::{Coord, Point, Rect};
use hyt_page::PageId;
use std::collections::HashMap;

struct LiveEntry {
    exact_lo: Vec<Coord>,
    exact_hi: Vec<Coord>,
    quant: Rect,
}

/// Memory-resident live-space table, keyed by child page id.
pub struct ElsTable {
    bits: u8,
    dim: usize,
    live: HashMap<PageId, LiveEntry>,
}

impl ElsTable {
    /// Creates a table with the given precision; `bits == 0` disables ELS
    /// (every lookup falls back to the kd-region).
    pub fn new(dim: usize, bits: u8) -> Self {
        assert!(bits <= 16, "ELS precision is capped at 16 bits");
        Self {
            bits,
            dim,
            live: HashMap::new(),
        }
    }

    /// Precision in bits per boundary.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Whether ELS is enabled.
    pub fn enabled(&self) -> bool {
        self.bits > 0
    }

    /// Number of children tracked.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Bytes the quantized table would occupy: `2 * dim * bits` bits per
    /// child (the paper's overhead accounting).
    pub fn encoded_bytes(&self) -> usize {
        if !self.enabled() {
            return 0;
        }
        let bits_per_child = 2 * self.dim * self.bits as usize;
        (self.live.len() * bits_per_child).div_ceil(8)
    }

    /// Quantizes `(lo, hi)` to the table's precision relative to
    /// `region`, rounding outward (conservative).
    fn quantize(&self, lo: &[Coord], hi: &[Coord], region: &Rect) -> (Vec<Coord>, Vec<Coord>) {
        let levels = f64::from(1u32 << self.bits);
        let mut qlo = Vec::with_capacity(self.dim);
        let mut qhi = Vec::with_capacity(self.dim);
        for d in 0..self.dim {
            let rmin = f64::from(region.lo(d));
            let rmax = f64::from(region.hi(d));
            let ext = rmax - rmin;
            if ext <= 0.0 {
                qlo.push(lo[d].min(region.lo(d)));
                qhi.push(hi[d].max(region.hi(d)));
                continue;
            }
            let l = f64::from(lo[d]).clamp(rmin, rmax);
            let h = f64::from(hi[d]).clamp(rmin, rmax);
            let lcode = (((l - rmin) / ext) * levels).floor().min(levels - 1.0);
            let hcode = (((h - rmin) / ext) * levels).ceil().max(1.0).min(levels);
            qlo.push((rmin + lcode / levels * ext) as Coord);
            qhi.push((rmin + hcode / levels * ext) as Coord);
        }
        (qlo, qhi)
    }

    fn store(&mut self, child: PageId, lo: Vec<Coord>, hi: Vec<Coord>, region: &Rect) {
        let (quant_lo, quant_hi) = self.quantize(&lo, &hi, region);
        self.live.insert(
            child,
            LiveEntry {
                exact_lo: lo,
                exact_hi: hi,
                quant: Rect::new(quant_lo, quant_hi),
            },
        );
    }

    /// Replaces the live BR of `child` with the bounding box of `points`,
    /// quantized against the child's current kd-region.
    pub fn set_from_points<'a, I: IntoIterator<Item = &'a Point>>(
        &mut self,
        child: PageId,
        points: I,
        region: &Rect,
    ) {
        if !self.enabled() {
            return;
        }
        let mut it = points.into_iter();
        let Some(first) = it.next() else {
            self.live.remove(&child);
            return;
        };
        let mut lo: Vec<Coord> = first.coords().to_vec();
        let mut hi = lo.clone();
        for p in it {
            for d in 0..self.dim {
                lo[d] = lo[d].min(p.coord(d));
                hi[d] = hi[d].max(p.coord(d));
            }
        }
        self.store(child, lo, hi, region);
    }

    /// Replaces the live BR of `child` with the union of `rects`.
    pub fn set_from_rects<'a, I: IntoIterator<Item = &'a Rect>>(
        &mut self,
        child: PageId,
        rects: I,
        region: &Rect,
    ) {
        if !self.enabled() {
            return;
        }
        let mut acc: Option<Rect> = None;
        for r in rects {
            acc = Some(match acc {
                None => r.clone(),
                Some(a) => a.union(r),
            });
        }
        match acc {
            Some(r) => {
                let lo: Vec<Coord> = (0..self.dim).map(|d| r.lo(d)).collect();
                let hi: Vec<Coord> = (0..self.dim).map(|d| r.hi(d)).collect();
                self.store(child, lo, hi, region);
            }
            None => {
                self.live.remove(&child);
            }
        }
    }

    /// Grows the live BR of `child` to cover `p` (insertion path),
    /// re-quantizing against the child's current kd-region.
    pub fn extend(&mut self, child: PageId, p: &Point, region: &Rect) {
        if !self.enabled() {
            return;
        }
        match self.live.remove(&child) {
            Some(mut e) => {
                for d in 0..self.dim {
                    e.exact_lo[d] = e.exact_lo[d].min(p.coord(d));
                    e.exact_hi[d] = e.exact_hi[d].max(p.coord(d));
                }
                self.store(child, e.exact_lo, e.exact_hi, region);
            }
            None => {
                self.store(child, p.coords().to_vec(), p.coords().to_vec(), region);
            }
        }
    }

    /// Drops the entry for a freed page.
    pub fn remove(&mut self, child: PageId) {
        self.live.remove(&child);
    }

    /// The quantized live BR of `child` (absolute coordinates), if any.
    /// This is the allocation-free pruning surface for distance queries.
    #[inline]
    pub fn quant_rect(&self, child: PageId) -> Option<&Rect> {
        self.live.get(&child).map(|e| &e.quant)
    }

    /// The exact (unquantized) live BR recorded for `child`, if any.
    pub fn exact_live(&self, child: PageId) -> Option<Rect> {
        self.live
            .get(&child)
            .map(|e| Rect::new(e.exact_lo.clone(), e.exact_hi.clone()))
    }

    /// Whether the quantized live BR of `child` intersects the query box;
    /// `true` when unknown (no false dismissals).
    #[inline]
    pub fn may_intersect(&self, child: PageId, query: &Rect) -> bool {
        let Some(e) = self.live.get(&child) else {
            return true;
        };
        e.quant.intersects(query)
    }

    /// Whether the quantized live BR of `child` contains the point;
    /// `true` when unknown.
    #[inline]
    pub fn may_contain(&self, child: PageId, p: &Point) -> bool {
        let Some(e) = self.live.get(&child) else {
            return true;
        };
        e.quant.contains_point(p)
    }

    /// The pruning region for `child`: its quantized live BR intersected
    /// with the supplied kd-region (which also serves as the fallback when
    /// the child is untracked or ELS is disabled).
    pub fn effective_region(&self, child: PageId, kd_region: &Rect) -> Rect {
        if !self.enabled() {
            return kd_region.clone();
        }
        let Some(e) = self.live.get(&child) else {
            return kd_region.clone();
        };
        // Intersect (the quantized box may poke outside a region that was
        // smaller at quantization time than the kd-region is now — both
        // contain the live space, so the intersection does too).
        let lo: Vec<Coord> = (0..self.dim)
            .map(|d| e.quant.lo(d).max(kd_region.lo(d)).min(kd_region.hi(d)))
            .collect();
        let hi: Vec<Coord> = (0..self.dim)
            .map(|d| e.quant.hi(d).min(kd_region.hi(d)).max(lo[d]))
            .collect();
        Rect::new(lo, hi)
    }
}

impl ElsTable {
    /// Serializes the table (for [`HybridTree::persist`]).
    ///
    /// [`HybridTree::persist`]: crate::HybridTree::persist
    pub fn encode(&self, w: &mut hyt_page::ByteWriter) {
        w.put_u8(self.bits);
        w.put_u32(self.dim as u32);
        w.put_u32(self.live.len() as u32);
        let mut ids: Vec<&PageId> = self.live.keys().collect();
        ids.sort();
        for pid in ids {
            let e = &self.live[pid];
            w.put_u32(pid.0);
            for d in 0..self.dim {
                w.put_f32(e.exact_lo[d]);
                w.put_f32(e.exact_hi[d]);
                w.put_f32(e.quant.lo(d));
                w.put_f32(e.quant.hi(d));
            }
        }
    }

    /// Parses a table serialized by [`encode`](Self::encode).
    pub fn decode(r: &mut hyt_page::ByteReader<'_>) -> hyt_page::PageResult<Self> {
        let bits = r.get_u8()?;
        if bits > 16 {
            return Err(hyt_page::PageError::Corrupt(format!(
                "ELS bits {bits} out of range"
            )));
        }
        let dim = r.get_u32()? as usize;
        if dim == 0 || dim > u16::MAX as usize {
            return Err(hyt_page::PageError::Corrupt(format!(
                "ELS dimensionality {dim} out of range"
            )));
        }
        let n = r.get_u32()? as usize;
        // Checked: a hostile header must not overflow the size estimate.
        let need = n
            .checked_mul(dim)
            .and_then(|v| v.checked_mul(16))
            .filter(|&need| need <= r.remaining());
        if need.is_none() {
            return Err(hyt_page::PageError::Corrupt(
                "ELS table claims more entries than the buffer holds".into(),
            ));
        }
        let mut live = HashMap::with_capacity(n);
        for _ in 0..n {
            let pid = PageId(r.get_u32()?);
            let mut exact_lo = Vec::with_capacity(dim);
            let mut exact_hi = Vec::with_capacity(dim);
            let mut qlo = Vec::with_capacity(dim);
            let mut qhi = Vec::with_capacity(dim);
            for _ in 0..dim {
                exact_lo.push(r.get_f32()?);
                exact_hi.push(r.get_f32()?);
                qlo.push(r.get_f32()?);
                qhi.push(r.get_f32()?);
            }
            live.insert(
                pid,
                LiveEntry {
                    exact_lo,
                    exact_hi,
                    quant: Rect::new(qlo, qhi),
                },
            );
        }
        Ok(Self { bits, dim, live })
    }
}

impl std::fmt::Debug for ElsTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ElsTable")
            .field("bits", &self.bits)
            .field("dim", &self.dim)
            .field("children", &self.live.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: u32) -> PageId {
        PageId(n)
    }

    #[test]
    fn disabled_table_is_passthrough() {
        let mut t = ElsTable::new(2, 0);
        let region = Rect::unit(2);
        t.extend(pid(1), &Point::new(vec![0.5, 0.5]), &region);
        assert!(t.is_empty());
        assert_eq!(t.effective_region(pid(1), &region), region);
        assert!(t.may_intersect(pid(1), &region));
        assert_eq!(t.encoded_bytes(), 0);
    }

    #[test]
    fn effective_region_contains_live_space() {
        let mut t = ElsTable::new(2, 4);
        let pts = vec![Point::new(vec![0.30, 0.30]), Point::new(vec![0.40, 0.60])];
        let region = Rect::unit(2);
        t.set_from_points(pid(1), pts.iter(), &region);
        let eff = t.effective_region(pid(1), &region);
        for p in &pts {
            assert!(eff.contains_point(p), "quantization must be conservative");
            assert!(t.may_contain(pid(1), p));
        }
        assert!(eff.volume() < region.volume());
        assert!(region.contains_rect(&eff));
    }

    #[test]
    fn may_intersect_prunes_disjoint_boxes() {
        let mut t = ElsTable::new(2, 8);
        let region = Rect::unit(2);
        t.set_from_points(pid(1), [Point::new(vec![0.1, 0.1])].iter(), &region);
        assert!(t.may_intersect(pid(1), &Rect::new(vec![0.0, 0.0], vec![0.2, 0.2])));
        assert!(!t.may_intersect(pid(1), &Rect::new(vec![0.8, 0.8], vec![0.9, 0.9])));
    }

    #[test]
    fn more_bits_means_tighter_regions() {
        let pts = [
            Point::new(vec![0.301, 0.299]),
            Point::new(vec![0.302, 0.301]),
        ];
        let region = Rect::unit(2);
        let mut vol_prev = f64::INFINITY;
        for bits in [1u8, 2, 4, 8, 12] {
            let mut t = ElsTable::new(2, bits);
            t.set_from_points(pid(1), pts.iter(), &region);
            let v = t.effective_region(pid(1), &region).volume();
            assert!(v <= vol_prev + 1e-12, "bits={bits} gave looser region");
            vol_prev = v;
        }
        assert!(vol_prev < 1e-3);
    }

    #[test]
    fn extend_grows_monotonically() {
        let mut t = ElsTable::new(2, 8);
        let region = Rect::unit(2);
        t.extend(pid(1), &Point::new(vec![0.5, 0.5]), &region);
        t.extend(pid(1), &Point::new(vec![0.8, 0.2]), &region);
        assert!(t.may_contain(pid(1), &Point::new(vec![0.5, 0.5])));
        assert!(t.may_contain(pid(1), &Point::new(vec![0.8, 0.2])));
    }

    #[test]
    fn survives_region_enlargement() {
        // A live BR quantized against a small region must stay valid when
        // the kd-region is later enlarged (the gap-insertion case).
        let mut t = ElsTable::new(1, 4);
        let small = Rect::new(vec![0.4], vec![0.5]);
        t.set_from_points(pid(1), [Point::new(vec![0.45])].iter(), &small);
        let grown = Rect::new(vec![0.2], vec![0.5]);
        assert!(t
            .effective_region(pid(1), &small)
            .contains_point(&Point::new(vec![0.45])));
        assert!(t
            .effective_region(pid(1), &grown)
            .contains_point(&Point::new(vec![0.45])));
        assert!(t.may_contain(pid(1), &Point::new(vec![0.45])));
    }

    #[test]
    fn set_from_rects_unions() {
        let mut t = ElsTable::new(2, 8);
        let region = Rect::unit(2);
        let a = Rect::new(vec![0.1, 0.1], vec![0.2, 0.2]);
        let b = Rect::new(vec![0.5, 0.5], vec![0.6, 0.9]);
        t.set_from_rects(pid(3), [a.clone(), b.clone()].iter(), &region);
        let eff = t.effective_region(pid(3), &region);
        assert!(eff.contains_rect(&a));
        assert!(eff.contains_rect(&b));
    }

    #[test]
    fn encoded_bytes_matches_paper_accounting() {
        let mut t = ElsTable::new(64, 4);
        let region = Rect::unit(64);
        for i in 0..100 {
            t.extend(pid(i), &Point::new(vec![0.5; 64]), &region);
        }
        // 2 * 64 * 4 bits = 64 bytes per child.
        assert_eq!(t.encoded_bytes(), 6400);
    }

    #[test]
    fn remove_clears_entry() {
        let mut t = ElsTable::new(2, 4);
        let region = Rect::unit(2);
        t.extend(pid(1), &Point::new(vec![0.5, 0.5]), &region);
        assert_eq!(t.len(), 1);
        t.remove(pid(1));
        assert!(t.is_empty());
        assert_eq!(t.effective_region(pid(1), &region), region);
    }

    #[test]
    fn degenerate_region_extent_is_handled() {
        let mut t = ElsTable::new(2, 4);
        let region = Rect::new(vec![0.5, 0.0], vec![0.5, 1.0]);
        t.set_from_points(pid(1), [Point::new(vec![0.5, 0.3])].iter(), &region);
        let eff = t.effective_region(pid(1), &region);
        assert!(eff.contains_point(&Point::new(vec![0.5, 0.3])));
    }
}
