//! On-page node formats of the hybrid tree.

use crate::kdtree::KdTree;
use hyt_geom::Point;
use hyt_page::{ByteReader, ByteWriter, PageError, PageResult};

const TAG_DATA: u8 = 0;
const TAG_INDEX: u8 = 1;

/// Header bytes of a data node (tag + entry count).
pub const DATA_HEADER_BYTES: usize = 1 + 4;
/// Header bytes of an index node (tag + level).
pub const INDEX_HEADER_BYTES: usize = 1 + 2;

/// One stored `(point, object id)` pair.
#[derive(Clone, Debug, PartialEq)]
pub struct DataEntry {
    /// The feature vector.
    pub point: Point,
    /// The caller-supplied object identifier.
    pub oid: u64,
}

/// Bytes one entry occupies on a page.
pub fn entry_bytes(dim: usize) -> usize {
    4 * dim + 8
}

/// Maximum entries a data node of `page_size` can hold.
pub fn data_capacity(page_size: usize, dim: usize) -> usize {
    page_size.saturating_sub(DATA_HEADER_BYTES) / entry_bytes(dim)
}

/// A deserialized hybrid tree node.
#[derive(Clone, Debug, PartialEq)]
pub enum Node {
    /// A leaf page of `(point, oid)` entries.
    Data(Vec<DataEntry>),
    /// A directory page: its kd-tree plus the level it sits at
    /// (1 = its children are data nodes).
    Index {
        /// Tree level; data nodes are level 0.
        level: u16,
        /// Intra-node space partitioning.
        kd: KdTree,
    },
}

impl Node {
    /// Serialized size in bytes.
    pub fn encoded_size(&self, dim: usize) -> usize {
        match self {
            Node::Data(entries) => DATA_HEADER_BYTES + entries.len() * entry_bytes(dim),
            Node::Index { kd, .. } => INDEX_HEADER_BYTES + kd.encoded_size(),
        }
    }

    /// Serializes the node into a fresh buffer.
    pub fn encode(&self, dim: usize) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(self.encoded_size(dim));
        match self {
            Node::Data(entries) => {
                w.put_u8(TAG_DATA);
                w.put_u32(entries.len() as u32);
                for e in entries {
                    debug_assert_eq!(e.point.dim(), dim);
                    for d in 0..dim {
                        w.put_f32(e.point.coord(d));
                    }
                    w.put_u64(e.oid);
                }
            }
            Node::Index { level, kd } => {
                w.put_u8(TAG_INDEX);
                w.put_u16(*level);
                kd.encode(&mut w);
            }
        }
        w.into_inner()
    }

    /// Parses a node from page bytes.
    pub fn decode(buf: &[u8], dim: usize) -> PageResult<Self> {
        let mut r = ByteReader::new(buf);
        match r.get_u8()? {
            TAG_DATA => {
                let n = r.get_u32()? as usize;
                if n * entry_bytes(dim) > r.remaining() {
                    return Err(PageError::Corrupt(format!(
                        "data node claims {n} entries, only {} bytes remain",
                        r.remaining()
                    )));
                }
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let mut coords = Vec::with_capacity(dim);
                    for _ in 0..dim {
                        coords.push(r.get_f32()?);
                    }
                    let oid = r.get_u64()?;
                    entries.push(DataEntry {
                        point: Point::new(coords),
                        oid,
                    });
                }
                Ok(Node::Data(entries))
            }
            TAG_INDEX => {
                let level = r.get_u16()?;
                let kd = KdTree::decode(&mut r)?;
                Ok(Node::Index { level, kd })
            }
            t => Err(PageError::Corrupt(format!("bad node tag {t}"))),
        }
    }

    /// Convenience accessor; panics on an index node.
    pub fn expect_data(self) -> Vec<DataEntry> {
        match self {
            Node::Data(e) => e,
            Node::Index { .. } => panic!("expected data node, found index node"),
        }
    }

    /// Convenience accessor; panics on a data node.
    pub fn expect_index(self) -> (u16, KdTree) {
        match self {
            Node::Index { level, kd } => (level, kd),
            Node::Data(_) => panic!("expected index node, found data node"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyt_page::PageId;

    #[test]
    fn entry_size_matches_paper_arithmetic() {
        // A 64-d entry: 64 * 4 bytes of coordinates + 8-byte oid.
        assert_eq!(entry_bytes(64), 264);
        // 4K page holds 15 such entries.
        assert_eq!(data_capacity(4096, 64), 15);
        // Fanout of data pages in low dimensions is much higher.
        assert!(data_capacity(4096, 8) > 100);
    }

    #[test]
    fn data_node_roundtrip() {
        let entries = vec![
            DataEntry {
                point: Point::new(vec![0.1, 0.2, 0.3]),
                oid: 42,
            },
            DataEntry {
                point: Point::new(vec![0.9, 0.8, 0.7]),
                oid: u64::MAX,
            },
        ];
        let n = Node::Data(entries.clone());
        let buf = n.encode(3);
        assert_eq!(buf.len(), n.encoded_size(3));
        let got = Node::decode(&buf, 3).unwrap();
        assert_eq!(got, n);
        assert_eq!(got.expect_data(), entries);
    }

    #[test]
    fn index_node_roundtrip() {
        let kd = KdTree::split(
            2,
            0.5,
            0.4,
            KdTree::leaf(PageId(7)),
            KdTree::leaf(PageId(8)),
        );
        let n = Node::Index {
            level: 3,
            kd: kd.clone(),
        };
        let buf = n.encode(16);
        assert_eq!(buf.len(), n.encoded_size(16));
        let (level, got) = Node::decode(&buf, 16).unwrap().expect_index();
        assert_eq!(level, 3);
        assert_eq!(got, kd);
    }

    #[test]
    fn empty_data_node_roundtrip() {
        let n = Node::Data(vec![]);
        let buf = n.encode(8);
        assert_eq!(Node::decode(&buf, 8).unwrap(), n);
    }

    #[test]
    fn decode_rejects_bad_tag() {
        assert!(Node::decode(&[7u8, 0, 0, 0, 0], 2).is_err());
    }

    #[test]
    #[should_panic(expected = "expected data node")]
    fn expect_data_panics_on_index() {
        Node::Index {
            level: 1,
            kd: KdTree::leaf(PageId(0)),
        }
        .expect_data();
    }
}
