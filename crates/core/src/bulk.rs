//! Bottom-up bulk loading.
//!
//! Building by repeated insertion (the paper's dynamic setting) costs a
//! root-to-leaf traversal per object. When the collection is known up
//! front — the common case when re-indexing a feature database — a bulk
//! load is much faster and packs pages tighter:
//!
//! 1. **Data pages** come from recursive EDA-style partitioning: split
//!    the (sub)collection on its maximum-extent dimension at the median
//!    until a chunk fits a page. Every split is clean, so the leaf level
//!    has zero overlap, exactly like the incremental tree's data level.
//! 2. **Index levels** are built bottom-up: consecutive children (the
//!    partition order preserves locality) are grouped into maximal
//!    page-sized nodes whose intra-node kd-tree is constructed over the
//!    children's live bounding boxes with the same EDA-scored recursive
//!    bipartition used by node splits.
//!
//! The result is a valid hybrid tree — it passes the full invariant
//! checker and answers queries identically to an insertion-built tree —
//! with leaf fill around the packing target instead of the post-split
//! average.

use crate::config::HybridTreeConfig;
use crate::els::ElsTable;
use crate::kdtree::{INTERNAL_BYTES, LEAF_BYTES};
use crate::node::{data_capacity, DataEntry, Node, INDEX_HEADER_BYTES};
use crate::split::build_kd;
use crate::tree::HybridTree;
use hyt_geom::{Point, Rect};
use hyt_index::{IndexError, IndexResult};
use hyt_page::{BufferPool, MemStorage, PageId, Storage};

impl HybridTree<MemStorage> {
    /// Bulk-loads a collection into a fresh in-memory tree.
    ///
    /// Entries are `(point, oid)` pairs; duplicates are allowed. See the
    /// `bulk` module docs for the algorithm.
    pub fn bulk_load(entries: Vec<(Point, u64)>, cfg: HybridTreeConfig) -> IndexResult<Self> {
        let storage = MemStorage::with_page_size(cfg.page_size);
        Self::bulk_load_into(storage, cfg, entries)
    }
}

impl<S: Storage> HybridTree<S> {
    /// Bulk-loads a collection into a fresh tree over `storage`.
    pub fn bulk_load_into(
        storage: S,
        cfg: HybridTreeConfig,
        entries: Vec<(Point, u64)>,
    ) -> IndexResult<Self> {
        let Some((first, _)) = entries.first() else {
            return Err(IndexError::Internal(
                "bulk_load of an empty collection has no dimensionality; \
                 use HybridTree::new instead"
                    .into(),
            ));
        };
        let dim = first.dim();
        if entries.iter().any(|(p, _)| p.dim() != dim) {
            return Err(IndexError::DimensionMismatch {
                expected: dim,
                got: entries
                    .iter()
                    .find(|(p, _)| p.dim() != dim)
                    .map(|(p, _)| p.dim())
                    .unwrap_or(dim),
            });
        }
        cfg.validate().map_err(IndexError::Internal)?;
        if storage.page_size() != cfg.page_size {
            return Err(IndexError::Internal(
                "storage/config page size mismatch".into(),
            ));
        }
        let data_cap = data_capacity(cfg.page_size, dim);
        if data_cap < 2 {
            return Err(IndexError::Internal(format!(
                "page size {} cannot hold 2 entries of dimension {dim}",
                cfg.page_size
            )));
        }
        let data_min = ((cfg.min_fill * data_cap as f64).floor() as usize).max(1);
        let len = entries.len();
        let global_br = Rect::bounding(&entries.iter().map(|(p, _)| p.clone()).collect::<Vec<_>>());

        let pool = BufferPool::with_node_cache(storage, cfg.pool_pages, cfg.node_cache_entries);
        let mut els = ElsTable::new(dim, cfg.els_bits);

        // ---- 1. leaf level: recursive clean partitioning ----------------
        let mut data_entries: Vec<DataEntry> = entries
            .into_iter()
            .map(|(point, oid)| DataEntry { point, oid })
            .collect();
        let mut leaves: Vec<(PageId, Rect)> = Vec::new();
        build_leaves(
            &pool,
            &mut els,
            dim,
            data_cap,
            &mut data_entries,
            &mut leaves,
        )?;

        // ---- 2. index levels: pack consecutive children -----------------
        // Fanout F costs INDEX_HEADER + (F-1) internals + F leaves.
        let max_fanout = ((cfg.page_size - INDEX_HEADER_BYTES + INTERNAL_BYTES)
            / (INTERNAL_BYTES + LEAF_BYTES))
            .max(2);
        let mut level: u16 = 0;
        let mut current = leaves;
        while current.len() > 1 {
            level += 1;
            let mut next: Vec<(PageId, Rect)> = Vec::new();
            let n = current.len();
            let groups = n.div_ceil(max_fanout);
            let base = n / groups;
            let mut extra = n % groups;
            let mut start = 0;
            while start < n {
                let mut take = base + usize::from(extra > 0);
                extra = extra.saturating_sub(1);
                // A one-child group is invalid (fanout >= 2); borrow from
                // the neighbor (group sizes >= 2 whenever n >= 2).
                if n - start - take == 1 {
                    take = n - start;
                }
                let group = &current[start..start + take];
                start += take;
                if group.len() == 1 {
                    next.push(group[0].clone());
                    continue;
                }
                let kd = build_kd(group, &cfg.query_size);
                let pid = pool.allocate()?;
                let node = Node::Index { level, kd };
                let buf = node.encode(dim);
                if buf.len() > cfg.page_size {
                    return Err(IndexError::Internal(format!(
                        "bulk-load packed an oversized index node ({} bytes)",
                        buf.len()
                    )));
                }
                pool.write(pid, &buf)?;
                let mut live = group[0].1.clone();
                for (_, r) in &group[1..] {
                    live.extend_to_rect(r);
                }
                els.set_from_rects(pid, [live.clone()].iter(), &live);
                next.push((pid, live));
            }
            current = next;
        }

        let (root, _) = current.pop().expect("at least one node");
        Ok(Self::assemble(
            pool,
            root,
            level as usize + 1,
            dim,
            len,
            cfg,
            data_cap,
            data_min,
            Some(global_br),
            els,
        ))
    }
}

/// Recursively partitions entries into clean page-sized chunks and
/// writes them as data nodes, appending `(pid, live BR)` to `leaves` in
/// partition order.
fn build_leaves<S: Storage>(
    pool: &BufferPool<S>,
    els: &mut ElsTable,
    dim: usize,
    data_cap: usize,
    entries: &mut Vec<DataEntry>,
    leaves: &mut Vec<(PageId, Rect)>,
) -> IndexResult<()> {
    if entries.len() <= data_cap {
        let live = Rect::bounding(&entries.iter().map(|e| e.point.clone()).collect::<Vec<_>>());
        let pid = pool.allocate()?;
        els.set_from_points(pid, entries.iter().map(|e| &e.point), &live);
        pool.write(pid, &Node::Data(std::mem::take(entries)).encode(dim))?;
        leaves.push((pid, live));
        return Ok(());
    }
    let live = Rect::bounding(&entries.iter().map(|e| e.point.clone()).collect::<Vec<_>>());
    let d = live.max_extent_dim();
    entries.sort_by(|a, b| a.point.coord(d).total_cmp(&b.point.coord(d)));
    let mut right = entries.split_off(entries.len() / 2);
    build_leaves(pool, els, dim, data_cap, entries, leaves)?;
    build_leaves(pool, els, dim, data_cap, &mut right, leaves)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyt_geom::{L1, L2};
    use hyt_index::MultidimIndex;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn points(n: usize, dim: usize, seed: u64) -> Vec<(Point, u64)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                (
                    Point::new((0..dim).map(|_| rng.gen::<f32>()).collect()),
                    i as u64,
                )
            })
            .collect()
    }

    fn cfg() -> HybridTreeConfig {
        HybridTreeConfig {
            page_size: 256,
            ..HybridTreeConfig::default()
        }
    }

    #[test]
    fn bulk_tree_passes_invariants() {
        let t = HybridTree::bulk_load(points(2000, 3, 1), cfg()).unwrap();
        assert_eq!(t.len(), 2000);
        assert!(t.height() > 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn bulk_tree_answers_like_inserted_tree() {
        let pts = points(1500, 4, 2);
        let bulk = HybridTree::bulk_load(pts.clone(), cfg()).unwrap();
        let mut inc = HybridTree::new(4, cfg()).unwrap();
        for (p, oid) in &pts {
            inc.insert(p.clone(), *oid).unwrap();
        }
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..25 {
            let lo: Vec<f32> = (0..4).map(|_| rng.gen::<f32>() * 0.7).collect();
            let hi: Vec<f32> = lo.iter().map(|l| l + 0.3).collect();
            let rect = Rect::new(lo, hi);
            let mut a = bulk.box_query(&rect).unwrap();
            let mut b = inc.box_query(&rect).unwrap();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
        // Distance + kNN agree as well.
        let q = Point::new(vec![0.5; 4]);
        let mut a = bulk.distance_range(&q, 0.4, &L1).unwrap();
        let mut b = inc.distance_range(&q, 0.4, &L1).unwrap();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        let ka = bulk.knn(&q, 9, &L2).unwrap();
        let kb = inc.knn(&q, 9, &L2).unwrap();
        for (x, y) in ka.iter().zip(&kb) {
            assert!((x.1 - y.1).abs() < 1e-12);
        }
    }

    #[test]
    fn bulk_tree_remains_fully_dynamic() {
        let pts = points(800, 3, 4);
        let mut t = HybridTree::bulk_load(pts.clone(), cfg()).unwrap();
        // Inserts and deletes keep working after a bulk load.
        t.insert(Point::new(vec![0.5, 0.5, 0.5]), 9999).unwrap();
        assert!(t.delete(&pts[10].0, 10).unwrap());
        assert_eq!(t.len(), 800);
        t.check_invariants().unwrap();
        let hits = t.point_query(&Point::new(vec![0.5, 0.5, 0.5])).unwrap();
        assert_eq!(hits, vec![9999]);
    }

    #[test]
    fn bulk_packs_leaves_tighter_than_insertion() {
        let pts = points(5000, 4, 5);
        let bulk = HybridTree::bulk_load(pts.clone(), cfg()).unwrap();
        let mut inc = HybridTree::new(4, cfg()).unwrap();
        for (p, oid) in &pts {
            inc.insert(p.clone(), *oid).unwrap();
        }
        let ub = bulk.structure_stats().unwrap().avg_leaf_utilization;
        let ui = inc.structure_stats().unwrap().avg_leaf_utilization;
        assert!(
            ub >= ui - 0.05,
            "bulk fill {ub:.2} should not be below insertion fill {ui:.2}"
        );
    }

    #[test]
    fn bulk_handles_single_page_collection() {
        let t = HybridTree::bulk_load(points(5, 2, 6), cfg()).unwrap();
        assert_eq!(t.height(), 1);
        assert_eq!(t.len(), 5);
        t.check_invariants().unwrap();
        assert_eq!(t.box_query(&Rect::unit(2)).unwrap().len(), 5);
    }

    #[test]
    fn bulk_handles_duplicates() {
        let entries: Vec<(Point, u64)> = (0..500)
            .map(|i| (Point::new(vec![0.25, 0.75]), i))
            .collect();
        let t = HybridTree::bulk_load(entries, cfg()).unwrap();
        assert_eq!(t.len(), 500);
        t.check_invariants().unwrap();
        let hits = t.point_query(&Point::new(vec![0.25, 0.75])).unwrap();
        assert_eq!(hits.len(), 500);
    }

    #[test]
    fn bulk_rejects_mixed_dimensionality() {
        let entries = vec![
            (Point::new(vec![0.1, 0.2]), 0),
            (Point::new(vec![0.1, 0.2, 0.3]), 1),
        ];
        assert!(matches!(
            HybridTree::bulk_load(entries, cfg()),
            Err(IndexError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn bulk_is_much_faster_than_insertion_at_scale() {
        let pts = points(20_000, 8, 7);
        let t0 = std::time::Instant::now();
        let bulk = HybridTree::bulk_load(pts.clone(), HybridTreeConfig::default()).unwrap();
        let bulk_time = t0.elapsed();
        let t1 = std::time::Instant::now();
        let mut inc = HybridTree::new(8, HybridTreeConfig::default()).unwrap();
        for (p, oid) in &pts {
            inc.insert(p.clone(), *oid).unwrap();
        }
        let inc_time = t1.elapsed();
        assert_eq!(bulk.len(), inc.len());
        // Don't assert a specific ratio (CI noise), but bulk must not be
        // slower than insertion.
        assert!(
            bulk_time <= inc_time,
            "bulk {bulk_time:?} slower than insertion {inc_time:?}"
        );
    }
}
