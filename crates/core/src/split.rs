//! Node splitting algorithms (paper §3.2–§3.3).
//!
//! * **Data nodes** split along the dimension of maximum live extent — the
//!   EDA-optimal choice independent of query size and data distribution —
//!   at a position as close to the spatial middle as the utilization
//!   constraint allows (producing more cubic, smaller-surface BRs).
//!   [`SplitPolicy::Vam`] and [`SplitPolicy::RoundRobin`] provide the
//!   comparison policies for the Figure 5(a,b) ablation.
//! * **Index nodes** evaluate, for every candidate dimension, the best 1-d
//!   bipartition of the children's projected segments (an `O(n log n)`
//!   two-ended greedy version of the R-tree bipartitioning problem) and
//!   pick the dimension minimizing the expected-disk-access increase
//!   `E_r[(w_d + r)/(s_d + r)]`. Candidates are restricted to dimensions
//!   already used inside the node's kd-tree (Lemma 1: the restriction is
//!   lossless and yields implicit dimensionality reduction).

use crate::config::{QuerySizeDist, SplitPolicy};
use crate::kdtree::KdTree;
use crate::node::DataEntry;
use hyt_geom::{Coord, Rect};
use hyt_page::PageId;

/// Result of the 1-d segment bipartitioning (paper §3.3).
#[derive(Clone, Debug)]
pub struct Bipartition {
    /// Indices assigned to the left (lower) group.
    pub left: Vec<usize>,
    /// Indices assigned to the right (upper) group.
    pub right: Vec<usize>,
    /// Right boundary of the left group (max `hi` over its segments).
    pub lsp: Coord,
    /// Left boundary of the right group (min `lo` over its segments).
    pub rsp: Coord,
}

impl Bipartition {
    /// Overlap extent `w = max(0, lsp - rsp)`.
    pub fn overlap(&self) -> f64 {
        (f64::from(self.lsp) - f64::from(self.rsp)).max(0.0)
    }
}

/// Splits 1-d segments into two groups minimizing their overlap along the
/// axis, while guaranteeing at least `min_per_side` segments per group.
///
/// The algorithm is the paper's: sort by left boundary ascending and by
/// right boundary descending, draw alternately from the two sorted lists
/// into the left and right groups until both meet the utilization quota,
/// then place each remaining segment in the group needing the least
/// elongation. Runs in `O(n log n)` — the 1-d ordering is what a k-d
/// R-tree bipartition lacks.
///
/// # Panics
/// Panics if fewer than two segments are supplied.
pub fn bipartition_1d(segments: &[(Coord, Coord)], min_per_side: usize) -> Bipartition {
    let n = segments.len();
    assert!(n >= 2, "bipartition requires at least 2 segments");
    let m = min_per_side.clamp(1, n / 2);

    let mut by_lo: Vec<usize> = (0..n).collect();
    by_lo.sort_by(|&a, &b| {
        segments[a]
            .0
            .total_cmp(&segments[b].0)
            .then(segments[a].1.total_cmp(&segments[b].1))
    });
    let mut by_hi: Vec<usize> = (0..n).collect();
    by_hi.sort_by(|&a, &b| {
        segments[b]
            .1
            .total_cmp(&segments[a].1)
            .then(segments[b].0.total_cmp(&segments[a].0))
    });

    let mut side: Vec<Option<bool>> = vec![None; n]; // Some(true) = left
    let mut left = Vec::with_capacity(n);
    let mut right = Vec::with_capacity(n);
    let mut li = by_lo.iter();
    let mut ri = by_hi.iter();
    while left.len() < m || right.len() < m {
        if left.len() < m {
            for &i in li.by_ref() {
                if side[i].is_none() {
                    side[i] = Some(true);
                    left.push(i);
                    break;
                }
            }
        }
        if right.len() < m {
            for &i in ri.by_ref() {
                if side[i].is_none() {
                    side[i] = Some(false);
                    right.push(i);
                    break;
                }
            }
        }
    }

    let mut lsp = left
        .iter()
        .map(|&i| segments[i].1)
        .fold(Coord::NEG_INFINITY, Coord::max);
    let mut rsp = right
        .iter()
        .map(|&i| segments[i].0)
        .fold(Coord::INFINITY, Coord::min);

    // Remaining segments: least elongation, utilization no longer a concern.
    for &i in &by_lo {
        if side[i].is_some() {
            continue;
        }
        let elong_left = (segments[i].1 - lsp).max(0.0);
        let elong_right = (rsp - segments[i].0).max(0.0);
        if elong_left <= elong_right {
            side[i] = Some(true);
            left.push(i);
            lsp = lsp.max(segments[i].1);
        } else {
            side[i] = Some(false);
            right.push(i);
            rsp = rsp.min(segments[i].0);
        }
    }

    Bipartition {
        left,
        right,
        lsp,
        rsp,
    }
}

/// A completed data-node split: always overlap-free (`lsp == rsp == pos`).
#[derive(Debug)]
pub struct DataSplit {
    /// Split dimension.
    pub dim: u16,
    /// The single split position (left keeps `x <= pos`, right `x >= pos`).
    pub pos: Coord,
    /// Entries for the left node.
    pub left: Vec<DataEntry>,
    /// Entries for the right node.
    pub right: Vec<DataEntry>,
}

/// Splits an overflowing data node.
///
/// The max-extent dimension and the "middle" target are taken from the
/// node's **live** bounding box rather than its kd-region (`_region`):
/// a kd-region's extent along a never-split dimension reflects ancestor
/// boundaries, not this node's data, and measurements showed
/// region-based choices cost 20–50% more disk accesses on clustered
/// data. The live box is also what makes Lemma 1's implicit
/// dimensionality reduction work (a non-discriminating dimension has no
/// live extent and is never chosen). `min_count` is the utilization
/// quota per side; `rr_state` carries the round-robin cursor for
/// [`SplitPolicy::RoundRobin`].
pub(crate) fn split_data(
    mut entries: Vec<DataEntry>,
    _region: &Rect,
    dim_count: usize,
    min_count: usize,
    policy: SplitPolicy,
    rr_state: &mut usize,
) -> DataSplit {
    let n = entries.len();
    debug_assert!(n >= 2);
    let m = min_count.clamp(1, n / 2);

    let live = Rect::bounding(&entries.iter().map(|e| e.point.clone()).collect::<Vec<_>>());

    let dim = match policy {
        SplitPolicy::EdaOptimal | SplitPolicy::MaxExtentMedian => live.max_extent_dim(),
        SplitPolicy::Vam => max_variance_dim(&entries, dim_count),
        SplitPolicy::RoundRobin => {
            // Advance the cursor, skipping zero-extent dimensions.
            let mut d = *rr_state % dim_count;
            for _ in 0..dim_count {
                if live.extent(d) > 0.0 {
                    break;
                }
                d = (d + 1) % dim_count;
            }
            *rr_state = d + 1;
            d
        }
    };

    entries.sort_by(|a, b| a.point.coord(dim).total_cmp(&b.point.coord(dim)));

    // Candidate split indexes leave at least m entries on each side.
    let j = match policy {
        SplitPolicy::EdaOptimal => {
            // As close to the spatial middle as utilization permits
            // (§3.2 footnote 1).
            let target = (live.lo(dim) + live.hi(dim)) * 0.5;
            let mut best_j = m;
            let mut best_gap = f64::INFINITY;
            for cand in m..=(n - m) {
                let boundary = midpoint(
                    entries[cand - 1].point.coord(dim),
                    entries[cand].point.coord(dim),
                );
                let gap = (f64::from(boundary) - f64::from(target)).abs();
                if gap < best_gap {
                    best_gap = gap;
                    best_j = cand;
                }
            }
            best_j
        }
        // Median split for the comparison policies.
        SplitPolicy::Vam | SplitPolicy::RoundRobin | SplitPolicy::MaxExtentMedian => {
            (n / 2).clamp(m, n - m)
        }
    };

    let pos = midpoint(entries[j - 1].point.coord(dim), entries[j].point.coord(dim));
    let right = entries.split_off(j);
    DataSplit {
        dim: dim as u16,
        pos,
        left: entries,
        right,
    }
}

fn midpoint(a: Coord, b: Coord) -> Coord {
    // Midpoint that is exact when a == b and always within [a, b].
    a + (b - a) * 0.5
}

fn max_variance_dim(entries: &[DataEntry], dim_count: usize) -> usize {
    let n = entries.len() as f64;
    let mut best = 0;
    let mut best_var = f64::NEG_INFINITY;
    for d in 0..dim_count {
        let mean: f64 = entries
            .iter()
            .map(|e| f64::from(e.point.coord(d)))
            .sum::<f64>()
            / n;
        let var: f64 = entries
            .iter()
            .map(|e| {
                let x = f64::from(e.point.coord(d)) - mean;
                x * x
            })
            .sum::<f64>()
            / n;
        if var > best_var {
            best_var = var;
            best = d;
        }
    }
    best
}

/// A completed index-node split (possibly overlapping).
#[derive(Debug)]
pub struct IndexSplit {
    /// Split dimension.
    pub dim: u16,
    /// Right boundary of the left group.
    pub lsp: Coord,
    /// Left boundary of the right group.
    pub rsp: Coord,
    /// Children (with kd-regions) of the left node.
    pub left: Vec<(PageId, Rect)>,
    /// Children (with kd-regions) of the right node.
    pub right: Vec<(PageId, Rect)>,
}

/// Splits an overflowing index node given its children and their
/// kd-regions.
///
/// For each candidate dimension the best 1-d bipartition is computed
/// first; the dimension whose bipartition minimizes the expected
/// disk-access increase is selected (paper §3.3: "before the split
/// dimension is actually chosen, the best split positions are determined
/// for all the dimensions").
pub(crate) fn split_index(
    children: &[(PageId, Rect)],
    region: &Rect,
    candidate_dims: &[u16],
    min_per_side: usize,
    qdist: &QuerySizeDist,
) -> IndexSplit {
    debug_assert!(children.len() >= 2);
    let all_dims: Vec<u16>;
    let dims: &[u16] = if candidate_dims.is_empty() {
        all_dims = (0..region.dim() as u16).collect();
        &all_dims
    } else {
        candidate_dims
    };

    let mut best: Option<(f64, f64, u16, Bipartition)> = None;
    for &d in dims {
        let dd = d as usize;
        let segments: Vec<(Coord, Coord)> =
            children.iter().map(|(_, r)| (r.lo(dd), r.hi(dd))).collect();
        let bp = bipartition_1d(&segments, min_per_side);
        let s = region.extent(dd);
        let cost = qdist.split_cost(bp.overlap(), s);
        let better = match &best {
            None => true,
            // Tie-break toward the larger extent (more discriminating dim).
            Some((c, bs, ..)) => cost < *c - 1e-12 || (cost <= *c + 1e-12 && s > *bs),
        };
        if better {
            best = Some((cost, s, d, bp));
        }
    }
    let (_, _, dim, bp) = best.expect("at least one candidate dimension");
    IndexSplit {
        dim,
        lsp: bp.lsp,
        rsp: bp.rsp,
        left: bp.left.iter().map(|&i| children[i].clone()).collect(),
        right: bp.right.iter().map(|&i| children[i].clone()).collect(),
    }
}

/// VAMSplit-style index-node split (White & Jain): the dimension with
/// maximum variance of the children's region centers, cut at the median
/// center. Unlike the EDA-optimal split it neither searches for the
/// minimum-overlap bipartition nor scores candidate dimensions by
/// expected disk accesses — the comparison baseline of Figure 5(a,b).
pub(crate) fn split_index_vam(children: &[(PageId, Rect)], min_per_side: usize) -> IndexSplit {
    debug_assert!(children.len() >= 2);
    let dim_count = children[0].1.dim();
    let n = children.len();
    let centers: Vec<Vec<f64>> = children
        .iter()
        .map(|(_, r)| {
            (0..dim_count)
                .map(|d| (f64::from(r.lo(d)) + f64::from(r.hi(d))) * 0.5)
                .collect()
        })
        .collect();
    let mut best_dim = 0;
    let mut best_var = f64::NEG_INFINITY;
    for d in 0..dim_count {
        let mean: f64 = centers.iter().map(|c| c[d]).sum::<f64>() / n as f64;
        let var: f64 = centers
            .iter()
            .map(|c| {
                let x = c[d] - mean;
                x * x
            })
            .sum::<f64>()
            / n as f64;
        if var > best_var {
            best_var = var;
            best_dim = d;
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| centers[a][best_dim].total_cmp(&centers[b][best_dim]));
    let m = min_per_side.clamp(1, n / 2);
    let cut = (n / 2).clamp(m, n - m);
    let left: Vec<(PageId, Rect)> = order[..cut].iter().map(|&i| children[i].clone()).collect();
    let right: Vec<(PageId, Rect)> = order[cut..].iter().map(|&i| children[i].clone()).collect();
    let lsp = left
        .iter()
        .map(|(_, r)| r.hi(best_dim))
        .fold(Coord::NEG_INFINITY, Coord::max);
    let rsp = right
        .iter()
        .map(|(_, r)| r.lo(best_dim))
        .fold(Coord::INFINITY, Coord::min);
    IndexSplit {
        dim: best_dim as u16,
        lsp,
        rsp,
        left,
        right,
    }
}

/// Rebuilds a kd-tree over a set of children after an index-node split
/// scatters the original kd structure.
///
/// Recursively applies balanced 1-d bipartitions, choosing at each step
/// the dimension whose bipartition minimizes the same EDA score used for
/// node splits. Split positions are absolute coordinates, so the produced
/// tree composes with any enclosing region.
pub(crate) fn build_kd(children: &[(PageId, Rect)], qdist: &QuerySizeDist) -> KdTree {
    debug_assert!(!children.is_empty());
    if children.len() == 1 {
        return KdTree::leaf(children[0].0);
    }
    let dim_count = children[0].1.dim();
    let mut region = children[0].1.clone();
    for (_, r) in &children[1..] {
        region.extend_to_rect(r);
    }
    let m = children.len() / 2;

    let mut best: Option<(f64, f64, usize, Bipartition)> = None;
    for d in 0..dim_count {
        let segments: Vec<(Coord, Coord)> =
            children.iter().map(|(_, r)| (r.lo(d), r.hi(d))).collect();
        let bp = bipartition_1d(&segments, m);
        let s = region.extent(d);
        let cost = qdist.split_cost(bp.overlap(), s);
        let better = match &best {
            None => true,
            Some((c, bs, ..)) => cost < *c - 1e-12 || (cost <= *c + 1e-12 && s > *bs),
        };
        if better {
            best = Some((cost, s, d, bp));
        }
    }
    let (_, _, dim, bp) = best.unwrap();
    let left: Vec<(PageId, Rect)> = bp.left.iter().map(|&i| children[i].clone()).collect();
    let right: Vec<(PageId, Rect)> = bp.right.iter().map(|&i| children[i].clone()).collect();
    KdTree::split(
        dim as u16,
        bp.lsp,
        bp.rsp,
        build_kd(&left, qdist),
        build_kd(&right, qdist),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyt_geom::Point;

    /// Test helper: the entries' own bounding box as the node region
    /// (the root case, where region extent equals live extent).
    fn live_region(entries: &[DataEntry]) -> Rect {
        Rect::bounding(&entries.iter().map(|e| e.point.clone()).collect::<Vec<_>>())
    }

    fn e(coords: Vec<Coord>, oid: u64) -> DataEntry {
        DataEntry {
            point: Point::new(coords),
            oid,
        }
    }

    #[test]
    fn bipartition_disjoint_segments_has_no_overlap() {
        // Two clusters of segments.
        let segs = vec![(0.0, 0.1), (0.05, 0.15), (0.8, 0.9), (0.85, 0.95)];
        let bp = bipartition_1d(&segs, 2);
        assert_eq!(bp.overlap(), 0.0);
        assert_eq!(bp.left.len(), 2);
        assert_eq!(bp.right.len(), 2);
        let mut l = bp.left.clone();
        l.sort_unstable();
        assert_eq!(l, vec![0, 1]);
    }

    #[test]
    fn bipartition_respects_quota_even_when_overlapping() {
        // All segments nearly identical: any split overlaps fully, but the
        // quota must still hold (the hybrid tree's utilization guarantee).
        let segs = vec![(0.4, 0.6); 6];
        let bp = bipartition_1d(&segs, 3);
        assert_eq!(bp.left.len(), 3);
        assert_eq!(bp.right.len(), 3);
        assert!((bp.overlap() - 0.2).abs() < 1e-6, "full overlap expected");
    }

    #[test]
    fn bipartition_boundaries_cover_their_groups() {
        let segs = vec![(0.0, 0.3), (0.2, 0.5), (0.4, 0.7), (0.6, 1.0), (0.1, 0.35)];
        let bp = bipartition_1d(&segs, 2);
        for &i in &bp.left {
            assert!(segs[i].1 <= bp.lsp, "left segment exceeds lsp");
        }
        for &i in &bp.right {
            assert!(segs[i].0 >= bp.rsp, "right segment precedes rsp");
        }
        assert_eq!(bp.left.len() + bp.right.len(), segs.len());
    }

    #[test]
    #[should_panic(expected = "at least 2 segments")]
    fn bipartition_rejects_singleton() {
        bipartition_1d(&[(0.0, 1.0)], 1);
    }

    #[test]
    fn data_split_picks_max_extent_dim() {
        // Dim 1 has the largest spread; EDA-optimal must split it.
        let entries: Vec<DataEntry> = (0..10)
            .map(|i| e(vec![0.5 + 0.001 * i as f32, 0.1 * i as f32], i))
            .collect();
        let mut rr = 0;
        let region = live_region(&entries);
        let s = split_data(entries, &region, 2, 3, SplitPolicy::EdaOptimal, &mut rr);
        assert_eq!(s.dim, 1);
        // Overlap-free: everything left <= pos <= everything right.
        for de in &s.left {
            assert!(de.point.coord(1) <= s.pos);
        }
        for de in &s.right {
            assert!(de.point.coord(1) >= s.pos);
        }
        assert!(s.left.len() >= 3 && s.right.len() >= 3);
    }

    #[test]
    fn data_split_middle_beats_median_under_skew() {
        // 9 points near 0, 3 points near 1. The spatial middle is ~0.5;
        // the utilization quota (2) permits splitting at the big gap,
        // which the middle rule selects — the median rule would not.
        let mut entries: Vec<DataEntry> = (0..9).map(|i| e(vec![0.01 * i as f32], i)).collect();
        entries.extend((0..3).map(|i| e(vec![0.95 + 0.01 * i as f32], 100 + i)));
        let mut rr = 0;
        let region = live_region(&entries);
        let s = split_data(
            entries.clone(),
            &region,
            1,
            2,
            SplitPolicy::EdaOptimal,
            &mut rr,
        );
        assert_eq!(s.left.len(), 9, "middle split isolates the gap");
        let s_vam = split_data(entries, &region, 1, 2, SplitPolicy::Vam, &mut rr);
        assert_eq!(s_vam.left.len(), 6, "median split balances counts");
    }

    #[test]
    fn data_split_handles_duplicate_coordinates() {
        // All identical along every dim: split must still produce two
        // groups meeting the quota (rank split at the shared value).
        let entries: Vec<DataEntry> = (0..8).map(|i| e(vec![0.5, 0.5], i)).collect();
        let mut rr = 0;
        let region = live_region(&entries);
        let s = split_data(entries, &region, 2, 3, SplitPolicy::EdaOptimal, &mut rr);
        assert!(s.left.len() >= 3 && s.right.len() >= 3);
        assert_eq!(s.pos, 0.5);
    }

    #[test]
    fn vam_split_picks_max_variance_dim() {
        // Dim 0 has a huge extent caused by one outlier but small
        // variance; dim 1 has consistent spread. VAM picks dim 1 while
        // max-extent picks dim 0 — the distinction the paper discusses.
        let mut entries: Vec<DataEntry> =
            (0..20).map(|i| e(vec![0.5, 0.05 * i as f32], i)).collect();
        entries.push(e(vec![1.5, 0.5], 99)); // outlier on dim 0
        let mut rr = 0;
        let region = live_region(&entries);
        let vam = split_data(entries.clone(), &region, 2, 4, SplitPolicy::Vam, &mut rr);
        assert_eq!(vam.dim, 1);
        let eda = split_data(entries, &region, 2, 4, SplitPolicy::EdaOptimal, &mut rr);
        assert_eq!(eda.dim, 0);
    }

    #[test]
    fn round_robin_cycles_dimensions() {
        let entries: Vec<DataEntry> = (0..8)
            .map(|i| e(vec![0.1 * i as f32, 0.1 * i as f32, 0.1 * i as f32], i))
            .collect();
        let mut rr = 0;
        let region = live_region(&entries);
        let a = split_data(
            entries.clone(),
            &region,
            3,
            2,
            SplitPolicy::RoundRobin,
            &mut rr,
        );
        let b = split_data(
            entries.clone(),
            &region,
            3,
            2,
            SplitPolicy::RoundRobin,
            &mut rr,
        );
        let c = split_data(entries, &region, 3, 2, SplitPolicy::RoundRobin, &mut rr);
        assert_eq!((a.dim, b.dim, c.dim), (0, 1, 2));
    }

    fn child(pid: u32, lo: Vec<Coord>, hi: Vec<Coord>) -> (PageId, Rect) {
        (PageId(pid), Rect::new(lo, hi))
    }

    #[test]
    fn index_split_prefers_clean_dimension() {
        // Along dim 0 the children separate cleanly; along dim 1 they all
        // span the node. The EDA score must choose dim 0.
        let children = vec![
            child(1, vec![0.0, 0.0], vec![0.25, 1.0]),
            child(2, vec![0.25, 0.0], vec![0.5, 1.0]),
            child(3, vec![0.5, 0.0], vec![0.75, 1.0]),
            child(4, vec![0.75, 0.0], vec![1.0, 1.0]),
        ];
        let region = Rect::unit(2);
        let s = split_index(
            &children,
            &region,
            &[0, 1],
            2,
            &QuerySizeDist::Uniform { max: 1.0 },
        );
        assert_eq!(s.dim, 0);
        assert!(s.lsp <= s.rsp, "clean split expected");
        assert_eq!(s.left.len(), 2);
        assert_eq!(s.right.len(), 2);
    }

    #[test]
    fn index_split_restricted_to_candidate_dims() {
        // Dim 1 separates best but is not a candidate (Lemma 1 restriction).
        let children = vec![
            child(1, vec![0.0, 0.0], vec![1.0, 0.5]),
            child(2, vec![0.0, 0.5], vec![1.0, 1.0]),
            child(3, vec![0.0, 0.0], vec![0.6, 0.5]),
            child(4, vec![0.4, 0.5], vec![1.0, 1.0]),
        ];
        let region = Rect::unit(2);
        let s = split_index(
            &children,
            &region,
            &[0],
            2,
            &QuerySizeDist::Uniform { max: 1.0 },
        );
        assert_eq!(s.dim, 0);
    }

    #[test]
    fn index_split_allows_overlap_to_preserve_utilization() {
        // Three children span nearly everything along the only dimension;
        // a clean split is impossible, so lsp > rsp.
        let children = vec![
            child(1, vec![0.0], vec![0.9]),
            child(2, vec![0.1], vec![1.0]),
            child(3, vec![0.0], vec![1.0]),
            child(4, vec![0.05], vec![0.95]),
        ];
        let region = Rect::unit(1);
        let s = split_index(&children, &region, &[0], 2, &QuerySizeDist::Fixed(0.1));
        assert!(s.lsp > s.rsp, "overlap is the price of utilization");
        assert_eq!(s.left.len() + s.right.len(), 4);
        assert!(s.left.len() >= 2 && s.right.len() >= 2);
    }

    #[test]
    fn build_kd_covers_all_children_exactly_once() {
        let children = vec![
            child(1, vec![0.0, 0.0], vec![0.5, 0.5]),
            child(2, vec![0.5, 0.0], vec![1.0, 0.5]),
            child(3, vec![0.0, 0.5], vec![0.5, 1.0]),
            child(4, vec![0.5, 0.5], vec![1.0, 1.0]),
            child(5, vec![0.25, 0.25], vec![0.75, 0.75]),
        ];
        let kd = build_kd(&children, &QuerySizeDist::Uniform { max: 1.0 });
        assert_eq!(kd.fanout(), 5);
        let mut ids: Vec<u32> = kd.child_ids().iter().map(|p| p.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn build_kd_regions_contain_original_regions() {
        // The kd mapping applied to the rebuilt tree must assign each
        // child a region containing its original region (no clipping of
        // live data space).
        let children = vec![
            child(1, vec![0.0, 0.0], vec![0.3, 1.0]),
            child(2, vec![0.3, 0.0], vec![0.6, 1.0]),
            child(3, vec![0.55, 0.0], vec![1.0, 0.5]),
            child(4, vec![0.6, 0.5], vec![1.0, 1.0]),
        ];
        let region = Rect::unit(2);
        let kd = build_kd(&children, &QuerySizeDist::Uniform { max: 1.0 });
        let mapped = kd.children_with_regions(&region);
        for (pid, mapped_region) in mapped {
            let original = &children.iter().find(|(p, _)| *p == pid).unwrap().1;
            assert!(
                mapped_region.contains_rect(original),
                "{pid}: {mapped_region:?} must contain {original:?}"
            );
        }
    }

    #[test]
    fn build_kd_is_reasonably_balanced() {
        let children: Vec<(PageId, Rect)> = (0..64)
            .map(|i| {
                let lo = i as f32 / 64.0;
                child(i, vec![lo], vec![lo + 1.0 / 64.0])
            })
            .collect();
        let kd = build_kd(&children, &QuerySizeDist::Uniform { max: 1.0 });
        assert_eq!(kd.fanout(), 64);
        // Balanced bipartition gives logarithmic depth (6 for 64 leaves);
        // allow slack but reject linear chains.
        assert!(kd.depth() <= 10, "depth {} too deep", kd.depth());
    }

    #[test]
    fn build_kd_handles_identical_regions() {
        let children: Vec<(PageId, Rect)> = (0..5)
            .map(|i| child(i, vec![0.2, 0.2], vec![0.8, 0.8]))
            .collect();
        let kd = build_kd(&children, &QuerySizeDist::Uniform { max: 1.0 });
        assert_eq!(kd.fanout(), 5);
    }
}
