//! Incremental and approximate nearest-neighbor search.
//!
//! The paper's conclusion names efficient *approximate* nearest-neighbor
//! queries as planned future work, and its motivating application (MARS
//! relevance feedback) consumes *ranked* results incrementally. Both are
//! provided here on top of the hybrid tree:
//!
//! * [`HybridTree::nearest_iter`] streams `(oid, distance)` pairs in
//!   non-decreasing distance order using the Hjaltason–Samet incremental
//!   algorithm: a single priority queue holds both unexpanded nodes
//!   (keyed by `MINDIST` to their ELS-tightened regions) and materialized
//!   entries (keyed by exact distance). An entry can be emitted as soon
//!   as it reaches the front of the queue — no `k` needs to be fixed in
//!   advance, so a relevance-feedback loop can pull "a few more" results
//!   without re-running the query.
//! * [`HybridTree::knn_approximate`] is best-first kNN with the classical
//!   `(1 + ε)` relaxation: a node is pruned when
//!   `mindist > best_k / (1 + ε)`, guaranteeing every reported neighbor
//!   is within factor `1 + ε` of the true one while visiting fewer pages.

use crate::node::Node;
use crate::tree::HybridTree;
use hyt_geom::{Metric, Point, Rect};
use hyt_index::{check_dim, IndexResult, QueryContext};
use hyt_page::{IoStats, PageId, Storage};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Queue element: either an unexpanded node or a concrete entry.
enum Payload {
    Node { pid: PageId, region: Rect },
    Entry { oid: u64 },
}

struct QueueItem {
    dist: f64,
    /// Entries sort before nodes at equal distance so ties emit eagerly.
    is_node: bool,
    payload: Payload,
}

impl PartialEq for QueueItem {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.is_node == other.is_node
    }
}
impl Eq for QueueItem {}
impl PartialOrd for QueueItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for a min-heap on (dist, is_node).
        other
            .dist
            .total_cmp(&self.dist)
            .then(other.is_node.cmp(&self.is_node))
    }
}

/// Streaming nearest-neighbor cursor over a [`HybridTree`].
///
/// Created by [`HybridTree::nearest_iter`]; see the module docs. The
/// cursor borrows the tree *shared*, so several cursors (or other
/// queries) can run concurrently over one tree; page reads it performs
/// are attributed to the cursor's own [`io_stats`](Self::io_stats) as
/// well as to the pool-global counters.
pub struct NearestIter<'t, 'm, S: Storage> {
    tree: &'t HybridTree<S>,
    metric: &'m dyn Metric,
    q: Point,
    heap: BinaryHeap<QueueItem>,
    io: IoStats,
    ctx: QueryContext,
}

impl<S: Storage> NearestIter<'_, '_, S> {
    /// I/O incurred by this cursor since it was opened.
    pub fn io_stats(&self) -> IoStats {
        self.io
    }

    /// Governs all subsequent pulls with `ctx`: every page fetch the
    /// cursor performs first passes the context's cancel / deadline /
    /// read-budget checks. A denied fetch surfaces from
    /// [`next`](Self::next) as a typed
    /// [`PageError::Interrupted`](hyt_page::PageError::Interrupted)
    /// error; entries already emitted stay valid, and the cursor can
    /// resume if the caller swaps in a fresh context.
    pub fn with_context(mut self, ctx: QueryContext) -> Self {
        self.ctx = ctx;
        self
    }

    /// Pulls the next-nearest entry, or `None` when exhausted.
    ///
    /// (Not the `Iterator` trait: page reads can fail, so the signature
    /// is `IndexResult<Option<..>>`, with errors surfaced rather than
    /// swallowed.)
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> IndexResult<Option<(u64, f64)>> {
        while let Some(item) = self.heap.pop() {
            match item.payload {
                Payload::Entry { oid } => return Ok(Some((oid, item.dist))),
                Payload::Node { pid, region } => {
                    let node = self.tree.read_node_ctx(pid, &mut self.io, &self.ctx);
                    if node.is_err() {
                        // Re-queue the unexpanded node so a caller
                        // that clears the interrupt can resume.
                        self.heap.push(QueueItem {
                            dist: item.dist,
                            is_node: true,
                            payload: Payload::Node {
                                pid,
                                region: region.clone(),
                            },
                        });
                    }
                    match &*node? {
                        Node::Data(entries) => {
                            for e in entries {
                                let d = self.metric.distance(&self.q, &e.point);
                                self.heap.push(QueueItem {
                                    dist: d,
                                    is_node: false,
                                    payload: Payload::Entry { oid: e.oid },
                                });
                            }
                        }
                        Node::Index { kd, .. } => {
                            if self.tree.els.enabled() {
                                for child in kd.child_ids() {
                                    let d = self
                                        .tree
                                        .els
                                        .quant_rect(child)
                                        .map_or(0.0, |r| self.metric.min_dist_rect(&self.q, r));
                                    self.heap.push(QueueItem {
                                        dist: d,
                                        is_node: true,
                                        payload: Payload::Node {
                                            pid: child,
                                            region: region.clone(),
                                        },
                                    });
                                }
                            } else {
                                for (child, child_region) in kd.children_with_regions(&region) {
                                    let d = self.metric.min_dist_rect(&self.q, &child_region);
                                    self.heap.push(QueueItem {
                                        dist: d,
                                        is_node: true,
                                        payload: Payload::Node {
                                            pid: child,
                                            region: child_region,
                                        },
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(None)
    }

    /// Pulls up to `n` further entries.
    pub fn take(&mut self, n: usize) -> IndexResult<Vec<(u64, f64)>> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            match self.next()? {
                Some(hit) => out.push(hit),
                None => break,
            }
        }
        Ok(out)
    }
}

impl<S: Storage> HybridTree<S> {
    /// Opens an incremental nearest-neighbor cursor at `q` under
    /// `metric` (ranked retrieval; see the `iter` module docs).
    pub fn nearest_iter<'t, 'm>(
        &'t self,
        q: &Point,
        metric: &'m dyn Metric,
    ) -> IndexResult<NearestIter<'t, 'm, S>> {
        check_dim(self.dim, q.dim())?;
        let mut heap = BinaryHeap::new();
        if self.len > 0 {
            heap.push(QueueItem {
                dist: 0.0,
                is_node: true,
                payload: Payload::Node {
                    pid: self.root,
                    region: self.root_region(),
                },
            });
        }
        Ok(NearestIter {
            tree: self,
            metric,
            q: q.clone(),
            heap,
            io: IoStats::default(),
            ctx: QueryContext::default(),
        })
    }

    /// `(1 + epsilon)`-approximate k-nearest-neighbor search: every
    /// returned neighbor's distance is at most `1 + epsilon` times the
    /// distance of the true neighbor of the same rank. `epsilon == 0`
    /// is exact kNN; larger values prune more aggressively and read
    /// fewer pages (the trade-off the paper's future work targets).
    pub fn knn_approximate(
        &self,
        q: &Point,
        k: usize,
        epsilon: f64,
        metric: &dyn Metric,
    ) -> IndexResult<Vec<(u64, f64)>> {
        check_dim(self.dim, q.dim())?;
        assert!(epsilon >= 0.0, "epsilon must be non-negative");
        if k == 0 || self.len == 0 {
            return Ok(Vec::new());
        }
        let relax = 1.0 + epsilon;
        let mut io = IoStats::default();
        // Max-heap of current best k (by distance).
        let mut best: BinaryHeap<BestHit> = BinaryHeap::new();
        let mut pq: BinaryHeap<QueueItem> = BinaryHeap::new();
        pq.push(QueueItem {
            dist: 0.0,
            is_node: true,
            payload: Payload::Node {
                pid: self.root,
                region: self.root_region(),
            },
        });
        while let Some(item) = pq.pop() {
            if best.len() == k && item.dist > best.peek().unwrap().dist / relax {
                break; // nothing left can improve beyond the ε slack
            }
            let Payload::Node { pid, region } = item.payload else {
                unreachable!("approximate search queues nodes only");
            };
            let node = self.read_node_ctx(pid, &mut io, QueryContext::unlimited())?;
            match &*node {
                Node::Data(entries) => {
                    for e in entries {
                        let d = metric.distance(q, &e.point);
                        if best.len() < k {
                            best.push(BestHit {
                                dist: d,
                                oid: e.oid,
                            });
                        } else if d < best.peek().unwrap().dist {
                            best.pop();
                            best.push(BestHit {
                                dist: d,
                                oid: e.oid,
                            });
                        }
                    }
                }
                Node::Index { kd, .. } => {
                    if self.els.enabled() {
                        for child in kd.child_ids() {
                            let d = self
                                .els
                                .quant_rect(child)
                                .map_or(0.0, |r| metric.min_dist_rect(q, r));
                            if best.len() < k || d <= best.peek().unwrap().dist / relax {
                                pq.push(QueueItem {
                                    dist: d,
                                    is_node: true,
                                    payload: Payload::Node {
                                        pid: child,
                                        region: region.clone(),
                                    },
                                });
                            }
                        }
                    } else {
                        for (child, child_region) in kd.children_with_regions(&region) {
                            let d = metric.min_dist_rect(q, &child_region);
                            if best.len() < k || d <= best.peek().unwrap().dist / relax {
                                pq.push(QueueItem {
                                    dist: d,
                                    is_node: true,
                                    payload: Payload::Node {
                                        pid: child,
                                        region: child_region,
                                    },
                                });
                            }
                        }
                    }
                }
            }
        }
        let mut hits: Vec<(u64, f64)> = best.into_iter().map(|h| (h.oid, h.dist)).collect();
        hits.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        Ok(hits)
    }
}

struct BestHit {
    dist: f64,
    oid: u64,
}
impl PartialEq for BestHit {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.oid == other.oid
    }
}
impl Eq for BestHit {}
impl PartialOrd for BestHit {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for BestHit {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist
            .total_cmp(&other.dist)
            .then(self.oid.cmp(&other.oid))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HybridTreeConfig;
    use hyt_geom::{L1, L2};
    use hyt_index::MultidimIndex;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn build(n: usize, dim: usize, seed: u64) -> (HybridTree, Vec<Point>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts: Vec<Point> = (0..n)
            .map(|_| Point::new((0..dim).map(|_| rng.gen::<f32>()).collect()))
            .collect();
        let cfg = HybridTreeConfig {
            page_size: 256,
            ..HybridTreeConfig::default()
        };
        let mut t = HybridTree::new(dim, cfg).unwrap();
        for (i, p) in pts.iter().enumerate() {
            t.insert(p.clone(), i as u64).unwrap();
        }
        (t, pts)
    }

    #[test]
    fn nearest_iter_yields_sorted_distances() {
        let (t, pts) = build(500, 3, 1);
        let q = Point::new(vec![0.4, 0.6, 0.5]);
        let mut it = t.nearest_iter(&q, &L2).unwrap();
        let mut prev = 0.0;
        let mut count = 0;
        while let Some((_, d)) = it.next().unwrap() {
            assert!(d >= prev - 1e-12, "distances must be non-decreasing");
            prev = d;
            count += 1;
        }
        assert_eq!(count, pts.len(), "iterator must visit every entry");
    }

    #[test]
    fn nearest_iter_prefix_equals_knn() {
        let (t, _) = build(400, 4, 2);
        let q = Point::new(vec![0.2; 4]);
        let want = t.knn(&q, 12, &L1).unwrap();
        let got = t.nearest_iter(&q, &L1).unwrap().take(12).unwrap();
        assert_eq!(got.len(), 12);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.1 - w.1).abs() < 1e-12);
        }
    }

    #[test]
    fn governed_cursor_interrupts_and_resumes() {
        use hyt_index::Interrupt;
        use hyt_page::PageError;

        let (t, pts) = build(500, 3, 8);
        let q = Point::new(vec![0.5, 0.5, 0.5]);
        // A 2-read budget is not enough to reach the first leaf entry in
        // a 500-point tree on 256-byte pages.
        let mut it = t
            .nearest_iter(&q, &L2)
            .unwrap()
            .with_context(QueryContext::default().with_max_reads(2));
        let mut count = 0;
        let err = loop {
            match it.next() {
                Ok(Some(_)) => count += 1,
                Ok(None) => panic!("budget must run out before exhaustion"),
                Err(e) => break e,
            }
        };
        assert!(matches!(
            e_interrupt(&err),
            Some(Interrupt::BudgetExhausted)
        ));
        // Clearing the context resumes the cursor; the full stream still
        // visits every entry.
        let mut it = it.with_context(QueryContext::default());
        while it.next().unwrap().is_some() {
            count += 1;
        }
        assert_eq!(count, pts.len());

        fn e_interrupt(e: &hyt_index::IndexError) -> Option<Interrupt> {
            match e {
                hyt_index::IndexError::Storage(PageError::Interrupted(i)) => Some(*i),
                _ => None,
            }
        }
    }

    #[test]
    fn nearest_iter_on_empty_tree() {
        let t = HybridTree::new(2, HybridTreeConfig::default()).unwrap();
        let q = Point::new(vec![0.5, 0.5]);
        let mut it = t.nearest_iter(&q, &L2).unwrap();
        assert!(it.next().unwrap().is_none());
    }

    #[test]
    fn approximate_with_zero_epsilon_is_exact() {
        let (t, _) = build(600, 3, 3);
        let q = Point::new(vec![0.7, 0.1, 0.5]);
        let exact = t.knn(&q, 10, &L2).unwrap();
        let approx = t.knn_approximate(&q, 10, 0.0, &L2).unwrap();
        for (a, e) in approx.iter().zip(&exact) {
            assert!((a.1 - e.1).abs() < 1e-12);
        }
    }

    #[test]
    fn approximate_respects_the_epsilon_guarantee() {
        let (t, _) = build(800, 4, 4);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let q = Point::new((0..4).map(|_| rng.gen::<f32>()).collect());
            let exact = t.knn(&q, 8, &L2).unwrap();
            for eps in [0.1, 0.5, 2.0] {
                let approx = t.knn_approximate(&q, 8, eps, &L2).unwrap();
                assert_eq!(approx.len(), 8);
                for (rank, (_, d)) in approx.iter().enumerate() {
                    let bound = exact[rank].1 * (1.0 + eps) + 1e-9;
                    assert!(
                        *d <= bound,
                        "eps={eps} rank={rank}: {d} > (1+eps)*{}",
                        exact[rank].1
                    );
                }
            }
        }
    }

    #[test]
    fn larger_epsilon_reads_fewer_pages() {
        let (t, _) = build(3000, 6, 6);
        let q = Point::new(vec![0.5; 6]);
        let mut accesses = Vec::new();
        for eps in [0.0, 0.5, 2.0] {
            t.reset_io_stats();
            t.knn_approximate(&q, 10, eps, &L2).unwrap();
            accesses.push(t.io_stats().logical_reads);
        }
        assert!(
            accesses[2] <= accesses[0],
            "eps=2 must not read more pages than exact: {accesses:?}"
        );
    }

    #[test]
    fn incremental_pull_is_cheaper_than_full_scan() {
        let (t, _) = build(3000, 4, 7);
        let q = Point::new(vec![0.5; 4]);
        t.reset_io_stats();
        let first = t.nearest_iter(&q, &L2).unwrap().take(3).unwrap();
        assert_eq!(first.len(), 3);
        let pulled = t.io_stats().logical_reads;
        let total_pages = t.structure_stats().unwrap().total_nodes as u64;
        assert!(
            pulled < total_pages / 2,
            "3-NN pull read {pulled} of {total_pages} pages"
        );
    }
}
