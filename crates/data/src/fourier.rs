//! FOURIER dataset stand-in: Fourier descriptors of random polygons.

use crate::normalize_common_scale;
use hyt_geom::Point;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Number of polygon vertices sampled per shape.
const VERTICES: usize = 16;

/// Generates `n` vectors of the first `dim` Fourier-descriptor components
/// of random polygons, normalized to the unit cube.
///
/// Each shape is a star-convex polygon: vertex `j` sits at angle
/// `2πj/V + jitter` and radius drawn from a shape-specific base radius
/// plus per-vertex noise. The complex contour `z_j = x_j + i·y_j` is
/// transformed with a DFT; coefficients `c_1, c_2, ...` (skipping the
/// translation term `c_0`) are scale-normalized by `|c_1|` and their
/// real/imaginary parts interleaved into the feature vector — the
/// classical Fourier shape descriptor the original dataset was built
/// from. Low-order coefficients carry most energy, so the leading
/// dimensions are the discriminating ones, exactly the correlation
/// structure the paper's FOURIER experiments rely on.
///
/// # Panics
/// Panics if `dim` is 0 or exceeds `2 * (VERTICES/2 - 1)` = 14... more
/// precisely `dim <= 2 * (VERTICES - 2)` is required; 8/12/16 (the
/// paper's settings) are all valid.
pub fn fourier(n: usize, dim: usize, seed: u64) -> Vec<Point> {
    assert!(dim >= 1, "dimension must be positive");
    assert!(
        dim <= 2 * (VERTICES - 2),
        "dim {dim} exceeds available Fourier coefficients"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut points = Vec::with_capacity(n);
    for _ in 0..n {
        // Random star-convex polygon with a *smooth* boundary: the radius
        // is a sum of decaying low-order harmonics (real object contours
        // have geometrically decaying spectra; per-vertex white noise
        // would make every coefficient equally informative, which is not
        // what shape descriptors look like).
        let base_r = rng.gen_range(0.3..1.0);
        let spikiness = rng.gen_range(0.1..0.5);
        let phase = rng.gen_range(0.0..std::f64::consts::TAU);
        const HARMONICS: usize = 6;
        let amps: Vec<f64> = (1..=HARMONICS)
            .map(|m| base_r * spikiness * 0.6f64.powi(m as i32) * rng.gen_range(0.2..1.0))
            .collect();
        let phases: Vec<f64> = (0..HARMONICS)
            .map(|_| rng.gen_range(0.0..std::f64::consts::TAU))
            .collect();
        let mut contour: Vec<(f64, f64)> = Vec::with_capacity(VERTICES);
        for j in 0..VERTICES {
            let theta = std::f64::consts::TAU * j as f64 / VERTICES as f64;
            let angle = theta + phase;
            let mut r: f64 = base_r + rng.gen_range(-0.01..0.01) * base_r;
            for (m, (a, ph)) in amps.iter().zip(&phases).enumerate() {
                r += a * ((m + 1) as f64 * theta + ph).cos();
            }
            contour.push((r * angle.cos(), r * angle.sin()));
        }
        // DFT of the complex contour.
        let mut feat = Vec::with_capacity(dim);
        let mut c1_mag = 0.0f64;
        let mut k = 1usize; // skip c_0 (translation)
        while feat.len() < dim {
            let (mut re, mut im) = (0.0f64, 0.0f64);
            for (j, (x, y)) in contour.iter().enumerate() {
                let ang = -std::f64::consts::TAU * (k * j) as f64 / VERTICES as f64;
                let (s, c) = ang.sin_cos();
                re += x * c - y * s;
                im += x * s + y * c;
            }
            re /= VERTICES as f64;
            im /= VERTICES as f64;
            if k == 1 {
                c1_mag = (re * re + im * im).sqrt().max(1e-9);
            }
            // Scale invariance: normalize by |c_1|.
            feat.push((re / c1_mag) as f32);
            if feat.len() < dim {
                feat.push((im / c1_mag) as f32);
            }
            k += 1;
        }
        points.push(Point::new(feat));
    }
    // Common-scale normalization keeps the energy decay across
    // coefficient orders (per-dimension scaling would erase it).
    normalize_common_scale(&mut points);
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        for dim in [8, 12, 16] {
            let pts = fourier(200, dim, 42);
            assert_eq!(pts.len(), 200);
            assert!(pts.iter().all(|p| p.dim() == dim));
            for p in &pts {
                for d in 0..dim {
                    assert!((0.0..=1.0).contains(&p.coord(d)));
                }
            }
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = fourier(50, 16, 7);
        let b = fourier(50, 16, 7);
        assert!(a.iter().zip(&b).all(|(x, y)| x.same_coords(y)));
        let c = fourier(50, 16, 8);
        assert!(a.iter().zip(&c).any(|(x, y)| !x.same_coords(y)));
    }

    #[test]
    fn energy_decays_with_coefficient_order() {
        // Variance of later Fourier coefficients must be lower on average
        // than the leading ones — the correlation structure that makes
        // "first 8 of 16" a sensible prefix.
        let pts = fourier(2000, 16, 1);
        let var = |d: usize| -> f64 {
            let mean: f64 =
                pts.iter().map(|p| f64::from(p.coord(d))).sum::<f64>() / pts.len() as f64;
            pts.iter()
                .map(|p| {
                    let x = f64::from(p.coord(d)) - mean;
                    x * x
                })
                .sum::<f64>()
                / pts.len() as f64
        };
        let head: f64 = (2..6).map(var).sum();
        let tail: f64 = (12..16).map(var).sum();
        assert!(
            head > tail,
            "expected energy decay: head var {head}, tail var {tail}"
        );
    }

    #[test]
    fn vectors_are_distinct() {
        let pts = fourier(500, 12, 3);
        let first = &pts[0];
        assert!(pts[1..].iter().any(|p| !p.same_coords(first)));
    }
}
