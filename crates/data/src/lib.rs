//! Synthetic datasets and query workloads for the hybrid tree evaluation.
//!
//! The paper evaluates on two real datasets that are not distributable:
//!
//! * **FOURIER** — 1.2M 16-d vectors of Fourier coefficients of polygons
//!   (courtesy of Stefan Berchtold); 8/12/16-d prefixes are used.
//! * **COLHIST** — ~70K color histograms of Corel images, at 4x4 / 8x4 /
//!   8x8 binnings (16/32/64 dimensions).
//!
//! This crate synthesizes stand-ins with the same generative structure
//! (see DESIGN.md §3 for the substitution argument):
//!
//! * [`fourier`] draws random polygons and takes the discrete Fourier
//!   transform of their vertex contours — literally the process behind
//!   the original dataset — yielding the energy-decaying, correlated
//!   coefficient vectors that make *early* dimensions discriminating.
//! * [`colhist`] draws images as Dirichlet mixtures of a few dominant
//!   colors from a Zipf-popular palette, producing sparse, L1-normalized
//!   histograms with many near-empty (non-discriminating) bins — the
//!   structure that ELS and implicit dimensionality reduction exploit.
//!
//! [`Workload`] generates the paper's query mix: bounding-box queries
//! whose side length is *calibrated to a constant selectivity* (0.07% for
//! FOURIER, 0.2% for COLHIST) and L1 distance-range queries calibrated
//! the same way (§4).

mod colhist;
mod fourier;
mod workload;

pub use colhist::colhist;
pub use fourier::fourier;
pub use workload::{
    calibrate_box_side, calibrate_radius, clustered, uniform, BoxWorkload, DistanceWorkload,
    Workload,
};

use hyt_geom::Point;

/// Normalizes each dimension of a dataset to `[0, 1]` (the paper assumes
/// a normalized feature space in its cost modeling).
///
/// Degenerate dimensions (constant value) map to `0.5`.
pub fn normalize_unit(points: &mut [Point]) {
    if points.is_empty() {
        return;
    }
    let dim = points[0].dim();
    let mut lo = vec![f32::INFINITY; dim];
    let mut hi = vec![f32::NEG_INFINITY; dim];
    for p in points.iter() {
        for d in 0..dim {
            lo[d] = lo[d].min(p.coord(d));
            hi[d] = hi[d].max(p.coord(d));
        }
    }
    for p in points.iter_mut() {
        let coords: Vec<f32> = (0..dim)
            .map(|d| {
                let ext = hi[d] - lo[d];
                if ext > 0.0 {
                    (p.coord(d) - lo[d]) / ext
                } else {
                    0.5
                }
            })
            .collect();
        *p = Point::new(coords);
    }
}

/// Normalizes a dataset into the unit cube with a *single* scale factor
/// (per-dimension shift, common scale = the largest extent).
///
/// Unlike [`normalize_unit`], this preserves the relative spreads of the
/// dimensions — essential for FOURIER, whose defining property is that
/// coefficient energy decays with order (per-dimension normalization
/// would amplify the noise in the tail coefficients to full range).
pub fn normalize_common_scale(points: &mut [Point]) {
    if points.is_empty() {
        return;
    }
    let dim = points[0].dim();
    let mut lo = vec![f32::INFINITY; dim];
    let mut hi = vec![f32::NEG_INFINITY; dim];
    for p in points.iter() {
        for d in 0..dim {
            lo[d] = lo[d].min(p.coord(d));
            hi[d] = hi[d].max(p.coord(d));
        }
    }
    let max_ext = (0..dim).map(|d| hi[d] - lo[d]).fold(0.0f32, f32::max);
    if max_ext <= 0.0 {
        return;
    }
    for p in points.iter_mut() {
        let coords: Vec<f32> = (0..dim).map(|d| (p.coord(d) - lo[d]) / max_ext).collect();
        *p = Point::new(coords);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_scale_preserves_relative_extents() {
        let mut pts = vec![Point::new(vec![0.0, 0.0]), Point::new(vec![10.0, 1.0])];
        normalize_common_scale(&mut pts);
        // Dim 0 spans [0,1]; dim 1 spans only a tenth of it.
        assert_eq!(pts[1].coord(0), 1.0);
        assert!((pts[1].coord(1) - 0.1).abs() < 1e-6);
    }

    #[test]
    fn normalize_maps_into_unit_cube() {
        let mut pts = vec![
            Point::new(vec![-5.0, 100.0, 3.0]),
            Point::new(vec![5.0, 200.0, 3.0]),
            Point::new(vec![0.0, 150.0, 3.0]),
        ];
        normalize_unit(&mut pts);
        for p in &pts {
            for d in 0..3 {
                assert!((0.0..=1.0).contains(&p.coord(d)));
            }
        }
        // Extremes hit the bounds; constant dim maps to 0.5.
        assert_eq!(pts[0].coord(0), 0.0);
        assert_eq!(pts[1].coord(0), 1.0);
        assert_eq!(pts[0].coord(2), 0.5);
    }
}
