//! Query workload generation with selectivity calibration.
//!
//! The paper's methodology (§4): "the queries are randomly distributed
//! in the data space with appropriately chosen ranges to get constant
//! selectivity" (0.07% for FOURIER, 0.2% for COLHIST). Both parts are
//! reproduced: query centers are drawn *uniformly in the data space*
//! (the bounding box of the dataset), and the box side length / distance
//! radius is calibrated by binary search until the *average* fraction of
//! data points matched across the batch hits the target. Uniform centers
//! matter: they are the distribution assumed by the paper's EDA
//! optimality derivation, and they exercise dead space — most of a
//! sparse high-dimensional dataset's bounding box is empty, which is
//! precisely what encoded-live-space pruning (§3.4) is for.
//! [`BoxWorkload::calibrated_from_data`] provides data-centered queries
//! as an alternative for workloads modeling query-by-example.

use hyt_geom::{Metric, Point, Rect};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Uniform random points in the unit cube.
pub fn uniform(n: usize, dim: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new((0..dim).map(|_| rng.gen::<f32>()).collect()))
        .collect()
}

/// Gaussian clusters in the unit cube (cluster centers uniform, spread
/// `sigma` per dimension, clipped to `[0,1]`).
pub fn clustered(n: usize, dim: usize, clusters: usize, sigma: f32, seed: u64) -> Vec<Point> {
    assert!(clusters >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec<f32>> = (0..clusters)
        .map(|_| (0..dim).map(|_| rng.gen::<f32>()).collect())
        .collect();
    (0..n)
        .map(|_| {
            let c = &centers[rng.gen_range(0..clusters)];
            Point::new(
                (0..dim)
                    .map(|d| {
                        // Box-Muller normal sample.
                        let u1: f32 = rng.gen::<f32>().max(1e-7);
                        let u2: f32 = rng.gen();
                        let z = (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
                        (c[d] + z * sigma).clamp(0.0, 1.0)
                    })
                    .collect(),
            )
        })
        .collect()
}

/// Draws `n` query centers uniformly in the data space (the bounding box
/// of the dataset) — the paper's query distribution.
fn uniform_centers(data: &[Point], n: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    let br = Rect::bounding(data);
    let dim = data[0].dim();
    (0..n)
        .map(|_| {
            Point::new(
                (0..dim)
                    .map(|d| {
                        let (lo, hi) = (br.lo(d), br.hi(d));
                        if hi > lo {
                            rng.gen_range(lo..hi)
                        } else {
                            lo
                        }
                    })
                    .collect(),
            )
        })
        .collect()
}

/// Draws `n` query centers from the data itself (query-by-example).
fn data_centers(data: &[Point], n: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..data.len()).collect();
    idx.shuffle(&mut rng);
    idx.truncate(n.min(data.len()));
    let mut out: Vec<Point> = idx.iter().map(|&i| data[i].clone()).collect();
    while out.len() < n {
        out.push(data[rng.gen_range(0..data.len())].clone());
    }
    out
}

/// A (possibly down-sampled) reference set used to estimate selectivity.
fn calibration_sample(data: &[Point], seed: u64) -> Vec<Point> {
    const MAX_SAMPLE: usize = 20_000;
    if data.len() <= MAX_SAMPLE {
        return data.to_vec();
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let mut idx: Vec<usize> = (0..data.len()).collect();
    idx.shuffle(&mut rng);
    idx.truncate(MAX_SAMPLE);
    idx.into_iter().map(|i| data[i].clone()).collect()
}

fn box_around(center: &Point, side: f64) -> Rect {
    let h = (side / 2.0) as f32;
    Rect::new(
        center.coords().iter().map(|c| c - h).collect(),
        center.coords().iter().map(|c| c + h).collect(),
    )
}

/// Binary-searches the box side length whose average selectivity over the
/// probe centers is `target` (a fraction, e.g. `0.002` for 0.2%).
pub fn calibrate_box_side(data: &[Point], centers: &[Point], target: f64) -> f64 {
    assert!(!data.is_empty() && !centers.is_empty());
    assert!(target > 0.0 && target < 1.0);
    let sample = calibration_sample(data, 77);
    let selectivity = |side: f64| -> f64 {
        let mut total = 0usize;
        for c in centers {
            let rect = box_around(c, side);
            total += sample.iter().filter(|p| rect.contains_point(p)).count();
        }
        total as f64 / (sample.len() * centers.len()) as f64
    };
    let (mut lo, mut hi) = (0.0f64, 0.01f64);
    while selectivity(hi) < target && hi < 8.0 {
        hi *= 2.0;
    }
    for _ in 0..40 {
        let mid = (lo + hi) / 2.0;
        if selectivity(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

/// Binary-searches the distance radius whose average selectivity over the
/// probe centers is `target`, under `metric`.
pub fn calibrate_radius(
    data: &[Point],
    centers: &[Point],
    target: f64,
    metric: &dyn Metric,
) -> f64 {
    assert!(!data.is_empty() && !centers.is_empty());
    assert!(target > 0.0 && target < 1.0);
    let sample = calibration_sample(data, 78);
    let selectivity = |radius: f64| -> f64 {
        let mut total = 0usize;
        for c in centers {
            total += sample
                .iter()
                .filter(|p| metric.distance(c, p) <= radius)
                .count();
        }
        total as f64 / (sample.len() * centers.len()) as f64
    };
    let (mut lo, mut hi) = (0.0f64, 0.01f64);
    while selectivity(hi) < target && hi < 64.0 {
        hi *= 2.0;
    }
    for _ in 0..40 {
        let mid = (lo + hi) / 2.0;
        if selectivity(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

/// A calibrated batch of bounding-box queries.
#[derive(Clone, Debug)]
pub struct BoxWorkload {
    /// The query rectangles.
    pub queries: Vec<Rect>,
    /// The calibrated side length.
    pub side: f64,
    /// The selectivity the side was calibrated for.
    pub target_selectivity: f64,
}

impl BoxWorkload {
    /// Calibrates a box workload of `n` queries with centers uniformly
    /// distributed in the data space (the paper's setting).
    pub fn calibrated(data: &[Point], n: usize, target_selectivity: f64, seed: u64) -> Self {
        let centers = uniform_centers(data, n, seed);
        Self::from_centers(data, centers, target_selectivity)
    }

    /// Calibrates a box workload whose centers are random data points
    /// (query-by-example workloads).
    pub fn calibrated_from_data(
        data: &[Point],
        n: usize,
        target_selectivity: f64,
        seed: u64,
    ) -> Self {
        let centers = data_centers(data, n, seed);
        Self::from_centers(data, centers, target_selectivity)
    }

    fn from_centers(data: &[Point], centers: Vec<Point>, target_selectivity: f64) -> Self {
        let side = calibrate_box_side(data, &centers, target_selectivity);
        let queries = centers.iter().map(|c| box_around(c, side)).collect();
        Self {
            queries,
            side,
            target_selectivity,
        }
    }
}

/// A calibrated batch of distance-range queries.
#[derive(Clone, Debug)]
pub struct DistanceWorkload {
    /// The query points.
    pub centers: Vec<Point>,
    /// The calibrated radius.
    pub radius: f64,
    /// The selectivity the radius was calibrated for.
    pub target_selectivity: f64,
}

impl DistanceWorkload {
    /// Calibrates a distance workload of `n` queries with centers
    /// uniformly distributed in the data space (the paper's setting).
    pub fn calibrated(
        data: &[Point],
        n: usize,
        target_selectivity: f64,
        metric: &dyn Metric,
        seed: u64,
    ) -> Self {
        let centers = uniform_centers(data, n, seed);
        let radius = calibrate_radius(data, &centers, target_selectivity, metric);
        Self {
            centers,
            radius,
            target_selectivity,
        }
    }

    /// Calibrates a distance workload whose centers are random data
    /// points (query-by-example).
    pub fn calibrated_from_data(
        data: &[Point],
        n: usize,
        target_selectivity: f64,
        metric: &dyn Metric,
        seed: u64,
    ) -> Self {
        let centers = data_centers(data, n, seed);
        let radius = calibrate_radius(data, &centers, target_selectivity, metric);
        Self {
            centers,
            radius,
            target_selectivity,
        }
    }
}

/// Either kind of calibrated workload.
#[derive(Clone, Debug)]
pub enum Workload {
    /// Bounding-box (window) queries.
    Box(BoxWorkload),
    /// Distance-range queries.
    Distance(DistanceWorkload),
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyt_geom::L1;

    #[test]
    fn uniform_and_clustered_shapes() {
        let u = uniform(100, 5, 1);
        assert_eq!(u.len(), 100);
        assert!(u.iter().all(|p| p.dim() == 5));
        let c = clustered(200, 4, 3, 0.02, 2);
        assert_eq!(c.len(), 200);
        assert!(c
            .iter()
            .all(|p| (0..4).all(|d| (0.0..=1.0).contains(&p.coord(d)))));
    }

    #[test]
    fn box_calibration_hits_target() {
        let data = uniform(5000, 4, 3);
        let wl = BoxWorkload::calibrated(&data, 50, 0.01, 4);
        // Measure true selectivity of the produced workload.
        let mut total = 0usize;
        for q in &wl.queries {
            total += data.iter().filter(|p| q.contains_point(p)).count();
        }
        let sel = total as f64 / (data.len() * wl.queries.len()) as f64;
        assert!(
            (sel - 0.01).abs() < 0.005,
            "calibrated selectivity {sel}, wanted 0.01"
        );
        assert!(wl.side > 0.0 && wl.side < 1.0);
    }

    #[test]
    fn radius_calibration_hits_target_for_sparse_data() {
        let data = crate::colhist(3000, 16, 5);
        let wl = DistanceWorkload::calibrated(&data, 40, 0.01, &L1, 6);
        let mut total = 0usize;
        for c in &wl.centers {
            total += data
                .iter()
                .filter(|p| L1.distance(c, p) <= wl.radius)
                .count();
        }
        let sel = total as f64 / (data.len() * wl.centers.len()) as f64;
        assert!(
            (sel - 0.01).abs() < 0.006,
            "calibrated selectivity {sel}, wanted 0.01"
        );
    }

    #[test]
    fn calibration_is_monotone_in_target() {
        let data = uniform(3000, 3, 7);
        let centers = uniform_centers(&data, 30, 8);
        let small = calibrate_box_side(&data, &centers, 0.005);
        let large = calibrate_box_side(&data, &centers, 0.05);
        assert!(small < large);
    }

    #[test]
    fn data_centers_come_from_data() {
        let data = uniform(100, 3, 9);
        let centers = data_centers(&data, 20, 10);
        for c in &centers {
            assert!(data.iter().any(|p| p.same_coords(c)));
        }
    }

    #[test]
    fn uniform_centers_stay_inside_data_bounding_box() {
        let data = uniform(200, 4, 11);
        let br = Rect::bounding(&data);
        for c in uniform_centers(&data, 50, 12) {
            assert!(br.contains_point(&c));
        }
    }
}
