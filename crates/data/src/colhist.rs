//! COLHIST dataset stand-in: synthetic Corel-style color histograms.

use hyt_geom::Point;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Generates `n` color histograms with `bins` bins (the paper uses 16 =
/// 4x4, 32 = 8x4, and 64 = 8x8 binnings of color space).
///
/// The Corel collection the paper used is organized as stock-photo CDs
/// of ~100 thematically similar images (sunsets, tigers, ...). The
/// generator reproduces that structure:
///
/// * a Zipf-like popularity over the palette models globally common
///   colors (skies, skin tones, foliage) — and leaves a tail of bins
///   that almost never light up, the *non-discriminating dimensions*
///   that implicit dimensionality reduction (Lemma 1) eliminates;
/// * ~1 *theme* per 100 images picks 2–6 dominant bins with
///   Dirichlet-distributed base weights;
/// * each image perturbs its theme's weights, bleeds a fraction of each
///   weight into a neighboring bin (quantization blur), and adds a small
///   noise floor before L1 normalization.
///
/// The result is sparse, non-negative, unit-sum vectors concentrated in
/// dense clusters — the locality that makes feature indexes useful on
/// real image collections.
pub fn colhist(n: usize, bins: usize, seed: u64) -> Vec<Point> {
    assert!(bins >= 4, "needs at least 4 bins");
    let mut rng = StdRng::seed_from_u64(seed);
    // Palette popularity, exponentially decaying over a shuffled rank
    // assignment so popular bins are scattered across indices.
    let mut ranks: Vec<usize> = (0..bins).collect();
    ranks.shuffle(&mut rng);
    let popularity: Vec<f64> = (0..bins)
        .map(|b| (-(ranks[b] as f64) / 4.0).exp())
        .collect();
    let pop_total: f64 = popularity.iter().sum();

    let pick_bin = |rng: &mut StdRng| -> usize {
        let mut t = rng.gen::<f64>() * pop_total;
        for (b, &p) in popularity.iter().enumerate() {
            if t < p {
                return b;
            }
            t -= p;
        }
        bins - 1
    };

    // Themes: the CD structure of the Corel collection.
    struct Theme {
        bins: Vec<usize>,
        weights: Vec<f64>,
    }
    let n_themes = (n / 100).max(8);
    let themes: Vec<Theme> = (0..n_themes)
        .map(|_| {
            let colors = rng.gen_range(2..=6usize);
            let bins: Vec<usize> = (0..colors).map(|_| pick_bin(&mut rng)).collect();
            let mut weights: Vec<f64> = (0..colors)
                .map(|_| -(rng.gen::<f64>().max(1e-12)).ln())
                .collect();
            let sum: f64 = weights.iter().sum();
            for w in &mut weights {
                *w /= sum;
            }
            Theme { bins, weights }
        })
        .collect();

    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let theme = &themes[rng.gen_range(0..themes.len())];
        let mut hist = vec![0.0f64; bins];
        for (&bin, &w) in theme.bins.iter().zip(&theme.weights) {
            // Per-image variation of the theme's palette weights.
            let w = w * rng.gen_range(0.7..1.3);
            // Quantization blur into a neighboring bin.
            let bleed = rng.gen_range(0.0..0.25);
            let neighbor = if bin + 1 < bins { bin + 1 } else { bin - 1 };
            hist[bin] += w * (1.0 - bleed);
            hist[neighbor] += w * bleed;
        }
        // Sensor/noise floor.
        for h in hist.iter_mut() {
            *h += rng.gen::<f64>() * 0.005;
        }
        let total: f64 = hist.iter().sum();
        out.push(Point::new(
            hist.into_iter().map(|h| (h / total) as f32).collect(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_normalized_histograms() {
        for bins in [16, 32, 64] {
            let pts = colhist(100, bins, 5);
            assert_eq!(pts.len(), 100);
            for p in &pts {
                assert_eq!(p.dim(), bins);
                let sum: f64 = (0..bins).map(|d| f64::from(p.coord(d))).sum();
                assert!((sum - 1.0).abs() < 1e-3, "histogram sums to {sum}");
                assert!((0..bins).all(|d| p.coord(d) >= 0.0));
            }
        }
    }

    #[test]
    fn histograms_are_sparse() {
        let pts = colhist(500, 64, 6);
        // Most mass concentrated in a few bins: on average, the top-6 bins
        // should hold well over half the mass.
        let mut avg_top6 = 0.0f64;
        for p in &pts {
            let mut v: Vec<f64> = (0..64).map(|d| f64::from(p.coord(d))).collect();
            v.sort_by(|a, b| b.total_cmp(a));
            avg_top6 += v[..6].iter().sum::<f64>();
        }
        avg_top6 /= pts.len() as f64;
        assert!(avg_top6 > 0.6, "top-6 mass only {avg_top6}");
    }

    #[test]
    fn some_bins_are_non_discriminating() {
        // The implicit-dimensionality-reduction premise: a fair share of
        // bins have tiny spread across the whole collection.
        let pts = colhist(1000, 64, 7);
        let mut low_spread = 0;
        for d in 0..64 {
            let max = pts.iter().map(|p| p.coord(d)).fold(0.0f32, f32::max);
            if max < 0.1 {
                low_spread += 1;
            }
        }
        assert!(
            low_spread >= 8,
            "expected several non-discriminating bins, got {low_spread}"
        );
    }

    #[test]
    fn collection_is_clustered_by_theme() {
        // Images within a theme must be much closer (L1) than images from
        // different themes on average — the Corel CD structure.
        use hyt_geom::{Metric, L1};
        let pts = colhist(2000, 32, 8);
        // Nearest-neighbor distance should be far below the distance to a
        // random other image for most points.
        let mut rng = StdRng::seed_from_u64(9);
        let mut nn_smaller = 0;
        for _ in 0..50 {
            let i = rng.gen_range(0..pts.len());
            let nn = pts
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, p)| L1.distance(&pts[i], p))
                .fold(f64::INFINITY, f64::min);
            let j = rng.gen_range(0..pts.len());
            let random = L1.distance(&pts[i], &pts[j]).max(1e-9);
            if nn < random * 0.5 {
                nn_smaller += 1;
            }
        }
        assert!(
            nn_smaller >= 35,
            "expected strong cluster structure, got {nn_smaller}/50"
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = colhist(30, 32, 9);
        let b = colhist(30, 32, 9);
        assert!(a.iter().zip(&b).all(|(x, y)| x.same_coords(y)));
    }
}
