//! Common interface implemented by every index structure in the workspace.
//!
//! The paper's evaluation (§4) runs the same workloads over the hybrid
//! tree, the SR-tree, the hB-tree, and a linear scan. [`MultidimIndex`] is
//! the uniform surface the evaluation harness drives; [`StructureStats`]
//! captures the structural properties compared in the paper's Tables 1–2
//! (fanout, utilization, overlap, split-dimension usage).

use hyt_geom::{Metric, Point, Rect};
use hyt_page::{IoStats, PageError};
use std::fmt;

pub use hyt_page::{CancelToken, Interrupt, NodeCacheStats, QueryContext};

/// Errors surfaced by index operations.
#[derive(Debug)]
pub enum IndexError {
    /// A point or rectangle of the wrong dimensionality was supplied.
    DimensionMismatch {
        /// The index's dimensionality.
        expected: usize,
        /// The argument's dimensionality.
        got: usize,
    },
    /// The operation is not supported by this structure (e.g. the hB-tree
    /// does not support distance-based queries — paper §4, footnote 2).
    Unsupported(&'static str),
    /// An error from the storage substrate.
    Storage(PageError),
    /// An operation that infers properties from its input (e.g.
    /// dimensionality from the first point) received an empty dataset.
    EmptyDataset(&'static str),
    /// The structure detected an internal inconsistency.
    Internal(String),
}

/// Convenience alias for fallible index operations.
pub type IndexResult<T> = Result<T, IndexError>;

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "dimension mismatch: index is {expected}-d, argument is {got}-d"
                )
            }
            IndexError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
            IndexError::Storage(e) => write!(f, "storage error: {e}"),
            IndexError::EmptyDataset(what) => write!(f, "empty dataset: {what}"),
            IndexError::Internal(msg) => write!(f, "internal index error: {msg}"),
        }
    }
}

impl std::error::Error for IndexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IndexError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PageError> for IndexError {
    fn from(e: PageError) -> Self {
        IndexError::Storage(e)
    }
}

impl IndexError {
    /// Whether this error reports detected on-disk corruption (checksum
    /// or structural), as opposed to a transient I/O failure or misuse.
    /// Crash-recovery callers branch on this: corruption is permanent and
    /// needs a rebuild, everything else is retryable or a caller bug.
    pub fn is_corruption(&self) -> bool {
        matches!(self, IndexError::Storage(PageError::Corrupt(_)))
    }

    /// If this error is a governed-read denial, the [`Interrupt`] that
    /// caused it. Engines use this to tell "the query was told to stop"
    /// (return partial results as [`QueryOutcome::Degraded`]) apart from
    /// real storage failures (propagate).
    pub fn interrupt(&self) -> Option<Interrupt> {
        match self {
            IndexError::Storage(PageError::Interrupted(i)) => Some(*i),
            _ => None,
        }
    }
}

/// Why a governed query returned [`QueryOutcome::Degraded`] instead of a
/// complete answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DegradeReason {
    /// The [`QueryContext`] deadline passed mid-traversal.
    DeadlineExceeded,
    /// A budget ran out: the logical-read budget mid-traversal, or the
    /// result-cardinality cap was reached.
    BudgetExhausted,
    /// The query's [`CancelToken`] was triggered.
    Cancelled,
    /// Transient storage faults persisted through every retry the runner
    /// was allowed (produced by the `hyt-eval` governed batch runner,
    /// never by the engines themselves — an engine surfaces transient
    /// I/O as an error and lets the runner decide whether to retry).
    RetriesExhausted,
}

impl fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradeReason::DeadlineExceeded => write!(f, "deadline exceeded"),
            DegradeReason::BudgetExhausted => write!(f, "budget exhausted"),
            DegradeReason::Cancelled => write!(f, "cancelled"),
            DegradeReason::RetriesExhausted => write!(f, "retries exhausted"),
        }
    }
}

impl From<Interrupt> for DegradeReason {
    fn from(i: Interrupt) -> Self {
        match i {
            Interrupt::Cancelled => DegradeReason::Cancelled,
            Interrupt::DeadlineExceeded => DegradeReason::DeadlineExceeded,
            Interrupt::BudgetExhausted => DegradeReason::BudgetExhausted,
        }
    }
}

/// Result of a governed query: either the complete answer, or whatever
/// the traversal had accumulated when a limit stopped it.
///
/// `Degraded` is a *successful* return, not an error: the partial
/// results are real entries (for box and distance-range queries, a
/// subset of the true answer; for kNN, the best candidates found so
/// far, which may not be the true nearest) and the index itself is
/// healthy. Hard failures — corruption, misuse, unrecoverable I/O —
/// still surface as [`IndexError`].
#[derive(Clone, Debug, PartialEq)]
pub enum QueryOutcome<T> {
    /// The query ran to completion; the answer is exact.
    Complete(T),
    /// A limit stopped the traversal early.
    Degraded {
        /// Results accumulated before the interrupt.
        partial: T,
        /// Which limit stopped the query.
        reason: DegradeReason,
    },
}

impl<T> QueryOutcome<T> {
    /// Builds a degraded outcome.
    pub fn degraded(partial: T, reason: DegradeReason) -> Self {
        QueryOutcome::Degraded { partial, reason }
    }

    /// Whether the query ran to completion.
    pub fn is_complete(&self) -> bool {
        matches!(self, QueryOutcome::Complete(_))
    }

    /// The degrade reason, if any.
    pub fn degrade_reason(&self) -> Option<DegradeReason> {
        match self {
            QueryOutcome::Complete(_) => None,
            QueryOutcome::Degraded { reason, .. } => Some(*reason),
        }
    }

    /// Unwraps the payload, complete or partial.
    pub fn into_results(self) -> T {
        match self {
            QueryOutcome::Complete(t) => t,
            QueryOutcome::Degraded { partial, .. } => partial,
        }
    }

    /// Borrows the payload, complete or partial.
    pub fn results(&self) -> &T {
        match self {
            QueryOutcome::Complete(t) => t,
            QueryOutcome::Degraded { partial, .. } => partial,
        }
    }

    /// Maps the payload, preserving completeness.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> QueryOutcome<U> {
        match self {
            QueryOutcome::Complete(t) => QueryOutcome::Complete(f(t)),
            QueryOutcome::Degraded { partial, reason } => QueryOutcome::Degraded {
                partial: f(partial),
                reason,
            },
        }
    }
}

/// Engine-side helper for the result-cardinality cap: truncates `out`
/// to the cap and reports whether the traversal must stop and degrade.
/// Landing *exactly* on the cap with no work left is still a complete
/// answer; exceeding it, or reaching it with nodes still unvisited,
/// degrades.
pub fn apply_result_cap<T>(ctx: &QueryContext, out: &mut Vec<T>, more_work: bool) -> bool {
    match ctx.max_results {
        Some(cap) if out.len() > cap => {
            out.truncate(cap);
            true
        }
        Some(cap) => out.len() == cap && more_work,
        None => false,
    }
}

/// Engine-side helper for governed traversals: if `err` is an interrupt,
/// settle it into a `Degraded` outcome carrying `partial`; otherwise
/// re-raise. Keeps the "degrade only on interrupts, propagate real
/// failures" policy in one place instead of five engines.
pub fn settle_interrupt<T>(
    err: IndexError,
    partial: T,
    io: IoStats,
) -> IndexResult<(QueryOutcome<T>, IoStats)> {
    match err.interrupt() {
        Some(i) => Ok((QueryOutcome::degraded(partial, i.into()), io)),
        None => Err(err),
    }
}

/// An open incremental k-nearest-neighbor stream (distance browsing):
/// neighbors surface one at a time in ascending `(distance, oid)` order,
/// without committing to a `k` up front. Obtained from
/// [`MultidimIndex::knn_stream`]; the concrete implementation is the
/// `hyt-exec` crate's `KnnCursor`, shared by every engine that supports
/// distance-based search.
///
/// Governance carries over from the batch path: every page read is
/// admitted by the stream's [`QueryContext`], and a triggered limit ends
/// the stream with [`degrade_reason`](Self::degrade_reason) set instead
/// of surfacing an error. Pulling `n` results reads no more pages than a
/// batch `knn_ctx(q, n, ..)` would, and the yielded sequence is exactly
/// that batch answer's prefix.
pub trait KnnStream {
    /// The next neighbor in ascending `(distance, oid)` order, or `None`
    /// when the index is exhausted, a governance limit stopped the
    /// stream, or a storage failure occurred.
    fn next(&mut self) -> Option<(u64, f64)>;

    /// I/O incurred by this stream so far.
    fn io(&self) -> IoStats;

    /// Why the stream stopped early, if a governance limit ended it.
    fn degrade_reason(&self) -> Option<DegradeReason>;

    /// Takes the hard storage failure that ended the stream, if any
    /// (`next` returning `None` with no degrade reason and no error means
    /// the index is simply exhausted).
    fn take_error(&mut self) -> Option<IndexError>;
}

/// Structural properties of a built index, for Table 1 / Table 2 style
/// comparisons and for the ablation benches.
#[derive(Clone, Debug, Default)]
pub struct StructureStats {
    /// Height of the tree (1 = a single data node).
    pub height: usize,
    /// Total number of pages (index + data).
    pub total_nodes: usize,
    /// Number of index (directory) pages.
    pub index_nodes: usize,
    /// Number of data (leaf) pages.
    pub data_nodes: usize,
    /// Average number of children per index node.
    pub avg_fanout: f64,
    /// Average fraction of the page used by data nodes (bytes used / page
    /// size).
    pub avg_leaf_utilization: f64,
    /// Average over index-node splits of the overlap fraction: overlap
    /// extent divided by the node extent along the split dimension
    /// (0 = clean splits everywhere).
    pub avg_overlap_fraction: f64,
    /// Number of distinct dimensions ever used as a split dimension
    /// (the paper's implicit dimensionality reduction shows up here).
    pub distinct_split_dims: usize,
    /// Bytes of redundant information stored (e.g. hB-tree path posting).
    pub redundant_bytes: usize,
}

/// A disk-based multidimensional index over k-dimensional `f32` points with
/// `u64` object identifiers.
///
/// Duplicate points (even duplicate `(point, oid)` pairs) are permitted;
/// queries return one oid per stored entry, in unspecified order.
///
/// # Concurrency
///
/// Queries take `&self`: a built index can be shared across threads
/// (hence the `Send + Sync` supertraits) and searched concurrently —
/// mutation (`insert`/`delete`) still requires exclusive access, which
/// the borrow checker enforces. The `*_counted` variants additionally
/// return the [`IoStats`] incurred by that one query, attributed to the
/// caller even when many queries share the underlying buffer pool; the
/// plain variants are convenience wrappers that discard the per-query
/// counters (the pool-global counters behind [`io_stats`](Self::io_stats)
/// always advance either way). A query's `logical_reads`/`seq_reads`
/// depend only on its own traversal, so they are identical whether the
/// batch runs serially or in parallel.
pub trait MultidimIndex: Send + Sync {
    /// Short name used in reports ("hybrid", "sr-tree", ...).
    fn name(&self) -> &'static str;

    /// Dimensionality of the indexed space.
    fn dim(&self) -> usize;

    /// Number of stored entries.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts a point with its object id.
    fn insert(&mut self, point: Point, oid: u64) -> IndexResult<()>;

    /// Deletes one entry matching `(point, oid)` exactly; returns whether
    /// an entry was removed.
    fn delete(&mut self, point: &Point, oid: u64) -> IndexResult<bool>;

    /// Bounding-box (window) query: all oids whose points lie inside the
    /// closed rectangle.
    fn box_query(&self, rect: &Rect) -> IndexResult<Vec<u64>> {
        Ok(self.box_query_counted(rect)?.0)
    }

    /// [`box_query`](Self::box_query) plus the I/O this query incurred.
    fn box_query_counted(&self, rect: &Rect) -> IndexResult<(Vec<u64>, IoStats)> {
        let (outcome, io) = self.box_query_ctx(rect, QueryContext::unlimited())?;
        Ok((outcome.into_results(), io))
    }

    /// Governed window query: the traversal consults `ctx` before every
    /// page fetch (cancel, deadline, logical-read budget) and after
    /// every result batch (result-cardinality cap), so any limit is
    /// observed within one pool read. A triggered limit yields
    /// [`QueryOutcome::Degraded`] carrying the subset of the answer
    /// found so far; storage failures still surface as [`IndexError`].
    fn box_query_ctx(
        &self,
        rect: &Rect,
        ctx: &QueryContext,
    ) -> IndexResult<(QueryOutcome<Vec<u64>>, IoStats)>;

    /// Distance range query under an arbitrary metric: all oids within
    /// `radius` of `q`.
    fn distance_range(&self, q: &Point, radius: f64, metric: &dyn Metric) -> IndexResult<Vec<u64>> {
        Ok(self.distance_range_counted(q, radius, metric)?.0)
    }

    /// [`distance_range`](Self::distance_range) plus the I/O this query
    /// incurred.
    fn distance_range_counted(
        &self,
        q: &Point,
        radius: f64,
        metric: &dyn Metric,
    ) -> IndexResult<(Vec<u64>, IoStats)> {
        let (outcome, io) =
            self.distance_range_ctx(q, radius, metric, QueryContext::unlimited())?;
        Ok((outcome.into_results(), io))
    }

    /// Governed distance range query (see
    /// [`box_query_ctx`](Self::box_query_ctx) for the governance
    /// contract). Degraded results are a subset of the true answer.
    fn distance_range_ctx(
        &self,
        q: &Point,
        radius: f64,
        metric: &dyn Metric,
        ctx: &QueryContext,
    ) -> IndexResult<(QueryOutcome<Vec<u64>>, IoStats)>;

    /// k-nearest-neighbor query; returns `(oid, distance)` sorted by
    /// ascending distance (ties broken arbitrarily).
    fn knn(&self, q: &Point, k: usize, metric: &dyn Metric) -> IndexResult<Vec<(u64, f64)>> {
        Ok(self.knn_counted(q, k, metric)?.0)
    }

    /// [`knn`](Self::knn) plus the I/O this query incurred.
    fn knn_counted(
        &self,
        q: &Point,
        k: usize,
        metric: &dyn Metric,
    ) -> IndexResult<(Vec<(u64, f64)>, IoStats)> {
        let (outcome, io) = self.knn_ctx(q, k, metric, QueryContext::unlimited())?;
        Ok((outcome.into_results(), io))
    }

    /// Governed kNN query (see [`box_query_ctx`](Self::box_query_ctx)
    /// for the governance contract). A `max_results` cap below `k`
    /// clamps `k`. Degraded kNN results are the best candidates found
    /// before the interrupt, sorted by distance — they are *not*
    /// guaranteed to be the true nearest neighbors.
    #[allow(clippy::type_complexity)]
    fn knn_ctx(
        &self,
        q: &Point,
        k: usize,
        metric: &dyn Metric,
        ctx: &QueryContext,
    ) -> IndexResult<(QueryOutcome<Vec<(u64, f64)>>, IoStats)>;

    /// Opens an incremental kNN stream (see [`KnnStream`]): neighbors are
    /// pulled one at a time in ascending `(distance, oid)` order, under
    /// the same governance as the batch path (`ctx.max_results` caps the
    /// number of yields). Engines without distance-based search — and any
    /// future engine that has not opted in — return
    /// [`IndexError::Unsupported`].
    fn knn_stream<'a>(
        &'a self,
        q: &Point,
        metric: &'a dyn Metric,
        ctx: &QueryContext,
    ) -> IndexResult<Box<dyn KnnStream + 'a>> {
        let _ = (q, metric, ctx);
        Err(IndexError::Unsupported(
            "streaming kNN is not supported by this engine",
        ))
    }

    /// Pool-global I/O counters accumulated since the last reset.
    fn io_stats(&self) -> IoStats;

    /// Resets the pool-global I/O counters.
    fn reset_io_stats(&self);

    /// Decoded-node cache counters for this index's pool since the last
    /// [`reset_io_stats`](Self::reset_io_stats) (`misses` is the decode
    /// count of the workload). All zeros for engines without such a
    /// cache, or with it disabled.
    fn cache_stats(&self) -> NodeCacheStats {
        NodeCacheStats::default()
    }

    /// Structural statistics of the current tree.
    fn structure_stats(&self) -> IndexResult<StructureStats>;
}

/// Checks an argument's dimensionality against the index's.
pub fn check_dim(expected: usize, got: usize) -> IndexResult<()> {
    if expected != got {
        return Err(IndexError::DimensionMismatch { expected, got });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_dim_accepts_match() {
        assert!(check_dim(4, 4).is_ok());
    }

    #[test]
    fn check_dim_rejects_mismatch() {
        let e = check_dim(4, 5).unwrap_err();
        assert!(e.to_string().contains("4-d"));
        assert!(e.to_string().contains("5-d"));
    }

    #[test]
    fn errors_display() {
        assert!(IndexError::Unsupported("distance search")
            .to_string()
            .contains("distance search"));
        let e: IndexError = PageError::Corrupt("x".into()).into();
        assert!(matches!(e, IndexError::Storage(_)));
        assert!(IndexError::EmptyDataset("need one point")
            .to_string()
            .contains("empty dataset"));
    }

    #[test]
    fn query_outcome_accessors() {
        let c = QueryOutcome::Complete(vec![1u64, 2]);
        assert!(c.is_complete());
        assert_eq!(c.degrade_reason(), None);
        assert_eq!(c.results(), &vec![1, 2]);
        assert_eq!(c.map(|v| v.len()).into_results(), 2);

        let d = QueryOutcome::degraded(vec![1u64], DegradeReason::Cancelled);
        assert!(!d.is_complete());
        assert_eq!(d.degrade_reason(), Some(DegradeReason::Cancelled));
        assert_eq!(d.into_results(), vec![1]);
    }

    #[test]
    fn interrupts_map_to_degrade_reasons() {
        assert_eq!(
            DegradeReason::from(Interrupt::Cancelled),
            DegradeReason::Cancelled
        );
        assert_eq!(
            DegradeReason::from(Interrupt::DeadlineExceeded),
            DegradeReason::DeadlineExceeded
        );
        assert_eq!(
            DegradeReason::from(Interrupt::BudgetExhausted),
            DegradeReason::BudgetExhausted
        );
    }

    #[test]
    fn result_cap_truncates_and_degrades() {
        let ctx = QueryContext::default().with_max_results(2);
        let mut over = vec![1u64, 2, 3];
        assert!(apply_result_cap(&ctx, &mut over, false));
        assert_eq!(over, vec![1, 2]);
        // Exactly at the cap: complete if nothing is left to visit,
        // degraded if the traversal would have continued.
        let mut exact = vec![1u64, 2];
        assert!(!apply_result_cap(&ctx, &mut exact, false));
        assert!(apply_result_cap(&ctx, &mut exact, true));
        // No cap: never degrades.
        let mut any = vec![1u64; 10];
        assert!(!apply_result_cap(QueryContext::unlimited(), &mut any, true));
    }

    #[test]
    fn settle_interrupt_settles_only_interrupts() {
        let io = IoStats::default();
        let interrupted: IndexError = PageError::Interrupted(Interrupt::DeadlineExceeded).into();
        assert!(interrupted.interrupt().is_some());
        let (outcome, _) = settle_interrupt(interrupted, vec![7u64], io).unwrap();
        assert_eq!(
            outcome,
            QueryOutcome::degraded(vec![7], DegradeReason::DeadlineExceeded)
        );

        let hard: IndexError = PageError::Corrupt("bad crc".into()).into();
        assert!(hard.interrupt().is_none());
        assert!(settle_interrupt(hard, vec![7u64], io).is_err());
    }
}
