//! Common interface implemented by every index structure in the workspace.
//!
//! The paper's evaluation (§4) runs the same workloads over the hybrid
//! tree, the SR-tree, the hB-tree, and a linear scan. [`MultidimIndex`] is
//! the uniform surface the evaluation harness drives; [`StructureStats`]
//! captures the structural properties compared in the paper's Tables 1–2
//! (fanout, utilization, overlap, split-dimension usage).

use hyt_geom::{Metric, Point, Rect};
use hyt_page::{IoStats, PageError};
use std::fmt;

/// Errors surfaced by index operations.
#[derive(Debug)]
pub enum IndexError {
    /// A point or rectangle of the wrong dimensionality was supplied.
    DimensionMismatch {
        /// The index's dimensionality.
        expected: usize,
        /// The argument's dimensionality.
        got: usize,
    },
    /// The operation is not supported by this structure (e.g. the hB-tree
    /// does not support distance-based queries — paper §4, footnote 2).
    Unsupported(&'static str),
    /// An error from the storage substrate.
    Storage(PageError),
    /// The structure detected an internal inconsistency.
    Internal(String),
}

/// Convenience alias for fallible index operations.
pub type IndexResult<T> = Result<T, IndexError>;

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "dimension mismatch: index is {expected}-d, argument is {got}-d"
                )
            }
            IndexError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
            IndexError::Storage(e) => write!(f, "storage error: {e}"),
            IndexError::Internal(msg) => write!(f, "internal index error: {msg}"),
        }
    }
}

impl std::error::Error for IndexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IndexError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PageError> for IndexError {
    fn from(e: PageError) -> Self {
        IndexError::Storage(e)
    }
}

impl IndexError {
    /// Whether this error reports detected on-disk corruption (checksum
    /// or structural), as opposed to a transient I/O failure or misuse.
    /// Crash-recovery callers branch on this: corruption is permanent and
    /// needs a rebuild, everything else is retryable or a caller bug.
    pub fn is_corruption(&self) -> bool {
        matches!(self, IndexError::Storage(PageError::Corrupt(_)))
    }
}

/// Structural properties of a built index, for Table 1 / Table 2 style
/// comparisons and for the ablation benches.
#[derive(Clone, Debug, Default)]
pub struct StructureStats {
    /// Height of the tree (1 = a single data node).
    pub height: usize,
    /// Total number of pages (index + data).
    pub total_nodes: usize,
    /// Number of index (directory) pages.
    pub index_nodes: usize,
    /// Number of data (leaf) pages.
    pub data_nodes: usize,
    /// Average number of children per index node.
    pub avg_fanout: f64,
    /// Average fraction of the page used by data nodes (bytes used / page
    /// size).
    pub avg_leaf_utilization: f64,
    /// Average over index-node splits of the overlap fraction: overlap
    /// extent divided by the node extent along the split dimension
    /// (0 = clean splits everywhere).
    pub avg_overlap_fraction: f64,
    /// Number of distinct dimensions ever used as a split dimension
    /// (the paper's implicit dimensionality reduction shows up here).
    pub distinct_split_dims: usize,
    /// Bytes of redundant information stored (e.g. hB-tree path posting).
    pub redundant_bytes: usize,
}

/// A disk-based multidimensional index over k-dimensional `f32` points with
/// `u64` object identifiers.
///
/// Duplicate points (even duplicate `(point, oid)` pairs) are permitted;
/// queries return one oid per stored entry, in unspecified order.
///
/// # Concurrency
///
/// Queries take `&self`: a built index can be shared across threads
/// (hence the `Send + Sync` supertraits) and searched concurrently —
/// mutation (`insert`/`delete`) still requires exclusive access, which
/// the borrow checker enforces. The `*_counted` variants additionally
/// return the [`IoStats`] incurred by that one query, attributed to the
/// caller even when many queries share the underlying buffer pool; the
/// plain variants are convenience wrappers that discard the per-query
/// counters (the pool-global counters behind [`io_stats`](Self::io_stats)
/// always advance either way). A query's `logical_reads`/`seq_reads`
/// depend only on its own traversal, so they are identical whether the
/// batch runs serially or in parallel.
pub trait MultidimIndex: Send + Sync {
    /// Short name used in reports ("hybrid", "sr-tree", ...).
    fn name(&self) -> &'static str;

    /// Dimensionality of the indexed space.
    fn dim(&self) -> usize;

    /// Number of stored entries.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts a point with its object id.
    fn insert(&mut self, point: Point, oid: u64) -> IndexResult<()>;

    /// Deletes one entry matching `(point, oid)` exactly; returns whether
    /// an entry was removed.
    fn delete(&mut self, point: &Point, oid: u64) -> IndexResult<bool>;

    /// Bounding-box (window) query: all oids whose points lie inside the
    /// closed rectangle.
    fn box_query(&self, rect: &Rect) -> IndexResult<Vec<u64>> {
        Ok(self.box_query_counted(rect)?.0)
    }

    /// [`box_query`](Self::box_query) plus the I/O this query incurred.
    fn box_query_counted(&self, rect: &Rect) -> IndexResult<(Vec<u64>, IoStats)>;

    /// Distance range query under an arbitrary metric: all oids within
    /// `radius` of `q`.
    fn distance_range(&self, q: &Point, radius: f64, metric: &dyn Metric) -> IndexResult<Vec<u64>> {
        Ok(self.distance_range_counted(q, radius, metric)?.0)
    }

    /// [`distance_range`](Self::distance_range) plus the I/O this query
    /// incurred.
    fn distance_range_counted(
        &self,
        q: &Point,
        radius: f64,
        metric: &dyn Metric,
    ) -> IndexResult<(Vec<u64>, IoStats)>;

    /// k-nearest-neighbor query; returns `(oid, distance)` sorted by
    /// ascending distance (ties broken arbitrarily).
    fn knn(&self, q: &Point, k: usize, metric: &dyn Metric) -> IndexResult<Vec<(u64, f64)>> {
        Ok(self.knn_counted(q, k, metric)?.0)
    }

    /// [`knn`](Self::knn) plus the I/O this query incurred.
    fn knn_counted(
        &self,
        q: &Point,
        k: usize,
        metric: &dyn Metric,
    ) -> IndexResult<(Vec<(u64, f64)>, IoStats)>;

    /// Pool-global I/O counters accumulated since the last reset.
    fn io_stats(&self) -> IoStats;

    /// Resets the pool-global I/O counters.
    fn reset_io_stats(&self);

    /// Structural statistics of the current tree.
    fn structure_stats(&self) -> IndexResult<StructureStats>;
}

/// Checks an argument's dimensionality against the index's.
pub fn check_dim(expected: usize, got: usize) -> IndexResult<()> {
    if expected != got {
        return Err(IndexError::DimensionMismatch { expected, got });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_dim_accepts_match() {
        assert!(check_dim(4, 4).is_ok());
    }

    #[test]
    fn check_dim_rejects_mismatch() {
        let e = check_dim(4, 5).unwrap_err();
        assert!(e.to_string().contains("4-d"));
        assert!(e.to_string().contains("5-d"));
    }

    #[test]
    fn errors_display() {
        assert!(IndexError::Unsupported("distance search")
            .to_string()
            .contains("distance search"));
        let e: IndexError = PageError::Corrupt("x".into()).into();
        assert!(matches!(e, IndexError::Storage(_)));
    }
}
