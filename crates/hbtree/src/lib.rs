//! hB-tree baseline (Lomet & Salzberg, TODS 1990).
//!
//! The hB-tree ("holey brick" B-tree) is the paper's representative
//! *space-partitioning* competitor (§4). Its nodes organize space with
//! intra-node kd-trees, like the hybrid tree, but its splits stay clean
//! by using **multiple dimensions per split**: an overflowing node sheds
//! a *corner* — the intersection of several half-space constraints
//! holding between 1/3 and 2/3 of its content — leaving the node
//! responsible for a rectangle with a rectangular hole (a holey brick).
//! The kd-path describing the extracted corner is replicated into the
//! parent (**path posting**) — the storage redundancy the hybrid tree
//! paper holds against the hB-tree in Table 1 — and multi-dimensional
//! corners have larger surface area than 1-d slabs, costing disk
//! accesses (§3.6).
//!
//! ### Fidelity notes (also recorded in DESIGN.md)
//!
//! Lomet–Salzberg's full posting protocol (decorations resolving which
//! parent fragment owns a multiply-referenced child) is notoriously
//! subtle; this implementation uses an equivalent-but-simpler scheme
//! that preserves correctness and the performance-relevant redundancy:
//!
//! * a posted path is grafted at exactly **one** parent fragment;
//! * the splitting node keeps a **sibling redirect** for the extracted
//!   corner (a `Kd::Sibling` leaf for index corners; a constraint list
//!   in data pages for data corners), so traffic arriving through any
//!   other fragment still reaches the moved content — at the price of an
//!   extra page access, which the I/O counters measure honestly;
//! * deletion removes entries without node merging;
//! * per the paper's §4 footnote 2, distance-based queries are
//!   unsupported.

use hyt_exec::{Child, EntrySink, NearQuery, NodeExpand, NodeKind};
use hyt_geom::{Coord, Metric, Point, Rect};
use hyt_index::{
    check_dim, IndexError, IndexResult, MultidimIndex, QueryContext, QueryOutcome, StructureStats,
};
use hyt_page::{
    BufferPool, ByteReader, ByteWriter, IoStats, MemStorage, NodeCacheStats, PageError, PageId,
    PageResult, Storage, DEFAULT_PAGE_SIZE,
};
use std::collections::HashSet;

const TAG_DATA: u8 = 0;
const TAG_INDEX: u8 = 1;
const KD_CHILD: u8 = 0;
const KD_INTERNAL: u8 = 1;
const KD_SIBLING: u8 = 2;

/// Which side of a split a constraint keeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Side {
    /// `x < pos`.
    Lower,
    /// `x >= pos`.
    Upper,
}

/// One half-space constraint of a posted corner path.
#[derive(Clone, Debug)]
struct Constraint {
    dim: u16,
    pos: Coord,
    side: Side,
}

impl Constraint {
    fn admits_point(&self, p: &Point) -> bool {
        let x = p.coord(self.dim as usize);
        match self.side {
            Side::Lower => x < self.pos,
            Side::Upper => x >= self.pos,
        }
    }

    /// Closed-region overlap test against a query box.
    fn admits_box(&self, q: &Rect) -> bool {
        let d = self.dim as usize;
        match self.side {
            Side::Lower => q.lo(d) <= self.pos,
            Side::Upper => q.hi(d) >= self.pos,
        }
    }

    const ENCODED: usize = 2 + 4 + 1;

    fn encode(&self, w: &mut ByteWriter) {
        w.put_u16(self.dim);
        w.put_f32(self.pos);
        w.put_u8(match self.side {
            Side::Lower => 0,
            Side::Upper => 1,
        });
    }

    fn decode(r: &mut ByteReader<'_>) -> PageResult<Self> {
        let dim = r.get_u16()?;
        let pos = r.get_f32()?;
        let side = match r.get_u8()? {
            0 => Side::Lower,
            1 => Side::Upper,
            t => return Err(PageError::Corrupt(format!("bad side tag {t}"))),
        };
        Ok(Constraint { dim, pos, side })
    }
}

/// A redirect left behind by a data-corner extraction: entries matching
/// every constraint now live in (or beyond) `target`.
#[derive(Clone, Debug)]
struct Redirect {
    constraints: Vec<Constraint>,
    target: PageId,
}

impl Redirect {
    fn encoded_size(&self) -> usize {
        1 + self.constraints.len() * Constraint::ENCODED + 4
    }
}

/// Intra-node kd-tree. `Sibling` marks an extracted corner whose
/// contents moved to a same-level node.
#[derive(Clone, Debug, PartialEq)]
enum Kd {
    Child(PageId),
    Sibling(PageId),
    Internal {
        dim: u16,
        pos: Coord,
        left: Box<Kd>,
        right: Box<Kd>,
    },
}

/// Where a point's descent through a node's kd-tree lands.
enum Route {
    Child(PageId),
    Sibling(PageId),
}

impl Kd {
    fn encoded_size(&self) -> usize {
        match self {
            Kd::Child(_) | Kd::Sibling(_) => 5,
            Kd::Internal { left, right, .. } => 7 + left.encoded_size() + right.encoded_size(),
        }
    }

    fn encode(&self, w: &mut ByteWriter) {
        match self {
            Kd::Child(pid) => {
                w.put_u8(KD_CHILD);
                w.put_u32(pid.0);
            }
            Kd::Sibling(pid) => {
                w.put_u8(KD_SIBLING);
                w.put_u32(pid.0);
            }
            Kd::Internal {
                dim,
                pos,
                left,
                right,
            } => {
                w.put_u8(KD_INTERNAL);
                w.put_u16(*dim);
                w.put_f32(*pos);
                left.encode(w);
                right.encode(w);
            }
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> PageResult<Self> {
        match r.get_u8()? {
            KD_CHILD => Ok(Kd::Child(PageId(r.get_u32()?))),
            KD_SIBLING => Ok(Kd::Sibling(PageId(r.get_u32()?))),
            KD_INTERNAL => {
                let dim = r.get_u16()?;
                let pos = r.get_f32()?;
                let left = Box::new(Kd::decode(r)?);
                let right = Box::new(Kd::decode(r)?);
                Ok(Kd::Internal {
                    dim,
                    pos,
                    left,
                    right,
                })
            }
            t => Err(PageError::Corrupt(format!("bad hB kd tag {t}"))),
        }
    }

    /// Number of `Child` leaves (sibling redirects excluded).
    fn weight(&self) -> usize {
        match self {
            Kd::Child(_) => 1,
            Kd::Sibling(_) => 0,
            Kd::Internal { left, right, .. } => left.weight() + right.weight(),
        }
    }

    fn children(&self, out: &mut Vec<PageId>) {
        match self {
            Kd::Child(pid) => out.push(*pid),
            Kd::Sibling(_) => {}
            Kd::Internal { left, right, .. } => {
                left.children(out);
                right.children(out);
            }
        }
    }

    fn siblings(&self, out: &mut Vec<PageId>) {
        match self {
            Kd::Child(_) => {}
            Kd::Sibling(pid) => out.push(*pid),
            Kd::Internal { left, right, .. } => {
                left.siblings(out);
                right.siblings(out);
            }
        }
    }

    /// Pages overlapping a query box (children and sibling redirects).
    fn collect_box(&self, query: &Rect, out: &mut Vec<PageId>) {
        match self {
            Kd::Child(pid) | Kd::Sibling(pid) => out.push(*pid),
            Kd::Internal {
                dim,
                pos,
                left,
                right,
            } => {
                let d = *dim as usize;
                if query.lo(d) <= *pos {
                    left.collect_box(query, out);
                }
                if query.hi(d) >= *pos {
                    right.collect_box(query, out);
                }
            }
        }
    }

    /// Strict routing for a point insert: `x < pos` left, else right.
    fn route(&self, p: &Point) -> Route {
        match self {
            Kd::Child(pid) => Route::Child(*pid),
            Kd::Sibling(pid) => Route::Sibling(*pid),
            Kd::Internal {
                dim,
                pos,
                left,
                right,
            } => {
                if p.coord(*dim as usize) < *pos {
                    left.route(p)
                } else {
                    right.route(p)
                }
            }
        }
    }

    /// Replaces the first `Child(old)` leaf with `replacement`; returns
    /// whether one was found (a page has exactly one `Child` reference in
    /// the tree; extra fragments are `Sibling` redirects).
    fn graft_first(&mut self, old: PageId, replacement: &Kd) -> bool {
        match self {
            Kd::Child(pid) if *pid == old => {
                *self = replacement.clone();
                true
            }
            Kd::Child(_) | Kd::Sibling(_) => false,
            Kd::Internal { left, right, .. } => {
                left.graft_first(old, replacement) || right.graft_first(old, replacement)
            }
        }
    }

    fn split_dims(&self, out: &mut HashSet<u16>) {
        if let Kd::Internal {
            dim, left, right, ..
        } = self
        {
            out.insert(*dim);
            left.split_dims(out);
            right.split_dims(out);
        }
    }

    fn count_siblings(&self) -> usize {
        match self {
            Kd::Child(_) => 0,
            Kd::Sibling(_) => 1,
            Kd::Internal { left, right, .. } => left.count_siblings() + right.count_siblings(),
        }
    }
}

/// A deserialized hB-tree node.
#[derive(Clone, Debug)]
enum HbNode {
    Data {
        entries: Vec<(Point, u64)>,
        redirects: Vec<Redirect>,
    },
    Index {
        level: u16,
        kd: Kd,
    },
}

impl HbNode {
    fn encoded_size(&self, dim: usize) -> usize {
        match self {
            HbNode::Data { entries, redirects } => {
                5 + entries.len() * (4 * dim + 8)
                    + 2
                    + redirects.iter().map(Redirect::encoded_size).sum::<usize>()
            }
            HbNode::Index { kd, .. } => 3 + kd.encoded_size(),
        }
    }

    fn encode(&self, dim: usize) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(self.encoded_size(dim));
        match self {
            HbNode::Data { entries, redirects } => {
                w.put_u8(TAG_DATA);
                w.put_u32(entries.len() as u32);
                for (p, oid) in entries {
                    for d in 0..dim {
                        w.put_f32(p.coord(d));
                    }
                    w.put_u64(*oid);
                }
                w.put_u16(redirects.len() as u16);
                for r in redirects {
                    w.put_u8(r.constraints.len() as u8);
                    for c in &r.constraints {
                        c.encode(&mut w);
                    }
                    w.put_u32(r.target.0);
                }
            }
            HbNode::Index { level, kd } => {
                w.put_u8(TAG_INDEX);
                w.put_u16(*level);
                kd.encode(&mut w);
            }
        }
        w.into_inner()
    }

    fn decode(buf: &[u8], dim: usize) -> PageResult<Self> {
        let mut r = ByteReader::new(buf);
        match r.get_u8()? {
            TAG_DATA => {
                let n = r.get_u32()? as usize;
                if n * (4 * dim + 8) > r.remaining() {
                    return Err(PageError::Corrupt(format!(
                        "hB data node claims {n} entries beyond the page"
                    )));
                }
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let mut c = Vec::with_capacity(dim);
                    for _ in 0..dim {
                        c.push(r.get_f32()?);
                    }
                    let oid = r.get_u64()?;
                    entries.push((Point::new(c), oid));
                }
                let nr = r.get_u16()? as usize;
                let mut redirects = Vec::with_capacity(nr);
                for _ in 0..nr {
                    let nc = r.get_u8()? as usize;
                    let mut constraints = Vec::with_capacity(nc);
                    for _ in 0..nc {
                        constraints.push(Constraint::decode(&mut r)?);
                    }
                    let target = PageId(r.get_u32()?);
                    redirects.push(Redirect {
                        constraints,
                        target,
                    });
                }
                Ok(HbNode::Data { entries, redirects })
            }
            TAG_INDEX => {
                let level = r.get_u16()?;
                let kd = Kd::decode(&mut r)?;
                Ok(HbNode::Index { level, kd })
            }
            t => Err(PageError::Corrupt(format!("bad hB node tag {t}"))),
        }
    }
}

/// Construction parameters of an [`HbTree`].
#[derive(Clone, Debug)]
pub struct HbTreeConfig {
    /// Page size in bytes.
    pub page_size: usize,
    /// Buffer-pool capacity in pages (0 = cold-cache accounting).
    pub pool_pages: usize,
    /// Decoded-node cache capacity in entries; 0 (the default) disables
    /// it. Enabling it never changes query results or logical I/O
    /// accounting, only the number of node-decode invocations.
    pub node_cache_entries: usize,
}

impl Default for HbTreeConfig {
    fn default() -> Self {
        Self {
            page_size: DEFAULT_PAGE_SIZE,
            pool_pages: 0,
            node_cache_entries: 0,
        }
    }
}

/// `(constraint path, inside entries, outside entries)` of a data-corner
/// extraction.
type CornerSplit = (Vec<Constraint>, Vec<(Point, u64)>, Vec<(Point, u64)>);

/// A corner split bubbling up: the constraint path plus the new page.
struct SplitPost {
    path: Vec<Constraint>,
    new_page: PageId,
}

/// Outcome of inserting into one child.
enum ChildInsert {
    Done(Vec<SplitPost>),
    /// The point belongs to an extracted corner; retry at `PageId`.
    Forward(PageId),
}

/// A disk-based hB-tree over k-dimensional `f32` points.
pub struct HbTree<S: Storage = MemStorage> {
    pool: BufferPool<S>,
    root: PageId,
    height: usize,
    dim: usize,
    len: usize,
    cfg: HbTreeConfig,
    data_cap: usize,
    /// Posts that could not be grafted because the child's Child-leaf
    /// migrated to another parent during an index split (reachability is
    /// preserved by sibling redirects; counted for transparency).
    posts_dropped: u64,
}

impl HbTree<MemStorage> {
    /// Creates an empty hB-tree over in-memory pages.
    pub fn new(dim: usize, cfg: HbTreeConfig) -> IndexResult<Self> {
        let storage = MemStorage::with_page_size(cfg.page_size);
        Self::with_storage(dim, cfg, storage)
    }
}

impl<S: Storage> HbTree<S> {
    /// Creates an empty hB-tree over the given page store.
    pub fn with_storage(dim: usize, cfg: HbTreeConfig, storage: S) -> IndexResult<Self> {
        if storage.page_size() != cfg.page_size {
            return Err(IndexError::Internal(
                "storage/config page size mismatch".into(),
            ));
        }
        let data_cap = (cfg.page_size.saturating_sub(7)) / (4 * dim + 8);
        if data_cap < 3 {
            return Err(IndexError::Internal(format!(
                "page size {} too small for dimension {dim} (need 3 entries for 1/3 splits)",
                cfg.page_size
            )));
        }
        let pool = BufferPool::with_node_cache(storage, cfg.pool_pages, cfg.node_cache_entries);
        let root = pool.allocate()?;
        pool.write(
            root,
            &HbNode::Data {
                entries: Vec::new(),
                redirects: Vec::new(),
            }
            .encode(dim),
        )?;
        Ok(Self {
            pool,
            root,
            height: 1,
            dim,
            len: 0,
            cfg,
            data_cap,
            posts_dropped: 0,
        })
    }

    /// Height in levels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Posts that lost their parent graft (served via redirects instead).
    pub fn posts_dropped(&self) -> u64 {
        self.posts_dropped
    }

    fn read_node(&self, pid: PageId) -> IndexResult<HbNode> {
        let mut io = IoStats::default();
        Ok(self
            .pool
            .read_tracked_with(pid, &mut io, |buf| HbNode::decode(buf, self.dim))??)
    }

    fn read_node_ctx(
        &self,
        pid: PageId,
        io: &mut IoStats,
        ctx: &QueryContext,
    ) -> IndexResult<std::sync::Arc<HbNode>> {
        self.pool
            .read_decoded_ctx(pid, io, ctx, |buf| Ok(HbNode::decode(buf, self.dim)?))
    }

    fn write_node(&mut self, pid: PageId, node: &HbNode) -> IndexResult<()> {
        let buf = node.encode(self.dim);
        if buf.len() > self.cfg.page_size {
            return Err(IndexError::Internal(format!(
                "hB node for {pid} overflows page ({} bytes)",
                buf.len()
            )));
        }
        self.pool.write(pid, &buf)?;
        Ok(())
    }

    /// Extracts a corner of roughly 1/3–2/3 of the entries via repeated
    /// median halving along maximum-extent dimensions. Returns the
    /// constraint path, the extracted (inside) entries, and the rest.
    fn extract_data_corner(entries: Vec<(Point, u64)>) -> CornerSplit {
        let n = entries.len();
        let hi_quota = 2 * n / 3;
        let mut constraints = Vec::new();
        let mut inside = entries;
        let mut outside: Vec<(Point, u64)> = Vec::new();
        while inside.len() > hi_quota.max(1) {
            let pts: Vec<Point> = inside.iter().map(|(p, _)| p.clone()).collect();
            let live = Rect::bounding(&pts);
            let d = live.max_extent_dim();
            inside.sort_by(|a, b| a.0.coord(d).total_cmp(&b.0.coord(d)));
            let mid = inside.len() / 2;
            let pos = inside[mid].0.coord(d);
            let j = inside.partition_point(|(p, _)| p.coord(d) < pos);
            if j == 0 || j == inside.len() {
                // Degenerate duplicates: keep the upper half by rank
                // (boundary points legitimately satisfy `x >= pos`).
                let lower = inside.drain(..mid).collect::<Vec<_>>();
                constraints.push(Constraint {
                    dim: d as u16,
                    pos,
                    side: Side::Upper,
                });
                outside.extend(lower);
                continue;
            }
            // Keep the larger strict half so the loop converges.
            if j >= inside.len() - j {
                let upper = inside.split_off(j);
                constraints.push(Constraint {
                    dim: d as u16,
                    pos,
                    side: Side::Lower,
                });
                outside.extend(upper);
            } else {
                let upper = inside.split_off(j);
                constraints.push(Constraint {
                    dim: d as u16,
                    pos,
                    side: Side::Upper,
                });
                outside.extend(inside);
                inside = upper;
            }
        }
        (constraints, inside, outside)
    }

    /// Extracts a kd-subtree holding 1/3–2/3 of an index node's bytes,
    /// bounded above by `byte_budget` so the extract fits a fresh page.
    fn extract_index_corner(kd: &mut Kd, byte_budget: usize) -> (Vec<Constraint>, Kd) {
        let total = kd.encoded_size();
        let hi_quota = ((2 * total).div_ceil(3)).min(byte_budget);
        let mut constraints = Vec::new();
        let mut cur: &mut Kd = kd;
        loop {
            if cur.encoded_size() <= hi_quota {
                break;
            }
            match cur {
                Kd::Internal {
                    dim,
                    pos,
                    left,
                    right,
                } => {
                    let (d, p) = (*dim, *pos);
                    if left.encoded_size() >= right.encoded_size() {
                        constraints.push(Constraint {
                            dim: d,
                            pos: p,
                            side: Side::Lower,
                        });
                        cur = left;
                    } else {
                        constraints.push(Constraint {
                            dim: d,
                            pos: p,
                            side: Side::Upper,
                        });
                        cur = right;
                    }
                }
                _ => break,
            }
        }
        let new_page_marker = Kd::Sibling(PageId::INVALID); // patched by caller
        let extracted = std::mem::replace(cur, new_page_marker);
        (constraints, extracted)
    }

    /// Builds the kd-path posted into a parent: constraints leading to
    /// the new sibling; excluded sides keep pointing at the old child.
    fn build_path(path: &[Constraint], old: PageId, new: PageId) -> Kd {
        match path.split_first() {
            None => Kd::Child(new),
            Some((c, rest)) => {
                let inner = Self::build_path(rest, old, new);
                // Only the innermost position references `new`; every
                // excluded side re-references `old` as a *sibling* so the
                // single Child reference invariant holds.
                let excluded = Kd::Sibling(old);
                match c.side {
                    Side::Lower => Kd::Internal {
                        dim: c.dim,
                        pos: c.pos,
                        left: Box::new(inner),
                        right: Box::new(excluded),
                    },
                    Side::Upper => Kd::Internal {
                        dim: c.dim,
                        pos: c.pos,
                        left: Box::new(excluded),
                        right: Box::new(inner),
                    },
                }
            }
        }
    }

    /// Grafts a child's posted path into this node's kd-tree. The leaf
    /// `Child(child)` is replaced by `path -> Child(new)` with excluded
    /// sides as `Sibling(child)`; the single `Child(child)` reference is
    /// then restored at the first excluded side (or the whole graft is
    /// just `Child(new)` for an empty path — impossible since paths are
    /// non-empty).
    fn graft(kd: &mut Kd, child: PageId, post: &SplitPost) -> bool {
        let mut replacement = Self::build_path(&post.path, child, post.new_page);
        // Restore exactly one Child(child) reference: turn the first
        // Sibling(child) in the replacement into Child(child).
        fn promote_first(kd: &mut Kd, target: PageId) -> bool {
            match kd {
                Kd::Sibling(pid) if *pid == target => {
                    *kd = Kd::Child(target);
                    true
                }
                Kd::Child(_) | Kd::Sibling(_) => false,
                Kd::Internal { left, right, .. } => {
                    promote_first(left, target) || promote_first(right, target)
                }
            }
        }
        promote_first(&mut replacement, child);
        kd.graft_first(child, &replacement)
    }

    /// Inserts into child `pid`; the caller re-dispatches on `Forward`.
    fn insert_child(&mut self, pid: PageId, p: &Point, oid: u64) -> IndexResult<ChildInsert> {
        match self.read_node(pid)? {
            HbNode::Data {
                mut entries,
                mut redirects,
            } => {
                // A point inside an extracted corner lives beyond the
                // redirect, never here.
                if let Some(r) = redirects
                    .iter()
                    .find(|r| r.constraints.iter().all(|c| c.admits_point(p)))
                {
                    return Ok(ChildInsert::Forward(r.target));
                }
                entries.push((p.clone(), oid));
                // Shed corners until the page fits (accumulated redirects
                // shrink the effective capacity, so one shed may not do).
                let mut posts = Vec::new();
                loop {
                    let size = HbNode::Data {
                        entries: entries.clone(),
                        redirects: redirects.clone(),
                    }
                    .encoded_size(self.dim);
                    if entries.len() <= self.data_cap && size <= self.cfg.page_size {
                        break;
                    }
                    if entries.len() < 3 {
                        return Err(IndexError::Internal(
                            "data page overflow not resolvable by splitting".into(),
                        ));
                    }
                    let (path, inside, outside) = Self::extract_data_corner(entries);
                    if path.is_empty() {
                        return Err(IndexError::Internal(
                            "corner extraction produced no constraints".into(),
                        ));
                    }
                    let new_pid = self.pool.allocate()?;
                    self.write_node(
                        new_pid,
                        &HbNode::Data {
                            entries: inside,
                            redirects: Vec::new(),
                        },
                    )?;
                    redirects.push(Redirect {
                        constraints: path.clone(),
                        target: new_pid,
                    });
                    posts.push(SplitPost {
                        path,
                        new_page: new_pid,
                    });
                    entries = outside;
                }
                self.write_node(pid, &HbNode::Data { entries, redirects })?;
                Ok(ChildInsert::Done(posts))
            }
            HbNode::Index { level, mut kd } => {
                // Route within this node. Landing on a sibling redirect
                // means the corner moved to a same-level peer: forward
                // the whole insert there.
                let child = match kd.route(p) {
                    Route::Child(c) => c,
                    Route::Sibling(s) => return Ok(ChildInsert::Forward(s)),
                };
                let mut next = child;
                let grand_posts = loop {
                    match self.insert_child(next, p, oid)? {
                        ChildInsert::Done(posts) => break posts,
                        ChildInsert::Forward(f) => next = f,
                    }
                };
                // Graft each post at the (unique) Child leaf of the page
                // that split. Drop the post if that leaf lives elsewhere.
                for post in &grand_posts {
                    if !Self::graft(&mut kd, next, post) {
                        self.posts_dropped += 1;
                    }
                }
                // Shed corners until this node fits again.
                let mut posts = Vec::new();
                while 3 + kd.encoded_size() > self.cfg.page_size {
                    let (path, extracted) =
                        Self::extract_index_corner(&mut kd, self.cfg.page_size - 3);
                    if path.is_empty() {
                        return Err(IndexError::Internal(
                            "index corner extraction produced no constraints".into(),
                        ));
                    }
                    let new_pid = self.pool.allocate()?;
                    // Patch the placeholder left by the extraction.
                    patch_invalid_sibling(&mut kd, new_pid);
                    self.write_node(
                        new_pid,
                        &HbNode::Index {
                            level,
                            kd: extracted,
                        },
                    )?;
                    posts.push(SplitPost {
                        path,
                        new_page: new_pid,
                    });
                }
                self.write_node(pid, &HbNode::Index { level, kd })?;
                Ok(ChildInsert::Done(posts))
            }
        }
    }
}

fn patch_invalid_sibling(kd: &mut Kd, new_pid: PageId) -> bool {
    match kd {
        Kd::Sibling(pid) if pid.is_invalid() => {
            *pid = new_pid;
            true
        }
        Kd::Child(_) | Kd::Sibling(_) => false,
        Kd::Internal { left, right, .. } => {
            patch_invalid_sibling(left, new_pid) || patch_invalid_sibling(right, new_pid)
        }
    }
}

/// [`NodeExpand`] adapter for the hB-tree's box search. Two things set
/// it apart from the other engines: the redirect graph means the same
/// page is reachable along several paths (`dedup_visits`), and a data
/// page's admitted redirects hide how much work remains, so a result
/// cap must conservatively assume more (`opaque_remaining_work`).
struct HbExpand<'t, S: Storage> {
    tree: &'t HbTree<S>,
}

impl<S: Storage> NodeExpand for HbExpand<'_, S> {
    type Ref = PageId;

    fn node_id(&self, r: &PageId) -> u64 {
        u64::from(r.0)
    }

    fn roots(&self) -> Vec<PageId> {
        if self.tree.len == 0 {
            return Vec::new();
        }
        vec![self.tree.root]
    }

    fn dedup_visits(&self) -> bool {
        true
    }

    fn opaque_remaining_work(&self) -> bool {
        true
    }

    fn expand_box(
        &self,
        pid: PageId,
        rect: &Rect,
        io: &mut IoStats,
        ctx: &QueryContext,
        out: &mut Vec<u64>,
        children: &mut Vec<PageId>,
    ) -> IndexResult<NodeKind> {
        let node = self.tree.read_node_ctx(pid, io, ctx)?;
        match &*node {
            HbNode::Data { entries, redirects } => {
                out.extend(
                    entries
                        .iter()
                        .filter(|(p, _)| rect.contains_point(p))
                        .map(|(_, oid)| *oid),
                );
                children.extend(
                    redirects
                        .iter()
                        .filter(|r| r.constraints.iter().all(|c| c.admits_box(rect)))
                        .map(|r| r.target),
                );
                Ok(NodeKind::Leaf)
            }
            HbNode::Index { kd, .. } => {
                kd.collect_box(rect, children);
                Ok(NodeKind::Index)
            }
        }
    }

    fn expand_range(
        &self,
        _r: PageId,
        _nq: NearQuery<'_>,
        _io: &mut IoStats,
        _ctx: &QueryContext,
        _sink: &mut dyn EntrySink,
        _children: &mut Vec<Child<PageId>>,
    ) -> IndexResult<NodeKind> {
        Err(IndexError::Unsupported(
            "hB-tree does not support distance-based search (paper §4)",
        ))
    }

    fn expand_near(
        &self,
        _r: PageId,
        _nq: NearQuery<'_>,
        _io: &mut IoStats,
        _ctx: &QueryContext,
        _sink: &mut dyn EntrySink,
        _children: &mut Vec<Child<PageId>>,
    ) -> IndexResult<NodeKind> {
        Err(IndexError::Unsupported(
            "hB-tree does not support distance-based search (paper §4)",
        ))
    }
}

impl<S: Storage> MultidimIndex for HbTree<S> {
    fn name(&self) -> &'static str {
        "hb-tree"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn len(&self) -> usize {
        self.len
    }

    fn insert(&mut self, point: Point, oid: u64) -> IndexResult<()> {
        check_dim(self.dim, point.dim())?;
        let mut target = self.root;
        let mut posts = loop {
            match self.insert_child(target, &point, oid)? {
                ChildInsert::Done(posts) => break posts,
                ChildInsert::Forward(f) => target = f,
            }
        };
        // Root splits grow the tree; a flood of posts can force more than
        // one new level.
        while !posts.is_empty() {
            if target != self.root {
                // The split page was reached through redirects; its posts
                // have no graft point (reachability holds via redirects).
                self.posts_dropped += posts.len() as u64;
                break;
            }
            let old_root = self.root;
            let mut kd = Kd::Child(old_root);
            let mut remaining = posts.into_iter();
            let first = remaining.next().unwrap();
            let grafted = Self::graft(&mut kd, old_root, &first);
            debug_assert!(grafted);
            let mut dropped = 0;
            for post in remaining {
                if !Self::graft(&mut kd, old_root, &post) {
                    dropped += 1;
                }
            }
            self.posts_dropped += dropped;
            let level = self.height as u16;
            let mut next_posts = Vec::new();
            while 3 + kd.encoded_size() > self.cfg.page_size {
                let (path, extracted) = Self::extract_index_corner(&mut kd, self.cfg.page_size - 3);
                if path.is_empty() {
                    return Err(IndexError::Internal(
                        "root corner extraction produced no constraints".into(),
                    ));
                }
                let new_pid = self.pool.allocate()?;
                patch_invalid_sibling(&mut kd, new_pid);
                self.write_node(
                    new_pid,
                    &HbNode::Index {
                        level,
                        kd: extracted,
                    },
                )?;
                next_posts.push(SplitPost {
                    path,
                    new_page: new_pid,
                });
            }
            let new_root = self.pool.allocate()?;
            self.write_node(new_root, &HbNode::Index { level, kd })?;
            self.root = new_root;
            target = new_root;
            self.height += 1;
            posts = next_posts;
        }
        self.len += 1;
        Ok(())
    }

    fn delete(&mut self, point: &Point, oid: u64) -> IndexResult<bool> {
        check_dim(self.dim, point.dim())?;
        if self.len == 0 {
            return Ok(false);
        }
        let probe = Rect::from_point(point);
        let mut stack = vec![self.root];
        let mut visited = HashSet::new();
        while let Some(pid) = stack.pop() {
            if !visited.insert(pid) {
                continue;
            }
            match self.read_node(pid)? {
                HbNode::Data {
                    mut entries,
                    redirects,
                } => {
                    if let Some(i) = entries
                        .iter()
                        .position(|(p, o)| *o == oid && p.same_coords(point))
                    {
                        entries.swap_remove(i);
                        self.write_node(pid, &HbNode::Data { entries, redirects })?;
                        self.len -= 1;
                        return Ok(true);
                    }
                    for r in &redirects {
                        if r.constraints.iter().all(|c| c.admits_box(&probe)) {
                            stack.push(r.target);
                        }
                    }
                }
                HbNode::Index { kd, .. } => {
                    let mut pages = Vec::new();
                    kd.collect_box(&probe, &mut pages);
                    stack.extend(pages);
                }
            }
        }
        Ok(false)
    }

    fn box_query_ctx(
        &self,
        rect: &Rect,
        ctx: &QueryContext,
    ) -> IndexResult<(QueryOutcome<Vec<u64>>, IoStats)> {
        check_dim(self.dim, rect.dim())?;
        hyt_exec::run_box_query(&HbExpand { tree: self }, rect, ctx)
    }

    fn distance_range_ctx(
        &self,
        _q: &Point,
        _radius: f64,
        _metric: &dyn Metric,
        _ctx: &QueryContext,
    ) -> IndexResult<(QueryOutcome<Vec<u64>>, IoStats)> {
        // Paper §4, footnote 2: the hB-tree is excluded from the
        // distance-query experiments because it does not support them.
        Err(IndexError::Unsupported(
            "hB-tree does not support distance-based search (paper §4)",
        ))
    }

    fn knn_ctx(
        &self,
        _q: &Point,
        _k: usize,
        _metric: &dyn Metric,
        _ctx: &QueryContext,
    ) -> IndexResult<(QueryOutcome<Vec<(u64, f64)>>, IoStats)> {
        Err(IndexError::Unsupported(
            "hB-tree does not support distance-based search (paper §4)",
        ))
    }

    fn knn_stream<'a>(
        &'a self,
        _q: &Point,
        _metric: &'a dyn Metric,
        _ctx: &QueryContext,
    ) -> IndexResult<Box<dyn hyt_index::KnnStream + 'a>> {
        Err(IndexError::Unsupported(
            "hB-tree does not support distance-based search (paper §4)",
        ))
    }

    fn io_stats(&self) -> IoStats {
        self.pool.stats()
    }

    fn reset_io_stats(&self) {
        self.pool.reset_stats();
        self.pool.node_cache().reset_stats();
    }

    fn cache_stats(&self) -> NodeCacheStats {
        self.pool.node_cache_stats()
    }

    fn structure_stats(&self) -> IndexResult<StructureStats> {
        let mut st = StructureStats {
            height: self.height,
            ..StructureStats::default()
        };
        if self.len == 0 {
            st.total_nodes = 1;
            st.data_nodes = 1;
            return Ok(st);
        }
        let mut fanout_sum = 0usize;
        let mut util = 0.0f64;
        let mut dims = HashSet::new();
        let mut redundant = 0usize;
        let mut stack = vec![self.root];
        let mut visited = HashSet::new();
        while let Some(pid) = stack.pop() {
            if !visited.insert(pid) {
                continue;
            }
            match self.read_node(pid)? {
                HbNode::Data { entries, redirects } => {
                    st.data_nodes += 1;
                    // Redirects are pure routing redundancy.
                    redundant += redirects.iter().map(Redirect::encoded_size).sum::<usize>();
                    let node = HbNode::Data {
                        entries,
                        redirects: redirects.clone(),
                    };
                    util += node.encoded_size(self.dim) as f64 / self.cfg.page_size as f64;
                    stack.extend(redirects.iter().map(|r| r.target));
                }
                HbNode::Index { kd, .. } => {
                    st.index_nodes += 1;
                    fanout_sum += kd.weight();
                    // Posted-path redundancy: sibling references plus the
                    // kd internals that route to them (~12 bytes each).
                    redundant += kd.count_siblings() * 12;
                    kd.split_dims(&mut dims);
                    let mut kids = Vec::new();
                    kd.children(&mut kids);
                    kd.siblings(&mut kids);
                    stack.extend(kids);
                }
            }
        }
        st.total_nodes = st.data_nodes + st.index_nodes;
        st.avg_fanout = if st.index_nodes > 0 {
            fanout_sum as f64 / st.index_nodes as f64
        } else {
            0.0
        };
        st.avg_leaf_utilization = if st.data_nodes > 0 {
            util / st.data_nodes as f64
        } else {
            0.0
        };
        st.avg_overlap_fraction = 0.0; // clean (holey) partitions
        st.distinct_split_dims = dims.len();
        st.redundant_bytes = redundant;
        Ok(st)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn cfg() -> HbTreeConfig {
        HbTreeConfig {
            page_size: 256,
            ..HbTreeConfig::default()
        }
    }

    fn points(n: usize, dim: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new((0..dim).map(|_| rng.gen::<f32>()).collect()))
            .collect()
    }

    fn build(pts: &[Point]) -> HbTree {
        let mut t = HbTree::new(pts[0].dim(), cfg()).unwrap();
        for (i, p) in pts.iter().enumerate() {
            t.insert(p.clone(), i as u64).unwrap();
        }
        t
    }

    fn brute(pts: &[Point], rect: &Rect) -> Vec<u64> {
        let mut v: Vec<u64> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| rect.contains_point(p))
            .map(|(i, _)| i as u64)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn corner_extraction_respects_quota() {
        let entries: Vec<(Point, u64)> = (0..30)
            .map(|i| {
                (
                    Point::new(vec![(i % 6) as f32 / 6.0, (i / 6) as f32 / 5.0]),
                    i,
                )
            })
            .collect();
        let n = entries.len();
        let (path, inside, outside) = HbTree::<MemStorage>::extract_data_corner(entries);
        assert!(!path.is_empty());
        assert_eq!(inside.len() + outside.len(), n);
        assert!(inside.len() >= n / 3, "inside {} < n/3", inside.len());
        assert!(inside.len() <= 2 * n / 3, "inside {} > 2n/3", inside.len());
        // Every inside point satisfies every constraint; no outside point
        // satisfies all of them.
        for (p, _) in &inside {
            assert!(path.iter().all(|c| c.admits_point(p)));
        }
        for (p, _) in &outside {
            assert!(!path.iter().all(|c| c.admits_point(p)));
        }
    }

    #[test]
    fn box_query_matches_brute_force() {
        let pts = points(700, 3, 1);
        let t = build(&pts);
        assert!(t.height() > 1);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..30 {
            let lo: Vec<f32> = (0..3).map(|_| rng.gen::<f32>() * 0.7).collect();
            let hi: Vec<f32> = lo.iter().map(|l| l + 0.25).collect();
            let rect = Rect::new(lo, hi);
            let mut got = t.box_query(&rect).unwrap();
            got.sort_unstable();
            assert_eq!(got, brute(&pts, &rect));
        }
    }

    #[test]
    fn every_point_reachable_after_holey_splits() {
        let pts = points(1200, 4, 3);
        let t = build(&pts);
        for (i, p) in pts.iter().enumerate().step_by(13) {
            let hits = t.box_query(&Rect::from_point(p)).unwrap();
            assert!(
                hits.contains(&(i as u64)),
                "point {i} unreachable after corner splits"
            );
        }
    }

    #[test]
    fn clustered_data_still_correct() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut pts = Vec::new();
        for c in 0..6 {
            for _ in 0..200 {
                let base = c as f32 / 6.0;
                pts.push(Point::new(
                    (0..3).map(|_| base + rng.gen::<f32>() * 0.02).collect(),
                ));
            }
        }
        let t = build(&pts);
        let rect = Rect::new(vec![0.0; 3], vec![0.5; 3]);
        let mut got = t.box_query(&rect).unwrap();
        got.sort_unstable();
        assert_eq!(got, brute(&pts, &rect));
    }

    #[test]
    fn distance_queries_are_unsupported() {
        let pts = points(50, 2, 5);
        let t = build(&pts);
        let q = Point::new(vec![0.5, 0.5]);
        assert!(matches!(
            t.distance_range(&q, 0.5, &hyt_geom::L1),
            Err(IndexError::Unsupported(_))
        ));
        assert!(matches!(
            t.knn(&q, 3, &hyt_geom::L2),
            Err(IndexError::Unsupported(_))
        ));
    }

    #[test]
    fn delete_without_merging() {
        let pts = points(400, 2, 6);
        let mut t = build(&pts);
        for i in (0..400).step_by(3) {
            assert!(t.delete(&pts[i], i as u64).unwrap(), "delete {i}");
        }
        assert_eq!(t.len(), 400 - 134);
        let got = t.box_query(&Rect::unit(2)).unwrap();
        assert_eq!(got.len(), t.len());
        assert!(!t.delete(&pts[0], 0).unwrap());
    }

    #[test]
    fn path_posting_redundancy_is_measured() {
        let pts = points(1500, 3, 7);
        let t = build(&pts);
        let st = t.structure_stats().unwrap();
        assert!(st.index_nodes >= 1);
        assert!(
            st.redundant_bytes > 0,
            "hB path posting should produce measurable redundancy"
        );
        assert!(st.avg_leaf_utilization > 0.25, "1/3 splits guarantee fill");
    }

    #[test]
    fn duplicate_points_handled() {
        let mut t = HbTree::new(2, cfg()).unwrap();
        let p = Point::new(vec![0.5, 0.5]);
        for i in 0..60 {
            t.insert(p.clone(), i).unwrap();
        }
        let mut got = t.box_query(&Rect::from_point(&p)).unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..60).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_insert_delete_query() {
        let pts = points(900, 3, 8);
        let mut t = HbTree::new(3, cfg()).unwrap();
        let mut live = vec![false; pts.len()];
        let mut rng = StdRng::seed_from_u64(9);
        for i in 0..600 {
            t.insert(pts[i].clone(), i as u64).unwrap();
            live[i] = true;
            if i % 3 == 0 {
                let v = rng.gen_range(0..=i);
                if live[v] {
                    assert!(t.delete(&pts[v], v as u64).unwrap());
                    live[v] = false;
                }
            }
        }
        let rect = Rect::new(vec![0.2; 3], vec![0.8; 3]);
        let mut got = t.box_query(&rect).unwrap();
        got.sort_unstable();
        let mut want: Vec<u64> = pts
            .iter()
            .enumerate()
            .filter(|(i, p)| live[*i] && rect.contains_point(p))
            .map(|(i, _)| i as u64)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}
