//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `black_box`, and the `criterion_group!`
//! / `criterion_main!` macros — backed by a simple
//! warmup-then-measure wall-clock loop instead of criterion's full
//! statistical machinery. Reported numbers are medians over fixed-size
//! batches; good enough to compare alternatives run back to back in one
//! process (e.g. serial vs parallel batch runners), which is how this
//! repo uses micro-benchmarks.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group: a function name plus an
/// input parameter rendered into the label.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("op", 64)` → label `op/64`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{parameter}", function.into()),
        }
    }

    /// A label with no parameter part.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handed to bench closures.
pub struct Bencher<'m> {
    measurement: &'m mut Measurement,
}

impl Bencher<'_> {
    /// Times `routine`, subtracting nothing (criterion's `iter`).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: let caches/allocators settle and estimate cost.
        let warmup_started = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_started.elapsed() < self.measurement.warmup {
            black_box(routine());
            warmup_iters += 1;
            if warmup_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = self.measurement.warmup.as_nanos() as u64 / warmup_iters.max(1);
        // Aim each sample at ~1/20th of the measurement budget.
        let budget = self.measurement.measure.as_nanos() as u64;
        let samples = self.measurement.samples.max(2) as u64;
        let iters_per_sample = (budget / samples / per_iter.max(1)).clamp(1, 1_000_000);
        let mut sample_ns: Vec<f64> = Vec::with_capacity(samples as usize);
        for _ in 0..samples {
            let started = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            sample_ns.push(started.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        sample_ns.sort_by(f64::total_cmp);
        self.measurement.median_ns = sample_ns[sample_ns.len() / 2];
        self.measurement.total_iters = warmup_iters + samples * iters_per_sample;
    }
}

struct Measurement {
    warmup: Duration,
    measure: Duration,
    samples: usize,
    median_ns: f64,
    total_iters: u64,
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the per-iteration workload for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measurement time hint; accepted for API compatibility.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measure = d;
        self
    }

    /// Benches a closure under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        let (median, iters) = self.criterion.run_one(self.sample_size, |b| f(b, input));
        report(&label, median, iters, self.throughput);
        self
    }

    /// Benches a closure under a plain name.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let label = format!("{}/{name}", self.name);
        let (median, iters) = self.criterion.run_one(self.sample_size, |b| f(b));
        report(&label, median, iters, self.throughput);
        self
    }

    /// Ends the group (criterion requires this; here it is a no-op).
    pub fn finish(&mut self) {}
}

fn report(label: &str, median_ns: f64, iters: u64, throughput: Option<Throughput>) {
    let time = human_time(median_ns);
    match throughput {
        Some(Throughput::Elements(n)) => {
            let per_sec = n as f64 / (median_ns * 1e-9);
            println!("{label:<48} {time:>12}/iter  {per_sec:>14.0} elem/s  ({iters} iters)");
        }
        Some(Throughput::Bytes(n)) => {
            let per_sec = n as f64 / (median_ns * 1e-9) / (1024.0 * 1024.0);
            println!("{label:<48} {time:>12}/iter  {per_sec:>11.1} MiB/s  ({iters} iters)");
        }
        None => println!("{label:<48} {time:>12}/iter  ({iters} iters)"),
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// The benchmark driver.
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Budgets are much smaller than real criterion's: offline CI runs
        // every bench target, so keep each measurement brief. Override
        // with HYT_BENCH_MS=<millis> for steadier numbers.
        let ms = std::env::var("HYT_BENCH_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(300);
        Self {
            warmup: Duration::from_millis(ms / 3),
            measure: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 20,
            throughput: None,
        }
    }

    /// Benches a standalone closure (no group).
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let (median, iters) = self.run_one(20, |b| f(b));
        report(&name.to_string(), median, iters, None);
        self
    }

    fn run_one<F: FnMut(&mut Bencher<'_>)>(&mut self, samples: usize, mut f: F) -> (f64, u64) {
        let mut m = Measurement {
            warmup: self.warmup,
            measure: self.measure,
            samples,
            median_ns: 0.0,
            total_iters: 0,
        };
        f(&mut Bencher {
            measurement: &mut m,
        });
        (m.median_ns, m.total_iters)
    }

    /// Parses command-line arguments; accepted for API compatibility
    /// (`cargo bench` passes `--bench`), ignored beyond that.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        std::env::set_var("HYT_BENCH_MS", "30");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(5);
        let mut ran = false;
        g.bench_function("noop_sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            ran = true;
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("op", 64).label, "op/64");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
