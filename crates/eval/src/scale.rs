//! Experiment sizing, configurable via environment variables.

/// Sizes for one experimental run.
///
/// `HYT_SCALE=quick` (default) keeps every figure regenerable on a laptop
/// in minutes; `HYT_SCALE=paper` uses the paper's dataset sizes (FOURIER
/// 400K for Fig 6(a,b), COLHIST 70K). `HYT_QUERIES` overrides the query
/// count per configuration.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// FOURIER cardinality (paper: 400K in Fig 6(a,b)).
    pub fourier_n: usize,
    /// COLHIST cardinality (paper: 70K).
    pub colhist_n: usize,
    /// Database sizes swept by Fig 7(a,b) (paper: 25K–70K).
    pub size_sweep: [usize; 4],
    /// Queries per configuration (averaged, as in the paper).
    pub queries: usize,
    /// RNG seed for data + workloads.
    pub seed: u64,
}

impl Scale {
    /// Reads `HYT_SCALE` / `HYT_QUERIES` / `HYT_SEED` from the
    /// environment.
    pub fn from_env() -> Self {
        let mut s = match std::env::var("HYT_SCALE").as_deref() {
            Ok("paper") => Self::paper(),
            Ok("quick") | Err(_) => Self::quick(),
            Ok(other) => {
                eprintln!("unknown HYT_SCALE={other}, using quick");
                Self::quick()
            }
        };
        if let Ok(q) = std::env::var("HYT_QUERIES") {
            if let Ok(q) = q.parse() {
                s.queries = q;
            }
        }
        if let Ok(seed) = std::env::var("HYT_SEED") {
            if let Ok(seed) = seed.parse() {
                s.seed = seed;
            }
        }
        s
    }

    /// Laptop-friendly sizes preserving every trend.
    pub fn quick() -> Self {
        Self {
            fourier_n: 40_000,
            colhist_n: 20_000,
            size_sweep: [5_000, 10_000, 15_000, 20_000],
            queries: 40,
            seed: 20_260_705,
        }
    }

    /// The paper's sizes.
    pub fn paper() -> Self {
        Self {
            fourier_n: 400_000,
            colhist_n: 70_000,
            size_sweep: [25_000, 40_000, 55_000, 70_000],
            queries: 100,
            seed: 20_260_705,
        }
    }

    /// The paper's constant selectivities (§4).
    pub const FOURIER_SELECTIVITY: f64 = 0.0007;
    /// COLHIST selectivity (0.2%).
    pub const COLHIST_SELECTIVITY: f64 = 0.002;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_smaller_than_paper() {
        let q = Scale::quick();
        let p = Scale::paper();
        assert!(q.fourier_n < p.fourier_n);
        assert!(q.colhist_n <= p.colhist_n);
        assert!(q.queries <= p.queries);
    }

    #[test]
    fn selectivities_match_paper() {
        assert_eq!(Scale::FOURIER_SELECTIVITY, 0.0007);
        assert_eq!(Scale::COLHIST_SELECTIVITY, 0.002);
    }
}
