//! Perf-trajectory benchmark: warm repeated-query workloads per engine,
//! with and without the decoded-node cache.
//!
//! This is the machine-readable counterpart of the figure drivers. For
//! each engine it runs the same mixed workload twice — cache off
//! (decode-per-visit, the paper's baseline behavior) and cache on — and
//! records per-query latency percentiles, the number of node-decode
//! invocations (the cache's `misses` counter ticks exactly once per
//! decode, in both modes), and the cache hit rate. Answers are checked
//! bit-identical between the two modes before anything is reported, so a
//! regression in cache correctness fails the bench rather than skewing
//! the numbers. `scripts/bench.sh` serializes the report to
//! `BENCH_pr4.json`.

use crate::runner::{build_engine_cached, run_batch, BatchQuery, Engine};
use hyt_data::{uniform, BoxWorkload};
use hyt_geom::{Point, L2};
use hyt_index::IndexResult;
use std::time::Instant;

/// One engine × cache-mode measurement.
#[derive(Clone, Debug)]
pub struct BenchRow {
    /// Engine display name.
    pub engine: String,
    /// Decoded-node cache capacity used (0 = off).
    pub cache_entries: usize,
    /// Queries measured (after the warm-up pass).
    pub queries: usize,
    /// Median per-query latency, microseconds.
    pub p50_us: f64,
    /// 95th-percentile per-query latency, microseconds.
    pub p95_us: f64,
    /// Node-decode invocations over the measured pass (cache misses).
    pub decodes: u64,
    /// Decoded-node cache hits over the measured pass.
    pub cache_hits: u64,
    /// `hits / (hits + misses)` over the measured pass.
    pub hit_rate: f64,
    /// Logical + sequential page reads (identical across cache modes).
    pub logical_reads: u64,
}

/// The full report: one row per engine per cache mode.
#[derive(Clone, Debug, Default)]
pub struct BenchReport {
    /// Measurement rows, cache-off and cache-on adjacent per engine.
    pub rows: Vec<BenchRow>,
    /// Dataset size the workload ran against.
    pub dataset: usize,
    /// Dataset dimensionality.
    pub dim: usize,
    /// Times the query set was repeated in the measured pass.
    pub repeats: usize,
}

impl BenchReport {
    /// Smallest cache-off/cache-on decode ratio across engines — the
    /// headline number (≥ 2 expected on a warm repeated workload).
    pub fn min_decode_reduction(&self) -> f64 {
        let mut min = f64::INFINITY;
        for off in self.rows.iter().filter(|r| r.cache_entries == 0) {
            if let Some(on) = self
                .rows
                .iter()
                .find(|r| r.engine == off.engine && r.cache_entries > 0)
            {
                if off.decodes > 0 {
                    min = min.min(off.decodes as f64 / (on.decodes.max(1)) as f64);
                }
            }
        }
        min
    }

    /// Serializes the report as a JSON object (hand-rolled; the
    /// container has no serde).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"dataset\": {},\n", self.dataset));
        s.push_str(&format!("  \"dim\": {},\n", self.dim));
        s.push_str(&format!("  \"repeats\": {},\n", self.repeats));
        s.push_str(&format!(
            "  \"min_decode_reduction\": {:.3},\n",
            self.min_decode_reduction()
        ));
        s.push_str("  \"engines\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"engine\": \"{}\", \"cache_entries\": {}, \"queries\": {}, \
                 \"p50_us\": {:.2}, \"p95_us\": {:.2}, \"decodes\": {}, \
                 \"cache_hits\": {}, \"hit_rate\": {:.4}, \"logical_reads\": {}}}{}\n",
                r.engine,
                r.cache_entries,
                r.queries,
                r.p50_us,
                r.p95_us,
                r.decodes,
                r.cache_hits,
                r.hit_rate,
                r.logical_reads,
                if i + 1 == self.rows.len() { "" } else { "," }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// The mixed workload: box queries for every engine, plus kNN and
/// distance-range for engines that support them (everything but the
/// hB-tree, per the paper's §4 footnote).
fn workload(engine: Engine, data: &[Point], queries: usize) -> Vec<BatchQuery> {
    let wl = BoxWorkload::calibrated(data, queries, 0.01, 97);
    wl.queries
        .iter()
        .enumerate()
        .map(|(i, q)| {
            if engine == Engine::Hb {
                return BatchQuery::Box(q.clone());
            }
            match i % 3 {
                0 => BatchQuery::Box(q.clone()),
                1 => BatchQuery::Knn(data[i * 31 % data.len()].clone(), 10),
                _ => BatchQuery::Distance(data[i * 17 % data.len()].clone(), 0.4),
            }
        })
        .collect()
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() as f64 * p) as usize).min(sorted_us.len() - 1);
    sorted_us[idx]
}

/// Runs the decode-count benchmark: every engine, cache off then on,
/// same warm repeated workload, answers asserted identical between the
/// two modes.
pub fn run_decode_bench(
    n: usize,
    dim: usize,
    queries: usize,
    repeats: usize,
    cache_entries: usize,
) -> IndexResult<BenchReport> {
    let data = uniform(n, dim, 71);
    let mut report = BenchReport {
        dataset: n,
        dim,
        repeats,
        ..BenchReport::default()
    };
    for engine in [
        Engine::Hybrid,
        Engine::Sr,
        Engine::Kdb,
        Engine::Hb,
        Engine::Scan,
    ] {
        let batch = workload(engine, &data, queries);
        let mut baseline = None;
        for entries in [0usize, cache_entries] {
            let (idx, _) = build_engine_cached(engine, &data, entries)?;
            // Warm-up pass: populates the byte pool and (when enabled)
            // the decoded-node cache.
            let answers = run_batch(idx.as_ref(), &L2, &batch)?;
            // Bit-identity covers results and the *logical* read counters;
            // physical reads legitimately drop when a decoded-cache hit
            // skips the byte pool, so they are excluded here.
            let key: Vec<_> = answers
                .iter()
                .map(|a| {
                    (
                        a.oids.clone(),
                        a.distances.clone(),
                        a.io.logical_reads,
                        a.io.seq_reads,
                    )
                })
                .collect();
            match &baseline {
                None => baseline = Some(key),
                Some(b) => assert_eq!(
                    b,
                    &key,
                    "{}: cache-on answers differ from cache-off",
                    engine.name()
                ),
            }
            // Measured pass: counters reset, cache contents retained.
            idx.reset_io_stats();
            let mut lat_us = Vec::with_capacity(batch.len() * repeats);
            for _ in 0..repeats {
                for q in &batch {
                    let t = Instant::now();
                    let a = run_batch(idx.as_ref(), &L2, std::slice::from_ref(q))?;
                    lat_us.push(t.elapsed().as_secs_f64() * 1e6);
                    std::hint::black_box(a);
                }
            }
            lat_us.sort_by(f64::total_cmp);
            let cs = idx.cache_stats();
            let io = idx.io_stats();
            report.rows.push(BenchRow {
                engine: engine.name(),
                cache_entries: entries,
                queries: lat_us.len(),
                p50_us: percentile(&lat_us, 0.50),
                p95_us: percentile(&lat_us, 0.95),
                decodes: cs.misses,
                cache_hits: cs.hits,
                hit_rate: cs.hit_rate(),
                logical_reads: io.logical_reads + io.seq_reads,
            });
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_bench_runs_and_caching_cuts_decodes() {
        // Tiny scale: the structure of the report and the ≥2x warm-cache
        // decode reduction, not wall-clock numbers.
        let report = run_decode_bench(1500, 4, 6, 2, 4096).unwrap();
        assert_eq!(report.rows.len(), 10, "five engines, two cache modes");
        let reduction = report.min_decode_reduction();
        assert!(
            reduction >= 2.0,
            "warm repeated workload should at least halve decodes, got {reduction:.2}x"
        );
        for off in report.rows.iter().filter(|r| r.cache_entries == 0) {
            let on = report
                .rows
                .iter()
                .find(|r| r.engine == off.engine && r.cache_entries > 0)
                .unwrap();
            assert_eq!(
                off.logical_reads, on.logical_reads,
                "{}: logical I/O must not change with the cache",
                off.engine
            );
            assert!(on.hit_rate > 0.5, "{}: warm hit rate low", on.engine);
        }
        let json = report.to_json();
        assert!(json.contains("\"min_decode_reduction\""));
        assert!(json.contains("\"seq-scan\""));
    }
}
