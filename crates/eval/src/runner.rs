//! Build-and-measure machinery shared by all figure drivers.

use hybrid_tree::{HybridTree, HybridTreeConfig, SplitPolicy};
use hyt_geom::{Metric, Point, Rect};
use hyt_hbtree::{HbTree, HbTreeConfig};
use hyt_index::{IndexResult, MultidimIndex};
use hyt_kdbtree::{KdbTree, KdbTreeConfig};
use hyt_page::IoStats;
use hyt_scan::SeqScan;
use hyt_srtree::{SrTree, SrTreeConfig};
use std::time::{Duration, Instant};

/// The engines the paper compares (§4), plus the kDB-tree for Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// The hybrid tree with the paper's defaults (EDA splits, 4-bit ELS).
    Hybrid,
    /// Hybrid tree with VAMSplit node splitting (Fig 5(a,b) comparison).
    HybridVam,
    /// Hybrid tree with a given ELS precision (Fig 5(c) sweep).
    HybridEls(u8),
    /// Bulk-loaded hybrid tree (same structure, globally-optimized build;
    /// isolates insertion-order effects from the structure itself).
    HybridBulk,
    /// hB-tree.
    Hb,
    /// SR-tree.
    Sr,
    /// kDB-tree.
    Kdb,
    /// Sequential scan.
    Scan,
}

impl Engine {
    /// Display name.
    pub fn name(self) -> String {
        match self {
            Engine::Hybrid => "hybrid".into(),
            Engine::HybridVam => "hybrid-vam".into(),
            Engine::HybridEls(b) => format!("hybrid-els{b}"),
            Engine::HybridBulk => "hybrid-bulk".into(),
            Engine::Hb => "hb-tree".into(),
            Engine::Sr => "sr-tree".into(),
            Engine::Kdb => "kdb-tree".into(),
            Engine::Scan => "seq-scan".into(),
        }
    }
}

/// Instantiates an engine and bulk-inserts `data` (build is by repeated
/// insertion, as in the paper — all structures are fully dynamic).
/// Returns the index and the build wall time.
pub fn build_engine(
    engine: Engine,
    data: &[Point],
) -> IndexResult<(Box<dyn MultidimIndex>, Duration)> {
    let dim = data[0].dim();
    let start = Instant::now();
    if engine == Engine::HybridBulk {
        let entries: Vec<(Point, u64)> = data
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, p)| (p, i as u64))
            .collect();
        let tree = HybridTree::bulk_load(entries, HybridTreeConfig::default())?;
        return Ok((Box::new(tree), start.elapsed()));
    }
    let mut idx: Box<dyn MultidimIndex> = match engine {
        Engine::Hybrid => Box::new(HybridTree::new(dim, HybridTreeConfig::default())?),
        Engine::HybridVam => Box::new(HybridTree::new(
            dim,
            HybridTreeConfig {
                split_policy: SplitPolicy::Vam,
                ..HybridTreeConfig::default()
            },
        )?),
        Engine::HybridEls(bits) => Box::new(HybridTree::new(
            dim,
            HybridTreeConfig {
                els_bits: bits,
                ..HybridTreeConfig::default()
            },
        )?),
        Engine::Hb => Box::new(HbTree::new(dim, HbTreeConfig::default())?),
        Engine::Sr => Box::new(SrTree::new(dim, SrTreeConfig::default())?),
        Engine::Kdb => Box::new(KdbTree::new(dim, KdbTreeConfig::default())?),
        Engine::Scan => Box::new(SeqScan::new(dim)?),
        Engine::HybridBulk => unreachable!("handled above"),
    };
    for (i, p) in data.iter().enumerate() {
        idx.insert(p.clone(), i as u64)?;
    }
    Ok((idx, start.elapsed()))
}

/// Averages measured over a batch of queries.
#[derive(Clone, Copy, Debug)]
pub struct QueryCost {
    /// Average *weighted* disk accesses per query (random = 1, sequential
    /// = 0.1, the paper's model).
    pub avg_accesses: f64,
    /// Average CPU (wall) time per query.
    pub avg_cpu: Duration,
    /// Average result cardinality (to verify selectivity calibration).
    pub avg_results: f64,
}

/// Runs box queries, returning per-query averages.
pub fn run_box_queries(idx: &mut dyn MultidimIndex, queries: &[Rect]) -> IndexResult<QueryCost> {
    idx.reset_io_stats();
    let mut results = 0usize;
    let start = Instant::now();
    for q in queries {
        results += idx.box_query(q)?.len();
    }
    let elapsed = start.elapsed();
    let stats = idx.io_stats();
    Ok(QueryCost {
        avg_accesses: stats.weighted_accesses() / queries.len() as f64,
        avg_cpu: elapsed / queries.len() as u32,
        avg_results: results as f64 / queries.len() as f64,
    })
}

/// Runs distance-range queries, returning per-query averages.
pub fn run_distance_queries(
    idx: &mut dyn MultidimIndex,
    centers: &[Point],
    radius: f64,
    metric: &dyn Metric,
) -> IndexResult<QueryCost> {
    idx.reset_io_stats();
    let mut results = 0usize;
    let start = Instant::now();
    for c in centers {
        results += idx.distance_range(c, radius, metric)?.len();
    }
    let elapsed = start.elapsed();
    let stats = idx.io_stats();
    Ok(QueryCost {
        avg_accesses: stats.weighted_accesses() / centers.len() as f64,
        avg_cpu: elapsed / centers.len() as u32,
        avg_results: results as f64 / centers.len() as f64,
    })
}

/// One engine's results, normalized against the scan per the paper.
#[derive(Clone, Debug)]
pub struct CompareRow {
    /// Engine name.
    pub engine: String,
    /// Raw average accesses per query (weighted).
    pub avg_accesses: f64,
    /// Raw average CPU per query.
    pub avg_cpu: Duration,
    /// `avg random accesses / scan pages` (scan itself = 0.1).
    pub normalized_io: f64,
    /// `avg cpu / scan avg cpu` (scan itself = 1.0).
    pub normalized_cpu: f64,
    /// Average result cardinality.
    pub avg_results: f64,
    /// Build wall time.
    pub build_time: Duration,
}

/// Builds every engine, runs the workload on each, and normalizes
/// against the sequential scan (which is always appended to the engine
/// list if missing).
pub fn compare_box(
    engines: &[Engine],
    data: &[Point],
    queries: &[Rect],
) -> IndexResult<Vec<CompareRow>> {
    compare_inner(engines, data, |idx| run_box_queries(idx, queries))
}

/// Distance-query variant of [`compare_box`]. Engines that do not
/// support distance search (the hB-tree) are skipped, as in the paper.
pub fn compare_distance(
    engines: &[Engine],
    data: &[Point],
    centers: &[Point],
    radius: f64,
    metric: &dyn Metric,
) -> IndexResult<Vec<CompareRow>> {
    compare_inner(engines, data, |idx| {
        run_distance_queries(idx, centers, radius, metric)
    })
}

fn compare_inner<F>(engines: &[Engine], data: &[Point], mut run: F) -> IndexResult<Vec<CompareRow>>
where
    F: FnMut(&mut dyn MultidimIndex) -> IndexResult<QueryCost>,
{
    let mut list: Vec<Engine> = engines.to_vec();
    if !list.contains(&Engine::Scan) {
        list.push(Engine::Scan);
    }
    let mut raw: Vec<(Engine, QueryCost, Duration)> = Vec::new();
    let mut scan_pages = 0usize;
    for &e in &list {
        let (mut idx, build) = build_engine(e, data)?;
        if e == Engine::Scan {
            // Recover the page count for normalization.
            let st = idx.structure_stats()?;
            scan_pages = st.total_nodes;
        }
        match run(idx.as_mut()) {
            Ok(cost) => raw.push((e, cost, build)),
            Err(hyt_index::IndexError::Unsupported(_)) => continue,
            Err(err) => return Err(err),
        }
    }
    let scan_cost = raw
        .iter()
        .find(|(e, ..)| *e == Engine::Scan)
        .map(|(_, c, _)| *c)
        .expect("scan always runs");
    let scan_cpu = scan_cost.avg_cpu.as_secs_f64().max(1e-12);
    Ok(raw
        .into_iter()
        .map(|(e, c, build)| CompareRow {
            engine: e.name(),
            avg_accesses: c.avg_accesses,
            avg_cpu: c.avg_cpu,
            normalized_io: c.avg_accesses / scan_pages.max(1) as f64,
            normalized_cpu: c.avg_cpu.as_secs_f64() / scan_cpu,
            avg_results: c.avg_results,
            build_time: build,
        })
        .collect())
}

// ---------------------------------------------------------------------
// Batch runner: the same mixed workload executed serially or across a
// worker pool. Queries only need `&dyn MultidimIndex`, so the workers
// share one index (and one buffer pool) without any cloning; per-query
// I/O comes from the `*_counted` trait methods and is therefore
// identical however the batch is scheduled.
// ---------------------------------------------------------------------

/// One query of a mixed batch workload.
#[derive(Clone, Debug)]
pub enum BatchQuery {
    /// Bounding-box (window) query.
    Box(Rect),
    /// Distance-range query: center and radius.
    Distance(Point, f64),
    /// k-nearest-neighbor query: center and k.
    Knn(Point, usize),
}

/// One query's answer plus the I/O attributed to it.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchAnswer {
    /// Result oids. Box and distance answers are sorted ascending (the
    /// trait leaves their order unspecified, and a canonical order makes
    /// serial and parallel runs bit-comparable); kNN answers keep their
    /// ascending-distance order.
    pub oids: Vec<u64>,
    /// kNN distances, parallel to `oids`; empty for other query kinds.
    pub distances: Vec<f64>,
    /// I/O incurred by this one query.
    pub io: IoStats,
}

fn run_one(
    idx: &dyn MultidimIndex,
    metric: &dyn Metric,
    q: &BatchQuery,
) -> IndexResult<BatchAnswer> {
    match q {
        BatchQuery::Box(rect) => {
            let (mut oids, io) = idx.box_query_counted(rect)?;
            oids.sort_unstable();
            Ok(BatchAnswer {
                oids,
                distances: Vec::new(),
                io,
            })
        }
        BatchQuery::Distance(center, radius) => {
            let (mut oids, io) = idx.distance_range_counted(center, *radius, metric)?;
            oids.sort_unstable();
            Ok(BatchAnswer {
                oids,
                distances: Vec::new(),
                io,
            })
        }
        BatchQuery::Knn(center, k) => {
            let (hits, io) = idx.knn_counted(center, *k, metric)?;
            let (oids, distances) = hits.into_iter().unzip();
            Ok(BatchAnswer {
                oids,
                distances,
                io,
            })
        }
    }
}

/// Runs a batch serially, returning one answer per query in order.
pub fn run_batch(
    idx: &dyn MultidimIndex,
    metric: &dyn Metric,
    queries: &[BatchQuery],
) -> IndexResult<Vec<BatchAnswer>> {
    queries.iter().map(|q| run_one(idx, metric, q)).collect()
}

/// Runs a batch across `threads` workers over one shared index.
///
/// The batch is split into contiguous chunks, one per worker, and the
/// answers are stitched back in submission order — so the output is
/// exactly [`run_batch`]'s, including each answer's `io`, only the
/// wall-clock time differs. Errors from any worker surface after all
/// workers finish (the first, in submission order, wins).
pub fn run_batch_parallel(
    idx: &dyn MultidimIndex,
    metric: &dyn Metric,
    queries: &[BatchQuery],
    threads: usize,
) -> IndexResult<Vec<BatchAnswer>> {
    let threads = threads.max(1);
    if threads == 1 || queries.len() < 2 {
        return run_batch(idx, metric, queries);
    }
    let chunk = queries.len().div_ceil(threads);
    let per_chunk: Vec<IndexResult<Vec<BatchAnswer>>> = std::thread::scope(|s| {
        let handles: Vec<_> = queries
            .chunks(chunk)
            .map(|c| s.spawn(move || c.iter().map(|q| run_one(idx, metric, q)).collect()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("batch worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(queries.len());
    for chunk_answers in per_chunk {
        out.extend(chunk_answers?);
    }
    Ok(out)
}

/// Sums the per-query I/O of a batch (e.g. to compare scheduling modes:
/// `logical_reads`/`seq_reads` totals are schedule-independent).
pub fn total_io(answers: &[BatchAnswer]) -> IoStats {
    let mut total = IoStats::default();
    for a in answers {
        total.merge(&a.io);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyt_data::{uniform, BoxWorkload};
    use hyt_geom::L1;

    #[test]
    fn all_engines_build_and_answer_identically() {
        let data = uniform(1200, 4, 1);
        let wl = BoxWorkload::calibrated(&data, 10, 0.01, 2);
        let mut reference: Option<Vec<Vec<u64>>> = None;
        for e in [
            Engine::Hybrid,
            Engine::HybridVam,
            Engine::HybridEls(8),
            Engine::Hb,
            Engine::Sr,
            Engine::Kdb,
            Engine::Scan,
        ] {
            let (idx, _) = build_engine(e, &data).unwrap();
            assert_eq!(idx.len(), data.len());
            let mut answers = Vec::new();
            for q in &wl.queries {
                let mut a = idx.box_query(q).unwrap();
                a.sort_unstable();
                answers.push(a);
            }
            match &reference {
                None => reference = Some(answers),
                Some(r) => assert_eq!(r, &answers, "{} disagrees", e.name()),
            }
        }
    }

    #[test]
    fn normalization_puts_scan_at_point_one() {
        let data = uniform(2000, 4, 3);
        let wl = BoxWorkload::calibrated(&data, 8, 0.01, 4);
        let rows = compare_box(&[Engine::Hybrid], &data, &wl.queries).unwrap();
        let scan = rows.iter().find(|r| r.engine == "seq-scan").unwrap();
        assert!(
            (scan.normalized_io - 0.1).abs() < 1e-9,
            "scan normalized io = {}",
            scan.normalized_io
        );
        assert!((scan.normalized_cpu - 1.0).abs() < 1e-9);
        let hybrid = rows.iter().find(|r| r.engine == "hybrid").unwrap();
        assert!(hybrid.normalized_io > 0.0);
        assert!(hybrid.avg_results > 0.0);
    }

    fn mixed_batch(data: &[Point], n: usize) -> Vec<BatchQuery> {
        let wl = BoxWorkload::calibrated(data, n, 0.02, 7);
        wl.queries
            .iter()
            .enumerate()
            .map(|(i, q)| match i % 3 {
                0 => BatchQuery::Box(q.clone()),
                1 => BatchQuery::Distance(data[i].clone(), 0.4),
                _ => BatchQuery::Knn(data[i].clone(), 5),
            })
            .collect()
    }

    #[test]
    fn parallel_batch_matches_serial_bit_for_bit() {
        let data = uniform(3000, 4, 11);
        let (idx, _) = build_engine(Engine::Hybrid, &data).unwrap();
        let batch = mixed_batch(&data, 30);
        let serial = run_batch(idx.as_ref(), &L1, &batch).unwrap();
        for threads in [2, 4, 7] {
            let parallel = run_batch_parallel(idx.as_ref(), &L1, &batch, threads).unwrap();
            assert_eq!(serial.len(), parallel.len());
            for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
                assert_eq!(
                    s.oids, p.oids,
                    "query {i} answers differ at {threads} threads"
                );
                assert_eq!(s.distances, p.distances, "query {i} distances differ");
                assert_eq!(
                    s.io.logical_reads, p.io.logical_reads,
                    "query {i} logical reads differ at {threads} threads"
                );
                assert_eq!(s.io.seq_reads, p.io.seq_reads);
            }
            let st = total_io(&serial);
            let pt = total_io(&parallel);
            assert_eq!(st.logical_reads, pt.logical_reads);
            assert_eq!(st.seq_reads, pt.seq_reads);
        }
    }

    #[test]
    fn batch_runner_covers_all_engines() {
        let data = uniform(800, 3, 13);
        for e in [Engine::Hybrid, Engine::Sr, Engine::Kdb, Engine::Scan] {
            let (idx, _) = build_engine(e, &data).unwrap();
            let batch = mixed_batch(&data, 9);
            let serial = run_batch(idx.as_ref(), &L1, &batch).unwrap();
            let parallel = run_batch_parallel(idx.as_ref(), &L1, &batch, 3).unwrap();
            assert_eq!(serial, parallel, "{} batch differs", e.name());
        }
    }

    #[test]
    fn batch_errors_surface_from_workers() {
        let data = uniform(400, 3, 17);
        // hB-tree rejects distance queries; the error must propagate out
        // of the worker pool, not panic it.
        let (idx, _) = build_engine(Engine::Hb, &data).unwrap();
        let batch = vec![BatchQuery::Distance(data[0].clone(), 0.3); 6];
        let err = run_batch_parallel(idx.as_ref(), &L1, &batch, 3).unwrap_err();
        assert!(matches!(err, hyt_index::IndexError::Unsupported(_)));
    }

    #[test]
    fn distance_compare_skips_hb() {
        let data = uniform(800, 3, 5);
        let centers: Vec<_> = data[..5].to_vec();
        let rows = compare_distance(
            &[Engine::Hybrid, Engine::Hb, Engine::Sr],
            &data,
            &centers,
            0.3,
            &L1,
        )
        .unwrap();
        assert!(rows.iter().any(|r| r.engine == "hybrid"));
        assert!(rows.iter().any(|r| r.engine == "sr-tree"));
        assert!(
            !rows.iter().any(|r| r.engine == "hb-tree"),
            "hB-tree must be skipped for distance queries (paper §4)"
        );
    }
}
