//! Build-and-measure machinery shared by all figure drivers.

use crate::admission::{AdmissionGate, Overloaded};
use hybrid_tree::{HybridTree, HybridTreeConfig, SplitPolicy};
use hyt_geom::{Metric, Point, Rect};
use hyt_hbtree::{HbTree, HbTreeConfig};
use hyt_index::{
    CancelToken, DegradeReason, IndexError, IndexResult, Interrupt, MultidimIndex, QueryContext,
    QueryOutcome,
};

use hyt_kdbtree::{KdbTree, KdbTreeConfig};
use hyt_page::{IoStats, PageError, DEFAULT_PAGE_SIZE};
use hyt_scan::SeqScan;
use hyt_srtree::{SrTree, SrTreeConfig};
use std::time::{Duration, Instant};

/// The engines the paper compares (§4), plus the kDB-tree for Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// The hybrid tree with the paper's defaults (EDA splits, 4-bit ELS).
    Hybrid,
    /// Hybrid tree with VAMSplit node splitting (Fig 5(a,b) comparison).
    HybridVam,
    /// Hybrid tree with a given ELS precision (Fig 5(c) sweep).
    HybridEls(u8),
    /// Bulk-loaded hybrid tree (same structure, globally-optimized build;
    /// isolates insertion-order effects from the structure itself).
    HybridBulk,
    /// hB-tree.
    Hb,
    /// SR-tree.
    Sr,
    /// kDB-tree.
    Kdb,
    /// Sequential scan.
    Scan,
}

impl Engine {
    /// Display name.
    pub fn name(self) -> String {
        match self {
            Engine::Hybrid => "hybrid".into(),
            Engine::HybridVam => "hybrid-vam".into(),
            Engine::HybridEls(b) => format!("hybrid-els{b}"),
            Engine::HybridBulk => "hybrid-bulk".into(),
            Engine::Hb => "hb-tree".into(),
            Engine::Sr => "sr-tree".into(),
            Engine::Kdb => "kdb-tree".into(),
            Engine::Scan => "seq-scan".into(),
        }
    }
}

/// Instantiates an engine and bulk-inserts `data` (build is by repeated
/// insertion, as in the paper — all structures are fully dynamic).
/// Returns the index and the build wall time.
pub fn build_engine(
    engine: Engine,
    data: &[Point],
) -> IndexResult<(Box<dyn MultidimIndex>, Duration)> {
    build_engine_cached(engine, data, 0)
}

/// [`build_engine`] with a decoded-node cache of `node_cache_entries`
/// entries on every engine (0 = the default decode-per-visit behavior).
/// The cache changes only decode counts, never answers or logical I/O.
pub fn build_engine_cached(
    engine: Engine,
    data: &[Point],
    node_cache_entries: usize,
) -> IndexResult<(Box<dyn MultidimIndex>, Duration)> {
    let Some(first) = data.first() else {
        return Err(IndexError::EmptyDataset(
            "build_engine infers dimensionality from the first point",
        ));
    };
    let dim = first.dim();
    let start = Instant::now();
    if engine == Engine::HybridBulk {
        let entries: Vec<(Point, u64)> = data
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, p)| (p, i as u64))
            .collect();
        let tree = HybridTree::bulk_load(
            entries,
            HybridTreeConfig {
                node_cache_entries,
                ..HybridTreeConfig::default()
            },
        )?;
        return Ok((Box::new(tree), start.elapsed()));
    }
    let mut idx: Box<dyn MultidimIndex> = match engine {
        Engine::Hybrid => Box::new(HybridTree::new(
            dim,
            HybridTreeConfig {
                node_cache_entries,
                ..HybridTreeConfig::default()
            },
        )?),
        Engine::HybridVam => Box::new(HybridTree::new(
            dim,
            HybridTreeConfig {
                split_policy: SplitPolicy::Vam,
                node_cache_entries,
                ..HybridTreeConfig::default()
            },
        )?),
        Engine::HybridEls(bits) => Box::new(HybridTree::new(
            dim,
            HybridTreeConfig {
                els_bits: bits,
                node_cache_entries,
                ..HybridTreeConfig::default()
            },
        )?),
        Engine::Hb => Box::new(HbTree::new(
            dim,
            HbTreeConfig {
                node_cache_entries,
                ..HbTreeConfig::default()
            },
        )?),
        Engine::Sr => Box::new(SrTree::new(
            dim,
            SrTreeConfig {
                node_cache_entries,
                ..SrTreeConfig::default()
            },
        )?),
        Engine::Kdb => Box::new(KdbTree::new(
            dim,
            KdbTreeConfig {
                node_cache_entries,
                ..KdbTreeConfig::default()
            },
        )?),
        Engine::Scan => Box::new(SeqScan::with_page_size_and_cache(
            dim,
            DEFAULT_PAGE_SIZE,
            node_cache_entries,
        )?),
        Engine::HybridBulk => unreachable!("handled above"),
    };
    for (i, p) in data.iter().enumerate() {
        idx.insert(p.clone(), i as u64)?;
    }
    Ok((idx, start.elapsed()))
}

/// Averages measured over a batch of queries.
#[derive(Clone, Copy, Debug)]
pub struct QueryCost {
    /// Average *weighted* disk accesses per query (random = 1, sequential
    /// = 0.1, the paper's model).
    pub avg_accesses: f64,
    /// Average CPU (wall) time per query.
    pub avg_cpu: Duration,
    /// Average result cardinality (to verify selectivity calibration).
    pub avg_results: f64,
}

/// Maps an engine's degrade reason back to the interrupt that caused it,
/// so a per-query degradation inside a measurement loop can be re-raised
/// and settled once at the workload level. `RetriesExhausted` never
/// reaches here (only the governed batch runner produces it).
fn reraise_degrade(reason: DegradeReason) -> IndexError {
    let interrupt = match reason {
        DegradeReason::Cancelled => Interrupt::Cancelled,
        DegradeReason::DeadlineExceeded => Interrupt::DeadlineExceeded,
        DegradeReason::BudgetExhausted | DegradeReason::RetriesExhausted => {
            Interrupt::BudgetExhausted
        }
    };
    IndexError::Storage(PageError::Interrupted(interrupt))
}

/// Runs box queries, returning per-query averages.
pub fn run_box_queries(idx: &dyn MultidimIndex, queries: &[Rect]) -> IndexResult<QueryCost> {
    run_box_queries_ctx(idx, queries, QueryContext::unlimited())
}

/// Governed [`run_box_queries`]: every page fetch is checked against
/// `ctx`, so a deadline or cancel aborts the workload mid-query. The
/// interrupt surfaces as [`PageError::Interrupted`] — measurement loops
/// have no meaningful partial answer, so they re-raise instead of
/// degrading.
pub fn run_box_queries_ctx(
    idx: &dyn MultidimIndex,
    queries: &[Rect],
    ctx: &QueryContext,
) -> IndexResult<QueryCost> {
    idx.reset_io_stats();
    let mut results = 0usize;
    let start = Instant::now();
    for q in queries {
        let (outcome, _) = idx.box_query_ctx(q, ctx)?;
        match outcome.degrade_reason() {
            None => results += outcome.into_results().len(),
            Some(reason) => return Err(reraise_degrade(reason)),
        }
    }
    let elapsed = start.elapsed();
    let stats = idx.io_stats();
    Ok(QueryCost {
        avg_accesses: stats.weighted_accesses() / queries.len() as f64,
        avg_cpu: elapsed / queries.len() as u32,
        avg_results: results as f64 / queries.len() as f64,
    })
}

/// Runs distance-range queries, returning per-query averages.
pub fn run_distance_queries(
    idx: &dyn MultidimIndex,
    centers: &[Point],
    radius: f64,
    metric: &dyn Metric,
) -> IndexResult<QueryCost> {
    run_distance_queries_ctx(idx, centers, radius, metric, QueryContext::unlimited())
}

/// Governed [`run_distance_queries`]; see [`run_box_queries_ctx`].
pub fn run_distance_queries_ctx(
    idx: &dyn MultidimIndex,
    centers: &[Point],
    radius: f64,
    metric: &dyn Metric,
    ctx: &QueryContext,
) -> IndexResult<QueryCost> {
    idx.reset_io_stats();
    let mut results = 0usize;
    let start = Instant::now();
    for c in centers {
        let (outcome, _) = idx.distance_range_ctx(c, radius, metric, ctx)?;
        match outcome.degrade_reason() {
            None => results += outcome.into_results().len(),
            Some(reason) => return Err(reraise_degrade(reason)),
        }
    }
    let elapsed = start.elapsed();
    let stats = idx.io_stats();
    Ok(QueryCost {
        avg_accesses: stats.weighted_accesses() / centers.len() as f64,
        avg_cpu: elapsed / centers.len() as u32,
        avg_results: results as f64 / centers.len() as f64,
    })
}

/// One engine's results, normalized against the scan per the paper.
#[derive(Clone, Debug)]
pub struct CompareRow {
    /// Engine name.
    pub engine: String,
    /// Raw average accesses per query (weighted).
    pub avg_accesses: f64,
    /// Raw average CPU per query.
    pub avg_cpu: Duration,
    /// `avg random accesses / scan pages` (scan itself = 0.1).
    pub normalized_io: f64,
    /// `avg cpu / scan avg cpu` (scan itself = 1.0).
    pub normalized_cpu: f64,
    /// Average result cardinality.
    pub avg_results: f64,
    /// Build wall time.
    pub build_time: Duration,
}

/// Builds every engine, runs the workload on each, and normalizes
/// against the sequential scan (which is always appended to the engine
/// list if missing).
pub fn compare_box(
    engines: &[Engine],
    data: &[Point],
    queries: &[Rect],
) -> IndexResult<Vec<CompareRow>> {
    Ok(compare_box_ctx(engines, data, queries, QueryContext::unlimited())?.into_results())
}

/// Distance-query variant of [`compare_box`]. Engines that do not
/// support distance search (the hB-tree) are skipped, as in the paper.
pub fn compare_distance(
    engines: &[Engine],
    data: &[Point],
    centers: &[Point],
    radius: f64,
    metric: &dyn Metric,
) -> IndexResult<Vec<CompareRow>> {
    Ok(compare_distance_ctx(
        engines,
        data,
        centers,
        radius,
        metric,
        QueryContext::unlimited(),
    )?
    .into_results())
}

/// Governed [`compare_box`]: `ctx` is checked before each engine is
/// built *and* at page-fetch granularity inside each engine's workload,
/// so a figure driver stuck on one slow engine aborts cleanly. Returns
/// `Degraded` carrying the rows measured so far.
pub fn compare_box_ctx(
    engines: &[Engine],
    data: &[Point],
    queries: &[Rect],
    ctx: &QueryContext,
) -> IndexResult<QueryOutcome<Vec<CompareRow>>> {
    compare_inner_ctx(engines, data, ctx, |idx| {
        run_box_queries_ctx(idx, queries, ctx)
    })
}

/// Governed [`compare_distance`]; see [`compare_box_ctx`].
pub fn compare_distance_ctx(
    engines: &[Engine],
    data: &[Point],
    centers: &[Point],
    radius: f64,
    metric: &dyn Metric,
    ctx: &QueryContext,
) -> IndexResult<QueryOutcome<Vec<CompareRow>>> {
    compare_inner_ctx(engines, data, ctx, |idx| {
        run_distance_queries_ctx(idx, centers, radius, metric, ctx)
    })
}

/// Normalizes measured rows against the scan. On a degraded run the
/// scan may not have been measured; its absence leaves the normalized
/// columns `NaN` rather than inventing a baseline.
fn normalize_rows(raw: Vec<(Engine, QueryCost, Duration)>, scan_pages: usize) -> Vec<CompareRow> {
    let scan_cpu = raw
        .iter()
        .find(|(e, ..)| *e == Engine::Scan)
        .map(|(_, c, _)| c.avg_cpu.as_secs_f64().max(1e-12));
    raw.into_iter()
        .map(|(e, c, build)| CompareRow {
            engine: e.name(),
            avg_accesses: c.avg_accesses,
            avg_cpu: c.avg_cpu,
            normalized_io: if scan_cpu.is_some() {
                c.avg_accesses / scan_pages.max(1) as f64
            } else {
                f64::NAN
            },
            normalized_cpu: scan_cpu.map_or(f64::NAN, |s| c.avg_cpu.as_secs_f64() / s),
            avg_results: c.avg_results,
            build_time: build,
        })
        .collect()
}

fn compare_inner_ctx<F>(
    engines: &[Engine],
    data: &[Point],
    ctx: &QueryContext,
    mut run: F,
) -> IndexResult<QueryOutcome<Vec<CompareRow>>>
where
    F: FnMut(&dyn MultidimIndex) -> IndexResult<QueryCost>,
{
    let mut list: Vec<Engine> = engines.to_vec();
    if !list.contains(&Engine::Scan) {
        list.push(Engine::Scan);
    }
    let mut raw: Vec<(Engine, QueryCost, Duration)> = Vec::new();
    let mut scan_pages = 0usize;
    for &e in &list {
        if let Err(i) = ctx.check_interrupt() {
            return Ok(QueryOutcome::degraded(
                normalize_rows(raw, scan_pages),
                i.into(),
            ));
        }
        let (idx, build) = build_engine(e, data)?;
        if e == Engine::Scan {
            // Recover the page count for normalization.
            let st = idx.structure_stats()?;
            scan_pages = st.total_nodes;
        }
        match run(idx.as_ref()) {
            Ok(cost) => raw.push((e, cost, build)),
            Err(IndexError::Unsupported(_)) => continue,
            Err(err) => match err.interrupt() {
                Some(i) => {
                    return Ok(QueryOutcome::degraded(
                        normalize_rows(raw, scan_pages),
                        i.into(),
                    ))
                }
                None => return Err(err),
            },
        }
    }
    Ok(QueryOutcome::Complete(normalize_rows(raw, scan_pages)))
}

// ---------------------------------------------------------------------
// Batch runner: the same mixed workload executed serially or across a
// worker pool. Queries only need `&dyn MultidimIndex`, so the workers
// share one index (and one buffer pool) without any cloning; per-query
// I/O comes from the `*_counted` trait methods and is therefore
// identical however the batch is scheduled.
// ---------------------------------------------------------------------

/// One query of a mixed batch workload.
#[derive(Clone, Debug)]
pub enum BatchQuery {
    /// Bounding-box (window) query.
    Box(Rect),
    /// Distance-range query: center and radius.
    Distance(Point, f64),
    /// k-nearest-neighbor query: center and k.
    Knn(Point, usize),
}

/// One query's answer plus the I/O attributed to it.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchAnswer {
    /// Result oids. Box and distance answers are sorted ascending (the
    /// trait leaves their order unspecified, and a canonical order makes
    /// serial and parallel runs bit-comparable); kNN answers keep their
    /// ascending-distance order.
    pub oids: Vec<u64>,
    /// kNN distances, parallel to `oids`; empty for other query kinds.
    pub distances: Vec<f64>,
    /// I/O incurred by this one query.
    pub io: IoStats,
}

fn run_one(
    idx: &dyn MultidimIndex,
    metric: &dyn Metric,
    q: &BatchQuery,
) -> IndexResult<BatchAnswer> {
    match q {
        BatchQuery::Box(rect) => {
            let (mut oids, io) = idx.box_query_counted(rect)?;
            oids.sort_unstable();
            Ok(BatchAnswer {
                oids,
                distances: Vec::new(),
                io,
            })
        }
        BatchQuery::Distance(center, radius) => {
            let (mut oids, io) = idx.distance_range_counted(center, *radius, metric)?;
            oids.sort_unstable();
            Ok(BatchAnswer {
                oids,
                distances: Vec::new(),
                io,
            })
        }
        BatchQuery::Knn(center, k) => {
            let (hits, io) = idx.knn_counted(center, *k, metric)?;
            let (oids, distances) = hits.into_iter().unzip();
            Ok(BatchAnswer {
                oids,
                distances,
                io,
            })
        }
    }
}

/// Runs a batch serially, returning one answer per query in order.
pub fn run_batch(
    idx: &dyn MultidimIndex,
    metric: &dyn Metric,
    queries: &[BatchQuery],
) -> IndexResult<Vec<BatchAnswer>> {
    queries.iter().map(|q| run_one(idx, metric, q)).collect()
}

/// Runs a batch across `threads` workers over one shared index.
///
/// The batch is split into contiguous chunks, one per worker, and the
/// answers are stitched back in submission order — so the output is
/// exactly [`run_batch`]'s, including each answer's `io`, only the
/// wall-clock time differs. Errors from any worker surface after all
/// workers finish (the first, in submission order, wins).
pub fn run_batch_parallel(
    idx: &dyn MultidimIndex,
    metric: &dyn Metric,
    queries: &[BatchQuery],
    threads: usize,
) -> IndexResult<Vec<BatchAnswer>> {
    let threads = threads.max(1);
    if threads == 1 || queries.len() < 2 {
        return run_batch(idx, metric, queries);
    }
    let chunk = queries.len().div_ceil(threads);
    let per_chunk: Vec<IndexResult<Vec<BatchAnswer>>> = std::thread::scope(|s| {
        let handles: Vec<_> = queries
            .chunks(chunk)
            .map(|c| s.spawn(move || c.iter().map(|q| run_one(idx, metric, q)).collect()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("batch worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(queries.len());
    for chunk_answers in per_chunk {
        out.extend(chunk_answers?);
    }
    Ok(out)
}

/// Sums the per-query I/O of a batch (e.g. to compare scheduling modes:
/// `logical_reads`/`seq_reads` totals are schedule-independent).
pub fn total_io(answers: &[BatchAnswer]) -> IoStats {
    let mut total = IoStats::default();
    for a in answers {
        total.merge(&a.io);
    }
    total
}

// ---------------------------------------------------------------------
// Governed batch runner: the parallel runner plus resource limits,
// admission control, and bounded retry of transient storage faults.
// ---------------------------------------------------------------------

/// Resource limits applied to a governed batch run.
#[derive(Clone, Debug, Default)]
pub struct BatchPolicy {
    /// Wall-clock budget for the *whole batch*. The deadline is computed
    /// once, up front, and every query in the batch shares it — a query
    /// started late in an overrunning batch degrades immediately rather
    /// than granting itself a fresh allowance.
    pub timeout: Option<Duration>,
    /// Cooperative cancel token shared by every query in the batch.
    pub cancel: Option<CancelToken>,
    /// Per-query logical-read budget.
    pub max_reads: Option<u64>,
    /// Per-query result-cardinality cap.
    pub max_results: Option<usize>,
    /// How many times a query hitting a *transient* storage fault
    /// (an I/O error, never detected corruption) is retried before the
    /// runner gives up with [`DegradeReason::RetriesExhausted`].
    pub retry_limit: u32,
    /// Base backoff between retries, doubled each attempt and clipped
    /// to whatever remains of the batch deadline.
    pub retry_backoff: Duration,
}

impl BatchPolicy {
    /// Builds the per-query [`QueryContext`] for a batch whose shared
    /// deadline (if any) was computed at batch start.
    fn query_context(&self, deadline: Option<Instant>) -> QueryContext {
        QueryContext {
            deadline,
            cancel: self.cancel.clone(),
            max_logical_reads: self.max_reads,
            max_results: self.max_results,
        }
    }
}

/// How one query of a governed batch finished.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryStatus {
    /// The answer is exact.
    Complete,
    /// A limit stopped the query; the answer is partial (possibly
    /// empty, for [`DegradeReason::RetriesExhausted`]).
    Degraded(DegradeReason),
    /// The admission gate refused the query; the answer is empty.
    Shed(Overloaded),
}

impl QueryStatus {
    /// Whether the answer is exact.
    pub fn is_complete(&self) -> bool {
        matches!(self, QueryStatus::Complete)
    }
}

/// One governed query's answer, status, and retry count.
#[derive(Clone, Debug, PartialEq)]
pub struct GovernedAnswer {
    /// The (possibly partial or empty) answer. `io` accumulates across
    /// retries: a query that failed twice and succeeded on the third
    /// attempt is charged for all three traversals.
    pub answer: BatchAnswer,
    /// How the query finished.
    pub status: QueryStatus,
    /// How many retries the transient-fault loop consumed.
    pub retries: u32,
}

/// Runs one query under `ctx`, folding the typed outcome into a
/// [`GovernedAnswer`] (with `retries` left at 0 for the caller to fix
/// up).
fn run_one_ctx(
    idx: &dyn MultidimIndex,
    metric: &dyn Metric,
    q: &BatchQuery,
    ctx: &QueryContext,
) -> IndexResult<GovernedAnswer> {
    let (oids, distances, reason, io) = match q {
        BatchQuery::Box(rect) => {
            let (outcome, io) = idx.box_query_ctx(rect, ctx)?;
            let reason = outcome.degrade_reason();
            let mut oids = outcome.into_results();
            oids.sort_unstable();
            (oids, Vec::new(), reason, io)
        }
        BatchQuery::Distance(center, radius) => {
            let (outcome, io) = idx.distance_range_ctx(center, *radius, metric, ctx)?;
            let reason = outcome.degrade_reason();
            let mut oids = outcome.into_results();
            oids.sort_unstable();
            (oids, Vec::new(), reason, io)
        }
        BatchQuery::Knn(center, k) => {
            let (outcome, io) = idx.knn_ctx(center, *k, metric, ctx)?;
            let reason = outcome.degrade_reason();
            let (oids, distances) = outcome.into_results().into_iter().unzip();
            (oids, distances, reason, io)
        }
    };
    Ok(GovernedAnswer {
        answer: BatchAnswer {
            oids,
            distances,
            io,
        },
        status: reason.map_or(QueryStatus::Complete, QueryStatus::Degraded),
        retries: 0,
    })
}

/// Whether a query error is worth retrying: transient I/O faults are;
/// detected corruption, unsupported operations, and misuse are not.
fn is_transient(err: &IndexError) -> bool {
    matches!(err, IndexError::Storage(PageError::Io(_)))
}

/// Runs one governed query with the policy's transient-fault retry
/// loop. Retries re-run the whole query (traversal state cannot survive
/// a failed page read); backoff doubles per attempt and never sleeps
/// past the batch deadline.
fn run_one_governed(
    idx: &dyn MultidimIndex,
    metric: &dyn Metric,
    q: &BatchQuery,
    policy: &BatchPolicy,
    deadline: Option<Instant>,
) -> IndexResult<GovernedAnswer> {
    let ctx = policy.query_context(deadline);
    let mut io = IoStats::default();
    let mut attempt = 0u32;
    loop {
        match run_one_ctx(idx, metric, q, &ctx) {
            Ok(mut got) => {
                io.merge(&got.answer.io);
                got.answer.io = io;
                got.retries = attempt;
                return Ok(got);
            }
            Err(err) if is_transient(&err) => {
                if attempt >= policy.retry_limit {
                    return Ok(GovernedAnswer {
                        answer: BatchAnswer {
                            oids: Vec::new(),
                            distances: Vec::new(),
                            io,
                        },
                        status: QueryStatus::Degraded(DegradeReason::RetriesExhausted),
                        retries: attempt,
                    });
                }
                attempt += 1;
                let mut backoff = policy
                    .retry_backoff
                    .checked_mul(1u32 << (attempt - 1).min(16))
                    .unwrap_or(policy.retry_backoff);
                if let Some(d) = deadline {
                    backoff = backoff.min(d.saturating_duration_since(Instant::now()));
                }
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
            }
            Err(err) => return Err(err),
        }
    }
}

/// [`run_batch_parallel`] with resource governance: a shared batch
/// deadline, cooperative cancellation, per-query read budgets and
/// result caps, bounded retry of transient storage faults, and
/// (optionally) an [`AdmissionGate`] ahead of every query.
///
/// Degraded and shed queries are *results*, not errors: the returned
/// vector always has one [`GovernedAnswer`] per input query, in
/// submission order. Only hard failures — corruption, misuse — abort
/// the batch with `Err`.
pub fn run_batch_governed(
    idx: &dyn MultidimIndex,
    metric: &dyn Metric,
    queries: &[BatchQuery],
    threads: usize,
    policy: &BatchPolicy,
    gate: Option<&AdmissionGate>,
) -> IndexResult<Vec<GovernedAnswer>> {
    let deadline = policy.timeout.map(|t| Instant::now() + t);
    let run_gated = |q: &BatchQuery| -> IndexResult<GovernedAnswer> {
        let _permit = match gate {
            Some(g) => match g.admit() {
                Ok(p) => Some(p),
                Err(over) => {
                    return Ok(GovernedAnswer {
                        answer: BatchAnswer {
                            oids: Vec::new(),
                            distances: Vec::new(),
                            io: IoStats::default(),
                        },
                        status: QueryStatus::Shed(over),
                        retries: 0,
                    })
                }
            },
            None => None,
        };
        run_one_governed(idx, metric, q, policy, deadline)
    };
    let threads = threads.max(1);
    if threads == 1 || queries.len() < 2 {
        return queries.iter().map(run_gated).collect();
    }
    let chunk = queries.len().div_ceil(threads);
    let run_gated = &run_gated;
    let per_chunk: Vec<IndexResult<Vec<GovernedAnswer>>> = std::thread::scope(|s| {
        let handles: Vec<_> = queries
            .chunks(chunk)
            .map(|c| s.spawn(move || c.iter().map(run_gated).collect()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("batch worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(queries.len());
    for chunk_answers in per_chunk {
        out.extend(chunk_answers?);
    }
    Ok(out)
}

/// Drains an engine's streaming kNN cursor (distance browsing) and
/// returns the hits in yield order together with the cursor's I/O and
/// its degradation reason, if the governance budget stopped it early.
///
/// The cursor yields neighbors one at a time in ascending distance; the
/// first `k` yields are exactly the batch `knn` answer, so this is the
/// incremental path for consumers that do not know `k` up front. A hard
/// error (corruption, unsupported engine) aborts with `Err`; governance
/// interrupts terminate the stream and surface as `Some(reason)`.
#[allow(clippy::type_complexity)]
pub fn run_knn_stream(
    idx: &dyn MultidimIndex,
    q: &Point,
    k: usize,
    metric: &dyn Metric,
    ctx: &QueryContext,
) -> IndexResult<(Vec<(u64, f64)>, IoStats, Option<DegradeReason>)> {
    let mut cursor = idx.knn_stream(q, metric, ctx)?;
    let mut hits = Vec::new();
    while hits.len() < k {
        match cursor.next() {
            Some(hit) => hits.push(hit),
            None => break,
        }
    }
    if let Some(e) = cursor.take_error() {
        return Err(e);
    }
    Ok((hits, cursor.io(), cursor.degrade_reason()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyt_data::{uniform, BoxWorkload};
    use hyt_geom::L1;

    #[test]
    fn all_engines_build_and_answer_identically() {
        let data = uniform(1200, 4, 1);
        let wl = BoxWorkload::calibrated(&data, 10, 0.01, 2);
        let mut reference: Option<Vec<Vec<u64>>> = None;
        for e in [
            Engine::Hybrid,
            Engine::HybridVam,
            Engine::HybridEls(8),
            Engine::Hb,
            Engine::Sr,
            Engine::Kdb,
            Engine::Scan,
        ] {
            let (idx, _) = build_engine(e, &data).unwrap();
            assert_eq!(idx.len(), data.len());
            let mut answers = Vec::new();
            for q in &wl.queries {
                let mut a = idx.box_query(q).unwrap();
                a.sort_unstable();
                answers.push(a);
            }
            match &reference {
                None => reference = Some(answers),
                Some(r) => assert_eq!(r, &answers, "{} disagrees", e.name()),
            }
        }
    }

    #[test]
    fn normalization_puts_scan_at_point_one() {
        let data = uniform(2000, 4, 3);
        let wl = BoxWorkload::calibrated(&data, 8, 0.01, 4);
        let rows = compare_box(&[Engine::Hybrid], &data, &wl.queries).unwrap();
        let scan = rows.iter().find(|r| r.engine == "seq-scan").unwrap();
        assert!(
            (scan.normalized_io - 0.1).abs() < 1e-9,
            "scan normalized io = {}",
            scan.normalized_io
        );
        assert!((scan.normalized_cpu - 1.0).abs() < 1e-9);
        let hybrid = rows.iter().find(|r| r.engine == "hybrid").unwrap();
        assert!(hybrid.normalized_io > 0.0);
        assert!(hybrid.avg_results > 0.0);
    }

    fn mixed_batch(data: &[Point], n: usize) -> Vec<BatchQuery> {
        let wl = BoxWorkload::calibrated(data, n, 0.02, 7);
        wl.queries
            .iter()
            .enumerate()
            .map(|(i, q)| match i % 3 {
                0 => BatchQuery::Box(q.clone()),
                1 => BatchQuery::Distance(data[i].clone(), 0.4),
                _ => BatchQuery::Knn(data[i].clone(), 5),
            })
            .collect()
    }

    #[test]
    fn parallel_batch_matches_serial_bit_for_bit() {
        let data = uniform(3000, 4, 11);
        let (idx, _) = build_engine(Engine::Hybrid, &data).unwrap();
        let batch = mixed_batch(&data, 30);
        let serial = run_batch(idx.as_ref(), &L1, &batch).unwrap();
        for threads in [2, 4, 7] {
            let parallel = run_batch_parallel(idx.as_ref(), &L1, &batch, threads).unwrap();
            assert_eq!(serial.len(), parallel.len());
            for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
                assert_eq!(
                    s.oids, p.oids,
                    "query {i} answers differ at {threads} threads"
                );
                assert_eq!(s.distances, p.distances, "query {i} distances differ");
                assert_eq!(
                    s.io.logical_reads, p.io.logical_reads,
                    "query {i} logical reads differ at {threads} threads"
                );
                assert_eq!(s.io.seq_reads, p.io.seq_reads);
            }
            let st = total_io(&serial);
            let pt = total_io(&parallel);
            assert_eq!(st.logical_reads, pt.logical_reads);
            assert_eq!(st.seq_reads, pt.seq_reads);
        }
    }

    #[test]
    fn batch_runner_covers_all_engines() {
        let data = uniform(800, 3, 13);
        for e in [Engine::Hybrid, Engine::Sr, Engine::Kdb, Engine::Scan] {
            let (idx, _) = build_engine(e, &data).unwrap();
            let batch = mixed_batch(&data, 9);
            let serial = run_batch(idx.as_ref(), &L1, &batch).unwrap();
            let parallel = run_batch_parallel(idx.as_ref(), &L1, &batch, 3).unwrap();
            assert_eq!(serial, parallel, "{} batch differs", e.name());
        }
    }

    #[test]
    fn batch_errors_surface_from_workers() {
        let data = uniform(400, 3, 17);
        // hB-tree rejects distance queries; the error must propagate out
        // of the worker pool, not panic it.
        let (idx, _) = build_engine(Engine::Hb, &data).unwrap();
        let batch = vec![BatchQuery::Distance(data[0].clone(), 0.3); 6];
        let err = run_batch_parallel(idx.as_ref(), &L1, &batch, 3).unwrap_err();
        assert!(matches!(err, hyt_index::IndexError::Unsupported(_)));
    }

    #[test]
    fn build_engine_rejects_empty_dataset() {
        // Regression: `build_engine` used to panic on `data[0]` when the
        // dataset was empty; it must be a typed error for every engine.
        for e in [
            Engine::Hybrid,
            Engine::HybridBulk,
            Engine::Hb,
            Engine::Sr,
            Engine::Kdb,
            Engine::Scan,
        ] {
            match build_engine(e, &[]) {
                Err(IndexError::EmptyDataset(_)) => {}
                Err(other) => panic!("{}: wrong error {other}", e.name()),
                Ok(_) => panic!("{}: built from an empty dataset", e.name()),
            }
        }
    }

    #[test]
    fn governed_batch_unlimited_policy_matches_plain_runner() {
        let data = uniform(2000, 4, 23);
        let (idx, _) = build_engine(Engine::Hybrid, &data).unwrap();
        let batch = mixed_batch(&data, 18);
        let plain = run_batch(idx.as_ref(), &L1, &batch).unwrap();
        let governed =
            run_batch_governed(idx.as_ref(), &L1, &batch, 3, &BatchPolicy::default(), None)
                .unwrap();
        assert_eq!(plain.len(), governed.len());
        for (p, g) in plain.iter().zip(&governed) {
            assert!(g.status.is_complete(), "unlimited policy degraded: {g:?}");
            assert_eq!(g.retries, 0);
            assert_eq!(p, &g.answer);
        }
    }

    #[test]
    fn governed_batch_expired_deadline_degrades_everything() {
        let data = uniform(2000, 4, 29);
        let (idx, _) = build_engine(Engine::Hybrid, &data).unwrap();
        let batch = mixed_batch(&data, 12);
        let policy = BatchPolicy {
            timeout: Some(Duration::ZERO),
            ..BatchPolicy::default()
        };
        let answers = run_batch_governed(idx.as_ref(), &L1, &batch, 4, &policy, None).unwrap();
        assert_eq!(answers.len(), batch.len());
        for a in &answers {
            assert_eq!(
                a.status,
                QueryStatus::Degraded(DegradeReason::DeadlineExceeded),
                "{a:?}"
            );
        }
    }

    #[test]
    fn governed_batch_cancel_degrades_with_cancelled() {
        let data = uniform(1500, 4, 31);
        let (idx, _) = build_engine(Engine::Sr, &data).unwrap();
        let batch = mixed_batch(&data, 9);
        let token = CancelToken::new();
        token.cancel();
        let policy = BatchPolicy {
            cancel: Some(token),
            ..BatchPolicy::default()
        };
        let answers = run_batch_governed(idx.as_ref(), &L1, &batch, 3, &policy, None).unwrap();
        for a in &answers {
            assert_eq!(a.status, QueryStatus::Degraded(DegradeReason::Cancelled));
        }
    }

    #[test]
    fn governed_batch_read_budget_yields_partial_subsets() {
        let data = uniform(4000, 4, 37);
        let (idx, _) = build_engine(Engine::Hybrid, &data).unwrap();
        let wl = BoxWorkload::calibrated(&data, 6, 0.2, 41);
        let batch: Vec<BatchQuery> = wl.queries.iter().cloned().map(BatchQuery::Box).collect();
        let full = run_batch(idx.as_ref(), &L1, &batch).unwrap();
        let policy = BatchPolicy {
            max_reads: Some(2),
            ..BatchPolicy::default()
        };
        let governed = run_batch_governed(idx.as_ref(), &L1, &batch, 2, &policy, None).unwrap();
        let mut saw_degraded = false;
        for (f, g) in full.iter().zip(&governed) {
            // Partial box answers are true subsets of the full answer.
            assert!(g.answer.oids.iter().all(|o| f.oids.contains(o)));
            assert!(g.answer.io.logical_reads + g.answer.io.seq_reads <= 2);
            if let QueryStatus::Degraded(r) = &g.status {
                assert_eq!(*r, DegradeReason::BudgetExhausted);
                saw_degraded = true;
            }
        }
        assert!(saw_degraded, "a 2-read budget should degrade some query");
    }

    #[test]
    fn governed_batch_result_cap_truncates() {
        let data = uniform(2500, 3, 43);
        let (idx, _) = build_engine(Engine::Kdb, &data).unwrap();
        let wl = BoxWorkload::calibrated(&data, 4, 0.3, 47);
        let batch: Vec<BatchQuery> = wl.queries.iter().cloned().map(BatchQuery::Box).collect();
        let policy = BatchPolicy {
            max_results: Some(3),
            ..BatchPolicy::default()
        };
        let governed = run_batch_governed(idx.as_ref(), &L1, &batch, 1, &policy, None).unwrap();
        for g in &governed {
            assert!(g.answer.oids.len() <= 3, "{:?}", g.answer.oids);
        }
    }

    #[test]
    fn admission_gate_sheds_queries_with_typed_overloaded() {
        let data = uniform(2000, 4, 53);
        let (idx, _) = build_engine(Engine::Hybrid, &data).unwrap();
        let batch = mixed_batch(&data, 24);
        // One slot, zero queue patience, many workers: with the slot
        // contended, some queries must be shed rather than queued forever.
        let gate = AdmissionGate::new(1, Duration::ZERO);
        let answers = run_batch_governed(
            idx.as_ref(),
            &L1,
            &batch,
            6,
            &BatchPolicy::default(),
            Some(&gate),
        )
        .unwrap();
        assert_eq!(answers.len(), batch.len());
        let shed = answers
            .iter()
            .filter(|a| matches!(a.status, QueryStatus::Shed(_)))
            .count();
        let complete = answers.iter().filter(|a| a.status.is_complete()).count();
        assert!(complete >= 1, "at least the first admitted query completes");
        for a in answers.iter().filter(|a| !a.status.is_complete()) {
            match &a.status {
                QueryStatus::Shed(over) => {
                    assert_eq!(over.max_inflight, 1);
                    assert!(a.answer.oids.is_empty());
                }
                other => panic!("unexpected status {other:?}"),
            }
        }
        // Not asserted > 0: on a fast machine every query may still be
        // admitted. The dedicated gate unit test pins the shed path.
        let _ = shed;
    }

    #[test]
    fn distance_compare_skips_hb() {
        let data = uniform(800, 3, 5);
        let centers: Vec<_> = data[..5].to_vec();
        let rows = compare_distance(
            &[Engine::Hybrid, Engine::Hb, Engine::Sr],
            &data,
            &centers,
            0.3,
            &L1,
        )
        .unwrap();
        assert!(rows.iter().any(|r| r.engine == "hybrid"));
        assert!(rows.iter().any(|r| r.engine == "sr-tree"));
        assert!(
            !rows.iter().any(|r| r.engine == "hb-tree"),
            "hB-tree must be skipped for distance queries (paper §4)"
        );
    }
}
