//! Plain-text table rendering for regenerated figures.

use std::fmt;

/// A regenerated table or figure: a title, column headers, string rows,
/// and free-form notes (e.g. the paper's expected shape for comparison).
#[derive(Clone, Debug)]
pub struct FigureReport {
    /// e.g. "Figure 6(a): normalized I/O vs dimensionality (FOURIER)".
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row-major cells.
    pub rows: Vec<Vec<String>>,
    /// Context printed under the table.
    pub notes: Vec<String>,
}

impl FigureReport {
    /// Creates an empty report.
    pub fn new(title: impl Into<String>, columns: Vec<&str>) -> Self {
        Self {
            title: title.into(),
            columns: columns.into_iter().map(String::from).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row (must match the column count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Appends a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }
}

impl fmt::Display for FigureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                write!(f, "{:<width$}  ", c, width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.columns)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

/// Formats a float compactly (4 significant-ish digits).
pub(crate) fn fnum(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 100.0 {
        format!("{x:.1}")
    } else if x.abs() >= 1.0 {
        format!("{x:.3}")
    } else {
        format!("{x:.5}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut r = FigureReport::new("Test", vec!["engine", "io"]);
        r.row(vec!["hybrid".into(), "0.01".into()]);
        r.row(vec!["seq-scan".into(), "0.1".into()]);
        r.note("lower is better");
        let s = r.to_string();
        assert!(s.contains("== Test =="));
        assert!(s.contains("hybrid"));
        assert!(s.contains("note: lower is better"));
        // Alignment: both data rows have the io column starting at the
        // same offset.
        let lines: Vec<&str> = s.lines().collect();
        let h = lines[1];
        assert!(h.starts_with("engine"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_wrong_width() {
        let mut r = FigureReport::new("t", vec!["a"]);
        r.row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn fnum_ranges() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(0.012345), "0.01235");
        assert_eq!(fnum(1.5), "1.500");
        assert_eq!(fnum(1234.5), "1234.5");
    }
}
