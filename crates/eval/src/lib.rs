//! Evaluation harness reproducing the paper's experiments (§4).
//!
//! The paper's methodology, reproduced here:
//!
//! * **Datasets**: FOURIER (8/12/16-d) and COLHIST (16/32/64-d), supplied
//!   by [`hyt_data`]'s synthetic stand-ins; sizes configurable through
//!   [`Scale`] (`HYT_SCALE=paper` for paper-size runs).
//! * **Workloads**: bounding-box queries at constant selectivity (0.07%
//!   FOURIER, 0.2% COLHIST) plus L1 distance-range queries for Fig 7(c,d).
//! * **Cost model**: the *normalized I/O cost* of an index is its average
//!   random disk accesses per query divided by the page count of a linear
//!   scan; since sequential accesses are ~10x faster, the scan's own
//!   normalized I/O cost is 0.1, and any index above 0.1 loses to the
//!   scan. The *normalized CPU cost* is the index's average per-query CPU
//!   time divided by the scan's (scan = 1.0).
//!
//! [`figures`] contains one driver per table/figure; the `hyt-bench`
//! crate exposes each as a `cargo bench` target that prints the
//! regenerated table.

mod admission;
pub mod bench;
pub mod figures;
mod report;
mod runner;
mod scale;

pub use admission::{AdmissionGate, AdmissionPermit, Overloaded};
pub use bench::{run_decode_bench, BenchReport, BenchRow};
pub use report::FigureReport;
pub use runner::{
    build_engine, build_engine_cached, compare_box, compare_box_ctx, compare_distance,
    compare_distance_ctx, run_batch, run_batch_governed, run_batch_parallel, run_box_queries,
    run_box_queries_ctx, run_distance_queries, run_distance_queries_ctx, run_knn_stream, total_io,
    BatchAnswer, BatchPolicy, BatchQuery, CompareRow, Engine, GovernedAnswer, QueryCost,
    QueryStatus,
};
pub use scale::Scale;
