//! Admission control for batch query execution.
//!
//! The buffer pool degrades sharply once the working sets of concurrent
//! queries stop fitting: every admitted query steals frames from the
//! others and the whole batch thrashes. [`AdmissionGate`] bounds the
//! number of in-flight queries instead; a query that cannot get a slot
//! within the queue timeout is *shed* with a typed [`Overloaded`] rather
//! than left to pile up behind the others. Load shedding is a first-class
//! outcome: callers see exactly which queries ran and which were refused.

use std::fmt;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// A query was refused admission: every execution slot stayed busy for
/// the whole queue timeout.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Overloaded {
    /// The gate's concurrency limit at the time of refusal.
    pub max_inflight: usize,
    /// How long the query waited in the queue before being shed.
    pub waited: Duration,
}

impl fmt::Display for Overloaded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "overloaded: all {} slots busy for {:?}",
            self.max_inflight, self.waited
        )
    }
}

impl std::error::Error for Overloaded {}

/// Bounded-concurrency gate: at most `max_inflight` permits are out at
/// any moment, and a caller waits at most `queue_timeout` for one.
///
/// Built on `std::sync::{Mutex, Condvar}` — the gate must block, not
/// spin, while a slot is busy, and must wake promptly when one frees.
#[derive(Debug)]
pub struct AdmissionGate {
    inflight: Mutex<usize>,
    freed: Condvar,
    max_inflight: usize,
    queue_timeout: Duration,
}

impl AdmissionGate {
    /// Creates a gate with `max_inflight` slots (clamped to at least 1)
    /// and the given queue timeout.
    pub fn new(max_inflight: usize, queue_timeout: Duration) -> Self {
        AdmissionGate {
            inflight: Mutex::new(0),
            freed: Condvar::new(),
            max_inflight: max_inflight.max(1),
            queue_timeout,
        }
    }

    /// The gate's concurrency limit.
    pub fn max_inflight(&self) -> usize {
        self.max_inflight
    }

    /// Number of permits currently out.
    pub fn inflight(&self) -> usize {
        *self.inflight.lock().expect("gate lock")
    }

    /// Acquires an execution slot, waiting up to the queue timeout.
    /// Returns a permit that releases the slot on drop, or a typed
    /// [`Overloaded`] if every slot stayed busy for the whole wait.
    pub fn admit(&self) -> Result<AdmissionPermit<'_>, Overloaded> {
        let start = Instant::now();
        let mut inflight = self.inflight.lock().expect("gate lock");
        while *inflight >= self.max_inflight {
            let waited = start.elapsed();
            let Some(budget) = self.queue_timeout.checked_sub(waited) else {
                return Err(Overloaded {
                    max_inflight: self.max_inflight,
                    waited,
                });
            };
            let (guard, timeout) = self
                .freed
                .wait_timeout(inflight, budget)
                .expect("gate lock");
            inflight = guard;
            if timeout.timed_out() && *inflight >= self.max_inflight {
                return Err(Overloaded {
                    max_inflight: self.max_inflight,
                    waited: start.elapsed(),
                });
            }
        }
        *inflight += 1;
        Ok(AdmissionPermit { gate: self })
    }
}

/// An execution slot held for the lifetime of one query. Dropping it
/// releases the slot and wakes one queued waiter.
#[derive(Debug)]
pub struct AdmissionPermit<'g> {
    gate: &'g AdmissionGate,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        let mut inflight = self.gate.inflight.lock().expect("gate lock");
        *inflight = inflight.saturating_sub(1);
        drop(inflight);
        self.gate.freed.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn permits_release_on_drop() {
        let gate = AdmissionGate::new(2, Duration::from_millis(5));
        let a = gate.admit().unwrap();
        let b = gate.admit().unwrap();
        assert_eq!(gate.inflight(), 2);
        drop(a);
        assert_eq!(gate.inflight(), 1);
        let _c = gate.admit().unwrap();
        drop(b);
        assert_eq!(gate.inflight(), 1);
    }

    #[test]
    fn single_slot_gate_sheds_with_typed_overloaded() {
        let gate = AdmissionGate::new(1, Duration::from_millis(20));
        let held = gate.admit().unwrap();
        let err = gate.admit().unwrap_err();
        assert_eq!(err.max_inflight, 1);
        assert!(
            err.waited >= Duration::from_millis(20),
            "shed after only {:?}",
            err.waited
        );
        drop(held);
        // The slot is free again; admission must now succeed.
        let _again = gate.admit().unwrap();
    }

    #[test]
    fn queued_waiter_wakes_when_slot_frees() {
        let gate = Arc::new(AdmissionGate::new(1, Duration::from_secs(5)));
        let held = gate.admit().unwrap();
        let g2 = Arc::clone(&gate);
        let waiter = std::thread::spawn(move || g2.admit().map(|_p| ()).is_ok());
        // Give the waiter time to park, then free the slot.
        std::thread::sleep(Duration::from_millis(30));
        drop(held);
        assert!(waiter.join().expect("waiter panicked"));
    }

    #[test]
    fn zero_slots_clamps_to_one() {
        let gate = AdmissionGate::new(0, Duration::from_millis(1));
        assert_eq!(gate.max_inflight(), 1);
        let _p = gate.admit().unwrap();
    }
}
