//! One driver per table and figure of the paper's evaluation (§4),
//! plus the ablations called out in DESIGN.md.
//!
//! Each driver builds its datasets/workloads from [`Scale`], runs the
//! experiment, and returns a [`FigureReport`] that prints as an aligned
//! text table. Absolute numbers differ from the paper (different data
//! stand-ins and hardware) but the *shapes* — who wins, how costs move
//! with dimensionality/size/precision — are the reproduction targets and
//! are recorded in EXPERIMENTS.md.

use crate::report::{fnum, FigureReport};
use crate::runner::{
    build_engine, compare_box_ctx, compare_distance_ctx, run_box_queries, CompareRow, Engine,
};
use crate::scale::Scale;
use hybrid_tree::{HybridTree, HybridTreeConfig, SplitPolicy};
use hyt_data::{clustered, colhist, fourier, BoxWorkload, DistanceWorkload};
use hyt_geom::Point;
use hyt_index::{DegradeReason, IndexResult, MultidimIndex, QueryContext, QueryOutcome};
use hyt_kdbtree::{KdbTree, KdbTreeConfig};
use std::time::Instant;

/// COLHIST dimensionalities used throughout the paper.
const COLHIST_DIMS: [usize; 3] = [16, 32, 64];
/// FOURIER dimensionalities used in Fig 6(a,b).
const FOURIER_DIMS: [usize; 3] = [8, 12, 16];

fn colhist_workload(scale: &Scale, dim: usize, n: usize) -> (Vec<Point>, BoxWorkload) {
    let data = colhist(n, dim, scale.seed + dim as u64);
    let wl = BoxWorkload::calibrated(
        &data,
        scale.queries,
        Scale::COLHIST_SELECTIVITY,
        scale.seed ^ 0xc01,
    );
    (data, wl)
}

fn push_rows(report: &mut FigureReport, prefix: &str, rows: &[CompareRow]) {
    for r in rows {
        report.row(vec![
            prefix.into(),
            r.engine.clone(),
            fnum(r.avg_accesses),
            format!("{:.1}", r.avg_cpu.as_secs_f64() * 1e6),
            fnum(r.normalized_io),
            fnum(r.normalized_cpu),
            fnum(r.avg_results),
        ]);
    }
}

fn comparison_columns() -> Vec<&'static str> {
    vec![
        "config",
        "engine",
        "accesses/q",
        "cpu(us)/q",
        "norm-io",
        "norm-cpu",
        "results/q",
    ]
}

/// Folds one configuration's governed comparison into the report.
/// Returns the degrade reason if the run was cut short — the driver
/// then records what was skipped and stops instead of starting the next
/// (potentially slower) configuration.
fn push_rows_ctx(
    report: &mut FigureReport,
    prefix: &str,
    outcome: QueryOutcome<Vec<CompareRow>>,
) -> Option<DegradeReason> {
    let reason = outcome.degrade_reason();
    push_rows(report, prefix, outcome.results());
    reason
}

/// Records that a governed figure run stopped early and which
/// configuration it stopped at.
fn note_aborted(report: &mut FigureReport, reason: DegradeReason, config: &str) {
    report.note(format!(
        "run aborted ({reason}) at config {config}; remaining configurations skipped"
    ));
}

/// Figure 5(a,b): EDA-optimal vs VAMSplit node splitting — average disk
/// accesses and CPU time per query vs COLHIST dimensionality.
pub fn fig5ab(scale: &Scale) -> IndexResult<FigureReport> {
    let mut rep = FigureReport::new(
        "Figure 5(a,b): EDA-optimal vs VAMSplit (COLHIST box queries)",
        vec!["dim", "split", "accesses/q", "cpu(us)/q", "results/q"],
    );
    for dim in COLHIST_DIMS {
        let (data, wl) = colhist_workload(scale, dim, scale.colhist_n);
        for (label, engine) in [
            ("eda-optimal", Engine::Hybrid),
            ("vam-split", Engine::HybridVam),
        ] {
            let (idx, _) = build_engine(engine, &data)?;
            let cost = run_box_queries(idx.as_ref(), &wl.queries)?;
            rep.row(vec![
                dim.to_string(),
                label.into(),
                fnum(cost.avg_accesses),
                format!("{:.1}", cost.avg_cpu.as_secs_f64() * 1e6),
                fnum(cost.avg_results),
            ]);
        }
    }
    rep.note(
        "paper shape: EDA-optimal below VAMSplit at every dimensionality, gap widening with dim",
    );
    Ok(rep)
}

/// Figure 5(c): effect of ELS precision (bits per boundary) on disk
/// accesses, for 16/32/64-d COLHIST.
pub fn fig5c(scale: &Scale) -> IndexResult<FigureReport> {
    let mut rep = FigureReport::new(
        "Figure 5(c): ELS precision sweep (COLHIST box queries)",
        vec!["dim", "els-bits", "accesses/q", "els-overhead(bytes)"],
    );
    for dim in COLHIST_DIMS {
        let (data, wl) = colhist_workload(scale, dim, scale.colhist_n);
        for bits in [0u8, 1, 2, 4, 8, 12, 16] {
            let mut tree = HybridTree::new(
                dim,
                HybridTreeConfig {
                    els_bits: bits,
                    ..HybridTreeConfig::default()
                },
            )?;
            for (i, p) in data.iter().enumerate() {
                tree.insert(p.clone(), i as u64)?;
            }
            let cost = run_box_queries(&tree, &wl.queries)?;
            rep.row(vec![
                dim.to_string(),
                bits.to_string(),
                fnum(cost.avg_accesses),
                tree.els_overhead_bytes().to_string(),
            ]);
        }
    }
    rep.note("paper shape: steep drop from 0 to 4 bits, little improvement beyond 4 bits");
    Ok(rep)
}

/// Figure 6(a,b): normalized I/O and CPU cost vs dimensionality on
/// FOURIER — hybrid vs hB-tree vs SR-tree vs linear scan.
pub fn fig6ab(scale: &Scale) -> IndexResult<FigureReport> {
    fig6ab_ctx(scale, QueryContext::unlimited())
}

/// Governed [`fig6ab`]: the deadline/cancel in `ctx` is checked between
/// engines and at page-fetch granularity inside each workload, so a run
/// stuck on one slow engine aborts cleanly with the rows measured so
/// far (plus a note recording the abort).
pub fn fig6ab_ctx(scale: &Scale, ctx: &QueryContext) -> IndexResult<FigureReport> {
    let mut rep = FigureReport::new(
        "Figure 6(a,b): scalability with dimensionality (FOURIER box queries)",
        comparison_columns(),
    );
    for dim in FOURIER_DIMS {
        let data = fourier(scale.fourier_n, dim, scale.seed + dim as u64);
        let wl = BoxWorkload::calibrated(
            &data,
            scale.queries,
            Scale::FOURIER_SELECTIVITY,
            scale.seed ^ 0xf00,
        );
        let outcome = compare_box_ctx(
            &[Engine::Hybrid, Engine::Hb, Engine::Sr],
            &data,
            &wl.queries,
            ctx,
        )?;
        if let Some(reason) = push_rows_ctx(&mut rep, &format!("{dim}-d"), outcome) {
            note_aborted(&mut rep, reason, &format!("{dim}-d"));
            return Ok(rep);
        }
    }
    rep.note("paper shape: hybrid < hB < 0.1 (scan) < SR in I/O at higher dims; hybrid lowest CPU");
    Ok(rep)
}

/// Figure 6(c,d): normalized I/O and CPU cost vs dimensionality on
/// COLHIST.
pub fn fig6cd(scale: &Scale) -> IndexResult<FigureReport> {
    fig6cd_ctx(scale, QueryContext::unlimited())
}

/// Governed [`fig6cd`]; see [`fig6ab_ctx`].
pub fn fig6cd_ctx(scale: &Scale, ctx: &QueryContext) -> IndexResult<FigureReport> {
    let mut rep = FigureReport::new(
        "Figure 6(c,d): scalability with dimensionality (COLHIST box queries)",
        comparison_columns(),
    );
    for dim in COLHIST_DIMS {
        let (data, wl) = colhist_workload(scale, dim, scale.colhist_n);
        let outcome = compare_box_ctx(
            &[Engine::Hybrid, Engine::HybridBulk, Engine::Hb, Engine::Sr],
            &data,
            &wl.queries,
            ctx,
        )?;
        if let Some(reason) = push_rows_ctx(&mut rep, &format!("{dim}-d"), outcome) {
            note_aborted(&mut rep, reason, &format!("{dim}-d"));
            return Ok(rep);
        }
    }
    rep.note("paper shape: hybrid wins at all dims; SR-tree degrades fastest with dimensionality");
    rep.note(
        "hybrid-bulk isolates the structure from insertion-order effects (see EXPERIMENTS.md)",
    );
    Ok(rep)
}

/// Figure 7(a,b): normalized I/O and CPU cost vs database size
/// (64-d COLHIST).
pub fn fig7ab(scale: &Scale) -> IndexResult<FigureReport> {
    fig7ab_ctx(scale, QueryContext::unlimited())
}

/// Governed [`fig7ab`]; see [`fig6ab_ctx`].
pub fn fig7ab_ctx(scale: &Scale, ctx: &QueryContext) -> IndexResult<FigureReport> {
    let mut rep = FigureReport::new(
        "Figure 7(a,b): scalability with database size (64-d COLHIST box queries)",
        comparison_columns(),
    );
    for n in scale.size_sweep {
        let (data, wl) = colhist_workload(scale, 64, n);
        let outcome = compare_box_ctx(
            &[Engine::Hybrid, Engine::Hb, Engine::Sr],
            &data,
            &wl.queries,
            ctx,
        )?;
        if let Some(reason) = push_rows_ctx(&mut rep, &format!("n={n}"), outcome) {
            note_aborted(&mut rep, reason, &format!("n={n}"));
            return Ok(rep);
        }
    }
    rep.note("paper shape: hybrid an order of magnitude below others; its normalized cost falls as n grows (sublinear absolute cost)");
    Ok(rep)
}

/// Figure 7(c,d): distance-based queries (L1 / Manhattan, as in MARS) —
/// hybrid vs SR-tree vs scan (hB-tree unsupported, paper §4 footnote 2).
pub fn fig7cd(scale: &Scale) -> IndexResult<FigureReport> {
    fig7cd_ctx(scale, QueryContext::unlimited())
}

/// Governed [`fig7cd`]; see [`fig6ab_ctx`].
pub fn fig7cd_ctx(scale: &Scale, ctx: &QueryContext) -> IndexResult<FigureReport> {
    let mut rep = FigureReport::new(
        "Figure 7(c,d): distance-based queries, L1 metric (COLHIST)",
        comparison_columns(),
    );
    for dim in COLHIST_DIMS {
        let data = colhist(scale.colhist_n, dim, scale.seed + dim as u64);
        // Distance queries model query-by-example similarity search (the
        // MARS workload): query centers are images from the collection.
        let wl = DistanceWorkload::calibrated_from_data(
            &data,
            scale.queries,
            Scale::COLHIST_SELECTIVITY,
            &hyt_geom::L1,
            scale.seed ^ 0xd15,
        );
        let outcome = compare_distance_ctx(
            &[Engine::Hybrid, Engine::Sr],
            &data,
            &wl.centers,
            wl.radius,
            &hyt_geom::L1,
            ctx,
        )?;
        if let Some(reason) = push_rows_ctx(&mut rep, &format!("{dim}-d"), outcome) {
            note_aborted(&mut rep, reason, &format!("{dim}-d"));
            return Ok(rep);
        }
    }
    rep.note("paper shape: hybrid outperforms SR-tree and scan for L1 range queries at every dim");
    Ok(rep)
}

/// Table 1: splitting strategies of the index structures, measured on
/// built trees (64-d COLHIST) rather than asserted.
pub fn table1(scale: &Scale) -> IndexResult<FigureReport> {
    let mut rep = FigureReport::new(
        "Table 1: splitting strategies, measured on 64-d COLHIST",
        vec![
            "engine",
            "fanout",
            "overlap-frac",
            "leaf-util",
            "split-dims",
            "redundant-bytes",
            "height",
        ],
    );
    let data = colhist(scale.colhist_n, 64, scale.seed + 64);
    for engine in [Engine::Hybrid, Engine::Kdb, Engine::Hb, Engine::Sr] {
        let (idx, _) = build_engine(engine, &data)?;
        let st = idx.structure_stats()?;
        rep.row(vec![
            engine.name(),
            fnum(st.avg_fanout),
            fnum(st.avg_overlap_fraction),
            fnum(st.avg_leaf_utilization),
            st.distinct_split_dims.to_string(),
            st.redundant_bytes.to_string(),
            st.height.to_string(),
        ]);
    }
    rep.note("paper claims: kDB/hB/hybrid fanout high & dim-independent, SR(R-tree) fanout low;");
    rep.note("hybrid overlap low but nonzero; hB redundancy > 0; hybrid+hB+SR keep utilization");
    Ok(rep)
}

/// Table 2: hybrid vs BR-based vs kd-tree-based structures — the feature
/// matrix, with the measurable cells filled from real trees.
pub fn table2(scale: &Scale) -> IndexResult<FigureReport> {
    let mut rep = FigureReport::new(
        "Table 2: hybrid tree vs BR-based vs kd-tree-based index structures",
        vec!["property", "BR-based (SR)", "kd-based (kDB/hB)", "hybrid"],
    );
    rep.row(vec![
        "representation".into(),
        "array of BRs".into(),
        "kd-tree".into(),
        "kd-tree + 2 split positions".into(),
    ]);
    rep.row(vec![
        "subspaces".into(),
        "may overlap".into(),
        "strictly disjoint".into(),
        "may overlap".into(),
    ]);
    rep.row(vec![
        "split dims/node".into(),
        "all k".into(),
        "1 or more".into(),
        "1".into(),
    ]);
    rep.row(vec![
        "dead-space elim.".into(),
        "yes (BRs)".into(),
        "no".into(),
        "yes (ELS)".into(),
    ]);
    // Measured support: overlap fraction + ELS benefit on a small build.
    let data = colhist(scale.colhist_n.min(10_000), 32, scale.seed);
    let wl = BoxWorkload::calibrated(&data, scale.queries, Scale::COLHIST_SELECTIVITY, 3);
    let (sr, _) = build_engine(Engine::Sr, &data)?;
    let (kdb, _) = build_engine(Engine::Kdb, &data)?;
    let (els0, _) = build_engine(Engine::HybridEls(0), &data)?;
    let (els4, _) = build_engine(Engine::HybridEls(4), &data)?;
    let a_sr = run_box_queries(sr.as_ref(), &wl.queries)?.avg_accesses;
    let a_kdb = run_box_queries(kdb.as_ref(), &wl.queries)?.avg_accesses;
    let a0 = run_box_queries(els0.as_ref(), &wl.queries)?.avg_accesses;
    let a4 = run_box_queries(els4.as_ref(), &wl.queries)?.avg_accesses;
    rep.row(vec![
        "measured accesses/q (32-d)".into(),
        fnum(a_sr),
        fnum(a_kdb),
        format!("{} (ELS off: {})", fnum(a4), fnum(a0)),
    ]);
    Ok(rep)
}

/// Beyond the paper: k-nearest-neighbor cost across engines. The paper
/// states the hybrid tree supports NN queries (§3.5) but reports no NN
/// experiment; this fills that gap with the standard best-first search
/// on every engine that supports distance queries.
pub fn knn_comparison(scale: &Scale) -> IndexResult<FigureReport> {
    let mut rep = FigureReport::new(
        "Extra: 10-NN query cost, L2 (COLHIST)",
        vec!["dim", "engine", "accesses/q", "cpu(us)/q"],
    );
    for dim in [16usize, 64] {
        let data = colhist(scale.colhist_n, dim, scale.seed + dim as u64);
        let queries: Vec<Point> = data
            .iter()
            .step_by(data.len() / scale.queries)
            .cloned()
            .collect();
        for engine in [
            Engine::Hybrid,
            Engine::HybridBulk,
            Engine::Sr,
            Engine::Kdb,
            Engine::Scan,
        ] {
            let (idx, _) = build_engine(engine, &data)?;
            idx.reset_io_stats();
            let start = Instant::now();
            for q in &queries {
                idx.knn(q, 10, &hyt_geom::L2)?;
            }
            let cpu = start.elapsed().as_secs_f64() / queries.len() as f64;
            let acc = idx.io_stats().weighted_accesses() / queries.len() as f64;
            rep.row(vec![
                dim.to_string(),
                engine.name(),
                fnum(acc),
                format!("{:.1}", cpu * 1e6),
            ]);
        }
    }
    rep.note("query points are collection members (query-by-example); k = 10");
    Ok(rep)
}

/// Beyond the paper: construction cost — wall time and pages — for every
/// engine, including the bulk loader.
pub fn build_costs(scale: &Scale) -> IndexResult<FigureReport> {
    let mut rep = FigureReport::new(
        "Extra: build cost (32-d COLHIST)",
        vec!["engine", "build(ms)", "pages", "leaf-util", "height"],
    );
    let data = colhist(scale.colhist_n, 32, scale.seed + 32);
    for engine in [
        Engine::Hybrid,
        Engine::HybridBulk,
        Engine::Hb,
        Engine::Sr,
        Engine::Kdb,
        Engine::Scan,
    ] {
        let (idx, build) = build_engine(engine, &data)?;
        let st = idx.structure_stats()?;
        rep.row(vec![
            engine.name(),
            format!("{:.0}", build.as_secs_f64() * 1e3),
            st.total_nodes.to_string(),
            fnum(st.avg_leaf_utilization),
            st.height.to_string(),
        ]);
    }
    rep.note("all engines are fully dynamic; bulk loading is the hybrid tree's fast path");
    Ok(rep)
}

/// Ablation: data-node split *dimension* policy (max-extent vs
/// max-variance vs round-robin), paper §3.2 discussion.
pub fn ablate_split_dim(scale: &Scale) -> IndexResult<FigureReport> {
    let mut rep = FigureReport::new(
        "Ablation: split dimension choice (COLHIST box queries)",
        vec!["dim", "policy", "accesses/q", "distinct-split-dims"],
    );
    for dim in [16usize, 64] {
        let (data, wl) = colhist_workload(scale, dim, scale.colhist_n.min(20_000));
        for (label, policy) in [
            ("max-extent (paper)", SplitPolicy::EdaOptimal),
            ("max-variance", SplitPolicy::Vam),
            ("round-robin", SplitPolicy::RoundRobin),
        ] {
            let mut tree = HybridTree::new(
                dim,
                HybridTreeConfig {
                    split_policy: policy,
                    ..HybridTreeConfig::default()
                },
            )?;
            for (i, p) in data.iter().enumerate() {
                tree.insert(p.clone(), i as u64)?;
            }
            let cost = run_box_queries(&tree, &wl.queries)?;
            let st = tree.structure_stats()?;
            rep.row(vec![
                dim.to_string(),
                label.into(),
                fnum(cost.avg_accesses),
                st.distinct_split_dims.to_string(),
            ]);
        }
    }
    rep.note("expected: max-extent lowest accesses; round-robin wastes splits on non-discriminating dims");
    Ok(rep)
}

/// Ablation: data-node split *position* (middle vs median), isolating
/// the §3.2 footnote-1 rule.
pub fn ablate_split_pos(scale: &Scale) -> IndexResult<FigureReport> {
    let mut rep = FigureReport::new(
        "Ablation: split position, middle vs median (COLHIST box queries)",
        vec!["dim", "position", "accesses/q"],
    );
    for dim in [16usize, 64] {
        let (data, wl) = colhist_workload(scale, dim, scale.colhist_n.min(20_000));
        for (label, policy) in [
            ("middle (paper)", SplitPolicy::EdaOptimal),
            ("median", SplitPolicy::MaxExtentMedian),
        ] {
            let mut tree = HybridTree::new(
                dim,
                HybridTreeConfig {
                    split_policy: policy,
                    ..HybridTreeConfig::default()
                },
            )?;
            for (i, p) in data.iter().enumerate() {
                tree.insert(p.clone(), i as u64)?;
            }
            let cost = run_box_queries(&tree, &wl.queries)?;
            rep.row(vec![dim.to_string(), label.into(), fnum(cost.avg_accesses)]);
        }
    }
    rep.note("paper: middle splits give more cubic BRs, hence fewer accesses");
    Ok(rep)
}

/// Ablation: implicit dimensionality reduction (Lemma 1) — how many
/// dimensions each policy ever splits, on data with non-discriminating
/// dimensions.
pub fn ablate_dim_elim(scale: &Scale) -> IndexResult<FigureReport> {
    let mut rep = FigureReport::new(
        "Ablation: implicit dimensionality reduction (64-d COLHIST)",
        vec!["policy", "distinct-split-dims", "of-dims", "accesses/q"],
    );
    let (data, wl) = colhist_workload(scale, 64, scale.colhist_n.min(20_000));
    for (label, policy) in [
        ("eda-optimal", SplitPolicy::EdaOptimal),
        ("round-robin", SplitPolicy::RoundRobin),
    ] {
        let mut tree = HybridTree::new(
            64,
            HybridTreeConfig {
                split_policy: policy,
                ..HybridTreeConfig::default()
            },
        )?;
        for (i, p) in data.iter().enumerate() {
            tree.insert(p.clone(), i as u64)?;
        }
        let cost = run_box_queries(&tree, &wl.queries)?;
        let st = tree.structure_stats()?;
        rep.row(vec![
            label.into(),
            st.distinct_split_dims.to_string(),
            "64".into(),
            fnum(cost.avg_accesses),
        ]);
    }
    rep.note("Lemma 1: EDA-optimal splitting never touches non-discriminating dims");
    Ok(rep)
}

/// Ablation: relaxed (overlapping) splits vs forced-clean splits — the
/// hybrid tree vs the kDB-tree on clustered data, with cascade counters.
pub fn ablate_overlap(scale: &Scale) -> IndexResult<FigureReport> {
    let mut rep = FigureReport::new(
        "Ablation: overlap relaxation vs clean cascading splits (clustered 8-d)",
        vec![
            "engine",
            "accesses/q",
            "leaf-util",
            "total-splits",
            "forced-splits",
            "empty-pages",
        ],
    );
    let n = scale.colhist_n.min(20_000);
    let data = clustered(n, 8, 10, 0.01, scale.seed);
    let wl = BoxWorkload::calibrated(&data, scale.queries, 0.005, scale.seed ^ 0xab);

    let mut hybrid = HybridTree::new(8, HybridTreeConfig::default())?;
    let start = Instant::now();
    for (i, p) in data.iter().enumerate() {
        hybrid.insert(p.clone(), i as u64)?;
    }
    let _ = start;
    let hc = run_box_queries(&hybrid, &wl.queries)?;
    let hst = hybrid.structure_stats()?;
    rep.row(vec![
        "hybrid".into(),
        fnum(hc.avg_accesses),
        fnum(hst.avg_leaf_utilization),
        "-".into(),
        "0".into(),
        "0".into(),
    ]);

    let mut kdb = KdbTree::new(8, KdbTreeConfig::default())?;
    for (i, p) in data.iter().enumerate() {
        kdb.insert(p.clone(), i as u64)?;
    }
    let kc = run_box_queries(&kdb, &wl.queries)?;
    let kst = kdb.structure_stats()?;
    let ks = kdb.split_stats();
    rep.row(vec![
        "kdb-tree".into(),
        fnum(kc.avg_accesses),
        fnum(kst.avg_leaf_utilization),
        ks.total_splits.to_string(),
        ks.forced_splits.to_string(),
        ks.empty_pages_created.to_string(),
    ]);
    rep.note("paper §3.1: relaxing cleanliness avoids cascades and preserves utilization");
    Ok(rep)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny scale so figure drivers run in CI-test time.
    fn tiny() -> Scale {
        Scale {
            fourier_n: 2_000,
            colhist_n: 1_500,
            size_sweep: [400, 800, 1200, 1500],
            queries: 6,
            seed: 99,
        }
    }

    #[test]
    fn fig5ab_produces_rows() {
        let rep = fig5ab(&tiny()).unwrap();
        assert_eq!(rep.rows.len(), 6); // 3 dims x 2 policies
        assert!(rep.to_string().contains("eda-optimal"));
    }

    #[test]
    fn fig5c_produces_sweep() {
        let rep = fig5c(&tiny()).unwrap();
        assert_eq!(rep.rows.len(), 21); // 3 dims x 7 precisions
    }

    #[test]
    fn fig6_and_fig7_produce_all_engines() {
        let rep = fig6cd(&tiny()).unwrap();
        let s = rep.to_string();
        for e in ["hybrid", "hb-tree", "sr-tree", "seq-scan"] {
            assert!(s.contains(e), "{e} missing from fig6cd");
        }
        let rep = fig7cd(&tiny()).unwrap();
        let s = rep.to_string();
        assert!(s.contains("hybrid") && s.contains("sr-tree"));
        assert!(!s.contains("hb-tree"), "hB-tree must be absent from 7(c,d)");
    }

    #[test]
    fn tables_render() {
        let t1 = table1(&tiny()).unwrap();
        assert_eq!(t1.rows.len(), 4);
        let t2 = table2(&tiny()).unwrap();
        assert!(t2.rows.len() >= 5);
    }

    #[test]
    fn ablations_run() {
        assert!(ablate_split_pos(&tiny()).unwrap().rows.len() == 4);
        assert!(ablate_dim_elim(&tiny()).unwrap().rows.len() == 2);
        assert!(ablate_overlap(&tiny()).unwrap().rows.len() == 2);
    }
}
