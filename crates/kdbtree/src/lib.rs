//! kDB-tree baseline (Robinson, SIGMOD 1981).
//!
//! The kDB-tree is the only disk-based predecessor of the hybrid tree
//! with a strict 1-d split policy (paper Table 1). Its node splits must be
//! *clean*: the two resulting subspaces are disjoint. When an overflowing
//! region page is cut by a hyperplane, every child page straddling the
//! hyperplane must itself be split — the **cascading splits** that create
//! underfull (even empty) pages and void any utilization guarantee. The
//! hybrid tree exists precisely to avoid this: it relaxes cleanliness
//! (allowing `lsp > rsp`) whenever a clean split would cascade.
//!
//! This implementation is faithful to that behaviour:
//!
//! * data pages split at the median of the maximum-extent dimension;
//! * region pages prefer an existing kd hyperplane when one yields an
//!   acceptable balance, and otherwise force a median hyperplane through
//!   the node, recursively (and honestly) splitting every straddling
//!   descendant;
//! * deletion removes entries without merging pages (the structure has no
//!   utilization guarantee to restore).
//!
//! Split convention: a split at `pos` sends `x < pos` left and `x >= pos`
//! right, everywhere, so clean partitions stay clean under cascades.

use hyt_exec::{Child, EntrySink, KnnCursor, NearQuery, NodeExpand, NodeKind};
use hyt_geom::{Coord, Metric, Point, Rect};
use hyt_index::{
    check_dim, IndexError, IndexResult, KnnStream, MultidimIndex, QueryContext, QueryOutcome,
    StructureStats,
};
use hyt_page::{
    BufferPool, ByteReader, ByteWriter, IoStats, MemStorage, NodeCacheStats, PageError, PageId,
    PageResult, Storage, DEFAULT_PAGE_SIZE,
};
use std::cmp::Ordering;
use std::sync::Arc;

const TAG_DATA: u8 = 0;
const TAG_INDEX: u8 = 1;
const KD_LEAF: u8 = 0;
const KD_INTERNAL: u8 = 1;

/// Intra-node kd-tree with a single (clean) split position per node.
#[derive(Clone, Debug, PartialEq)]
enum Kd {
    Leaf(PageId),
    Internal {
        dim: u16,
        pos: Coord,
        left: Box<Kd>,
        right: Box<Kd>,
    },
}

impl Kd {
    fn fanout(&self) -> usize {
        match self {
            Kd::Leaf(_) => 1,
            Kd::Internal { left, right, .. } => left.fanout() + right.fanout(),
        }
    }

    fn encoded_size(&self) -> usize {
        match self {
            Kd::Leaf(_) => 5,
            Kd::Internal { left, right, .. } => 7 + left.encoded_size() + right.encoded_size(),
        }
    }

    fn encode(&self, w: &mut ByteWriter) {
        match self {
            Kd::Leaf(pid) => {
                w.put_u8(KD_LEAF);
                w.put_u32(pid.0);
            }
            Kd::Internal {
                dim,
                pos,
                left,
                right,
            } => {
                w.put_u8(KD_INTERNAL);
                w.put_u16(*dim);
                w.put_f32(*pos);
                left.encode(w);
                right.encode(w);
            }
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> PageResult<Self> {
        match r.get_u8()? {
            KD_LEAF => Ok(Kd::Leaf(PageId(r.get_u32()?))),
            KD_INTERNAL => {
                let dim = r.get_u16()?;
                let pos = r.get_f32()?;
                let left = Box::new(Kd::decode(r)?);
                let right = Box::new(Kd::decode(r)?);
                Ok(Kd::Internal {
                    dim,
                    pos,
                    left,
                    right,
                })
            }
            t => Err(PageError::Corrupt(format!("bad kdb kd tag {t}"))),
        }
    }

    fn children_with_regions(&self, region: &Rect, out: &mut Vec<(PageId, Rect)>) {
        match self {
            Kd::Leaf(pid) => out.push((*pid, region.clone())),
            Kd::Internal {
                dim,
                pos,
                left,
                right,
            } => {
                let d = *dim as usize;
                left.children_with_regions(&region.clamp_above(d, *pos), out);
                right.children_with_regions(&region.clamp_below(d, *pos), out);
            }
        }
    }

    fn child_ids(&self, out: &mut Vec<PageId>) {
        match self {
            Kd::Leaf(pid) => out.push(*pid),
            Kd::Internal { left, right, .. } => {
                left.child_ids(out);
                right.child_ids(out);
            }
        }
    }

    /// The unique child for a point under the `x < pos` convention.
    fn descend(&self, p: &Point) -> PageId {
        match self {
            Kd::Leaf(pid) => *pid,
            Kd::Internal {
                dim,
                pos,
                left,
                right,
            } => {
                if p.coord(*dim as usize) < *pos {
                    left.descend(p)
                } else {
                    right.descend(p)
                }
            }
        }
    }

    fn replace_leaf(&mut self, child: PageId, replacement: Kd) -> bool {
        match self {
            Kd::Leaf(c) if *c == child => {
                *self = replacement;
                true
            }
            Kd::Leaf(_) => false,
            Kd::Internal { left, right, .. } => {
                left.replace_leaf(child, replacement.clone())
                    || right.replace_leaf(child, replacement)
            }
        }
    }

    /// Collects distinct hyperplanes present in the tree.
    fn hyperplanes(&self, out: &mut Vec<(u16, Coord)>) {
        if let Kd::Internal {
            dim,
            pos,
            left,
            right,
        } = self
        {
            out.push((*dim, *pos));
            left.hyperplanes(out);
            right.hyperplanes(out);
        }
    }

    fn split_dims(&self, out: &mut Vec<u16>) {
        if let Kd::Internal {
            dim, left, right, ..
        } = self
        {
            out.push(*dim);
            left.split_dims(out);
            right.split_dims(out);
        }
    }
}

/// A deserialized kDB-tree node.
#[derive(Clone, Debug)]
enum KdbNode {
    Data(Vec<(Point, u64)>),
    Index { level: u16, kd: Kd },
}

impl KdbNode {
    fn encoded_size(&self, dim: usize) -> usize {
        match self {
            KdbNode::Data(e) => 5 + e.len() * (4 * dim + 8),
            KdbNode::Index { kd, .. } => 3 + kd.encoded_size(),
        }
    }

    fn encode(&self, dim: usize) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(self.encoded_size(dim));
        match self {
            KdbNode::Data(entries) => {
                w.put_u8(TAG_DATA);
                w.put_u32(entries.len() as u32);
                for (p, oid) in entries {
                    for d in 0..dim {
                        w.put_f32(p.coord(d));
                    }
                    w.put_u64(*oid);
                }
            }
            KdbNode::Index { level, kd } => {
                w.put_u8(TAG_INDEX);
                w.put_u16(*level);
                kd.encode(&mut w);
            }
        }
        w.into_inner()
    }

    fn decode(buf: &[u8], dim: usize) -> PageResult<Self> {
        let mut r = ByteReader::new(buf);
        match r.get_u8()? {
            TAG_DATA => {
                let n = r.get_u32()? as usize;
                if n * (4 * dim + 8) > r.remaining() {
                    return Err(PageError::Corrupt(format!(
                        "kdb data node claims {n} entries beyond the page"
                    )));
                }
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let mut c = Vec::with_capacity(dim);
                    for _ in 0..dim {
                        c.push(r.get_f32()?);
                    }
                    let oid = r.get_u64()?;
                    entries.push((Point::new(c), oid));
                }
                Ok(KdbNode::Data(entries))
            }
            TAG_INDEX => {
                let level = r.get_u16()?;
                let kd = Kd::decode(&mut r)?;
                Ok(KdbNode::Index { level, kd })
            }
            t => Err(PageError::Corrupt(format!("bad kdb node tag {t}"))),
        }
    }
}

/// Construction parameters of a [`KdbTree`].
#[derive(Clone, Debug)]
pub struct KdbTreeConfig {
    /// Page size in bytes.
    pub page_size: usize,
    /// Buffer-pool capacity in pages (0 = cold-cache accounting).
    pub pool_pages: usize,
    /// Decoded-node cache capacity in entries; 0 (the default) disables
    /// it. Enabling it never changes query results or logical I/O
    /// accounting, only the number of node-decode invocations.
    pub node_cache_entries: usize,
}

impl Default for KdbTreeConfig {
    fn default() -> Self {
        Self {
            page_size: DEFAULT_PAGE_SIZE,
            pool_pages: 0,
            node_cache_entries: 0,
        }
    }
}

/// Split statistics — the kDB-tree's pathology, measured.
#[derive(Clone, Copy, Debug, Default)]
pub struct KdbSplitStats {
    /// Total node splits performed.
    pub total_splits: u64,
    /// Splits forced onto a page by a hyperplane from above (cascades).
    pub forced_splits: u64,
    /// Pages that were left empty by a forced split.
    pub empty_pages_created: u64,
}

/// A disk-based kDB-tree over k-dimensional `f32` points.
pub struct KdbTree<S: Storage = MemStorage> {
    pool: BufferPool<S>,
    root: PageId,
    height: usize,
    dim: usize,
    len: usize,
    cfg: KdbTreeConfig,
    data_cap: usize,
    global_br: Option<Rect>,
    split_stats: KdbSplitStats,
}

impl KdbTree<MemStorage> {
    /// Creates an empty kDB-tree over in-memory pages.
    pub fn new(dim: usize, cfg: KdbTreeConfig) -> IndexResult<Self> {
        let storage = MemStorage::with_page_size(cfg.page_size);
        Self::with_storage(dim, cfg, storage)
    }
}

impl<S: Storage> KdbTree<S> {
    /// Creates an empty kDB-tree over the given page store.
    pub fn with_storage(dim: usize, cfg: KdbTreeConfig, storage: S) -> IndexResult<Self> {
        if storage.page_size() != cfg.page_size {
            return Err(IndexError::Internal(
                "storage/config page size mismatch".into(),
            ));
        }
        let data_cap = (cfg.page_size - 5) / (4 * dim + 8);
        if data_cap < 2 {
            return Err(IndexError::Internal(format!(
                "page size {} too small for dimension {dim}",
                cfg.page_size
            )));
        }
        let pool = BufferPool::with_node_cache(storage, cfg.pool_pages, cfg.node_cache_entries);
        let root = pool.allocate()?;
        pool.write(root, &KdbNode::Data(Vec::new()).encode(dim))?;
        Ok(Self {
            pool,
            root,
            height: 1,
            dim,
            len: 0,
            cfg,
            data_cap,
            global_br: None,
            split_stats: KdbSplitStats::default(),
        })
    }

    /// Height in levels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Cascade / empty-page counters.
    pub fn split_stats(&self) -> KdbSplitStats {
        self.split_stats
    }

    fn read_node(&self, pid: PageId) -> IndexResult<KdbNode> {
        let mut io = IoStats::default();
        Ok(self
            .pool
            .read_tracked_with(pid, &mut io, |buf| KdbNode::decode(buf, self.dim))??)
    }

    fn read_node_ctx(
        &self,
        pid: PageId,
        io: &mut IoStats,
        ctx: &QueryContext,
    ) -> IndexResult<Arc<KdbNode>> {
        self.pool
            .read_decoded_ctx(pid, io, ctx, |buf| Ok(KdbNode::decode(buf, self.dim)?))
    }

    fn write_node(&mut self, pid: PageId, node: &KdbNode) -> IndexResult<()> {
        let buf = node.encode(self.dim);
        if buf.len() > self.cfg.page_size {
            return Err(IndexError::Internal(format!(
                "kdb node for {pid} overflows page"
            )));
        }
        self.pool.write(pid, &buf)?;
        Ok(())
    }

    fn root_region(&self) -> Rect {
        self.global_br
            .clone()
            .unwrap_or_else(|| Rect::from_point(&Point::origin(self.dim)))
    }

    /// An empty data page used when a forced cut leaves one side of an
    /// index node with no children — the kDB-tree's empty-page pathology.
    fn empty_data_leaf(&mut self) -> IndexResult<Kd> {
        let p = self.pool.allocate()?;
        self.write_node(p, &KdbNode::Data(Vec::new()))?;
        Ok(Kd::Leaf(p))
    }

    /// Splits page `pid` cleanly by hyperplane `(dim, pos)`, creating a new
    /// right page; recursively cascades into straddling children. Region
    /// is `pid`'s region (needed to classify grandchildren).
    fn force_split(
        &mut self,
        pid: PageId,
        dim: u16,
        pos: Coord,
        region: &Rect,
        forced: bool,
    ) -> IndexResult<PageId> {
        self.split_stats.total_splits += 1;
        if forced {
            self.split_stats.forced_splits += 1;
        }
        let d = dim as usize;
        match self.read_node(pid)? {
            KdbNode::Data(entries) => {
                let (left, right): (Vec<_>, Vec<_>) =
                    entries.into_iter().partition(|(p, _)| p.coord(d) < pos);
                if left.is_empty() || right.is_empty() {
                    self.split_stats.empty_pages_created += 1;
                }
                let new_pid = self.pool.allocate()?;
                self.write_node(pid, &KdbNode::Data(left))?;
                self.write_node(new_pid, &KdbNode::Data(right))?;
                Ok(new_pid)
            }
            KdbNode::Index { level, kd } => {
                let (lkd, rkd) = self.cut_kd(kd, dim, pos, region)?;
                if lkd.is_none() || rkd.is_none() {
                    self.split_stats.empty_pages_created += 1;
                }
                let new_pid = self.pool.allocate()?;
                let lkd = match lkd {
                    Some(k) => k,
                    None => self.empty_data_leaf()?,
                };
                let rkd = match rkd {
                    Some(k) => k,
                    None => self.empty_data_leaf()?,
                };
                self.write_node(pid, &KdbNode::Index { level, kd: lkd })?;
                self.write_node(new_pid, &KdbNode::Index { level, kd: rkd })?;
                Ok(new_pid)
            }
        }
    }

    /// Cuts a kd-tree by a hyperplane; children regions that straddle it
    /// are force-split (the cascade).
    fn cut_kd(
        &mut self,
        kd: Kd,
        dim: u16,
        pos: Coord,
        region: &Rect,
    ) -> IndexResult<(Option<Kd>, Option<Kd>)> {
        let d = dim as usize;
        match kd {
            Kd::Leaf(child) => {
                if region.hi(d) <= pos {
                    Ok((Some(Kd::Leaf(child)), None))
                } else if region.lo(d) >= pos {
                    Ok((None, Some(Kd::Leaf(child))))
                } else {
                    // Cascade into the child.
                    let new_pid = self.force_split(child, dim, pos, region, true)?;
                    Ok((Some(Kd::Leaf(child)), Some(Kd::Leaf(new_pid))))
                }
            }
            Kd::Internal {
                dim: kdim,
                pos: kpos,
                left,
                right,
            } => {
                if kdim == dim {
                    match kpos.partial_cmp(&pos).unwrap() {
                        Ordering::Equal => Ok((Some(*left), Some(*right))),
                        Ordering::Less => {
                            let (rl, rr) =
                                self.cut_kd(*right, dim, pos, &region.clamp_below(d, kpos))?;
                            let l = match rl {
                                Some(rl) => Some(Kd::Internal {
                                    dim: kdim,
                                    pos: kpos,
                                    left,
                                    right: Box::new(rl),
                                }),
                                None => Some(*left),
                            };
                            Ok((l, rr))
                        }
                        Ordering::Greater => {
                            let (ll, lr) =
                                self.cut_kd(*left, dim, pos, &region.clamp_above(d, kpos))?;
                            let r = match lr {
                                Some(lr) => Some(Kd::Internal {
                                    dim: kdim,
                                    pos: kpos,
                                    left: Box::new(lr),
                                    right,
                                }),
                                None => Some(*right),
                            };
                            Ok((ll, r))
                        }
                    }
                } else {
                    let kd_us = kdim as usize;
                    let (ll, lr) =
                        self.cut_kd(*left, dim, pos, &region.clamp_above(kd_us, kpos))?;
                    let (rl, rr) =
                        self.cut_kd(*right, dim, pos, &region.clamp_below(kd_us, kpos))?;
                    let combine = |a: Option<Kd>, b: Option<Kd>| -> Option<Kd> {
                        match (a, b) {
                            (Some(a), Some(b)) => Some(Kd::Internal {
                                dim: kdim,
                                pos: kpos,
                                left: Box::new(a),
                                right: Box::new(b),
                            }),
                            (Some(a), None) => Some(a),
                            (None, Some(b)) => Some(b),
                            (None, None) => None,
                        }
                    };
                    Ok((combine(ll, rl), combine(lr, rr)))
                }
            }
        }
    }

    /// Picks a hyperplane to split an overflowing index node: prefer an
    /// existing kd hyperplane with acceptable balance (no cascade there),
    /// otherwise the median of child-region midpoints along the region's
    /// max-extent dimension (cascading).
    fn choose_index_hyperplane(&self, kd: &Kd, region: &Rect) -> (u16, Coord) {
        let mut children = Vec::new();
        kd.children_with_regions(region, &mut children);
        let n = children.len();
        let mut planes = Vec::new();
        kd.hyperplanes(&mut planes);
        planes.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
        planes.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);

        let score = |dim: u16, pos: Coord| -> (f64, usize, usize, usize) {
            let d = dim as usize;
            let mut l = 0usize;
            let mut r = 0usize;
            let mut straddle = 0usize;
            for (_, cr) in &children {
                if cr.hi(d) <= pos {
                    l += 1;
                } else if cr.lo(d) >= pos {
                    r += 1;
                } else {
                    straddle += 1;
                }
            }
            let balance = (l.max(r) + straddle) as f64 / n as f64;
            (balance + straddle as f64 * 0.25, l, r, straddle)
        };

        let mut best: Option<(f64, u16, Coord)> = None;
        for &(dim, pos) in &planes {
            let (cost, l, r, straddle) = score(dim, pos);
            if l + straddle == 0 || r + straddle == 0 {
                continue; // a side would be empty
            }
            if best.as_ref().is_none_or(|(c, ..)| cost < *c) {
                best = Some((cost, dim, pos));
            }
        }
        // Median hyperplane as challenger (balanced but may cascade).
        let d = region.max_extent_dim();
        let mut mids: Vec<Coord> = children
            .iter()
            .map(|(_, r)| (r.lo(d) + r.hi(d)) * 0.5)
            .collect();
        mids.sort_by(Coord::total_cmp);
        let med = mids[n / 2];
        if med > region.lo(d) && med < region.hi(d) {
            let (cost, l, r, straddle) = score(d as u16, med);
            if (l + straddle > 0 && r + straddle > 0)
                && best.as_ref().is_none_or(|(c, ..)| cost < *c)
            {
                best = Some((cost, d as u16, med));
            }
        }
        best.map(|(_, dim, pos)| (dim, pos)).unwrap_or_else(|| {
            // Degenerate: everything identical. Cut at the region middle.
            let d = region.max_extent_dim();
            (d as u16, (region.lo(d) + region.hi(d)) * 0.5)
        })
    }

    fn insert_rec(
        &mut self,
        pid: PageId,
        region: &Rect,
        p: &Point,
        oid: u64,
    ) -> IndexResult<Option<(u16, Coord, PageId)>> {
        match self.read_node(pid)? {
            KdbNode::Data(mut entries) => {
                entries.push((p.clone(), oid));
                if entries.len() > self.data_cap {
                    // Median split along the max-extent dimension, done in
                    // memory (the oversized node never touches a page).
                    self.split_stats.total_splits += 1;
                    let pts: Vec<Point> = entries.iter().map(|(p, _)| p.clone()).collect();
                    let live = Rect::bounding(&pts);
                    let d = live.max_extent_dim();
                    entries.sort_by(|a, b| a.0.coord(d).total_cmp(&b.0.coord(d)));
                    let n = entries.len();
                    let mut pos = entries[n / 2].0.coord(d);
                    let mut left: Vec<(Point, u64)>;
                    let right: Vec<(Point, u64)>;
                    if entries[0].0.coord(d) < pos {
                        // Clean strict split at the median value.
                        let j = entries.partition_point(|(p, _)| p.coord(d) < pos);
                        left = entries;
                        let r = left.split_off(j);
                        right = r;
                    } else {
                        // Duplicate-heavy page: rank split at the shared
                        // value; closed regions keep queries correct.
                        pos = entries[n / 2].0.coord(d);
                        left = entries;
                        right = left.split_off(n / 2);
                    }
                    let new_pid = self.pool.allocate()?;
                    self.write_node(pid, &KdbNode::Data(left))?;
                    self.write_node(new_pid, &KdbNode::Data(right))?;
                    Ok(Some((d as u16, pos, new_pid)))
                } else {
                    self.write_node(pid, &KdbNode::Data(entries))?;
                    Ok(None)
                }
            }
            KdbNode::Index { level, mut kd } => {
                let child = kd.descend(p);
                // Compute the child's region for potential cascades.
                let mut kids = Vec::new();
                kd.children_with_regions(region, &mut kids);
                let child_region = kids
                    .iter()
                    .find(|(c, _)| *c == child)
                    .map(|(_, r)| r.clone())
                    .ok_or_else(|| IndexError::Internal("descend() child missing".into()))?;
                if let Some((sdim, spos, new_pid)) =
                    self.insert_rec(child, &child_region, p, oid)?
                {
                    let replaced = kd.replace_leaf(
                        child,
                        Kd::Internal {
                            dim: sdim,
                            pos: spos,
                            left: Box::new(Kd::Leaf(child)),
                            right: Box::new(Kd::Leaf(new_pid)),
                        },
                    );
                    debug_assert!(replaced);
                    let node = KdbNode::Index { level, kd };
                    if node.encoded_size(self.dim) > self.cfg.page_size {
                        let KdbNode::Index { level, kd } = node else {
                            unreachable!()
                        };
                        // Split in memory; straddling children cascade.
                        self.split_stats.total_splits += 1;
                        let (hdim, hpos) = self.choose_index_hyperplane(&kd, region);
                        let (lkd, rkd) = self.cut_kd(kd, hdim, hpos, region)?;
                        if lkd.is_none() || rkd.is_none() {
                            self.split_stats.empty_pages_created += 1;
                        }
                        let new_pid = self.pool.allocate()?;
                        let lkd = match lkd {
                            Some(k) => k,
                            None => self.empty_data_leaf()?,
                        };
                        let rkd = match rkd {
                            Some(k) => k,
                            None => self.empty_data_leaf()?,
                        };
                        self.write_node(pid, &KdbNode::Index { level, kd: lkd })?;
                        self.write_node(new_pid, &KdbNode::Index { level, kd: rkd })?;
                        Ok(Some((hdim, hpos, new_pid)))
                    } else {
                        self.write_node(pid, &node)?;
                        Ok(None)
                    }
                } else {
                    Ok(None)
                }
            }
        }
    }
}

/// [`NodeExpand`] adapter for the kDB-tree. Regions are not stored on
/// disk — each node's subspace is reconstructed from the split
/// hyperplanes on the way down, so the node reference carries the page
/// id together with its (clean, disjoint) region.
struct KdbExpand<'t, S: Storage> {
    tree: &'t KdbTree<S>,
}

impl<S: Storage> NodeExpand for KdbExpand<'_, S> {
    type Ref = (PageId, Rect);

    fn node_id(&self, r: &(PageId, Rect)) -> u64 {
        u64::from(r.0 .0)
    }

    fn roots(&self) -> Vec<(PageId, Rect)> {
        if self.tree.len == 0 {
            return Vec::new();
        }
        vec![(self.tree.root, self.tree.root_region())]
    }

    fn expand_box(
        &self,
        (pid, region): (PageId, Rect),
        rect: &Rect,
        io: &mut IoStats,
        ctx: &QueryContext,
        out: &mut Vec<u64>,
        children: &mut Vec<(PageId, Rect)>,
    ) -> IndexResult<NodeKind> {
        let node = self.tree.read_node_ctx(pid, io, ctx)?;
        match &*node {
            KdbNode::Data(entries) => {
                out.extend(
                    entries
                        .iter()
                        .filter(|(p, _)| rect.contains_point(p))
                        .map(|(_, oid)| *oid),
                );
                Ok(NodeKind::Leaf)
            }
            KdbNode::Index { kd, .. } => {
                let mut kids = Vec::new();
                kd.children_with_regions(&region, &mut kids);
                children.extend(kids.into_iter().filter(|(_, creg)| creg.intersects(rect)));
                Ok(NodeKind::Index)
            }
        }
    }

    fn expand_range(
        &self,
        r: (PageId, Rect),
        nq: NearQuery<'_>,
        io: &mut IoStats,
        ctx: &QueryContext,
        sink: &mut dyn EntrySink,
        children: &mut Vec<Child<(PageId, Rect)>>,
    ) -> IndexResult<NodeKind> {
        self.expand_near(r, nq, io, ctx, sink, children)
    }

    fn expand_near(
        &self,
        (pid, region): (PageId, Rect),
        nq: NearQuery<'_>,
        io: &mut IoStats,
        ctx: &QueryContext,
        sink: &mut dyn EntrySink,
        children: &mut Vec<Child<(PageId, Rect)>>,
    ) -> IndexResult<NodeKind> {
        let node = self.tree.read_node_ctx(pid, io, ctx)?;
        match &*node {
            KdbNode::Data(entries) => {
                for (p, oid) in entries {
                    sink.offer(*oid, p);
                }
                Ok(NodeKind::Leaf)
            }
            KdbNode::Index { kd, .. } => {
                let mut kids = Vec::new();
                kd.children_with_regions(&region, &mut kids);
                children.extend(kids.into_iter().map(|(child, creg)| Child {
                    bound: nq.metric.min_dist_rect_sq(nq.q, &creg),
                    node: (child, creg),
                }));
                Ok(NodeKind::Index)
            }
        }
    }
}

impl<S: Storage> MultidimIndex for KdbTree<S> {
    fn name(&self) -> &'static str {
        "kdb-tree"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn len(&self) -> usize {
        self.len
    }

    fn insert(&mut self, point: Point, oid: u64) -> IndexResult<()> {
        check_dim(self.dim, point.dim())?;
        match &mut self.global_br {
            Some(r) => r.extend_to_point(&point),
            None => self.global_br = Some(Rect::from_point(&point)),
        }
        let region = self.root_region();
        if let Some((dim, pos, new_pid)) = self.insert_rec(self.root, &region, &point, oid)? {
            let new_root = self.pool.allocate()?;
            let kd = Kd::Internal {
                dim,
                pos,
                left: Box::new(Kd::Leaf(self.root)),
                right: Box::new(Kd::Leaf(new_pid)),
            };
            self.write_node(
                new_root,
                &KdbNode::Index {
                    level: self.height as u16,
                    kd,
                },
            )?;
            self.root = new_root;
            self.height += 1;
        }
        self.len += 1;
        Ok(())
    }

    fn delete(&mut self, point: &Point, oid: u64) -> IndexResult<bool> {
        check_dim(self.dim, point.dim())?;
        if self.len == 0 {
            return Ok(false);
        }
        // Visit every leaf whose (closed) region contains the point:
        // duplicate coordinates at a split value can sit on either side.
        let mut stack = vec![(self.root, self.root_region())];
        while let Some((pid, region)) = stack.pop() {
            match self.read_node(pid)? {
                KdbNode::Data(mut entries) => {
                    if let Some(i) = entries
                        .iter()
                        .position(|(p, o)| *o == oid && p.same_coords(point))
                    {
                        entries.swap_remove(i);
                        self.write_node(pid, &KdbNode::Data(entries))?;
                        self.len -= 1;
                        return Ok(true);
                    }
                }
                KdbNode::Index { kd, .. } => {
                    let mut kids = Vec::new();
                    kd.children_with_regions(&region, &mut kids);
                    for (child, creg) in kids {
                        if creg.contains_point(point) {
                            stack.push((child, creg));
                        }
                    }
                }
            }
        }
        Ok(false)
    }

    fn box_query_ctx(
        &self,
        rect: &Rect,
        ctx: &QueryContext,
    ) -> IndexResult<(QueryOutcome<Vec<u64>>, IoStats)> {
        check_dim(self.dim, rect.dim())?;
        hyt_exec::run_box_query(&KdbExpand { tree: self }, rect, ctx)
    }

    fn distance_range_ctx(
        &self,
        q: &Point,
        radius: f64,
        metric: &dyn Metric,
        ctx: &QueryContext,
    ) -> IndexResult<(QueryOutcome<Vec<u64>>, IoStats)> {
        check_dim(self.dim, q.dim())?;
        hyt_exec::run_distance_range(&KdbExpand { tree: self }, q, radius, metric, ctx)
    }

    fn knn_ctx(
        &self,
        q: &Point,
        k: usize,
        metric: &dyn Metric,
        ctx: &QueryContext,
    ) -> IndexResult<(QueryOutcome<Vec<(u64, f64)>>, IoStats)> {
        check_dim(self.dim, q.dim())?;
        hyt_exec::run_knn(&KdbExpand { tree: self }, q, k, metric, ctx)
    }

    fn knn_stream<'a>(
        &'a self,
        q: &Point,
        metric: &'a dyn Metric,
        ctx: &QueryContext,
    ) -> IndexResult<Box<dyn KnnStream + 'a>> {
        check_dim(self.dim, q.dim())?;
        Ok(Box::new(KnnCursor::new(
            KdbExpand { tree: self },
            q.clone(),
            metric,
            ctx.clone(),
        )))
    }

    fn io_stats(&self) -> IoStats {
        self.pool.stats()
    }

    fn reset_io_stats(&self) {
        self.pool.reset_stats();
        self.pool.node_cache().reset_stats();
    }

    fn cache_stats(&self) -> NodeCacheStats {
        self.pool.node_cache_stats()
    }

    fn structure_stats(&self) -> IndexResult<StructureStats> {
        let mut st = StructureStats {
            height: self.height,
            ..StructureStats::default()
        };
        if self.len == 0 {
            st.total_nodes = 1;
            st.data_nodes = 1;
            return Ok(st);
        }
        let mut fanout_sum = 0usize;
        let mut util = 0.0f64;
        let mut dims = std::collections::HashSet::new();
        let mut stack = vec![self.root];
        while let Some(pid) = stack.pop() {
            match self.read_node(pid)? {
                KdbNode::Data(entries) => {
                    st.data_nodes += 1;
                    util += KdbNode::Data(entries).encoded_size(self.dim) as f64
                        / self.cfg.page_size as f64;
                }
                KdbNode::Index { kd, .. } => {
                    st.index_nodes += 1;
                    fanout_sum += kd.fanout();
                    let mut ds = Vec::new();
                    kd.split_dims(&mut ds);
                    dims.extend(ds);
                    let mut kids = Vec::new();
                    kd.child_ids(&mut kids);
                    stack.extend(kids);
                }
            }
        }
        st.total_nodes = st.data_nodes + st.index_nodes;
        st.avg_fanout = if st.index_nodes > 0 {
            fanout_sum as f64 / st.index_nodes as f64
        } else {
            0.0
        };
        st.avg_leaf_utilization = if st.data_nodes > 0 {
            util / st.data_nodes as f64
        } else {
            0.0
        };
        st.avg_overlap_fraction = 0.0; // clean splits by construction
        st.distinct_split_dims = dims.len();
        Ok(st)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyt_geom::{L1, L2};
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn cfg() -> KdbTreeConfig {
        KdbTreeConfig {
            page_size: 256,
            ..KdbTreeConfig::default()
        }
    }

    fn points(n: usize, dim: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new((0..dim).map(|_| rng.gen::<f32>()).collect()))
            .collect()
    }

    fn build(pts: &[Point]) -> KdbTree {
        let mut t = KdbTree::new(pts[0].dim(), cfg()).unwrap();
        for (i, p) in pts.iter().enumerate() {
            t.insert(p.clone(), i as u64).unwrap();
        }
        t
    }

    #[test]
    fn box_query_matches_brute_force() {
        let pts = points(700, 3, 1);
        let t = build(&pts);
        assert!(t.height() > 1);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..30 {
            let lo: Vec<f32> = (0..3).map(|_| rng.gen::<f32>() * 0.7).collect();
            let hi: Vec<f32> = lo.iter().map(|l| l + 0.25).collect();
            let rect = Rect::new(lo, hi);
            let mut got = t.box_query(&rect).unwrap();
            got.sort_unstable();
            let mut want: Vec<u64> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| rect.contains_point(p))
                .map(|(i, _)| i as u64)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn partitions_are_disjoint() {
        // Every point must reside in exactly one leaf (clean splits):
        // exact-match queries return exactly one copy of each oid.
        let pts = points(500, 2, 3);
        let t = build(&pts);
        for (i, p) in pts.iter().enumerate() {
            let hits = t.box_query(&Rect::from_point(p)).unwrap();
            assert_eq!(
                hits.iter().filter(|&&o| o == i as u64).count(),
                1,
                "point {i} found {} times",
                hits.iter().filter(|&&o| o == i as u64).count()
            );
        }
    }

    #[test]
    fn knn_and_distance_match_brute_force() {
        let pts = points(400, 4, 4);
        let t = build(&pts);
        let q = Point::new(vec![0.5; 4]);
        let got = t.knn(&q, 10, &L2).unwrap();
        let mut want: Vec<f64> = pts.iter().map(|p| L2.distance(&q, p)).collect();
        want.sort_by(f64::total_cmp);
        for (i, (_, d)) in got.iter().enumerate() {
            assert!((d - want[i]).abs() < 1e-9);
        }
        let got = t.distance_range(&q, 0.5, &L1).unwrap();
        let wantn = pts.iter().filter(|p| L1.distance(&q, p) <= 0.5).count();
        assert_eq!(got.len(), wantn);
    }

    #[test]
    fn cascading_splits_happen_and_are_counted() {
        // Correlated, clustered data triggers unbalanced kd trees and
        // forces median hyperplanes with cascades.
        let mut rng = StdRng::seed_from_u64(5);
        let mut t = KdbTree::new(4, cfg()).unwrap();
        let mut pts = Vec::new();
        for i in 0..2000u64 {
            let c = (i % 5) as f32 / 5.0;
            let p = Point::new((0..4).map(|_| c + rng.gen::<f32>() * 0.05).collect());
            t.insert(p.clone(), i).unwrap();
            pts.push(p);
        }
        let st = t.split_stats();
        assert!(st.total_splits > 0);
        // Verify correctness held through any cascades.
        let rect = Rect::new(vec![0.1; 4], vec![0.7; 4]);
        let mut got = t.box_query(&rect).unwrap();
        got.sort_unstable();
        let mut want: Vec<u64> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| rect.contains_point(p))
            .map(|(i, _)| i as u64)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn delete_removes_single_entry() {
        let pts = points(300, 2, 6);
        let mut t = build(&pts);
        assert!(t.delete(&pts[5], 5).unwrap());
        assert!(!t.delete(&pts[5], 5).unwrap());
        assert_eq!(t.len(), 299);
        let hits = t.box_query(&Rect::from_point(&pts[5])).unwrap();
        assert!(!hits.contains(&5));
    }

    #[test]
    fn utilization_is_not_guaranteed() {
        // The kDB-tree's documented weakness: after clustered inserts,
        // some pages may be nearly empty. We only assert the structure
        // reports utilization (possibly low) without failing.
        let mut rng = StdRng::seed_from_u64(7);
        let mut t = KdbTree::new(2, cfg()).unwrap();
        for i in 0..1500u64 {
            // Two tight clusters plus a sprinkle of outliers.
            let p = if i % 10 == 0 {
                Point::new(vec![rng.gen(), rng.gen()])
            } else if i % 2 == 0 {
                Point::new(vec![0.1 + rng.gen::<f32>() * 0.01, 0.1])
            } else {
                Point::new(vec![0.9, 0.9 - rng.gen::<f32>() * 0.01])
            };
            t.insert(p, i).unwrap();
        }
        let st = t.structure_stats().unwrap();
        assert!(st.data_nodes > 2);
        assert!(st.avg_leaf_utilization > 0.0);
    }
}
