//! Decoded-node cache: shares *decoded* page contents across queries.
//!
//! The buffer pool caches page **bytes**; every traversal still pays a
//! full node decode per visit (entry vectors, points, kd-subtrees). On a
//! warm pool that decode dominates query CPU. This cache sits beside the
//! pool and memoizes the decoded form behind an `Arc`, so concurrent
//! queries share one decoded node without copying.
//!
//! # Keying and invalidation
//!
//! Entries are keyed by `(PageId, page write epoch)`. The epoch is a
//! per-page monotone counter maintained here and bumped by the pool on
//! every `write` and `free` of the page — a superset of the checksummed
//! store's commit epochs, which only advance at catalog commits and so
//! cannot distinguish two rewrites of the same page within one session.
//! Invalidation is eager (the entry is dropped under the shard lock when
//! the epoch bumps), and inserts carry the epoch observed *before* the
//! bytes were read: an insert whose epoch is no longer current is
//! silently discarded, so a decode racing a concurrent rewrite can never
//! publish a stale node.
//!
//! # Accounting
//!
//! A cache hit does **not** change what the query *requested*: the pool
//! still ticks the per-query and global `logical_reads`/`seq_reads`
//! counters (and governance budgets are charged) exactly as if the page
//! had been fetched. Only the decode is skipped. The paper's cost model
//! counts node *visits*, not decodes, so EDA accounting is unchanged.
//!
//! Like the buffer pool, the table is sharded behind `parking_lot`
//! mutexes above [`SHARDING_THRESHOLD`](crate::SHARDING_THRESHOLD)
//! entries and bounded by entry count with per-shard LRU eviction.
//! Capacity `0` disables the cache entirely (every lookup misses for
//! free, nothing is stored) — the default, preserving the paper's
//! decode-per-visit behavior unless a caller opts in.

use crate::PageId;
use parking_lot::Mutex;
use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// Shard count for large caches (power of two; ids map by bitmask),
/// mirroring the buffer pool's sharding.
const NUM_SHARDS: usize = 16;

/// Type-erased decoded node. Each engine caches exactly one concrete
/// node type per pool, recovered with [`NodeCache::get_as`].
pub type CachedNode = Arc<dyn Any + Send + Sync>;

/// Hit/miss counters for a [`NodeCache`]. A *miss* is exactly one
/// `decode` invocation on the caller's side, so `misses` is the decode
/// count of a cache-enabled workload.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeCacheStats {
    /// Lookups served from the cache (decode skipped).
    pub hits: u64,
    /// Lookups that fell through to a decode.
    pub misses: u64,
    /// Entries dropped by LRU capacity pressure.
    pub evictions: u64,
    /// Entries dropped because their page was rewritten or freed.
    pub invalidations: u64,
}

impl NodeCacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct CacheEntry {
    /// Page epoch the node was decoded at.
    epoch: u64,
    node: CachedNode,
    last_used: u64,
}

#[derive(Default)]
struct CacheShard {
    entries: HashMap<PageId, CacheEntry>,
    /// Per-page write epochs; monotone, retained across eviction and
    /// free so a reallocated page id can never alias an old epoch.
    epochs: HashMap<PageId, u64>,
    /// Per-shard LRU clock; monotone under the shard lock.
    tick: u64,
    /// This shard's slice of the entry capacity.
    capacity: usize,
}

impl CacheShard {
    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

/// Sharded, epoch-keyed cache of decoded nodes (see module docs).
pub struct NodeCache {
    shards: Box<[Mutex<CacheShard>]>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl NodeCache {
    /// Creates a cache bounded to `capacity` decoded nodes; `0` disables
    /// it (all operations become no-ops).
    pub fn new(capacity: usize) -> Self {
        let n = if capacity == 0 {
            0
        } else if capacity < crate::SHARDING_THRESHOLD {
            1
        } else {
            NUM_SHARDS
        };
        let shards = (0..n)
            .map(|i| {
                let cap = capacity / n.max(1) + usize::from(i < capacity % n.max(1));
                Mutex::new(CacheShard {
                    capacity: cap,
                    ..CacheShard::default()
                })
            })
            .collect();
        Self {
            shards,
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Whether the cache stores anything at all.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Maximum number of resident decoded nodes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn shard(&self, id: PageId) -> &Mutex<CacheShard> {
        &self.shards[id.0 as usize & (self.shards.len() - 1)]
    }

    /// The page's current write epoch (0 if never written through the
    /// owning pool). Callers snapshot this *before* reading page bytes
    /// and pass it to [`insert`](Self::insert).
    pub fn epoch(&self, id: PageId) -> u64 {
        if !self.is_enabled() {
            return 0;
        }
        self.shard(id).lock().epochs.get(&id).copied().unwrap_or(0)
    }

    /// Looks up the decoded node for `id`, downcast to `T`. Counts a hit
    /// only when a current entry of the right type is found; anything
    /// else counts a miss (the caller will decode).
    pub fn get_as<T: Send + Sync + 'static>(&self, id: PageId) -> Option<Arc<T>> {
        if !self.is_enabled() {
            // Still a decode on the caller's side: ticking the miss
            // counter here keeps `misses` == decode count in both cache
            // modes, which is what the perf trajectory compares.
            self.misses.fetch_add(1, Relaxed);
            return None;
        }
        let mut shard = self.shard(id).lock();
        let tick = shard.next_tick();
        // Eager invalidation keeps resident entries current by
        // construction; the epoch comparison is a structural guarantee
        // that a stale decode can never be served regardless.
        let current = shard.epochs.get(&id).copied().unwrap_or(0);
        if let Some(e) = shard.entries.get_mut(&id) {
            if e.epoch == current {
                if let Ok(node) = Arc::clone(&e.node).downcast::<T>() {
                    e.last_used = tick;
                    drop(shard);
                    self.hits.fetch_add(1, Relaxed);
                    return Some(node);
                }
            }
        }
        drop(shard);
        self.misses.fetch_add(1, Relaxed);
        None
    }

    /// Publishes a decoded node for `id`, tagged with the `epoch` the
    /// caller observed before reading the page bytes. If the page has
    /// been rewritten or freed since (epoch advanced), the insert is
    /// discarded — stale decodes never become visible.
    pub fn insert(&self, id: PageId, epoch: u64, node: CachedNode) {
        if !self.is_enabled() {
            return;
        }
        let mut shard = self.shard(id).lock();
        if shard.epochs.get(&id).copied().unwrap_or(0) != epoch {
            return; // decoded bytes are from a superseded version
        }
        let tick = shard.next_tick();
        // Make room first so the new entry cannot evict itself.
        let mut evicted = 0u64;
        while shard.entries.len() >= shard.capacity.max(1)
            && !shard.entries.contains_key(&id)
            && !shard.entries.is_empty()
        {
            let victim = shard
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(id, _)| *id);
            let Some(victim) = victim else { break };
            shard.entries.remove(&victim);
            evicted += 1;
        }
        shard.entries.insert(
            id,
            CacheEntry {
                epoch,
                node,
                last_used: tick,
            },
        );
        drop(shard);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Relaxed);
        }
    }

    /// Advances the page's epoch and drops any cached entry. The owning
    /// pool calls this on every page `write` and `free`.
    pub fn invalidate(&self, id: PageId) {
        if !self.is_enabled() {
            return;
        }
        let mut shard = self.shard(id).lock();
        *shard.epochs.entry(id).or_insert(0) += 1;
        let dropped = shard.entries.remove(&id).is_some();
        drop(shard);
        if dropped {
            self.invalidations.fetch_add(1, Relaxed);
        }
    }

    /// Number of decoded nodes currently resident.
    pub fn resident(&self) -> usize {
        self.shards.iter().map(|s| s.lock().entries.len()).sum()
    }

    /// Whether a (current) entry for `id` is resident, without touching
    /// hit/miss counters or LRU order. Test/introspection helper.
    pub fn contains(&self, id: PageId) -> bool {
        self.is_enabled() && self.shard(id).lock().entries.contains_key(&id)
    }

    /// Current counters.
    pub fn stats(&self) -> NodeCacheStats {
        NodeCacheStats {
            hits: self.hits.load(Relaxed),
            misses: self.misses.load(Relaxed),
            evictions: self.evictions.load(Relaxed),
            invalidations: self.invalidations.load(Relaxed),
        }
    }

    /// Resets the counters (resident entries are kept).
    pub fn reset_stats(&self) {
        self.hits.store(0, Relaxed);
        self.misses.store(0, Relaxed);
        self.evictions.store(0, Relaxed);
        self.invalidations.store(0, Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arc(v: u32) -> CachedNode {
        Arc::new(v)
    }

    #[test]
    fn disabled_cache_is_inert() {
        let c = NodeCache::new(0);
        assert!(!c.is_enabled());
        c.insert(PageId(1), 0, arc(7));
        assert!(c.get_as::<u32>(PageId(1)).is_none());
        // The miss counter still ticks — it doubles as the decode count,
        // comparable across cache-off and cache-on runs.
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (0, 1));
        assert_eq!(c.resident(), 0);
    }

    #[test]
    fn hit_after_insert_and_typed_miss() {
        let c = NodeCache::new(8);
        let id = PageId(3);
        c.insert(id, 0, arc(42));
        assert_eq!(*c.get_as::<u32>(id).unwrap(), 42);
        // Wrong type counts a miss, not a hit.
        assert!(c.get_as::<String>(id).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn invalidate_bumps_epoch_and_drops_entry() {
        let c = NodeCache::new(8);
        let id = PageId(9);
        assert_eq!(c.epoch(id), 0);
        c.insert(id, 0, arc(1));
        c.invalidate(id);
        assert_eq!(c.epoch(id), 1);
        assert!(c.get_as::<u32>(id).is_none(), "entry dropped on rewrite");
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn stale_epoch_insert_is_discarded() {
        let c = NodeCache::new(8);
        let id = PageId(5);
        let observed = c.epoch(id);
        c.invalidate(id); // concurrent rewrite between snapshot and insert
        c.insert(id, observed, arc(1));
        assert!(
            c.get_as::<u32>(id).is_none(),
            "insert tagged with a superseded epoch must not publish"
        );
        // An insert at the *current* epoch publishes fine.
        c.insert(id, c.epoch(id), arc(2));
        assert_eq!(*c.get_as::<u32>(id).unwrap(), 2);
    }

    #[test]
    fn lru_eviction_bounds_entries() {
        let c = NodeCache::new(2);
        c.insert(PageId(1), 0, arc(1));
        c.insert(PageId(2), 0, arc(2));
        c.get_as::<u32>(PageId(1)); // 1 is now MRU
        c.insert(PageId(3), 0, arc(3));
        assert_eq!(c.resident(), 2);
        assert!(c.get_as::<u32>(PageId(2)).is_none(), "LRU entry evicted");
        assert!(c.get_as::<u32>(PageId(1)).is_some());
        assert!(c.get_as::<u32>(PageId(3)).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn hit_rate_reports() {
        let c = NodeCache::new(4);
        assert_eq!(c.stats().hit_rate(), 0.0);
        c.insert(PageId(1), 0, arc(1));
        c.get_as::<u32>(PageId(1));
        c.get_as::<u32>(PageId(2));
        let s = c.stats();
        assert_eq!(s.lookups(), 2);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        c.reset_stats();
        assert_eq!(c.stats(), NodeCacheStats::default());
    }
}
