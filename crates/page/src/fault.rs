//! Scripted fault injection for crash and corruption testing.
//!
//! [`FaultStorage`] wraps any [`Storage`] and misbehaves at scripted
//! points, remote-controlled through a shared [`FaultScript`]:
//!
//! * **Crash at write site `k`** — mutating operations (allocate, write,
//!   free, sync) share one monotone counter; operation `k` lands *torn*
//!   (only a prefix of the new bytes is persisted, the rest of the slot
//!   keeps its old content) and then every later mutation fails, modelling
//!   a process kill with the tail of one in-flight page write lost.
//! * **Transient read faults** — the next *n* reads fail with
//!   [`PageError::Io`]; used to exercise the pool's bounded retry.
//! * **Bit flips on read** — a scripted read returns its buffer with one
//!   bit flipped, modelling media corruption below the checksum layer.
//!
//! The wrapper is meant to sit *below* [`crate::ChecksumStorage`], so
//! every fault it injects damages framed bytes and must be caught by the
//! CRCs, never handed to a decoder.

use crate::{PageError, PageId, PageResult, Storage};
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::Arc;

const DISARMED: u64 = u64::MAX;

/// Shared remote control for one or more [`FaultStorage`] wrappers.
pub struct FaultScript {
    writes: AtomicU64,
    reads: AtomicU64,
    crash_at: AtomicU64,
    torn_millis: AtomicU64,
    fail_reads: AtomicU64,
    flip_read_at: AtomicU64,
    flip_spec: AtomicU64,
    delay_read_us: AtomicU64,
}

impl FaultScript {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            writes: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            crash_at: AtomicU64::new(DISARMED),
            torn_millis: AtomicU64::new(0),
            fail_reads: AtomicU64::new(0),
            flip_read_at: AtomicU64::new(DISARMED),
            flip_spec: AtomicU64::new(0),
            delay_read_us: AtomicU64::new(0),
        })
    }

    /// Arms a crash at mutation number `nth` (0-based, counted from
    /// storage creation): that operation persists only
    /// `torn_millis`/1000 of its bytes, and every mutation after it fails.
    pub fn crash_at_write(&self, nth: u64, torn_millis: u64) {
        self.torn_millis.store(torn_millis.min(1000), SeqCst);
        self.crash_at.store(nth, SeqCst);
    }

    /// Fails the next `n` reads with a transient [`PageError::Io`].
    pub fn fail_next_reads(&self, n: u64) {
        self.fail_reads.store(n, SeqCst);
    }

    /// Makes every subsequent physical read sleep for `micros`
    /// microseconds before returning, modelling a slow device. Used by
    /// the governance tests to prove that a cancel lands within one page
    /// fetch: with reads pinned at a known latency, the time from
    /// cancel to `Degraded` is bounded by a single read.
    pub fn delay_reads(&self, micros: u64) {
        self.delay_read_us.store(micros, SeqCst);
    }

    /// Flips `mask` into byte `offset` of the buffer returned by read
    /// number `nth` (0-based, counted from storage creation).
    pub fn flip_on_read(&self, nth: u64, offset: usize, mask: u8) {
        assert!(mask != 0, "a zero mask flips nothing");
        self.flip_spec
            .store(((offset as u64) << 8) | u64::from(mask), SeqCst);
        self.flip_read_at.store(nth, SeqCst);
    }

    /// Clears every armed fault (counters keep running).
    pub fn disarm(&self) {
        self.crash_at.store(DISARMED, SeqCst);
        self.fail_reads.store(0, SeqCst);
        self.flip_read_at.store(DISARMED, SeqCst);
        self.delay_read_us.store(0, SeqCst);
    }

    /// Mutations observed so far (allocate + write + free + sync).
    pub fn writes_seen(&self) -> u64 {
        self.writes.load(SeqCst)
    }

    /// Reads observed so far.
    pub fn reads_seen(&self) -> u64 {
        self.reads.load(SeqCst)
    }

    /// Whether the armed crash point has been reached.
    pub fn crashed(&self) -> bool {
        self.writes.load(SeqCst) > self.crash_at.load(SeqCst)
    }

    fn write_gate(&self) -> Gate {
        let idx = self.writes.fetch_add(1, SeqCst);
        let k = self.crash_at.load(SeqCst);
        match idx.cmp(&k) {
            std::cmp::Ordering::Less => Gate::Pass,
            std::cmp::Ordering::Equal => Gate::Torn(self.torn_millis.load(SeqCst)),
            std::cmp::Ordering::Greater => Gate::Offline,
        }
    }
}

enum Gate {
    Pass,
    Torn(u64),
    Offline,
}

fn crash_error() -> PageError {
    PageError::Io(std::io::Error::other("injected crash during write"))
}

fn offline_error() -> PageError {
    PageError::Io(std::io::Error::other(
        "storage offline after injected crash",
    ))
}

/// A [`Storage`] wrapper that injects the faults scripted in its
/// [`FaultScript`]. See the module docs.
pub struct FaultStorage<S: Storage> {
    inner: S,
    script: Arc<FaultScript>,
}

impl<S: Storage> FaultStorage<S> {
    /// Wraps `inner` and returns the script handle controlling it.
    pub fn new(inner: S) -> (Self, Arc<FaultScript>) {
        let script = FaultScript::new();
        (
            Self {
                inner,
                script: Arc::clone(&script),
            },
            script,
        )
    }

    /// Wraps `inner` under an existing script (e.g. to share one script
    /// across reopen cycles in a crash matrix).
    pub fn with_script(inner: S, script: Arc<FaultScript>) -> Self {
        Self { inner, script }
    }

    /// Unwraps the inner store.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: Storage> Storage for FaultStorage<S> {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn allocate(&mut self) -> PageResult<PageId> {
        match self.script.write_gate() {
            Gate::Pass => self.inner.allocate(),
            Gate::Torn(_) => {
                // The file grew but the caller never learns the id — the
                // slot is leaked until recovery reclaims it.
                let _ = self.inner.allocate();
                Err(crash_error())
            }
            Gate::Offline => Err(offline_error()),
        }
    }

    fn read(&self, id: PageId, buf: &mut [u8]) -> PageResult<()> {
        let idx = self.script.reads.fetch_add(1, SeqCst);
        let delay = self.script.delay_read_us.load(SeqCst);
        if delay > 0 {
            std::thread::sleep(std::time::Duration::from_micros(delay));
        }
        if self
            .script
            .fail_reads
            .fetch_update(SeqCst, SeqCst, |n| n.checked_sub(1))
            .is_ok()
        {
            return Err(PageError::Io(std::io::Error::other(
                "injected transient read fault",
            )));
        }
        self.inner.read(id, buf)?;
        if idx == self.script.flip_read_at.load(SeqCst) && !buf.is_empty() {
            let spec = self.script.flip_spec.load(SeqCst);
            let offset = (spec >> 8) as usize % buf.len();
            buf[offset] ^= (spec & 0xFF) as u8;
        }
        Ok(())
    }

    fn write(&mut self, id: PageId, data: &[u8]) -> PageResult<()> {
        match self.script.write_gate() {
            Gate::Pass => self.inner.write(id, data),
            Gate::Torn(millis) => {
                // Persist a prefix of the new bytes over the old content:
                // the write's tail — including the zero padding a complete
                // write would have produced — never lands.
                let ps = self.inner.page_size();
                let mut slot = vec![0u8; ps];
                if self.inner.read(id, &mut slot).is_err() {
                    slot.fill(0);
                }
                let keep = data.len() * millis as usize / 1000;
                slot[..keep].copy_from_slice(&data[..keep]);
                let _ = self.inner.write(id, &slot);
                Err(crash_error())
            }
            Gate::Offline => Err(offline_error()),
        }
    }

    fn free(&mut self, id: PageId) -> PageResult<()> {
        match self.script.write_gate() {
            Gate::Pass => self.inner.free(id),
            Gate::Torn(millis) => {
                // A torn free zeroes only a prefix of the slot and never
                // reaches the free-list bookkeeping.
                let ps = self.inner.page_size();
                let mut slot = vec![0u8; ps];
                if self.inner.read(id, &mut slot).is_err() {
                    slot.fill(0);
                }
                let keep = ps * millis as usize / 1000;
                slot[..keep].fill(0);
                let _ = self.inner.write(id, &slot);
                Err(crash_error())
            }
            Gate::Offline => Err(offline_error()),
        }
    }

    fn live_pages(&self) -> usize {
        self.inner.live_pages()
    }

    fn sync(&mut self) -> PageResult<()> {
        match self.script.write_gate() {
            Gate::Pass => self.inner.sync(),
            Gate::Torn(_) | Gate::Offline => Err(offline_error()),
        }
    }

    fn epoch(&self) -> u64 {
        self.inner.epoch()
    }

    fn advance_epoch(&mut self) -> u64 {
        self.inner.advance_epoch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStorage;

    #[test]
    fn passthrough_when_disarmed() {
        let (mut s, script) = FaultStorage::new(MemStorage::with_page_size(128));
        let a = s.allocate().unwrap();
        s.write(a, b"clean").unwrap();
        let mut buf = vec![0u8; 128];
        s.read(a, &mut buf).unwrap();
        assert_eq!(&buf[..5], b"clean");
        assert_eq!(script.writes_seen(), 2);
        assert_eq!(script.reads_seen(), 1);
        assert!(!script.crashed());
    }

    #[test]
    fn crash_tears_one_write_and_kills_the_rest() {
        let (mut s, script) = FaultStorage::new(MemStorage::with_page_size(128));
        let a = s.allocate().unwrap();
        s.write(a, &[0xAA; 128]).unwrap();
        // Next mutation (write #2) tears at half the payload.
        script.crash_at_write(2, 500);
        assert!(matches!(s.write(a, &[0xBB; 128]), Err(PageError::Io(_))));
        assert!(script.crashed());
        // Half new, half old.
        let mut buf = vec![0u8; 128];
        s.read(a, &mut buf).unwrap();
        assert!(buf[..64].iter().all(|&b| b == 0xBB));
        assert!(buf[64..].iter().all(|&b| b == 0xAA));
        // Storage is offline for mutations afterwards.
        assert!(matches!(s.allocate(), Err(PageError::Io(_))));
        assert!(matches!(s.sync(), Err(PageError::Io(_))));
        assert!(matches!(s.free(a), Err(PageError::Io(_))));
    }

    #[test]
    fn transient_read_faults_then_recover() {
        let (mut s, script) = FaultStorage::new(MemStorage::with_page_size(128));
        let a = s.allocate().unwrap();
        s.write(a, b"flaky").unwrap();
        script.fail_next_reads(2);
        let mut buf = vec![0u8; 128];
        assert!(matches!(s.read(a, &mut buf), Err(PageError::Io(_))));
        assert!(matches!(s.read(a, &mut buf), Err(PageError::Io(_))));
        s.read(a, &mut buf).unwrap();
        assert_eq!(&buf[..5], b"flaky");
    }

    #[test]
    fn scripted_bit_flip_hits_one_read() {
        let (mut s, script) = FaultStorage::new(MemStorage::with_page_size(128));
        let a = s.allocate().unwrap();
        s.write(a, &[0u8; 128]).unwrap();
        script.flip_on_read(script.reads_seen(), 7, 0x20);
        let mut buf = vec![0u8; 128];
        s.read(a, &mut buf).unwrap();
        assert_eq!(buf[7], 0x20, "scripted read is corrupted");
        s.read(a, &mut buf).unwrap();
        assert_eq!(buf[7], 0, "subsequent reads are clean");
    }
}
