//! Per-query resource governance: deadlines, cooperative cancellation,
//! and logical-read budgets.
//!
//! A serving system cannot let one pathological query (a huge-radius
//! range query on a high-overlap tree, a kNN scan over a degraded index)
//! hold a worker thread and the buffer pool hostage. [`QueryContext`]
//! carries the limits a caller imposes on one query; the
//! [`BufferPool`](crate::BufferPool)'s `*_ctx` read methods consult it
//! before every page fetch, so a cancel, an expired deadline, or an
//! exhausted budget is observed within **one pool read** — the unit the
//! paper's cost model charges for anyway.
//!
//! A denied fetch surfaces as [`PageError::Interrupted`] carrying the
//! typed [`Interrupt`]; index engines catch it and return their partial
//! results as a `Degraded` outcome instead of an error (see `hyt-index`).
//!
//! ```
//! use hyt_page::{BufferPool, IoStats, MemStorage, PageError, QueryContext};
//!
//! let pool = BufferPool::new(MemStorage::with_page_size(128), 4);
//! let a = pool.allocate().unwrap();
//! pool.write(a, b"x").unwrap();
//!
//! let ctx = QueryContext::default().with_max_reads(1);
//! let mut io = IoStats::default();
//! assert!(pool.read_tracked_ctx(a, &mut io, &ctx).is_ok());
//! // The second fetch exceeds the budget and is denied, typed.
//! assert!(matches!(
//!     pool.read_tracked_ctx(a, &mut io, &ctx),
//!     Err(PageError::Interrupted(i)) if i == hyt_page::Interrupt::BudgetExhausted
//! ));
//! ```

use crate::IoStats;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a governed page fetch was denied.
///
/// Ordered by how engines prioritize them: an explicit cancel wins over
/// an expired deadline, which wins over an exhausted budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Interrupt {
    /// The query's [`CancelToken`] was triggered.
    Cancelled,
    /// The query's deadline has passed.
    DeadlineExceeded,
    /// The query has spent its logical-read budget.
    BudgetExhausted,
}

impl fmt::Display for Interrupt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Interrupt::Cancelled => write!(f, "cancelled"),
            Interrupt::DeadlineExceeded => write!(f, "deadline exceeded"),
            Interrupt::BudgetExhausted => write!(f, "read budget exhausted"),
        }
    }
}

/// Cooperative cancellation handle shared between a query and its
/// controller (clones observe the same flag).
///
/// Cancellation is *cooperative*: the query observes the flag at its
/// next governed page fetch. There is no thread interruption, so a
/// cancelled query always unwinds through its own code, releasing pins
/// and locks normally.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Creates a token in the not-cancelled state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; every clone observes it.
    pub fn cancel(&self) {
        self.0.store(true, SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(SeqCst)
    }
}

/// Resource limits for one query: deadline, cancel token, logical-read
/// budget, and result-cardinality cap. All limits are optional; the
/// default context is unlimited.
///
/// The context is *checked* at page-fetch granularity by the pool's
/// `*_ctx` read methods (cancel/deadline/budget) and at result-append
/// granularity by the engines (result cap), so every limit is observed
/// within one page read.
#[derive(Clone, Debug, Default)]
pub struct QueryContext {
    /// Absolute point in time after which fetches are denied.
    pub deadline: Option<Instant>,
    /// Cooperative cancel flag.
    pub cancel: Option<CancelToken>,
    /// Maximum logical page reads (random + sequential) this query may
    /// issue. The N+1st fetch is denied.
    pub max_logical_reads: Option<u64>,
    /// Maximum result cardinality; engines stop traversal once reached
    /// and report the truncated answer as budget-degraded.
    pub max_results: Option<usize>,
}

impl QueryContext {
    /// The shared unlimited context (never denies anything).
    pub fn unlimited() -> &'static QueryContext {
        static UNLIMITED: QueryContext = QueryContext {
            deadline: None,
            cancel: None,
            max_logical_reads: None,
            max_results: None,
        };
        &UNLIMITED
    }

    /// Sets an absolute deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the deadline `timeout` from now.
    pub fn with_timeout(self, timeout: Duration) -> Self {
        self.with_deadline(Instant::now() + timeout)
    }

    /// Attaches a cancel token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Sets the logical-read budget.
    pub fn with_max_reads(mut self, max: u64) -> Self {
        self.max_logical_reads = Some(max);
        self
    }

    /// Sets the result-cardinality cap.
    pub fn with_max_results(mut self, max: usize) -> Self {
        self.max_results = Some(max);
        self
    }

    /// Whether any limit is set at all (an unlimited context lets
    /// callers skip governance bookkeeping entirely).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.cancel.is_none()
            && self.max_logical_reads.is_none()
            && self.max_results.is_none()
    }

    /// Checks cancel and deadline (not the read budget).
    pub fn check_interrupt(&self) -> Result<(), Interrupt> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(Interrupt::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(Interrupt::DeadlineExceeded);
            }
        }
        Ok(())
    }

    /// Full admission check for one more page fetch: cancel, deadline,
    /// then the read budget against the query's own accumulator `io`
    /// (per-query budgets work even when many queries share one pool).
    pub fn admit_read(&self, io: &IoStats) -> Result<(), Interrupt> {
        self.check_interrupt()?;
        if let Some(max) = self.max_logical_reads {
            if io.logical_reads + io.seq_reads >= max {
                return Err(Interrupt::BudgetExhausted);
            }
        }
        Ok(())
    }

    /// Whether `n` results reach the result-cardinality cap.
    pub fn result_cap_reached(&self, n: usize) -> bool {
        self.max_results.is_some_and(|m| n >= m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_admits_everything() {
        let ctx = QueryContext::unlimited();
        assert!(ctx.is_unlimited());
        let io = IoStats {
            logical_reads: u64::MAX / 2,
            ..IoStats::default()
        };
        assert!(ctx.admit_read(&io).is_ok());
        assert!(!ctx.result_cap_reached(usize::MAX));
    }

    #[test]
    fn cancel_token_is_shared_between_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(!clone.is_cancelled());
        t.cancel();
        assert!(clone.is_cancelled());
        let ctx = QueryContext::default().with_cancel(clone);
        assert_eq!(ctx.check_interrupt(), Err(Interrupt::Cancelled));
    }

    #[test]
    fn deadline_in_the_past_denies() {
        let ctx = QueryContext::default().with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(ctx.check_interrupt(), Err(Interrupt::DeadlineExceeded));
        // A generous deadline admits.
        let ctx = QueryContext::default().with_timeout(Duration::from_secs(3600));
        assert!(ctx.check_interrupt().is_ok());
    }

    #[test]
    fn budget_counts_random_and_sequential_reads() {
        let ctx = QueryContext::default().with_max_reads(3);
        let mut io = IoStats::default();
        assert!(ctx.admit_read(&io).is_ok());
        io.logical_reads = 2;
        io.seq_reads = 1;
        assert_eq!(ctx.admit_read(&io), Err(Interrupt::BudgetExhausted));
    }

    #[test]
    fn cancel_outranks_deadline_and_budget() {
        let token = CancelToken::new();
        token.cancel();
        let ctx = QueryContext::default()
            .with_cancel(token)
            .with_deadline(Instant::now() - Duration::from_millis(1))
            .with_max_reads(0);
        assert_eq!(
            ctx.admit_read(&IoStats::default()),
            Err(Interrupt::Cancelled)
        );
    }

    #[test]
    fn result_cap() {
        let ctx = QueryContext::default().with_max_results(5);
        assert!(!ctx.result_cap_reached(4));
        assert!(ctx.result_cap_reached(5));
        assert!(ctx.result_cap_reached(6));
    }

    #[test]
    fn interrupts_display() {
        assert_eq!(Interrupt::Cancelled.to_string(), "cancelled");
        assert!(Interrupt::DeadlineExceeded.to_string().contains("deadline"));
        assert!(Interrupt::BudgetExhausted.to_string().contains("budget"));
    }
}
