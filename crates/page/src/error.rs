//! Error type for the storage substrate.

use crate::{Interrupt, PageId};
use std::fmt;

/// Errors raised by page stores, buffer pools, and codecs.
#[derive(Debug)]
pub enum PageError {
    /// A page id that was never allocated or has been freed.
    UnknownPage(PageId),
    /// Serialized node content exceeded the page size.
    Overflow {
        /// Bytes the caller attempted to store.
        need: usize,
        /// The store's page size.
        cap: usize,
    },
    /// A serialized page failed to decode.
    Corrupt(String),
    /// The operation requires the page to be unpinned (e.g. freeing a
    /// page another handle still holds pinned).
    Pinned(PageId),
    /// An error from the underlying file.
    Io(std::io::Error),
    /// A governed read was denied by the query's [`QueryContext`]
    /// (cancel, deadline, or read budget — see [`Interrupt`]). Not a
    /// storage failure: the page and the pool are fine, the *query* has
    /// been told to stop. Engines translate this into a `Degraded`
    /// outcome carrying their partial results.
    ///
    /// [`QueryContext`]: crate::QueryContext
    Interrupted(Interrupt),
}

/// Convenience alias for fallible storage operations.
pub type PageResult<T> = Result<T, PageError>;

impl fmt::Display for PageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageError::UnknownPage(id) => write!(f, "unknown page {id}"),
            PageError::Overflow { need, cap } => {
                write!(f, "page overflow: need {need} bytes, page size is {cap}")
            }
            PageError::Corrupt(msg) => write!(f, "corrupt page: {msg}"),
            PageError::Pinned(id) => write!(f, "page {id} is pinned"),
            PageError::Io(e) => write!(f, "storage I/O error: {e}"),
            PageError::Interrupted(i) => write!(f, "query interrupted: {i}"),
        }
    }
}

impl std::error::Error for PageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PageError {
    fn from(e: std::io::Error) -> Self {
        PageError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PageError::Overflow {
            need: 5000,
            cap: 4096,
        };
        let s = e.to_string();
        assert!(s.contains("5000") && s.contains("4096"));
        assert!(PageError::UnknownPage(PageId(7)).to_string().contains("p7"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::other("boom");
        let e: PageError = io.into();
        assert!(matches!(e, PageError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
