//! The checksummed on-disk page frame.
//!
//! A framed page is [`HEADER_BYTES`] of header followed by the logical
//! payload, zero-padded to the logical page size:
//!
//! | offset | size | field                                         |
//! |--------|------|-----------------------------------------------|
//! | 0      | 4    | magic ([`PAGE_MAGIC`])                        |
//! | 4      | 1    | format version ([`FORMAT_VERSION`])           |
//! | 5      | 1    | flags ([`FLAG_LIVE`])                         |
//! | 6      | 2    | reserved (zero)                               |
//! | 8      | 4    | page id (must match the slot it is read from) |
//! | 12     | 4    | payload length before zero padding            |
//! | 16     | 8    | write epoch (see [`crate::ChecksumStorage`])  |
//! | 24     | 4    | CRC-32 of the zero-padded payload             |
//! | 28     | 4    | CRC-32 of header bytes 0..28                  |
//!
//! A fully zeroed header denotes a *free* page — freeing zeroes the slot on
//! disk — so an opener can rebuild the free list from headers alone, and a
//! torn write that only partially lands fails one of the two CRCs. The page
//! id in the header catches misdirected writes (a page persisted into the
//! wrong slot passes its own CRC but not the id check).

use crate::crc::crc32;
use crate::PageId;

/// Size of the frame header prepended to every page payload.
pub const HEADER_BYTES: usize = 32;

/// Magic number identifying a framed hybrid-tree page ("HYTG" LE).
pub const PAGE_MAGIC: u32 = 0x4754_5948;

/// Current frame format version.
pub const FORMAT_VERSION: u8 = 1;

/// Flag bit marking a live (allocated) page.
pub const FLAG_LIVE: u8 = 1;

/// What a frame header says about its page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeaderStatus {
    /// A valid live-page header.
    Live {
        /// Write epoch stamped at flush time.
        epoch: u64,
        /// Payload bytes before zero padding.
        payload_len: u32,
        /// Expected CRC-32 of the zero-padded payload.
        payload_crc: u32,
    },
    /// An all-zero header: the slot is free.
    Free,
    /// The header fails validation.
    Corrupt(String),
}

/// What a full frame (header + payload) says about its page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameStatus {
    /// Header and payload both check out.
    Live {
        /// Write epoch stamped at flush time.
        epoch: u64,
        /// Payload bytes before zero padding.
        payload_len: u32,
    },
    /// The slot is free (zeroed header; payload content is don't-care).
    Free,
    /// The frame fails validation.
    Corrupt(String),
}

/// Encodes `payload` as a framed page into `out`, which must be the full
/// inner page size (`HEADER_BYTES` + logical size). `out` is fully
/// overwritten: payload bytes are zero-padded and both CRCs are stamped.
///
/// # Panics
/// Panics if `out` is smaller than `HEADER_BYTES + payload.len()` — a
/// caller bug, not a data-dependent condition (callers size `out` from
/// their own page size and bound `payload` by it first).
pub fn encode_frame(id: PageId, epoch: u64, payload: &[u8], out: &mut [u8]) {
    assert!(
        out.len() >= HEADER_BYTES + payload.len(),
        "frame buffer too small"
    );
    out.fill(0);
    out[HEADER_BYTES..HEADER_BYTES + payload.len()].copy_from_slice(payload);
    let payload_crc = crc32(&out[HEADER_BYTES..]);
    out[0..4].copy_from_slice(&PAGE_MAGIC.to_le_bytes());
    out[4] = FORMAT_VERSION;
    out[5] = FLAG_LIVE;
    // bytes 6..8 reserved, already zero
    out[8..12].copy_from_slice(&id.0.to_le_bytes());
    out[12..16].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    out[16..24].copy_from_slice(&epoch.to_le_bytes());
    out[24..28].copy_from_slice(&payload_crc.to_le_bytes());
    let header_crc = crc32(&out[..28]);
    out[28..32].copy_from_slice(&header_crc.to_le_bytes());
}

fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

/// Classifies a frame *header* (the first [`HEADER_BYTES`] of a slot)
/// without reading the payload — this is what lets an opener rebuild the
/// free list and find the newest epoch from header-size reads alone.
pub fn inspect_header(expect_id: PageId, header: &[u8; HEADER_BYTES]) -> HeaderStatus {
    if header.iter().all(|&b| b == 0) {
        return HeaderStatus::Free;
    }
    let stored_header_crc = le_u32(&header[28..32]);
    if crc32(&header[..28]) != stored_header_crc {
        return HeaderStatus::Corrupt("frame header checksum mismatch".into());
    }
    let magic = le_u32(&header[0..4]);
    if magic != PAGE_MAGIC {
        return HeaderStatus::Corrupt(format!(
            "bad frame magic {magic:#010x} (expected {PAGE_MAGIC:#010x})"
        ));
    }
    if header[4] != FORMAT_VERSION {
        return HeaderStatus::Corrupt(format!(
            "unsupported frame format version {} (expected {FORMAT_VERSION})",
            header[4]
        ));
    }
    if header[5] != FLAG_LIVE {
        return HeaderStatus::Corrupt(format!("bad frame flags {:#04x}", header[5]));
    }
    let id = le_u32(&header[8..12]);
    if id != expect_id.0 {
        return HeaderStatus::Corrupt(format!(
            "frame stamped for page {id} found in slot {expect_id}"
        ));
    }
    HeaderStatus::Live {
        epoch: le_u64(&header[16..24]),
        payload_len: le_u32(&header[12..16]),
        payload_crc: le_u32(&header[24..28]),
    }
}

/// Validates a full framed slot (header + payload) read from page
/// `expect_id`. Every classification is a return value; this function
/// never panics on any byte pattern.
pub fn inspect_frame(expect_id: PageId, framed: &[u8]) -> FrameStatus {
    if framed.len() < HEADER_BYTES {
        return FrameStatus::Corrupt(format!(
            "frame of {} bytes is shorter than the {HEADER_BYTES}-byte header",
            framed.len()
        ));
    }
    let mut header = [0u8; HEADER_BYTES];
    header.copy_from_slice(&framed[..HEADER_BYTES]);
    match inspect_header(expect_id, &header) {
        HeaderStatus::Free => FrameStatus::Free,
        HeaderStatus::Corrupt(msg) => FrameStatus::Corrupt(msg),
        HeaderStatus::Live {
            epoch,
            payload_len,
            payload_crc,
        } => {
            let payload = &framed[HEADER_BYTES..];
            if payload_len as usize > payload.len() {
                return FrameStatus::Corrupt(format!(
                    "payload length {payload_len} exceeds page capacity {}",
                    payload.len()
                ));
            }
            if crc32(payload) != payload_crc {
                return FrameStatus::Corrupt("payload checksum mismatch".into());
            }
            FrameStatus::Live { epoch, payload_len }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn framed(id: PageId, epoch: u64, payload: &[u8]) -> Vec<u8> {
        let mut buf = vec![0u8; HEADER_BYTES + 128];
        encode_frame(id, epoch, payload, &mut buf);
        buf
    }

    #[test]
    fn roundtrip_live_frame() {
        let buf = framed(PageId(7), 3, b"payload");
        match inspect_frame(PageId(7), &buf) {
            FrameStatus::Live { epoch, payload_len } => {
                assert_eq!(epoch, 3);
                assert_eq!(payload_len, 7);
            }
            other => panic!("expected live, got {other:?}"),
        }
        assert_eq!(&buf[HEADER_BYTES..HEADER_BYTES + 7], b"payload");
    }

    #[test]
    fn zeroed_slot_is_free() {
        let buf = vec![0u8; HEADER_BYTES + 128];
        assert_eq!(inspect_frame(PageId(0), &buf), FrameStatus::Free);
        let header = [0u8; HEADER_BYTES];
        assert_eq!(inspect_header(PageId(0), &header), HeaderStatus::Free);
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let reference = framed(PageId(2), 9, b"bits matter");
        for pos in 0..reference.len() {
            for bit in 0..8 {
                let mut buf = reference.clone();
                buf[pos] ^= 1 << bit;
                match inspect_frame(PageId(2), &buf) {
                    FrameStatus::Corrupt(_) => {}
                    other => panic!("flip at {pos}:{bit} undetected: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn misdirected_write_is_detected() {
        // A frame persisted into the wrong slot passes its CRCs but not
        // the id check.
        let buf = framed(PageId(4), 1, b"wrong slot");
        match inspect_frame(PageId(5), &buf) {
            FrameStatus::Corrupt(msg) => assert!(msg.contains("slot")),
            other => panic!("expected corrupt, got {other:?}"),
        }
    }

    #[test]
    fn truncated_frame_is_corrupt() {
        let buf = framed(PageId(1), 1, b"x");
        for cut in [0, 1, HEADER_BYTES - 1] {
            assert!(matches!(
                inspect_frame(PageId(1), &buf[..cut]),
                FrameStatus::Corrupt(_)
            ));
        }
    }

    #[test]
    fn overclaiming_payload_len_is_corrupt() {
        let mut buf = framed(PageId(3), 1, b"claim");
        // Forge payload_len beyond capacity and re-stamp the header CRC so
        // only the length check can reject it.
        buf[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        let crc = crate::crc::crc32(&buf[..28]);
        buf[28..32].copy_from_slice(&crc.to_le_bytes());
        match inspect_frame(PageId(3), &buf) {
            FrameStatus::Corrupt(msg) => assert!(msg.contains("exceeds")),
            other => panic!("expected corrupt, got {other:?}"),
        }
    }
}
