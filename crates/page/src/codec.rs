//! Little-endian byte codecs for serializing nodes into pages.
//!
//! All on-page formats in the workspace are written through [`ByteWriter`]
//! and parsed with [`ByteReader`]. The reader is bounds-checked and returns
//! [`PageError::Corrupt`] instead of panicking, so a damaged page surfaces
//! as an error rather than UB or a crash.

use crate::{PageError, PageResult};

/// An append-only little-endian encoder.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with preallocated capacity (typically a page size).
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer and returns its buffer.
    pub fn into_inner(self) -> Vec<u8> {
        self.buf
    }

    /// The encoded bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f32`.
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64`.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// A bounds-checked little-endian decoder over a byte slice.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current cursor position.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> PageResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(PageError::Corrupt(format!(
                "decode underflow: need {n} bytes at offset {}, only {} remain",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// [`take`](Self::take) into a fixed-width array, so the integer
    /// getters below stay free of slice-to-array conversions that would
    /// need an unwrap.
    fn take_array<const N: usize>(&mut self) -> PageResult<[u8; N]> {
        let s = self.take(N)?;
        let mut a = [0u8; N];
        a.copy_from_slice(s);
        Ok(a)
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> PageResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`.
    pub fn get_u16(&mut self) -> PageResult<u16> {
        Ok(u16::from_le_bytes(self.take_array()?))
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self) -> PageResult<u32> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> PageResult<u64> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    /// Reads an `f32`.
    pub fn get_f32(&mut self) -> PageResult<f32> {
        Ok(f32::from_le_bytes(self.take_array()?))
    }

    /// Reads an `f64`.
    pub fn get_f64(&mut self) -> PageResult<f64> {
        Ok(f64::from_le_bytes(self.take_array()?))
    }

    /// Reads `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> PageResult<&'a [u8]> {
        self.take(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = ByteWriter::new();
        w.put_u8(0xAB);
        w.put_u16(0xCDEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0123_4567_89AB_CDEF);
        w.put_f32(1.5);
        w.put_f64(-2.25);
        w.put_bytes(b"hybrid");
        let buf = w.into_inner();

        let mut r = ByteReader::new(&buf);
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert_eq!(r.get_u16().unwrap(), 0xCDEF);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f32().unwrap(), 1.5);
        assert_eq!(r.get_f64().unwrap(), -2.25);
        assert_eq!(r.get_bytes(6).unwrap(), b"hybrid");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn underflow_is_error_not_panic() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(matches!(r.get_u32(), Err(PageError::Corrupt(_))));
        // Cursor is not advanced by a failed read.
        assert_eq!(r.get_u16().unwrap(), 0x0201);
    }

    #[test]
    fn position_tracks_consumption() {
        let mut r = ByteReader::new(&[0; 10]);
        assert_eq!(r.position(), 0);
        r.get_u32().unwrap();
        assert_eq!(r.position(), 4);
        assert_eq!(r.remaining(), 6);
    }

    proptest! {
        #[test]
        fn f32_roundtrip(v in proptest::num::f32::ANY) {
            let mut w = ByteWriter::new();
            w.put_f32(v);
            let buf = w.into_inner();
            let got = ByteReader::new(&buf).get_f32().unwrap();
            prop_assert_eq!(v.to_bits(), got.to_bits());
        }

        #[test]
        fn mixed_sequence_roundtrip(vals in proptest::collection::vec(0u32..u32::MAX, 0..64)) {
            let mut w = ByteWriter::with_capacity(vals.len() * 4);
            for v in &vals { w.put_u32(*v); }
            let buf = w.into_inner();
            prop_assert_eq!(buf.len(), vals.len() * 4);
            let mut r = ByteReader::new(&buf);
            for v in &vals {
                prop_assert_eq!(r.get_u32().unwrap(), *v);
            }
        }
    }
}
