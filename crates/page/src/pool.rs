//! Buffer pool with LRU replacement, pinning, and I/O accounting.

use crate::{PageError, PageId, PageResult, Storage};
use std::collections::HashMap;

/// I/O counters maintained by a [`BufferPool`].
///
/// The paper's cost metric is the *average number of disk accesses per
/// query* where every node visited costs one access, and sequential
/// accesses (the linear-scan baseline) are 10x cheaper than random ones
/// (§4). `logical_reads` is therefore the number used for index costs;
/// `seq_reads` is used by the scan baseline; the physical counters expose
/// what actually hit the backing store given the pool's capacity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Page reads requested by the index (random accesses in the paper's
    /// cost model).
    pub logical_reads: u64,
    /// Page reads requested through the sequential path (linear scan).
    pub seq_reads: u64,
    /// Page writes requested by the index.
    pub logical_writes: u64,
    /// Reads that missed the pool and hit the backing store.
    pub physical_reads: u64,
    /// Writes (evictions + flushes) that hit the backing store.
    pub physical_writes: u64,
    /// Reads satisfied from the pool.
    pub hits: u64,
}

impl IoStats {
    /// Total accesses under the paper's cost model: random reads plus
    /// sequential reads discounted 10x.
    pub fn weighted_accesses(&self) -> f64 {
        self.logical_reads as f64 + self.seq_reads as f64 * 0.1
    }
}

struct Frame {
    data: Box<[u8]>,
    dirty: bool,
    pins: u32,
    last_used: u64,
}

/// A write-back buffer pool over any [`Storage`].
///
/// `capacity` is the maximum number of resident frames; `0` disables
/// caching entirely (every access is physical), which models the paper's
/// cold-cache disk-access counting exactly. Pinned pages are never evicted.
pub struct BufferPool<S: Storage> {
    storage: S,
    frames: HashMap<PageId, Frame>,
    capacity: usize,
    tick: u64,
    stats: IoStats,
}

impl<S: Storage> BufferPool<S> {
    /// Wraps `storage` with a pool holding up to `capacity` pages.
    pub fn new(storage: S, capacity: usize) -> Self {
        Self {
            storage,
            frames: HashMap::with_capacity(capacity.min(1 << 16)),
            capacity,
            tick: 0,
            stats: IoStats::default(),
        }
    }

    /// The underlying page size.
    pub fn page_size(&self) -> usize {
        self.storage.page_size()
    }

    /// Number of live pages in the backing store.
    pub fn live_pages(&self) -> usize {
        self.storage.live_pages()
    }

    /// Current I/O counters.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Resets the I/O counters (e.g. between build and query phases).
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::default();
    }

    /// Allocates a new page.
    pub fn allocate(&mut self) -> PageResult<PageId> {
        self.storage.allocate()
    }

    /// Frees a page, dropping any cached frame.
    pub fn free(&mut self, id: PageId) -> PageResult<()> {
        if let Some(f) = self.frames.remove(&id) {
            assert_eq!(f.pins, 0, "freeing a pinned page");
        }
        self.storage.free(id)
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    fn evict_if_needed(&mut self) -> PageResult<()> {
        while self.frames.len() > self.capacity {
            let victim = self
                .frames
                .iter()
                .filter(|(_, f)| f.pins == 0)
                .min_by_key(|(_, f)| f.last_used)
                .map(|(id, _)| *id);
            let Some(victim) = victim else {
                // Everything is pinned; allow temporary over-capacity.
                return Ok(());
            };
            let frame = self.frames.remove(&victim).unwrap();
            if frame.dirty {
                self.stats.physical_writes += 1;
                self.storage.write(victim, &frame.data)?;
            }
        }
        Ok(())
    }

    fn read_impl(&mut self, id: PageId) -> PageResult<Vec<u8>> {
        if self.capacity == 0 {
            // Uncached mode: go straight to storage.
            self.stats.physical_reads += 1;
            let mut buf = vec![0u8; self.storage.page_size()];
            self.storage.read(id, &mut buf)?;
            return Ok(buf);
        }
        let tick = self.next_tick();
        if let Some(f) = self.frames.get_mut(&id) {
            self.stats.hits += 1;
            f.last_used = tick;
            return Ok(f.data.to_vec());
        }
        self.stats.physical_reads += 1;
        let mut buf = vec![0u8; self.storage.page_size()];
        self.storage.read(id, &mut buf)?;
        self.frames.insert(
            id,
            Frame {
                data: buf.clone().into_boxed_slice(),
                dirty: false,
                pins: 0,
                last_used: tick,
            },
        );
        // The new frame may itself be the eviction victim when every other
        // frame is pinned; `buf` is already in hand, so that is harmless.
        self.evict_if_needed()?;
        Ok(buf)
    }

    /// Reads a page (counted as one random access).
    pub fn read(&mut self, id: PageId) -> PageResult<Vec<u8>> {
        self.stats.logical_reads += 1;
        self.read_impl(id)
    }

    /// Reads a page through the sequential path (counted as one sequential
    /// access; used by the linear-scan baseline).
    pub fn read_sequential(&mut self, id: PageId) -> PageResult<Vec<u8>> {
        self.stats.seq_reads += 1;
        self.read_impl(id)
    }

    /// Writes page contents (write-back; flushed on eviction or
    /// [`flush_all`](Self::flush_all)).
    pub fn write(&mut self, id: PageId, data: &[u8]) -> PageResult<()> {
        if data.len() > self.storage.page_size() {
            return Err(PageError::Overflow {
                need: data.len(),
                cap: self.storage.page_size(),
            });
        }
        self.stats.logical_writes += 1;
        if self.capacity == 0 {
            self.stats.physical_writes += 1;
            return self.storage.write(id, data);
        }
        let ps = self.storage.page_size();
        let mut page = vec![0u8; ps];
        page[..data.len()].copy_from_slice(data);
        let tick = self.next_tick();
        match self.frames.get_mut(&id) {
            Some(f) => {
                f.data = page.into_boxed_slice();
                f.dirty = true;
                f.last_used = tick;
            }
            None => {
                self.frames.insert(
                    id,
                    Frame {
                        data: page.into_boxed_slice(),
                        dirty: true,
                        pins: 0,
                        last_used: tick,
                    },
                );
                self.evict_if_needed()?;
            }
        }
        Ok(())
    }

    /// Pins a page, faulting it in; pinned pages are never evicted.
    pub fn pin(&mut self, id: PageId) -> PageResult<()> {
        if self.capacity == 0 {
            return Ok(()); // pinning is meaningless without frames
        }
        let tick = self.next_tick();
        if let Some(f) = self.frames.get_mut(&id) {
            f.pins += 1;
            f.last_used = tick;
            return Ok(());
        }
        self.stats.physical_reads += 1;
        let mut buf = vec![0u8; self.storage.page_size()];
        self.storage.read(id, &mut buf)?;
        self.frames.insert(
            id,
            Frame {
                data: buf.into_boxed_slice(),
                dirty: false,
                pins: 1, // pinned before any eviction can pick it
                last_used: tick,
            },
        );
        self.evict_if_needed()
    }

    /// Releases one pin.
    ///
    /// # Panics
    /// Panics if the page is not pinned (pin/unpin imbalance is a bug).
    pub fn unpin(&mut self, id: PageId) {
        if self.capacity == 0 {
            return;
        }
        let f = self
            .frames
            .get_mut(&id)
            .expect("unpin of non-resident page");
        assert!(f.pins > 0, "unpin without matching pin");
        f.pins -= 1;
    }

    /// Writes every dirty frame back to storage.
    pub fn flush_all(&mut self) -> PageResult<()> {
        let mut dirty: Vec<PageId> = self
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(id, _)| *id)
            .collect();
        dirty.sort();
        for id in dirty {
            let data = self.frames[&id].data.clone();
            self.stats.physical_writes += 1;
            self.storage.write(id, &data)?;
            self.frames.get_mut(&id).unwrap().dirty = false;
        }
        Ok(())
    }

    /// Flushes and returns the backing store.
    pub fn into_storage(mut self) -> PageResult<S> {
        self.flush_all()?;
        Ok(self.storage)
    }

    /// Read-only access to the backing store.
    pub fn storage(&self) -> &S {
        &self.storage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStorage;

    fn pool(capacity: usize) -> BufferPool<MemStorage> {
        BufferPool::new(MemStorage::with_page_size(128), capacity)
    }

    #[test]
    fn read_write_roundtrip_cached() {
        let mut p = pool(4);
        let a = p.allocate().unwrap();
        p.write(a, b"cached").unwrap();
        let got = p.read(a).unwrap();
        assert_eq!(&got[..6], b"cached");
        let s = p.stats();
        assert_eq!(s.logical_reads, 1);
        assert_eq!(s.hits, 1, "read after write hits the pool");
        assert_eq!(s.physical_reads, 0);
    }

    #[test]
    fn capacity_zero_counts_every_access_as_physical() {
        let mut p = pool(0);
        let a = p.allocate().unwrap();
        p.write(a, b"x").unwrap();
        p.read(a).unwrap();
        p.read(a).unwrap();
        let s = p.stats();
        assert_eq!(s.logical_reads, 2);
        assert_eq!(s.physical_reads, 2);
        assert_eq!(s.hits, 0);
        assert_eq!(s.physical_writes, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut p = pool(2);
        let ids: Vec<_> = (0..3).map(|_| p.allocate().unwrap()).collect();
        for (i, id) in ids.iter().enumerate() {
            p.write(*id, &[i as u8]).unwrap();
        }
        // Pool holds at most 2; ids[0] was least recently used and evicted.
        p.read(ids[1]).unwrap();
        p.read(ids[2]).unwrap();
        let before = p.stats().physical_reads;
        p.read(ids[0]).unwrap();
        assert_eq!(p.stats().physical_reads, before + 1, "ids[0] was evicted");
        // Its content survived the eviction (write-back).
        assert_eq!(p.read(ids[0]).unwrap()[0], 0);
    }

    #[test]
    fn pinned_pages_survive_eviction_pressure() {
        let mut p = pool(1);
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        p.write(a, b"pinned").unwrap();
        p.pin(a).unwrap();
        p.write(b, b"other").unwrap();
        p.read(b).unwrap();
        // `a` is pinned; reading it again must be a hit.
        let hits_before = p.stats().hits;
        p.read(a).unwrap();
        assert_eq!(p.stats().hits, hits_before + 1);
        p.unpin(a);
    }

    #[test]
    #[should_panic(expected = "unpin without matching pin")]
    fn unbalanced_unpin_panics() {
        let mut p = pool(2);
        let a = p.allocate().unwrap();
        p.pin(a).unwrap();
        p.unpin(a);
        p.unpin(a);
    }

    #[test]
    fn flush_all_persists_dirty_frames() {
        let mut p = pool(8);
        let a = p.allocate().unwrap();
        p.write(a, b"durable").unwrap();
        p.flush_all().unwrap();
        let mut storage = p.into_storage().unwrap();
        let mut buf = vec![0u8; 128];
        storage.read(a, &mut buf).unwrap();
        assert_eq!(&buf[..7], b"durable");
    }

    #[test]
    fn sequential_reads_tracked_separately() {
        let mut p = pool(0);
        let a = p.allocate().unwrap();
        p.write(a, b"s").unwrap();
        p.read_sequential(a).unwrap();
        let s = p.stats();
        assert_eq!(s.seq_reads, 1);
        assert_eq!(s.logical_reads, 0);
        assert!((s.weighted_accesses() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut p = pool(2);
        let a = p.allocate().unwrap();
        p.write(a, b"x").unwrap();
        p.read(a).unwrap();
        p.reset_stats();
        assert_eq!(p.stats(), IoStats::default());
    }

    #[test]
    fn free_drops_frame() {
        let mut p = pool(2);
        let a = p.allocate().unwrap();
        p.write(a, b"gone").unwrap();
        p.free(a).unwrap();
        assert!(p.read(a).is_err());
    }
}
