//! Buffer pool with LRU replacement, pinning, and I/O accounting.
//!
//! The pool is safe to share across threads: the frame table is split
//! into shards, each behind its own [`parking_lot::Mutex`], the backing
//! [`Storage`] sits behind a [`parking_lot::RwLock`] (cache misses take
//! the shared read lock, so physical reads overlap), and the global I/O
//! counters are atomics. Lock order is always shard → storage, and no
//! operation holds two shard locks, so the pool cannot deadlock against
//! itself.
//!
//! Small pools (capacity below [`SHARDING_THRESHOLD`]) use a single
//! shard, which preserves exact global LRU order — the cost-model
//! experiments depend on that determinism. Large pools trade exact LRU
//! for per-shard LRU to cut contention.

use crate::cache::{NodeCache, NodeCacheStats};
use crate::{PageError, PageId, PageResult, QueryContext, Storage};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// Pools at least this large split their frame table into
/// `NUM_SHARDS` shards; smaller pools keep one shard and exact LRU.
pub const SHARDING_THRESHOLD: usize = 128;

/// Shard count for large pools (power of two; ids map by bitmask).
const NUM_SHARDS: usize = 16;

/// Transient-I/O read attempts beyond the first before the error is
/// surfaced; backoff doubles from [`RETRY_BASE_DELAY_US`] per attempt.
const READ_RETRY_LIMIT: u32 = 3;

/// First retry backoff in microseconds.
const RETRY_BASE_DELAY_US: u64 = 50;

/// I/O counters maintained by a [`BufferPool`].
///
/// The paper's cost metric is the *average number of disk accesses per
/// query* where every node visited costs one access, and sequential
/// accesses (the linear-scan baseline) are 10x cheaper than random ones
/// (§4). `logical_reads` is therefore the number used for index costs;
/// `seq_reads` is used by the scan baseline; the physical counters expose
/// what actually hit the backing store given the pool's capacity.
///
/// Two sets of these counters exist: the pool-global set (read with
/// [`BufferPool::stats`]) and per-caller accumulators filled by the
/// `*_tracked` methods, which attribute I/O to the query that incurred
/// it. `logical_reads` and `seq_reads` of a query depend only on the
/// pages its traversal requests, so they are identical whether queries
/// run serially or interleaved on many threads; `hits`/`physical_reads`
/// depend on what the shared cache happens to hold at the time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Page reads requested by the index (random accesses in the paper's
    /// cost model).
    pub logical_reads: u64,
    /// Page reads requested through the sequential path (linear scan).
    pub seq_reads: u64,
    /// Page writes requested by the index.
    pub logical_writes: u64,
    /// Reads that missed the pool and hit the backing store.
    pub physical_reads: u64,
    /// Writes (evictions + flushes) that hit the backing store.
    pub physical_writes: u64,
    /// Reads satisfied from the pool.
    pub hits: u64,
    /// Physical read attempts that failed transiently and were retried
    /// (see the pool's bounded retry-with-backoff; a read that exhausts
    /// its retries surfaces the I/O error to the caller).
    pub retried_reads: u64,
}

impl IoStats {
    /// Total accesses under the paper's cost model: random reads plus
    /// sequential reads discounted 10x.
    pub fn weighted_accesses(&self) -> f64 {
        self.logical_reads as f64 + self.seq_reads as f64 * 0.1
    }

    /// Adds another set of counters (e.g. folding per-query stats into a
    /// batch total).
    pub fn merge(&mut self, other: &IoStats) {
        self.logical_reads += other.logical_reads;
        self.seq_reads += other.seq_reads;
        self.logical_writes += other.logical_writes;
        self.physical_reads += other.physical_reads;
        self.physical_writes += other.physical_writes;
        self.hits += other.hits;
        self.retried_reads += other.retried_reads;
    }
}

/// Pool-global counters, updated concurrently by every handle.
#[derive(Default)]
struct AtomicIoStats {
    logical_reads: AtomicU64,
    seq_reads: AtomicU64,
    logical_writes: AtomicU64,
    physical_reads: AtomicU64,
    physical_writes: AtomicU64,
    hits: AtomicU64,
    retried_reads: AtomicU64,
}

impl AtomicIoStats {
    fn snapshot(&self) -> IoStats {
        IoStats {
            logical_reads: self.logical_reads.load(Relaxed),
            seq_reads: self.seq_reads.load(Relaxed),
            logical_writes: self.logical_writes.load(Relaxed),
            physical_reads: self.physical_reads.load(Relaxed),
            physical_writes: self.physical_writes.load(Relaxed),
            hits: self.hits.load(Relaxed),
            retried_reads: self.retried_reads.load(Relaxed),
        }
    }

    fn reset(&self) {
        self.logical_reads.store(0, Relaxed);
        self.seq_reads.store(0, Relaxed);
        self.logical_writes.store(0, Relaxed);
        self.physical_reads.store(0, Relaxed);
        self.physical_writes.store(0, Relaxed);
        self.hits.store(0, Relaxed);
        self.retried_reads.store(0, Relaxed);
    }
}

struct Frame {
    data: Box<[u8]>,
    dirty: bool,
    pins: u32,
    last_used: u64,
}

struct Shard {
    frames: HashMap<PageId, Frame>,
    /// Per-shard LRU clock; monotone under the shard lock.
    tick: u64,
    /// This shard's slice of the pool capacity.
    capacity: usize,
}

impl Shard {
    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Evicts LRU unpinned frames until at most `target` remain, writing
    /// dirty victims back through `storage`. If every frame is pinned the
    /// shard is left over target (callers shrink back on unpin).
    fn evict_to<S: Storage>(
        &mut self,
        target: usize,
        storage: &RwLock<S>,
        stats: &AtomicIoStats,
    ) -> PageResult<()> {
        while self.frames.len() > target {
            let victim = self
                .frames
                .iter()
                .filter(|(_, f)| f.pins == 0)
                .min_by_key(|(_, f)| f.last_used)
                .map(|(id, _)| *id);
            let Some(victim) = victim else {
                // Everything is pinned; allow temporary over-capacity.
                return Ok(());
            };
            let Some(frame) = self.frames.remove(&victim) else {
                debug_assert!(false, "eviction victim vanished under the shard lock");
                return Ok(());
            };
            if frame.dirty {
                stats.physical_writes.fetch_add(1, Relaxed);
                storage.write().write(victim, &frame.data)?;
            }
        }
        Ok(())
    }
}

/// A write-back buffer pool over any [`Storage`], shareable across
/// threads (`&BufferPool` supports every read/write operation).
///
/// `capacity` is the maximum number of resident frames; `0` disables
/// caching entirely (every access is physical), which models the paper's
/// cold-cache disk-access counting exactly. Pinned pages are never
/// evicted; if an insertion finds every frame pinned the pool runs over
/// capacity temporarily and shrinks back on the next unpin.
pub struct BufferPool<S: Storage> {
    storage: RwLock<S>,
    shards: Box<[Mutex<Shard>]>,
    capacity: usize,
    page_size: usize,
    stats: AtomicIoStats,
    node_cache: NodeCache,
}

impl<S: Storage> BufferPool<S> {
    /// Wraps `storage` with a pool holding up to `capacity` pages and no
    /// decoded-node cache (see
    /// [`with_node_cache`](Self::with_node_cache)).
    pub fn new(storage: S, capacity: usize) -> Self {
        Self::with_node_cache(storage, capacity, 0)
    }

    /// Wraps `storage` with a pool holding up to `capacity` pages plus a
    /// [`NodeCache`] bounded to `cache_entries` decoded nodes
    /// (`0` disables it; queries then decode on every visit).
    pub fn with_node_cache(storage: S, capacity: usize, cache_entries: usize) -> Self {
        let page_size = storage.page_size();
        let n = if capacity < SHARDING_THRESHOLD {
            1
        } else {
            NUM_SHARDS
        };
        let shards = (0..n)
            .map(|i| {
                // Spread the capacity so the shard slices sum exactly.
                let cap = capacity / n + usize::from(i < capacity % n);
                Mutex::new(Shard {
                    frames: HashMap::with_capacity(cap.min(1 << 16)),
                    tick: 0,
                    capacity: cap,
                })
            })
            .collect();
        Self {
            storage: RwLock::new(storage),
            shards,
            capacity,
            page_size,
            stats: AtomicIoStats::default(),
            node_cache: NodeCache::new(cache_entries),
        }
    }

    fn shard(&self, id: PageId) -> &Mutex<Shard> {
        &self.shards[id.0 as usize & (self.shards.len() - 1)]
    }

    /// The underlying page size.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of live pages in the backing store.
    pub fn live_pages(&self) -> usize {
        self.storage.read().live_pages()
    }

    /// Number of frames currently resident across all shards.
    pub fn resident_frames(&self) -> usize {
        self.shards.iter().map(|s| s.lock().frames.len()).sum()
    }

    /// Number of resident frames with at least one pin outstanding.
    /// Query traversals never hold pins across page fetches, so this
    /// returns to its baseline after every query — including one that
    /// was interrupted mid-traversal (asserted by the governance tests).
    pub fn pinned_frames(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().frames.values().filter(|f| f.pins > 0).count())
            .sum()
    }

    /// Current pool-global I/O counters.
    pub fn stats(&self) -> IoStats {
        self.stats.snapshot()
    }

    /// Resets the pool-global I/O counters (e.g. between build and query
    /// phases).
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Allocates a new page.
    pub fn allocate(&self) -> PageResult<PageId> {
        self.storage.write().allocate()
    }

    /// Frees a page, dropping any cached frame and decoded node.
    ///
    /// Freeing a page that is still pinned fails with
    /// [`PageError::Pinned`] and leaves both the frame and the backing
    /// page untouched.
    pub fn free(&self, id: PageId) -> PageResult<()> {
        let mut shard = self.shard(id).lock();
        if let Some(f) = shard.frames.get(&id) {
            if f.pins > 0 {
                return Err(PageError::Pinned(id));
            }
            shard.frames.remove(&id);
        }
        // Evict the decoded form while the frame shard lock is held, so
        // a concurrent decode racing the free inserts (if at all) under
        // a superseded epoch and is discarded.
        self.node_cache.invalidate(id);
        // Shard lock is still held so no concurrent read can fault the
        // page back in between the frame drop and the storage free.
        self.storage.write().free(id)
    }

    /// One physical read with bounded retry: transient [`PageError::Io`]
    /// failures are retried up to [`READ_RETRY_LIMIT`] times with
    /// exponential backoff (the storage lock is *released* between
    /// attempts, so a retrying reader never stalls writers). Typed
    /// corruption ([`PageError::Corrupt`]) is never retried — re-reading
    /// a bad checksum cannot make the bytes right.
    fn physical_read(&self, id: PageId, buf: &mut [u8], io: &mut IoStats) -> PageResult<()> {
        let mut attempt = 0u32;
        loop {
            let res = self.storage.read().read(id, buf);
            match res {
                Err(PageError::Io(_)) if attempt < READ_RETRY_LIMIT => {
                    attempt += 1;
                    io.retried_reads += 1;
                    self.stats.retried_reads.fetch_add(1, Relaxed);
                    std::thread::sleep(std::time::Duration::from_micros(
                        RETRY_BASE_DELAY_US << (attempt - 1),
                    ));
                }
                other => return other,
            }
        }
    }

    /// Core read path: accounts the access, locates the page bytes
    /// (frame hit, or physical read + frame insert), and runs `f` on
    /// them *in place*. On a frame hit `f` sees the resident frame's
    /// bytes borrowed under the shard lock — no payload copy — so `f`
    /// must be cheap-ish and must not re-enter this pool.
    fn read_with_impl<R>(
        &self,
        id: PageId,
        seq: bool,
        io: &mut IoStats,
        f: impl FnOnce(&[u8]) -> R,
    ) -> PageResult<R> {
        if seq {
            io.seq_reads += 1;
            self.stats.seq_reads.fetch_add(1, Relaxed);
        } else {
            io.logical_reads += 1;
            self.stats.logical_reads.fetch_add(1, Relaxed);
        }
        if self.capacity == 0 {
            // Uncached mode: go straight to storage.
            io.physical_reads += 1;
            self.stats.physical_reads.fetch_add(1, Relaxed);
            let mut buf = vec![0u8; self.page_size];
            self.physical_read(id, &mut buf, io)?;
            return Ok(f(&buf));
        }
        let mut shard = self.shard(id).lock();
        let tick = shard.next_tick();
        if let Some(frame) = shard.frames.get_mut(&id) {
            io.hits += 1;
            self.stats.hits.fetch_add(1, Relaxed);
            frame.last_used = tick;
            return Ok(f(&frame.data));
        }
        io.physical_reads += 1;
        self.stats.physical_reads.fetch_add(1, Relaxed);
        let mut buf = vec![0u8; self.page_size];
        self.physical_read(id, &mut buf, io)?;
        let out = f(&buf);
        // Make room *before* inserting so the just-faulted frame can never
        // be picked as its own eviction victim.
        let target = shard.capacity.saturating_sub(1);
        shard.evict_to(target, &self.storage, &self.stats)?;
        shard.frames.insert(
            id,
            Frame {
                data: buf.into_boxed_slice(),
                dirty: false,
                pins: 0,
                last_used: tick,
            },
        );
        Ok(out)
    }

    fn read_impl(&self, id: PageId, seq: bool, io: &mut IoStats) -> PageResult<Vec<u8>> {
        self.read_with_impl(id, seq, io, <[u8]>::to_vec)
    }

    /// Reads a page (counted as one random access).
    pub fn read(&self, id: PageId) -> PageResult<Vec<u8>> {
        self.read_tracked(id, &mut IoStats::default())
    }

    /// Reads a page and runs `f` on its bytes in place, attributing the
    /// access to `io`. On a pool hit `f` borrows the resident frame
    /// under the shard lock instead of copying the payload out first —
    /// this is the decode-from-the-guard path node reads use. `f` must
    /// not call back into this pool (the shard lock is held).
    pub fn read_tracked_with<R>(
        &self,
        id: PageId,
        io: &mut IoStats,
        f: impl FnOnce(&[u8]) -> R,
    ) -> PageResult<R> {
        self.read_with_impl(id, false, io, f)
    }

    /// Governed variant of [`read_tracked_with`](Self::read_tracked_with)
    /// (admission as in [`read_tracked_ctx`](Self::read_tracked_ctx)).
    pub fn read_tracked_ctx_with<R>(
        &self,
        id: PageId,
        io: &mut IoStats,
        ctx: &QueryContext,
        f: impl FnOnce(&[u8]) -> R,
    ) -> PageResult<R> {
        ctx.admit_read(io).map_err(PageError::Interrupted)?;
        self.read_with_impl(id, false, io, f)
    }

    /// Reads a page, attributing the access to `io` as well as to the
    /// pool-global counters. Queries pass their own accumulator so batch
    /// runners can report per-query costs even when many queries share
    /// the pool.
    pub fn read_tracked(&self, id: PageId, io: &mut IoStats) -> PageResult<Vec<u8>> {
        self.read_impl(id, false, io)
    }

    /// Reads a page through the sequential path (counted as one sequential
    /// access; used by the linear-scan baseline).
    pub fn read_sequential(&self, id: PageId) -> PageResult<Vec<u8>> {
        self.read_sequential_tracked(id, &mut IoStats::default())
    }

    /// Sequential-path read attributed to `io` (see
    /// [`read_tracked`](Self::read_tracked)).
    pub fn read_sequential_tracked(&self, id: PageId, io: &mut IoStats) -> PageResult<Vec<u8>> {
        self.read_impl(id, true, io)
    }

    /// Governed random read: asks `ctx` to admit one more fetch (cancel,
    /// deadline, read budget against this query's own `io`) before going
    /// to [`read_tracked`](Self::read_tracked). A denied fetch returns
    /// [`PageError::Interrupted`] without touching the pool, so every
    /// limit is observed at page-fetch granularity.
    pub fn read_tracked_ctx(
        &self,
        id: PageId,
        io: &mut IoStats,
        ctx: &QueryContext,
    ) -> PageResult<Vec<u8>> {
        ctx.admit_read(io).map_err(PageError::Interrupted)?;
        self.read_impl(id, false, io)
    }

    /// Governed sequential read (see
    /// [`read_tracked_ctx`](Self::read_tracked_ctx)).
    pub fn read_sequential_tracked_ctx(
        &self,
        id: PageId,
        io: &mut IoStats,
        ctx: &QueryContext,
    ) -> PageResult<Vec<u8>> {
        ctx.admit_read(io).map_err(PageError::Interrupted)?;
        self.read_impl(id, true, io)
    }

    /// The decoded-node cache attached to this pool (disabled unless the
    /// pool was built with [`with_node_cache`](Self::with_node_cache)).
    pub fn node_cache(&self) -> &NodeCache {
        &self.node_cache
    }

    /// Decoded-node cache counters (misses = decode invocations).
    pub fn node_cache_stats(&self) -> NodeCacheStats {
        self.node_cache.stats()
    }

    /// Accounts one page access served from the decoded-node cache: the
    /// query still requested the page, so `logical_reads` (or
    /// `seq_reads`) and `hits` tick exactly as for a frame hit — the
    /// paper's cost model counts node visits, not decodes, and
    /// governance budgets keep their page-fetch granularity.
    fn account_cached(&self, seq: bool, io: &mut IoStats) {
        if seq {
            io.seq_reads += 1;
            self.stats.seq_reads.fetch_add(1, Relaxed);
        } else {
            io.logical_reads += 1;
            self.stats.logical_reads.fetch_add(1, Relaxed);
        }
        io.hits += 1;
        self.stats.hits.fetch_add(1, Relaxed);
    }

    fn read_decoded_impl<T, E, F>(
        &self,
        id: PageId,
        seq: bool,
        io: &mut IoStats,
        decode: F,
    ) -> Result<Arc<T>, E>
    where
        T: Send + Sync + 'static,
        E: From<PageError>,
        F: FnOnce(&[u8]) -> Result<T, E>,
    {
        // With the cache disabled all three cache calls below are cheap
        // no-ops, except that the lookup still ticks the miss counter —
        // keeping `misses` == decode count in both cache modes.
        if let Some(node) = self.node_cache.get_as::<T>(id) {
            self.account_cached(seq, io);
            return Ok(node);
        }
        // Snapshot the page epoch *before* touching the bytes: if a
        // writer intervenes, the insert below carries a superseded
        // epoch and the cache discards it.
        let epoch = self.node_cache.epoch(id);
        let node = self
            .read_with_impl(id, seq, io, decode)
            .map_err(E::from)??;
        let node = Arc::new(node);
        self.node_cache.insert(id, epoch, node.clone());
        Ok(node)
    }

    /// Reads a page and returns its *decoded* form, shared behind an
    /// `Arc`. With the decoded-node cache enabled a repeat visit skips
    /// `decode` entirely (while still accounting the logical read);
    /// otherwise this is `read_tracked_with` + `decode` with no payload
    /// copy. `decode` must not call back into this pool.
    pub fn read_decoded_tracked<T, E, F>(
        &self,
        id: PageId,
        io: &mut IoStats,
        decode: F,
    ) -> Result<Arc<T>, E>
    where
        T: Send + Sync + 'static,
        E: From<PageError>,
        F: FnOnce(&[u8]) -> Result<T, E>,
    {
        self.read_decoded_impl(id, false, io, decode)
    }

    /// Governed variant of
    /// [`read_decoded_tracked`](Self::read_decoded_tracked); admission
    /// is charged even when the decoded node is served from cache, so a
    /// read budget bounds cache-hit traversals exactly like cold ones.
    pub fn read_decoded_ctx<T, E, F>(
        &self,
        id: PageId,
        io: &mut IoStats,
        ctx: &QueryContext,
        decode: F,
    ) -> Result<Arc<T>, E>
    where
        T: Send + Sync + 'static,
        E: From<PageError>,
        F: FnOnce(&[u8]) -> Result<T, E>,
    {
        ctx.admit_read(io)
            .map_err(|i| E::from(PageError::Interrupted(i)))?;
        self.read_decoded_impl(id, false, io, decode)
    }

    /// Governed sequential-path decoded read (the linear-scan baseline's
    /// analogue of [`read_decoded_ctx`](Self::read_decoded_ctx)).
    pub fn read_decoded_sequential_ctx<T, E, F>(
        &self,
        id: PageId,
        io: &mut IoStats,
        ctx: &QueryContext,
        decode: F,
    ) -> Result<Arc<T>, E>
    where
        T: Send + Sync + 'static,
        E: From<PageError>,
        F: FnOnce(&[u8]) -> Result<T, E>,
    {
        ctx.admit_read(io)
            .map_err(|i| E::from(PageError::Interrupted(i)))?;
        self.read_decoded_impl(id, true, io, decode)
    }

    /// Writes page contents (write-back; flushed on eviction or
    /// [`flush_all`](Self::flush_all)).
    pub fn write(&self, id: PageId, data: &[u8]) -> PageResult<()> {
        if data.len() > self.page_size {
            return Err(PageError::Overflow {
                need: data.len(),
                cap: self.page_size,
            });
        }
        self.stats.logical_writes.fetch_add(1, Relaxed);
        if self.capacity == 0 {
            self.stats.physical_writes.fetch_add(1, Relaxed);
            let res = self.storage.write().write(id, data);
            // The rewrite supersedes any decoded form. Invalidating
            // *after* the bytes land means a decode that raced us either
            // snapshotted the old epoch (its insert is discarded) or
            // gets dropped right here — never published stale.
            self.node_cache.invalidate(id);
            return res;
        }
        let mut page = vec![0u8; self.page_size];
        page[..data.len()].copy_from_slice(data);
        let mut shard = self.shard(id).lock();
        let tick = shard.next_tick();
        match shard.frames.get_mut(&id) {
            Some(f) => {
                f.data = page.into_boxed_slice();
                f.dirty = true;
                f.last_used = tick;
            }
            None => {
                let target = shard.capacity.saturating_sub(1);
                shard.evict_to(target, &self.storage, &self.stats)?;
                shard.frames.insert(
                    id,
                    Frame {
                        data: page.into_boxed_slice(),
                        dirty: true,
                        pins: 0,
                        last_used: tick,
                    },
                );
            }
        }
        // Invalidate the decoded form under the frame shard lock, i.e.
        // strictly after the new bytes are visible: a racing decode of
        // the old bytes carries a pre-bump epoch and cannot publish.
        self.node_cache.invalidate(id);
        Ok(())
    }

    /// Pins a page, faulting it in; pinned pages are never evicted.
    pub fn pin(&self, id: PageId) -> PageResult<()> {
        if self.capacity == 0 {
            return Ok(()); // pinning is meaningless without frames
        }
        let mut shard = self.shard(id).lock();
        let tick = shard.next_tick();
        if let Some(f) = shard.frames.get_mut(&id) {
            f.pins += 1;
            f.last_used = tick;
            return Ok(());
        }
        self.stats.physical_reads.fetch_add(1, Relaxed);
        let mut buf = vec![0u8; self.page_size];
        self.physical_read(id, &mut buf, &mut IoStats::default())?;
        let target = shard.capacity.saturating_sub(1);
        shard.evict_to(target, &self.storage, &self.stats)?;
        shard.frames.insert(
            id,
            Frame {
                data: buf.into_boxed_slice(),
                dirty: false,
                pins: 1,
                last_used: tick,
            },
        );
        Ok(())
    }

    /// Releases one pin; a pool left over capacity by pinned-frame
    /// pressure shrinks back here.
    ///
    /// # Panics
    /// In debug builds, panics if the page is not pinned (pin/unpin
    /// imbalance is a caller bug). Release builds treat the stray unpin
    /// as a no-op rather than aborting a serving process.
    pub fn unpin(&self, id: PageId) {
        if self.capacity == 0 {
            return;
        }
        let mut shard = self.shard(id).lock();
        let Some(f) = shard.frames.get_mut(&id) else {
            debug_assert!(false, "unpin of non-resident page");
            return;
        };
        debug_assert!(f.pins > 0, "unpin without matching pin");
        f.pins = f.pins.saturating_sub(1);
        let target = shard.capacity;
        // Unpin itself cannot fail; surface write-back errors on the next
        // fallible operation rather than panicking here.
        let _ = shard.evict_to(target, &self.storage, &self.stats);
    }

    /// Writes every dirty frame back to storage.
    pub fn flush_all(&self) -> PageResult<()> {
        for shard in self.shards.iter() {
            let mut shard = shard.lock();
            let mut dirty: Vec<PageId> = shard
                .frames
                .iter()
                .filter(|(_, f)| f.dirty)
                .map(|(id, _)| *id)
                .collect();
            dirty.sort();
            for id in dirty {
                let Some(frame) = shard.frames.get_mut(&id) else {
                    continue;
                };
                self.stats.physical_writes.fetch_add(1, Relaxed);
                self.storage.write().write(id, &frame.data)?;
                frame.dirty = false;
            }
        }
        Ok(())
    }

    /// Flushes every dirty frame, then asks the backing store to push its
    /// state to durable media ([`Storage::sync`]). This is the write
    /// barrier a catalog commit relies on: after it returns, every page
    /// the catalog will reference is on disk.
    pub fn sync_storage(&self) -> PageResult<()> {
        self.flush_all()?;
        self.storage.write().sync()
    }

    /// Flushes and returns the backing store.
    pub fn into_storage(self) -> PageResult<S> {
        self.flush_all()?;
        Ok(self.storage.into_inner())
    }

    /// Runs `f` with shared access to the backing store.
    pub fn with_storage<R>(&self, f: impl FnOnce(&S) -> R) -> R {
        f(&self.storage.read())
    }

    /// Runs `f` with exclusive access to the backing store (e.g. to
    /// advance the write epoch after a catalog commit).
    pub fn with_storage_mut<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        f(&mut self.storage.write())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStorage;

    fn pool(capacity: usize) -> BufferPool<MemStorage> {
        BufferPool::new(MemStorage::with_page_size(128), capacity)
    }

    #[test]
    fn read_write_roundtrip_cached() {
        let p = pool(4);
        let a = p.allocate().unwrap();
        p.write(a, b"cached").unwrap();
        let got = p.read(a).unwrap();
        assert_eq!(&got[..6], b"cached");
        let s = p.stats();
        assert_eq!(s.logical_reads, 1);
        assert_eq!(s.hits, 1, "read after write hits the pool");
        assert_eq!(s.physical_reads, 0);
    }

    #[test]
    fn capacity_zero_counts_every_access_as_physical() {
        let p = pool(0);
        let a = p.allocate().unwrap();
        p.write(a, b"x").unwrap();
        p.read(a).unwrap();
        p.read(a).unwrap();
        let s = p.stats();
        assert_eq!(s.logical_reads, 2);
        assert_eq!(s.physical_reads, 2);
        assert_eq!(s.hits, 0);
        assert_eq!(s.physical_writes, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let p = pool(2);
        let ids: Vec<_> = (0..3).map(|_| p.allocate().unwrap()).collect();
        for (i, id) in ids.iter().enumerate() {
            p.write(*id, &[i as u8]).unwrap();
        }
        // Pool holds at most 2; ids[0] was least recently used and evicted.
        p.read(ids[1]).unwrap();
        p.read(ids[2]).unwrap();
        let before = p.stats().physical_reads;
        p.read(ids[0]).unwrap();
        assert_eq!(p.stats().physical_reads, before + 1, "ids[0] was evicted");
        // Its content survived the eviction (write-back).
        assert_eq!(p.read(ids[0]).unwrap()[0], 0);
    }

    #[test]
    fn pinned_pages_survive_eviction_pressure() {
        let p = pool(1);
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        p.write(a, b"pinned").unwrap();
        p.pin(a).unwrap();
        p.write(b, b"other").unwrap();
        p.read(b).unwrap();
        // `a` is pinned; reading it again must be a hit.
        let hits_before = p.stats().hits;
        p.read(a).unwrap();
        assert_eq!(p.stats().hits, hits_before + 1);
        p.unpin(a);
    }

    #[test]
    #[should_panic(expected = "unpin without matching pin")]
    fn unbalanced_unpin_panics() {
        let p = pool(2);
        let a = p.allocate().unwrap();
        p.pin(a).unwrap();
        p.unpin(a);
        p.unpin(a);
    }

    #[test]
    fn flush_all_persists_dirty_frames() {
        let p = pool(8);
        let a = p.allocate().unwrap();
        p.write(a, b"durable").unwrap();
        p.flush_all().unwrap();
        let storage = p.into_storage().unwrap();
        let mut buf = vec![0u8; 128];
        storage.read(a, &mut buf).unwrap();
        assert_eq!(&buf[..7], b"durable");
    }

    #[test]
    fn sequential_reads_tracked_separately() {
        let p = pool(0);
        let a = p.allocate().unwrap();
        p.write(a, b"s").unwrap();
        p.read_sequential(a).unwrap();
        let s = p.stats();
        assert_eq!(s.seq_reads, 1);
        assert_eq!(s.logical_reads, 0);
        assert!((s.weighted_accesses() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn reset_stats_clears_counters() {
        let p = pool(2);
        let a = p.allocate().unwrap();
        p.write(a, b"x").unwrap();
        p.read(a).unwrap();
        p.reset_stats();
        assert_eq!(p.stats(), IoStats::default());
    }

    #[test]
    fn free_drops_frame() {
        let p = pool(2);
        let a = p.allocate().unwrap();
        p.write(a, b"gone").unwrap();
        p.free(a).unwrap();
        assert!(p.read(a).is_err());
    }

    #[test]
    fn free_of_pinned_page_errors_and_keeps_page() {
        let p = pool(4);
        let a = p.allocate().unwrap();
        p.write(a, b"held").unwrap();
        p.pin(a).unwrap();
        assert!(matches!(p.free(a), Err(PageError::Pinned(id)) if id == a));
        // The page and its contents are untouched by the failed free.
        assert_eq!(&p.read(a).unwrap()[..4], b"held");
        p.unpin(a);
        p.free(a).unwrap();
        assert!(p.read(a).is_err());
    }

    #[test]
    fn all_pinned_overflow_shrinks_back_on_unpin() {
        // Regression for the all-pinned eviction path: with every frame
        // pinned, a faulting read must (1) keep the just-read frame
        // resident rather than evicting it, (2) run over capacity only
        // while the pins last, and (3) lose no dirty data.
        let p = pool(2);
        let ids: Vec<_> = (0..3).map(|_| p.allocate().unwrap()).collect();
        p.write(ids[0], b"d0").unwrap();
        p.write(ids[1], b"d1").unwrap();
        p.write(ids[2], b"d2").unwrap();
        // Pool capacity is 2; pin both resident frames (ids[1], ids[2] —
        // ids[0] was evicted by the third write, write-back preserved it).
        assert_eq!(p.resident_frames(), 2);
        p.pin(ids[1]).unwrap();
        p.pin(ids[2]).unwrap();

        // Fault ids[0] back in: every other frame is pinned, so the pool
        // must go over capacity instead of evicting the new frame.
        let before = p.stats();
        assert_eq!(&p.read(ids[0]).unwrap()[..2], b"d0");
        assert_eq!(p.resident_frames(), 3, "over capacity while all pinned");
        let after = p.stats();
        assert_eq!(after.physical_reads, before.physical_reads + 1);

        // The just-inserted frame is genuinely resident: reading it again
        // is a hit, not another physical read.
        let s0 = p.stats();
        p.read(ids[0]).unwrap();
        let s1 = p.stats();
        assert_eq!(s1.hits, s0.hits + 1, "new frame was not self-evicted");
        assert_eq!(s1.physical_reads, s0.physical_reads);

        // Dirty any frame, then release a pin: the pool shrinks back to
        // capacity and the dirty victim is written back, not dropped.
        p.write(ids[0], b"D0").unwrap();
        p.unpin(ids[1]);
        assert_eq!(p.resident_frames(), 2, "shrinks back on unpin");
        assert_eq!(
            &p.read(ids[0]).unwrap()[..2],
            b"D0",
            "write-back preserved data"
        );
        p.unpin(ids[2]);
    }

    #[test]
    fn transient_read_faults_are_retried_with_backoff() {
        use crate::FaultStorage;
        let (storage, script) = FaultStorage::new(MemStorage::with_page_size(128));
        let p = BufferPool::new(storage, 0); // uncached: every read is physical
        let a = p.allocate().unwrap();
        p.write(a, b"wobbly").unwrap();
        // Two transient failures: absorbed by the retry loop.
        script.fail_next_reads(2);
        let mut io = IoStats::default();
        let got = p.read_tracked(a, &mut io).unwrap();
        assert_eq!(&got[..6], b"wobbly");
        assert_eq!(io.retried_reads, 2);
        assert_eq!(p.stats().retried_reads, 2);
        // More failures than the retry budget: the error surfaces.
        script.fail_next_reads(u64::MAX);
        assert!(matches!(p.read(a), Err(PageError::Io(_))));
        script.disarm();
        assert_eq!(&p.read(a).unwrap()[..6], b"wobbly");
    }

    #[test]
    fn corrupt_reads_are_not_retried() {
        use crate::checksum::ChecksumStorage;
        use crate::frame::HEADER_BYTES;
        use crate::FaultStorage;
        let (inner, script) = FaultStorage::new(MemStorage::with_page_size(128 + HEADER_BYTES));
        let p = BufferPool::new(ChecksumStorage::new(inner), 0);
        let a = p.allocate().unwrap();
        p.write(a, b"checked").unwrap();
        // Flip a payload bit on the next physical read: the checksum layer
        // reports Corrupt, which must surface immediately, not retry.
        script.flip_on_read(script.reads_seen(), HEADER_BYTES + 2, 0x80);
        let before = p.stats().retried_reads;
        assert!(matches!(p.read(a), Err(PageError::Corrupt(_))));
        assert_eq!(
            p.stats().retried_reads,
            before,
            "no retry burned on corruption"
        );
        // The flip was scripted for one read only; service resumes.
        assert_eq!(&p.read(a).unwrap()[..7], b"checked");
    }

    #[test]
    fn tracked_reads_attribute_to_caller() {
        let p = pool(4);
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        p.write(a, b"a").unwrap();
        p.write(b, b"b").unwrap();
        let mut q1 = IoStats::default();
        let mut q2 = IoStats::default();
        p.read_tracked(a, &mut q1).unwrap();
        p.read_tracked(a, &mut q1).unwrap();
        p.read_tracked(b, &mut q2).unwrap();
        assert_eq!(q1.logical_reads, 2);
        assert_eq!(q2.logical_reads, 1);
        assert_eq!(q1.hits, 2, "writes populated the pool");
        // Global counters are the sum of the per-caller ones.
        let g = p.stats();
        assert_eq!(g.logical_reads, q1.logical_reads + q2.logical_reads);
        assert_eq!(g.hits, q1.hits + q2.hits);
        let mut sum = IoStats::default();
        sum.merge(&q1);
        sum.merge(&q2);
        assert_eq!(g.logical_reads, sum.logical_reads);
    }

    #[test]
    fn large_pools_shard_and_still_account() {
        let p = pool(SHARDING_THRESHOLD);
        let ids: Vec<_> = (0..64).map(|_| p.allocate().unwrap()).collect();
        for (i, id) in ids.iter().enumerate() {
            p.write(*id, &[i as u8]).unwrap();
        }
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(p.read(*id).unwrap()[0], i as u8);
        }
        let s = p.stats();
        assert_eq!(s.logical_reads, 64);
        assert_eq!(s.hits, 64, "everything fits; all reads hit");
        assert_eq!(p.resident_frames(), 64);
    }

    /// Toy "decoded node": the page's first byte, annotated.
    fn decode_first(bytes: &[u8]) -> PageResult<u8> {
        Ok(bytes[0])
    }

    #[test]
    fn decoded_reads_hit_cache_and_still_account() {
        let p = BufferPool::with_node_cache(MemStorage::with_page_size(128), 4, 8);
        let a = p.allocate().unwrap();
        p.write(a, &[7]).unwrap();
        let mut io = IoStats::default();
        let n1: Arc<u8> = p.read_decoded_tracked(a, &mut io, decode_first).unwrap();
        let n2: Arc<u8> = p.read_decoded_tracked(a, &mut io, decode_first).unwrap();
        assert_eq!((*n1, *n2), (7, 7));
        assert!(Arc::ptr_eq(&n1, &n2), "second visit shares the decode");
        let c = p.node_cache_stats();
        assert_eq!((c.hits, c.misses), (1, 1), "one decode, one cache hit");
        // Logical accounting is unchanged by the cache: both visits count.
        assert_eq!(io.logical_reads, 2);
        assert_eq!(io.hits, 2, "frame hit + decoded-cache hit");
        assert_eq!(p.stats().logical_reads, 2);
    }

    #[test]
    fn decoded_cache_invalidated_by_write_and_free() {
        let p = BufferPool::with_node_cache(MemStorage::with_page_size(128), 4, 8);
        let a = p.allocate().unwrap();
        p.write(a, &[1]).unwrap();
        let mut io = IoStats::default();
        let n: Arc<u8> = p.read_decoded_tracked(a, &mut io, decode_first).unwrap();
        assert_eq!(*n, 1);
        p.write(a, &[2]).unwrap();
        let n: Arc<u8> = p.read_decoded_tracked(a, &mut io, decode_first).unwrap();
        assert_eq!(*n, 2, "rewrite evicts the decoded form");
        p.free(a).unwrap();
        assert!(!p.node_cache().contains(a), "free evicts the decoded form");
    }

    #[test]
    fn decoded_read_respects_read_budget_on_hits() {
        let p = BufferPool::with_node_cache(MemStorage::with_page_size(128), 4, 8);
        let a = p.allocate().unwrap();
        p.write(a, &[9]).unwrap();
        let ctx = QueryContext::default().with_max_reads(2);
        let mut io = IoStats::default();
        for _ in 0..2 {
            let n: Result<Arc<u8>, PageError> = p.read_decoded_ctx(a, &mut io, &ctx, decode_first);
            assert_eq!(*n.unwrap(), 9);
        }
        // Third visit would be a cache hit, but the budget still governs.
        let denied: Result<Arc<u8>, PageError> = p.read_decoded_ctx(a, &mut io, &ctx, decode_first);
        assert!(matches!(
            denied,
            Err(PageError::Interrupted(crate::Interrupt::BudgetExhausted))
        ));
    }

    #[test]
    fn read_with_decodes_from_borrowed_frame() {
        let p = pool(4);
        let a = p.allocate().unwrap();
        p.write(a, b"guard").unwrap();
        let mut io = IoStats::default();
        let len = p
            .read_tracked_with(a, &mut io, |bytes| {
                bytes.iter().filter(|&&b| b != 0).count()
            })
            .unwrap();
        assert_eq!(len, 5);
        assert_eq!(io.hits, 1, "served from the resident frame in place");
    }

    #[test]
    fn concurrent_readers_see_consistent_pages() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let p = pool(SHARDING_THRESHOLD);
        let ids: Vec<_> = (0..32).map(|_| p.allocate().unwrap()).collect();
        for (i, id) in ids.iter().enumerate() {
            p.write(*id, &[i as u8; 16]).unwrap();
        }
        let total = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..4 {
                let p = &p;
                let ids = &ids;
                let total = &total;
                s.spawn(move || {
                    let mut io = IoStats::default();
                    for round in 0..50 {
                        for (i, id) in ids.iter().enumerate() {
                            if (i + round + t) % 3 == 0 {
                                let page = p.read_tracked(*id, &mut io).unwrap();
                                assert!(page[..16].iter().all(|&x| x == i as u8));
                            }
                        }
                    }
                    total.fetch_add(io.logical_reads, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(
            p.stats().logical_reads,
            total.load(Ordering::Relaxed),
            "global counter equals the sum of per-thread counters"
        );
    }
}
