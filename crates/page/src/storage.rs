//! Backing stores: in-memory and file-backed page files.

use crate::{PageError, PageId, PageResult, DEFAULT_PAGE_SIZE};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

/// Positioned full read that leaves the file cursor alone, so concurrent
/// readers holding `&File` do not race on seek position.
#[cfg(unix)]
fn read_at_exact(file: &File, buf: &mut [u8], off: u64) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, off)
}

#[cfg(windows)]
fn read_at_exact(file: &File, mut buf: &mut [u8], mut off: u64) -> std::io::Result<()> {
    use std::os::windows::fs::FileExt;
    while !buf.is_empty() {
        match file.seek_read(buf, off)? {
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "page file truncated",
                ))
            }
            n => {
                buf = &mut buf[n..];
                off += n as u64;
            }
        }
    }
    Ok(())
}

/// Positioned full write, the mirror of [`read_at_exact`]: no seek, so the
/// shared cursor is never disturbed and a crash can never interleave a
/// seek from one writer with the `write` of another.
#[cfg(unix)]
fn write_at_all(file: &File, buf: &[u8], off: u64) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.write_all_at(buf, off)
}

#[cfg(windows)]
fn write_at_all(file: &File, mut buf: &[u8], mut off: u64) -> std::io::Result<()> {
    use std::os::windows::fs::FileExt;
    while !buf.is_empty() {
        let n = file.seek_write(buf, off)?;
        buf = &buf[n..];
        off += n as u64;
    }
    Ok(())
}

/// A flat array of fixed-size pages.
///
/// Pages are allocated and freed individually; freed ids are recycled. A
/// `write` shorter than the page size is zero-padded, so a page always
/// round-trips to exactly `page_size` bytes (decoders know their own
/// lengths).
///
/// `read` takes `&self` so a [`BufferPool`](crate::BufferPool) can serve
/// cache misses from several query threads at once (file stores use
/// positioned reads); the `Send + Sync` supertraits are what let the
/// pool — and every index built on it — hand out shared search handles
/// across threads.
pub trait Storage: Send + Sync {
    /// The fixed page size in bytes.
    fn page_size(&self) -> usize;

    /// Allocates a zeroed page and returns its id.
    fn allocate(&mut self) -> PageResult<PageId>;

    /// Reads a full page into `buf` (`buf.len() == page_size`).
    fn read(&self, id: PageId, buf: &mut [u8]) -> PageResult<()>;

    /// Writes `data` (at most `page_size` bytes) to the page.
    fn write(&mut self, id: PageId, data: &[u8]) -> PageResult<()>;

    /// Frees a page for reuse.
    fn free(&mut self, id: PageId) -> PageResult<()>;

    /// Number of live (allocated, not freed) pages.
    fn live_pages(&self) -> usize;

    /// Flushes buffered state to durable media. In-memory stores and
    /// adapters with nothing to flush use this no-op default.
    fn sync(&mut self) -> PageResult<()> {
        Ok(())
    }

    /// Current write epoch stamped into page frames, if the store versions
    /// its writes (see [`crate::ChecksumStorage`]); plain stores report 0.
    fn epoch(&self) -> u64 {
        0
    }

    /// Advances the write epoch after a successful catalog commit and
    /// returns the new value; plain stores ignore the call.
    fn advance_epoch(&mut self) -> u64 {
        0
    }
}

/// In-memory page store — the default substrate for experiments.
pub struct MemStorage {
    page_size: usize,
    pages: Vec<Option<Box<[u8]>>>,
    free_list: Vec<u32>,
    live: usize,
}

impl MemStorage {
    /// Creates an empty store with the paper's default 4096-byte pages.
    pub fn new() -> Self {
        Self::with_page_size(DEFAULT_PAGE_SIZE)
    }

    /// Creates an empty store with a custom page size.
    ///
    /// # Panics
    /// Panics if `page_size` is smaller than 64 bytes (no node header fits).
    pub fn with_page_size(page_size: usize) -> Self {
        assert!(page_size >= 64, "page size too small to hold any node");
        Self {
            page_size,
            pages: Vec::new(),
            free_list: Vec::new(),
            live: 0,
        }
    }

    fn slot(&self, id: PageId) -> PageResult<usize> {
        let i = id.0 as usize;
        if id.is_invalid() || i >= self.pages.len() || self.pages[i].is_none() {
            return Err(PageError::UnknownPage(id));
        }
        Ok(i)
    }
}

impl Default for MemStorage {
    fn default() -> Self {
        Self::new()
    }
}

impl Storage for MemStorage {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn allocate(&mut self) -> PageResult<PageId> {
        self.live += 1;
        if let Some(i) = self.free_list.pop() {
            self.pages[i as usize] = Some(vec![0; self.page_size].into_boxed_slice());
            return Ok(PageId(i));
        }
        let i = self.pages.len();
        assert!(i < u32::MAX as usize, "page id space exhausted");
        self.pages
            .push(Some(vec![0; self.page_size].into_boxed_slice()));
        Ok(PageId(i as u32))
    }

    fn read(&self, id: PageId, buf: &mut [u8]) -> PageResult<()> {
        let i = self.slot(id)?;
        debug_assert_eq!(buf.len(), self.page_size);
        let Some(page) = self.pages[i].as_ref() else {
            return Err(PageError::UnknownPage(id));
        };
        buf.copy_from_slice(page);
        Ok(())
    }

    fn write(&mut self, id: PageId, data: &[u8]) -> PageResult<()> {
        if data.len() > self.page_size {
            return Err(PageError::Overflow {
                need: data.len(),
                cap: self.page_size,
            });
        }
        let i = self.slot(id)?;
        let Some(page) = self.pages[i].as_mut() else {
            return Err(PageError::UnknownPage(id));
        };
        page[..data.len()].copy_from_slice(data);
        page[data.len()..].fill(0);
        Ok(())
    }

    fn free(&mut self, id: PageId) -> PageResult<()> {
        let i = self.slot(id)?;
        self.pages[i] = None;
        self.free_list.push(i as u32);
        self.live -= 1;
        Ok(())
    }

    fn live_pages(&self) -> usize {
        self.live
    }
}

/// File-backed page store: page `i` lives at byte offset `i * page_size`.
///
/// All I/O is positioned (`pread`/`pwrite`-style), so concurrent readers
/// never race on a shared cursor and writes are a single syscall staged
/// through a reusable scratch buffer instead of a fresh zero vector per
/// call. Freed pages are zeroed on disk.
///
/// A raw `FileStorage` has no page headers, so [`open`](Self::open) cannot
/// tell a zeroed live page from a freed one and conservatively counts
/// every slot live. The checksummed adapter
/// ([`crate::ChecksumStorage::open`]) recovers the true free list from its
/// frame headers and pushes it back down via
/// [`mark_freed`](Self::mark_freed).
pub struct FileStorage {
    page_size: usize,
    file: File,
    num_pages: u32,
    free_list: Vec<u32>,
    freed: std::collections::HashSet<u32>,
    live: usize,
    /// Staging buffer for short writes; avoids a heap allocation per call.
    scratch: Box<[u8]>,
}

impl FileStorage {
    /// Creates (truncating) a page file at `path`.
    pub fn create<P: AsRef<Path>>(path: P, page_size: usize) -> PageResult<Self> {
        assert!(page_size >= 64, "page size too small to hold any node");
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Self {
            page_size,
            file,
            num_pages: 0,
            free_list: Vec::new(),
            freed: std::collections::HashSet::new(),
            live: 0,
            scratch: vec![0; page_size].into_boxed_slice(),
        })
    }

    /// Opens an existing page file; all pages present are considered live
    /// (see the type docs for how the framed adapter refines this).
    pub fn open<P: AsRef<Path>>(path: P, page_size: usize) -> PageResult<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % page_size as u64 != 0 {
            return Err(PageError::Corrupt(format!(
                "file length {len} is not a multiple of page size {page_size}"
            )));
        }
        let num_pages = (len / page_size as u64) as u32;
        Ok(Self {
            page_size,
            file,
            num_pages,
            free_list: Vec::new(),
            freed: std::collections::HashSet::new(),
            live: num_pages as usize,
            scratch: vec![0; page_size].into_boxed_slice(),
        })
    }

    fn check(&self, id: PageId) -> PageResult<()> {
        if id.is_invalid() || id.0 >= self.num_pages || self.freed.contains(&id.0) {
            return Err(PageError::UnknownPage(id));
        }
        Ok(())
    }

    /// Flushes file contents to durable media.
    pub fn sync(&mut self) -> PageResult<()> {
        self.file.flush()?;
        self.file.sync_all()?;
        Ok(())
    }

    /// Number of page slots in the file (live + freed).
    pub fn page_slots(&self) -> u32 {
        self.num_pages
    }

    /// Whether a slot is currently recorded as freed.
    pub fn is_freed(&self, id: PageId) -> bool {
        self.freed.contains(&id.0)
    }

    /// Reads the first `buf.len()` bytes of a slot regardless of its
    /// free status — used by framed stores scanning headers on open.
    pub fn read_prefix(&self, id: PageId, buf: &mut [u8]) -> PageResult<()> {
        if id.is_invalid() || id.0 >= self.num_pages {
            return Err(PageError::UnknownPage(id));
        }
        debug_assert!(buf.len() <= self.page_size);
        read_at_exact(&self.file, buf, u64::from(id.0) * self.page_size as u64)?;
        Ok(())
    }

    /// Records a slot as free without touching its bytes — used when a
    /// framed store recovers the free list from page headers on open, and
    /// by recovery to reclaim leaked pages. Idempotent.
    pub fn mark_freed(&mut self, id: PageId) -> PageResult<()> {
        if id.is_invalid() || id.0 >= self.num_pages {
            return Err(PageError::UnknownPage(id));
        }
        if self.freed.insert(id.0) {
            self.free_list.push(id.0);
            self.live -= 1;
        }
        Ok(())
    }
}

impl Storage for FileStorage {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn allocate(&mut self) -> PageResult<PageId> {
        if let Some(i) = self.free_list.pop() {
            self.freed.remove(&i);
            self.live += 1;
            return Ok(PageId(i));
        }
        let i = self.num_pages;
        // Extending the file zero-fills the new slot without writing a
        // page-size buffer through the syscall layer.
        self.file
            .set_len((u64::from(i) + 1) * self.page_size as u64)?;
        self.num_pages = i + 1;
        self.live += 1;
        Ok(PageId(i))
    }

    fn read(&self, id: PageId, buf: &mut [u8]) -> PageResult<()> {
        self.check(id)?;
        debug_assert_eq!(buf.len(), self.page_size);
        let off = u64::from(id.0) * self.page_size as u64;
        read_at_exact(&self.file, buf, off)?;
        Ok(())
    }

    fn write(&mut self, id: PageId, data: &[u8]) -> PageResult<()> {
        if data.len() > self.page_size {
            return Err(PageError::Overflow {
                need: data.len(),
                cap: self.page_size,
            });
        }
        self.check(id)?;
        let off = u64::from(id.0) * self.page_size as u64;
        if data.len() == self.page_size {
            write_at_all(&self.file, data, off)?;
        } else {
            // Stage short writes so the page lands in one positioned
            // syscall, zero-padded to the slot boundary.
            self.scratch[..data.len()].copy_from_slice(data);
            self.scratch[data.len()..].fill(0);
            write_at_all(&self.file, &self.scratch, off)?;
        }
        Ok(())
    }

    fn free(&mut self, id: PageId) -> PageResult<()> {
        self.check(id)?;
        self.write(id, &[])?; // zero on disk
        self.free_list.push(id.0);
        self.freed.insert(id.0);
        self.live -= 1;
        Ok(())
    }

    fn live_pages(&self) -> usize {
        self.live
    }

    fn sync(&mut self) -> PageResult<()> {
        FileStorage::sync(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &mut dyn Storage) {
        let ps = store.page_size();
        let a = store.allocate().unwrap();
        let b = store.allocate().unwrap();
        assert_ne!(a, b);
        assert_eq!(store.live_pages(), 2);

        store.write(a, b"hello").unwrap();
        store.write(b, &vec![7u8; ps]).unwrap();

        let mut buf = vec![0u8; ps];
        store.read(a, &mut buf).unwrap();
        assert_eq!(&buf[..5], b"hello");
        assert!(buf[5..].iter().all(|&x| x == 0), "short write zero-pads");

        store.read(b, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 7));

        // Overflow rejected.
        assert!(matches!(
            store.write(a, &vec![0u8; ps + 1]),
            Err(PageError::Overflow { .. })
        ));

        // Free and reuse.
        store.free(a).unwrap();
        assert_eq!(store.live_pages(), 1);
        assert!(matches!(
            store.read(a, &mut buf),
            Err(PageError::UnknownPage(_))
        ));
        let c = store.allocate().unwrap();
        assert_eq!(c, a, "freed ids are recycled");
        store.read(c, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 0), "recycled page is zeroed");
    }

    #[test]
    fn mem_storage_contract() {
        let mut s = MemStorage::with_page_size(256);
        exercise(&mut s);
    }

    #[test]
    fn file_storage_contract() {
        let dir = std::env::temp_dir().join(format!("hyt_page_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("contract.pages");
        let mut s = FileStorage::create(&path, 256).unwrap();
        exercise(&mut s);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_storage_durability_roundtrip() {
        let dir = std::env::temp_dir().join(format!("hyt_page_dur_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("durable.pages");
        {
            let mut s = FileStorage::create(&path, 128).unwrap();
            let a = s.allocate().unwrap();
            let b = s.allocate().unwrap();
            s.write(a, b"persisted-a").unwrap();
            s.write(b, b"persisted-b").unwrap();
            s.sync().unwrap();
        }
        {
            let s = FileStorage::open(&path, 128).unwrap();
            assert_eq!(s.live_pages(), 2);
            let mut buf = vec![0u8; 128];
            s.read(PageId(0), &mut buf).unwrap();
            assert_eq!(&buf[..11], b"persisted-a");
            s.read(PageId(1), &mut buf).unwrap();
            assert_eq!(&buf[..11], b"persisted-b");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_storage_rejects_misaligned_file() {
        let dir = std::env::temp_dir().join(format!("hyt_page_mis_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("misaligned.pages");
        std::fs::write(&path, vec![0u8; 100]).unwrap();
        assert!(matches!(
            FileStorage::open(&path, 128),
            Err(PageError::Corrupt(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mark_freed_recovers_free_list_without_zeroing() {
        let dir = std::env::temp_dir().join(format!("hyt_page_mf_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("marked.pages");
        {
            let mut s = FileStorage::create(&path, 128).unwrap();
            for _ in 0..3 {
                s.allocate().unwrap();
            }
            s.write(PageId(1), b"still here").unwrap();
            s.sync().unwrap();
        }
        let mut s = FileStorage::open(&path, 128).unwrap();
        assert_eq!(s.live_pages(), 3, "raw open counts every slot live");
        s.mark_freed(PageId(1)).unwrap();
        s.mark_freed(PageId(1)).unwrap(); // idempotent
        assert_eq!(s.live_pages(), 2);
        assert!(s.is_freed(PageId(1)));
        let mut buf = vec![0u8; 128];
        assert!(matches!(
            s.read(PageId(1), &mut buf),
            Err(PageError::UnknownPage(_))
        ));
        // The bytes were not touched: a prefix read still sees them.
        let mut prefix = [0u8; 10];
        s.read_prefix(PageId(1), &mut prefix).unwrap();
        assert_eq!(&prefix, b"still here");
        // And the marked slot is recycled first.
        assert_eq!(s.allocate().unwrap(), PageId(1));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn invalid_page_id_is_rejected() {
        let s = MemStorage::new();
        let mut buf = vec![0u8; s.page_size()];
        assert!(matches!(
            s.read(PageId::INVALID, &mut buf),
            Err(PageError::UnknownPage(_))
        ));
    }
}
