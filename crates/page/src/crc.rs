//! CRC-32 (IEEE 802.3 reflected polynomial) for page frames and catalogs.
//!
//! Table-driven, with the table built at compile time, so the checksum adds
//! no startup cost and no external dependency. This is the same polynomial
//! used by zlib/gzip/ethernet, chosen for its well-understood burst-error
//! detection: any single bit flip, any two flips within a page, and any
//! burst up to 32 bits are guaranteed to change the checksum.

const POLY: u32 = 0xEDB8_8320;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const TABLE: [u32; 256] = make_table();

/// CRC-32 of `data` (init `!0`, final xor `!0` — the standard "CRC-32"
/// every external tool computes, so page files can be cross-checked with
/// e.g. `python -c "import zlib; ..."`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = vec![0x5Au8; 4096];
        let reference = crc32(&base);
        for pos in [0usize, 1, 17, 2048, 4095] {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[pos] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "flip at {pos}:{bit}");
            }
        }
    }

    #[test]
    fn zero_extension_changes_crc() {
        // Truncation/extension by zero bytes must not be silent.
        assert_ne!(crc32(&[1, 2, 3]), crc32(&[1, 2, 3, 0]));
    }
}
