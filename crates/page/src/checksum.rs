//! Checksumming, epoch-stamping storage adapter.
//!
//! [`ChecksumStorage`] wraps any raw [`Storage`] and frames every logical
//! page (see [`crate::frame`]): callers keep working with *logical* pages
//! of `inner.page_size() - HEADER_BYTES` bytes, while every byte that
//! reaches the inner store carries a magic number, the page id, a write
//! epoch, and two CRC-32 checksums. On read the frame is validated and a
//! mismatch surfaces as [`PageError::Corrupt`] — never a panic, and never
//! silently wrong bytes handed to a decoder.
//!
//! Layering matters: fault injectors ([`crate::FaultStorage`]) sit *below*
//! this adapter, so torn writes and bit flips they produce damage the
//! framed bytes and are caught by the CRCs. Production disks sit in the
//! same place.
//!
//! ## Epochs
//!
//! Each live frame carries the store's current *write epoch*. A catalog
//! commit records the epoch it persisted and then advances it, so any page
//! flushed after the last successful commit is stamped with a newer epoch
//! than the catalog. On reopen, `max_live_epoch() > catalog epoch` is
//! proof that the page file diverged from the catalog (a crash between
//! commits) and the tree must be recovered rather than trusted — this is
//! what turns "stale catalog + newer pages" from silently-wrong query
//! results into a detected condition.

use crate::frame::{self, HeaderStatus, HEADER_BYTES};
use crate::{FileStorage, PageError, PageId, PageResult, Storage};
use std::path::Path;

/// The production on-disk stack: checksummed frames over a raw page file.
pub type DurableStorage = ChecksumStorage<FileStorage>;

/// A [`Storage`] adapter that frames every page with checksums and a write
/// epoch. See the module docs for the format and layering rationale.
pub struct ChecksumStorage<S: Storage> {
    inner: S,
    logical_size: usize,
    epoch: u64,
    max_live_epoch: u64,
}

impl<S: Storage> ChecksumStorage<S> {
    /// Wraps a *fresh* inner store (one with no existing pages). The inner
    /// page size must leave at least 64 logical bytes after the frame
    /// header.
    ///
    /// # Panics
    /// Panics if the inner page size is too small — a configuration bug,
    /// not a data-dependent condition.
    pub fn new(inner: S) -> Self {
        let inner_ps = inner.page_size();
        assert!(
            inner_ps >= HEADER_BYTES + 64,
            "inner page size {inner_ps} leaves no room for a framed node"
        );
        Self {
            logical_size: inner_ps - HEADER_BYTES,
            inner,
            epoch: 1,
            max_live_epoch: 0,
        }
    }

    /// Shared access to the wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps the adapter.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// The newest epoch seen on any live page when this store was opened
    /// (0 for a fresh store). Compared against the catalog's recorded
    /// epoch to detect page files that diverged after the last commit.
    pub fn max_live_epoch(&self) -> u64 {
        self.max_live_epoch
    }

    fn write_frame(&mut self, id: PageId, payload: &[u8]) -> PageResult<()> {
        let mut framed = vec![0u8; self.inner.page_size()];
        frame::encode_frame(id, self.epoch, payload, &mut framed);
        self.inner.write(id, &framed)
    }
}

impl ChecksumStorage<FileStorage> {
    /// Creates (truncating) a checksummed page file with the given
    /// *logical* page size; the file's physical slots are
    /// `page_size + HEADER_BYTES` bytes.
    pub fn create<P: AsRef<Path>>(path: P, page_size: usize) -> PageResult<Self> {
        Ok(Self::new(FileStorage::create(
            path,
            page_size + HEADER_BYTES,
        )?))
    }

    /// Opens an existing checksummed page file, rebuilding the free list
    /// and the newest write epoch from the frame headers: an all-zero
    /// header marks a free slot, a valid header contributes its epoch, and
    /// a damaged header leaves the slot nominally live so a later read (or
    /// `recover`/`scrub`) reports it as [`PageError::Corrupt`] instead of
    /// resurrecting it as free space.
    pub fn open<P: AsRef<Path>>(path: P, page_size: usize) -> PageResult<Self> {
        let mut inner = FileStorage::open(path, page_size + HEADER_BYTES)?;
        let mut max_live_epoch = 0u64;
        let mut header = [0u8; HEADER_BYTES];
        for i in 0..inner.page_slots() {
            inner.read_prefix(PageId(i), &mut header)?;
            match frame::inspect_header(PageId(i), &header) {
                HeaderStatus::Free => inner.mark_freed(PageId(i))?,
                HeaderStatus::Live { epoch, .. } => max_live_epoch = max_live_epoch.max(epoch),
                // Corrupt headers stay "live" so they are surfaced, not
                // silently recycled.
                HeaderStatus::Corrupt(_) => {}
            }
        }
        Ok(Self {
            logical_size: page_size,
            inner,
            epoch: max_live_epoch + 1,
            max_live_epoch,
        })
    }

    /// Number of page slots in the backing file (live + free).
    pub fn page_slots(&self) -> u32 {
        self.inner.page_slots()
    }

    /// Whether a slot is currently considered free.
    pub fn is_freed(&self, id: PageId) -> bool {
        self.inner.is_freed(id)
    }

    /// Records a slot as free without touching its bytes — used by
    /// `recover()` to reclaim pages that are unreachable from the root.
    pub fn mark_freed(&mut self, id: PageId) -> PageResult<()> {
        self.inner.mark_freed(id)
    }
}

impl<S: Storage> Storage for ChecksumStorage<S> {
    fn page_size(&self) -> usize {
        self.logical_size
    }

    fn allocate(&mut self) -> PageResult<PageId> {
        let id = self.inner.allocate()?;
        // Stamp an empty live frame immediately so a crash between
        // allocate and first write leaves a classifiable slot, and so
        // reopen never mistakes an allocated-but-unwritten page for free
        // space handed out twice.
        self.write_frame(id, &[])?;
        Ok(id)
    }

    fn read(&self, id: PageId, buf: &mut [u8]) -> PageResult<()> {
        debug_assert_eq!(buf.len(), self.logical_size);
        let mut framed = vec![0u8; self.inner.page_size()];
        self.inner.read(id, &mut framed)?;
        match frame::inspect_frame(id, &framed) {
            frame::FrameStatus::Live { .. } => {
                buf.copy_from_slice(&framed[HEADER_BYTES..]);
                Ok(())
            }
            frame::FrameStatus::Free => Err(PageError::UnknownPage(id)),
            frame::FrameStatus::Corrupt(msg) => {
                Err(PageError::Corrupt(format!("page {id}: {msg}")))
            }
        }
    }

    fn write(&mut self, id: PageId, data: &[u8]) -> PageResult<()> {
        if data.len() > self.logical_size {
            return Err(PageError::Overflow {
                need: data.len(),
                cap: self.logical_size,
            });
        }
        self.write_frame(id, data)
    }

    fn free(&mut self, id: PageId) -> PageResult<()> {
        // The inner free zeroes the slot, which is exactly the on-disk
        // encoding of "free" in the frame format.
        self.inner.free(id)
    }

    fn live_pages(&self) -> usize {
        self.inner.live_pages()
    }

    fn sync(&mut self) -> PageResult<()> {
        self.inner.sync()
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn advance_epoch(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStorage;

    fn mem(logical: usize) -> ChecksumStorage<MemStorage> {
        ChecksumStorage::new(MemStorage::with_page_size(logical + HEADER_BYTES))
    }

    #[test]
    fn logical_roundtrip_over_mem() {
        let mut s = mem(128);
        assert_eq!(s.page_size(), 128);
        let a = s.allocate().unwrap();
        s.write(a, b"framed").unwrap();
        let mut buf = vec![0u8; 128];
        s.read(a, &mut buf).unwrap();
        assert_eq!(&buf[..6], b"framed");
        assert!(buf[6..].iter().all(|&b| b == 0), "payload zero-padded");
    }

    #[test]
    fn overflow_uses_logical_capacity() {
        let mut s = mem(128);
        let a = s.allocate().unwrap();
        assert!(matches!(
            s.write(a, &[1u8; 129]),
            Err(PageError::Overflow {
                need: 129,
                cap: 128
            })
        ));
    }

    #[test]
    fn corrupted_inner_bytes_surface_as_corrupt() {
        let mut inner = MemStorage::with_page_size(128 + HEADER_BYTES);
        let mut s = ChecksumStorage::new(inner);
        let a = s.allocate().unwrap();
        s.write(a, b"precious").unwrap();
        // Flip one payload bit behind the adapter's back.
        inner = s.into_inner();
        let mut raw = vec![0u8; 128 + HEADER_BYTES];
        inner.read(a, &mut raw).unwrap();
        raw[HEADER_BYTES + 3] ^= 0x10;
        inner.write(a, &raw).unwrap();
        let s = ChecksumStorage::new_unchecked_for_test(inner);
        let mut buf = vec![0u8; 128];
        match s.read(a, &mut buf) {
            Err(PageError::Corrupt(msg)) => assert!(msg.contains("checksum")),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    impl ChecksumStorage<MemStorage> {
        // Re-wrap without the "fresh store" assumption, for tests that
        // corrupt the inner bytes directly.
        fn new_unchecked_for_test(inner: MemStorage) -> Self {
            Self {
                logical_size: inner.page_size() - HEADER_BYTES,
                inner,
                epoch: 1,
                max_live_epoch: 0,
            }
        }
    }

    #[test]
    fn file_open_recovers_free_list_and_epoch() {
        let dir = std::env::temp_dir().join(format!("hyt_cks_open_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("framed.pages");
        {
            let mut s = DurableStorage::create(&path, 128).unwrap();
            let a = s.allocate().unwrap();
            let b = s.allocate().unwrap();
            let c = s.allocate().unwrap();
            s.write(a, b"alpha").unwrap();
            s.advance_epoch();
            s.write(b, b"beta").unwrap();
            s.free(c).unwrap();
            s.sync().unwrap();
        }
        {
            let s = DurableStorage::open(&path, 128).unwrap();
            assert_eq!(s.live_pages(), 2, "freed page recovered from headers");
            assert_eq!(s.page_slots(), 3);
            assert!(s.is_freed(PageId(2)));
            assert_eq!(s.max_live_epoch(), 2);
            assert_eq!(s.epoch(), 3, "new writes get a fresh epoch");
            let mut buf = vec![0u8; 128];
            assert!(matches!(
                s.read(PageId(2), &mut buf),
                Err(PageError::UnknownPage(_))
            ));
            s.read(PageId(0), &mut buf).unwrap();
            assert_eq!(&buf[..5], b"alpha");
        }
        // The freed slot is recycled by the next allocate.
        {
            let mut s = DurableStorage::open(&path, 128).unwrap();
            assert_eq!(s.allocate().unwrap(), PageId(2));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_open_flags_damaged_header_as_live_and_read_reports_corrupt() {
        let dir = std::env::temp_dir().join(format!("hyt_cks_dmg_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("damaged.pages");
        {
            let mut s = DurableStorage::create(&path, 128).unwrap();
            let a = s.allocate().unwrap();
            s.write(a, b"doomed").unwrap();
            s.sync().unwrap();
        }
        // Flip a bit in the stored header.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[9] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let s = DurableStorage::open(&path, 128).unwrap();
        assert_eq!(s.live_pages(), 1, "damaged page is not recycled as free");
        let mut buf = vec![0u8; 128];
        assert!(matches!(
            s.read(PageId(0), &mut buf),
            Err(PageError::Corrupt(_))
        ));
        std::fs::remove_file(&path).ok();
    }
}
