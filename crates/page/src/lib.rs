//! Paged storage substrate for the hybrid tree reproduction.
//!
//! Every index structure in the workspace is *disk-based* in the paper's
//! sense: nodes are serialized into fixed-size pages (default 4096 bytes,
//! the paper's setting) and all node accesses go through a [`BufferPool`]
//! that counts I/O. This is what makes the reproduced metrics honest:
//!
//! * fanout limits fall out of actual encoded node sizes, not formulas;
//! * "average disk accesses per query" is the number of *logical* page
//!   reads (each node visited costs one access, the paper's cost model);
//! * the sequential-scan baseline reads pages through the same substrate,
//!   with sequential accesses tracked separately because the paper weights
//!   them 10x cheaper than random accesses (§4).
//!
//! Two backing stores are provided: [`MemStorage`] (the default for
//! experiments; deterministic and fast) and [`FileStorage`] (a real file on
//! disk, demonstrating durability round-trips). On-disk deployments wrap
//! the file store in [`ChecksumStorage`] (alias [`DurableStorage`]), which
//! frames every page with a magic number, its page id, a write epoch, and
//! CRC-32 checksums, so torn writes and bit flips surface as
//! [`PageError::Corrupt`] instead of decoding garbage. [`FaultStorage`]
//! injects scripted crashes, transient I/O errors, and bit flips below the
//! checksum layer for crash-matrix testing.

mod cache;
mod checksum;
mod codec;
mod crc;
mod error;
mod fault;
mod frame;
mod govern;
mod pool;
mod storage;

pub use cache::{CachedNode, NodeCache, NodeCacheStats};
pub use checksum::{ChecksumStorage, DurableStorage};
pub use codec::{ByteReader, ByteWriter};
pub use crc::crc32;
pub use error::{PageError, PageResult};
pub use fault::{FaultScript, FaultStorage};
pub use frame::{
    encode_frame, inspect_frame, inspect_header, FrameStatus, HeaderStatus, FLAG_LIVE,
    FORMAT_VERSION, HEADER_BYTES as FRAME_HEADER_BYTES, PAGE_MAGIC,
};
pub use govern::{CancelToken, Interrupt, QueryContext};
pub use pool::{BufferPool, IoStats, SHARDING_THRESHOLD};
pub use storage::{FileStorage, MemStorage, Storage};

/// The paper's experimental page size (§4: "we use a page size of 4096
/// bytes").
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// Identifier of a page within one store.
///
/// 32 bits addresses 16 TiB of 4 KiB pages — far beyond the paper's
/// database sizes — while keeping index-node entries small, which matters
/// for fanout.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct PageId(pub u32);

impl PageId {
    /// Sentinel used in serialized forms for "no page".
    pub const INVALID: PageId = PageId(u32::MAX);

    /// Whether this id is the sentinel.
    pub fn is_invalid(self) -> bool {
        self == Self::INVALID
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}
