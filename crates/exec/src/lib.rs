//! Unified query executor: one governed traversal kernel for every engine.
//!
//! The paper's observation (§4) is that DP-style trees (SR-tree), SP-style
//! trees (kDB-tree, hB-tree), the hybrid tree, and even a linear scan all
//! answer box / distance-range / kNN queries with the *same* guided
//! traversal: maintain a frontier of node references, expand the best (or
//! next) one, collect leaf entries, prune children by a lower bound. This
//! crate hoists that loop out of the five engines into three shared
//! drivers — [`run_box_query`], [`run_distance_range`], [`run_knn`] — plus
//! an incremental distance-browsing cursor ([`KnnCursor`]). Engines
//! implement the [`NodeExpand`] trait once: "given one node reference,
//! read it (attributing I/O, honoring the [`QueryContext`]) and emit leaf
//! entries and/or bounded children". Everything cross-cutting lives here:
//!
//! * **Governance** — per-read admission happens inside the engines' pool
//!   reads (unchanged from PR 3); this kernel owns the *settlement*: an
//!   interrupted read degrades the query via
//!   [`settle_interrupt`] with the partial
//!   answer accumulated so far, and the result-cardinality cap is applied
//!   after every leaf via [`apply_result_cap`].
//! * **Comparator space** — all bounds and candidate distances are squared
//!   (root-free) values; each reported neighbor pays exactly one
//!   [`Metric::distance_from_sq`] on the way out.
//! * **Early abandon** — kNN candidate scans go through a sink that
//!   applies [`Metric::distance_sq_within`] against the current k-th best.
//!
//! The kernel is *bit-identical* to the per-engine loops it replaced:
//! same answers, same logical/sequential read accounting, same degradation
//! points (the cross-engine, governance, and decoded-cache suites are the
//! oracle). The one deliberate refinement is the kNN candidate tie-break:
//! replacement at the k boundary is now ordered by `(distance, oid)`
//! rather than distance alone, which changes *which* oid survives an exact
//! distance tie (answers' distance multisets, I/O, and pruning are
//! unaffected) and is what makes [`KnnCursor`] prefixes equal batch
//! results exactly.

use hyt_geom::{range_bound_sq, Metric, Point, Rect};
use hyt_index::{
    apply_result_cap, settle_interrupt, DegradeReason, IndexError, IndexResult, KnnStream,
    QueryContext, QueryOutcome,
};
use hyt_page::IoStats;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// What kind of node an [`NodeExpand::expand_box`] (or range/near) call
/// visited. `Leaf` triggers the result-cardinality cap check; a leaf may
/// still emit children (the hB-tree's data-page redirects).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// A data page: entries were offered to the sink / output.
    Leaf,
    /// A directory page: only children were emitted.
    Index,
}

/// A child reference emitted during distance-bounded expansion, tagged
/// with a comparator-space (squared) lower bound on the distance from the
/// query point to anything stored beneath it.
#[derive(Clone, Debug)]
pub struct Child<R> {
    /// Squared lower bound (`MINDIST`-style); `0.0` when the engine has no
    /// bounding information for this child.
    pub bound: f64,
    /// The engine-specific node reference.
    pub node: R,
}

/// The query point and metric threaded through distance-bounded
/// expansion, bundled so engine adapters take one query argument.
#[derive(Clone, Copy)]
pub struct NearQuery<'a> {
    /// The query point.
    pub q: &'a Point,
    /// The distance function (chosen per query — the paper's trees are
    /// feature-based, so the structure never depends on it).
    pub metric: &'a dyn Metric,
}

/// Receives candidate leaf entries during distance-bounded expansion.
/// The kernel's sinks own filtering (range membership, kNN best-k with
/// early abandon); engines just offer every entry of a visited data page.
pub trait EntrySink {
    /// Offers one stored `(oid, point)` entry.
    fn offer(&mut self, oid: u64, p: &Point);
}

/// The one primitive an engine contributes to the unified executor:
/// expand a single node reference. Implementations perform their own
/// buffer-pool reads (preserving each engine's exact I/O path — decoded
/// cache, zero-copy view, or sequential scan — and its per-query I/O
/// attribution and governed admission), then report what the node held.
///
/// # Contract
///
/// * `roots` is the initial frontier in visit order; it must be empty for
///   an empty index (so queries complete without touching storage).
/// * Child bounds must be true lower bounds: every entry stored beneath
///   `child` satisfies `distance_sq(q, entry) >= bound`. The kernel's
///   best-first termination and pruning are correct under exactly this
///   contract — bounds need not be monotone along a path (quantized
///   live-space boxes are not), only valid.
/// * An `Err` whose [`IndexError::interrupt`] is `Some` means a governed
///   read was denied *before* any of this node's entries were emitted;
///   the kernel settles it into a degraded answer.
pub trait NodeExpand {
    /// Engine-specific node reference carried on the frontier.
    type Ref;

    /// A stable identifier for `r` (the page id): priority-queue
    /// tie-break (smallest first) and visited-set key.
    fn node_id(&self, r: &Self::Ref) -> u64;

    /// Initial frontier, in visit order. Empty for an empty index.
    fn roots(&self) -> Vec<Self::Ref>;

    /// Whether a node can be reached through more than one path (hB-tree
    /// redirect graph): the kernel then visits each node id once.
    fn dedup_visits(&self) -> bool {
        false
    }

    /// Whether the engine cannot tell how much work remains after a leaf
    /// (hB-tree: the redirect graph hides it). Landing exactly on the
    /// result cap then conservatively degrades.
    fn opaque_remaining_work(&self) -> bool {
        false
    }

    /// Box-query expansion: push matching oids of a data page into `out`,
    /// or children overlapping `rect` (engine-side geometric filtering)
    /// into `children`.
    fn expand_box(
        &self,
        r: Self::Ref,
        rect: &Rect,
        io: &mut IoStats,
        ctx: &QueryContext,
        out: &mut Vec<u64>,
        children: &mut Vec<Self::Ref>,
    ) -> IndexResult<NodeKind>;

    /// Distance-range expansion: offer every entry of a data page to
    /// `sink`, or emit children with squared lower bounds (the kernel
    /// prunes against the query's comparator-space bound).
    fn expand_range(
        &self,
        r: Self::Ref,
        nq: NearQuery<'_>,
        io: &mut IoStats,
        ctx: &QueryContext,
        sink: &mut dyn EntrySink,
        children: &mut Vec<Child<Self::Ref>>,
    ) -> IndexResult<NodeKind>;

    /// Nearest-neighbor expansion: same shape as
    /// [`expand_range`](Self::expand_range), used by the best-first kNN
    /// driver and the streaming cursor. Split out because an engine may
    /// choose a different read path per query kind (the hybrid tree walks
    /// range-query directory pages zero-copy but decodes them for kNN).
    fn expand_near(
        &self,
        r: Self::Ref,
        nq: NearQuery<'_>,
        io: &mut IoStats,
        ctx: &QueryContext,
        sink: &mut dyn EntrySink,
        children: &mut Vec<Child<Self::Ref>>,
    ) -> IndexResult<NodeKind>;
}

// ---------------------------------------------------------------------
// Depth-first drivers: box and distance-range
// ---------------------------------------------------------------------

/// Runs a governed bounding-box query over any [`NodeExpand`] engine.
///
/// Depth-first over the engine's frontier: children are visited in the
/// order emitted (last emitted sibling first, exactly like the former
/// per-engine stacks; the root list is visited front to back). After
/// every leaf the result cap is checked; a denied read settles into a
/// degraded outcome carrying the oids found so far.
pub fn run_box_query<E: NodeExpand>(
    ex: &E,
    rect: &Rect,
    ctx: &QueryContext,
) -> IndexResult<(QueryOutcome<Vec<u64>>, IoStats)> {
    let mut io = IoStats::default();
    let mut out = Vec::new();
    let mut stack = ex.roots();
    stack.reverse();
    let dedup = ex.dedup_visits();
    let mut visited: HashSet<u64> = HashSet::new();
    let mut children = Vec::new();
    while let Some(r) = stack.pop() {
        if dedup && !visited.insert(ex.node_id(&r)) {
            continue;
        }
        children.clear();
        match ex.expand_box(r, rect, &mut io, ctx, &mut out, &mut children) {
            Err(e) => return settle_interrupt(e, out, io),
            Ok(NodeKind::Leaf) => {
                if apply_result_cap(
                    ctx,
                    &mut out,
                    ex.opaque_remaining_work() || !stack.is_empty(),
                ) {
                    return Ok((
                        QueryOutcome::degraded(out, DegradeReason::BudgetExhausted),
                        io,
                    ));
                }
                stack.append(&mut children);
            }
            Ok(NodeKind::Index) => stack.append(&mut children),
        }
    }
    Ok((QueryOutcome::Complete(out), io))
}

/// [`EntrySink`] for distance-range queries: comparator-space filtering
/// against `bound_sq` with one exact (rooted) `<= radius` check per
/// survivor, identical to the former per-engine leaf loops.
struct RangeSink<'a> {
    q: &'a Point,
    metric: &'a dyn Metric,
    radius: f64,
    bound_sq: f64,
    out: Vec<u64>,
}

impl EntrySink for RangeSink<'_> {
    fn offer(&mut self, oid: u64, p: &Point) {
        if let Some(c) = self.metric.distance_sq_within(self.q, p, self.bound_sq) {
            if self.metric.distance_from_sq(c) <= self.radius {
                self.out.push(oid);
            }
        }
    }
}

/// Runs a governed distance-range query over any [`NodeExpand`] engine.
///
/// Same depth-first shape as [`run_box_query`]; children survive only if
/// their squared lower bound is within the query's comparator-space bound
/// (`range_bound_sq`, slightly relaxed so boundary entries are never
/// pruned — survivors are verified exactly).
pub fn run_distance_range<E: NodeExpand>(
    ex: &E,
    q: &Point,
    radius: f64,
    metric: &dyn Metric,
    ctx: &QueryContext,
) -> IndexResult<(QueryOutcome<Vec<u64>>, IoStats)> {
    let mut io = IoStats::default();
    let bound_sq = range_bound_sq(metric, radius);
    let mut sink = RangeSink {
        q,
        metric,
        radius,
        bound_sq,
        out: Vec::new(),
    };
    let mut stack = ex.roots();
    stack.reverse();
    let dedup = ex.dedup_visits();
    let mut visited: HashSet<u64> = HashSet::new();
    let mut children: Vec<Child<E::Ref>> = Vec::new();
    while let Some(r) = stack.pop() {
        if dedup && !visited.insert(ex.node_id(&r)) {
            continue;
        }
        children.clear();
        match ex.expand_range(
            r,
            NearQuery { q, metric },
            &mut io,
            ctx,
            &mut sink,
            &mut children,
        ) {
            Err(e) => return settle_interrupt(e, sink.out, io),
            Ok(kind) => {
                if kind == NodeKind::Leaf
                    && apply_result_cap(
                        ctx,
                        &mut sink.out,
                        ex.opaque_remaining_work() || !stack.is_empty(),
                    )
                {
                    return Ok((
                        QueryOutcome::degraded(sink.out, DegradeReason::BudgetExhausted),
                        io,
                    ));
                }
                stack.extend(
                    children
                        .drain(..)
                        .filter(|c| c.bound <= bound_sq)
                        .map(|c| c.node),
                );
            }
        }
    }
    Ok((QueryOutcome::Complete(sink.out), io))
}

// ---------------------------------------------------------------------
// Best-first kNN driver
// ---------------------------------------------------------------------

/// Min-heap entry for the best-first node frontier: smallest bound first,
/// ties broken by smallest node id (deterministic traversal).
struct PqNode<R> {
    bound: f64,
    id: u64,
    node: R,
}

impl<R> PartialEq for PqNode<R> {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound && self.id == other.id
    }
}
impl<R> Eq for PqNode<R> {}
impl<R> PartialOrd for PqNode<R> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<R> Ord for PqNode<R> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want smallest bound first.
        other
            .bound
            .total_cmp(&self.bound)
            .then(other.id.cmp(&self.id))
    }
}

/// Max-heap entry for the current best-k candidates, ordered by
/// `(comparator-space distance, oid)` so the candidate evicted at the k
/// boundary is deterministic.
#[derive(Clone, Copy)]
struct HeapHit {
    dist: f64,
    oid: u64,
}
impl PartialEq for HeapHit {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapHit {}
impl PartialOrd for HeapHit {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapHit {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist
            .total_cmp(&other.dist)
            .then(self.oid.cmp(&other.oid))
    }
}

/// The kNN best-k collector: an [`EntrySink`] applying the early-abandon
/// candidate scan (partial distances against the current k-th best) and
/// the deterministic `(distance, oid)` replacement rule.
struct KnnAcc<'a> {
    q: &'a Point,
    metric: &'a dyn Metric,
    k: usize,
    best: BinaryHeap<HeapHit>,
}

impl<'a> KnnAcc<'a> {
    fn new(q: &'a Point, metric: &'a dyn Metric, k: usize) -> Self {
        KnnAcc {
            q,
            metric,
            k,
            best: BinaryHeap::new(),
        }
    }

    fn full(&self) -> bool {
        self.best.len() == self.k
    }

    /// Current comparator-space pruning bound: the k-th best distance, or
    /// infinity while the candidate set is not yet full.
    fn worst(&self) -> f64 {
        if self.best.len() < self.k {
            f64::INFINITY
        } else {
            self.best.peek().map_or(f64::INFINITY, |h| h.dist)
        }
    }

    /// Whether a node with squared lower bound `b` could still contribute
    /// (ties admitted, matching the former per-engine push filters).
    fn admits(&self, b: f64) -> bool {
        self.best.len() < self.k || self.best.peek().is_some_and(|h| b <= h.dist)
    }

    /// Drains into `(oid, distance)` sorted ascending (ties by oid),
    /// paying the single per-result root.
    fn into_sorted_hits(self) -> Vec<(u64, f64)> {
        let metric = self.metric;
        let mut hits: Vec<(u64, f64)> = self
            .best
            .into_iter()
            .map(|h| (h.oid, metric.distance_from_sq(h.dist)))
            .collect();
        hits.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        hits
    }
}

impl EntrySink for KnnAcc<'_> {
    fn offer(&mut self, oid: u64, p: &Point) {
        let worst = self.worst();
        if let Some(c) = self.metric.distance_sq_within(self.q, p, worst) {
            let hit = HeapHit { dist: c, oid };
            if self.best.len() < self.k {
                self.best.push(hit);
            } else if self
                .best
                .peek()
                .is_some_and(|peek| hit.cmp(peek) == Ordering::Less)
            {
                self.best.pop();
                self.best.push(hit);
            }
        }
    }
}

/// Runs a governed k-nearest-neighbor query over any [`NodeExpand`]
/// engine: best-first over `(bound, node id)`, terminating when the
/// closest unexpanded node is strictly farther than the k-th best
/// candidate. A `max_results` cap below `k` clamps `k` — the traversal
/// then finds the true cap-nearest neighbors, reported as
/// budget-degraded. A denied read settles into the best candidates found
/// so far, sorted.
#[allow(clippy::type_complexity)]
pub fn run_knn<E: NodeExpand>(
    ex: &E,
    q: &Point,
    k: usize,
    metric: &dyn Metric,
    ctx: &QueryContext,
) -> IndexResult<(QueryOutcome<Vec<(u64, f64)>>, IoStats)> {
    let mut io = IoStats::default();
    let clamped = ctx.max_results.is_some_and(|m| m < k);
    let k = ctx.max_results.map_or(k, |m| k.min(m));
    if k == 0 {
        return Ok((QueryOutcome::Complete(Vec::new()), io));
    }
    let mut pq: BinaryHeap<PqNode<E::Ref>> = ex
        .roots()
        .into_iter()
        .map(|r| PqNode {
            bound: 0.0,
            id: ex.node_id(&r),
            node: r,
        })
        .collect();
    if pq.is_empty() {
        return Ok((QueryOutcome::Complete(Vec::new()), io));
    }
    let dedup = ex.dedup_visits();
    let mut visited: HashSet<u64> = HashSet::new();
    let mut acc = KnnAcc::new(q, metric, k);
    let mut children: Vec<Child<E::Ref>> = Vec::new();
    while let Some(item) = pq.pop() {
        if acc.full() && item.bound > acc.worst() {
            break;
        }
        if dedup && !visited.insert(item.id) {
            continue;
        }
        children.clear();
        if let Err(e) = ex.expand_near(
            item.node,
            NearQuery { q, metric },
            &mut io,
            ctx,
            &mut acc,
            &mut children,
        ) {
            return settle_interrupt(e, acc.into_sorted_hits(), io);
        }
        for c in children.drain(..) {
            if acc.admits(c.bound) {
                pq.push(PqNode {
                    bound: c.bound,
                    id: ex.node_id(&c.node),
                    node: c.node,
                });
            }
        }
    }
    let hits = acc.into_sorted_hits();
    if clamped {
        return Ok((
            QueryOutcome::degraded(hits, DegradeReason::BudgetExhausted),
            io,
        ));
    }
    Ok((QueryOutcome::Complete(hits), io))
}

// ---------------------------------------------------------------------
// Streaming kNN cursor (distance browsing)
// ---------------------------------------------------------------------

/// One priority-queue entry of the cursor: either an unexpanded node
/// (keyed by its squared lower bound) or a discovered object (keyed by
/// its exact squared distance). At equal keys nodes sort before objects,
/// so an object is only yielded once every node that could hide a
/// same-distance, smaller-oid object has been expanded — this is what
/// makes cursor prefixes equal batch results under exact distance ties.
struct CursorEntry<R> {
    key: f64,
    /// 0 = node, 1 = object (nodes first at equal keys).
    rank: u8,
    /// Page id for nodes, oid for objects.
    id: u64,
    node: Option<R>,
}

impl<R> PartialEq for CursorEntry<R> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.rank == other.rank && self.id == other.id
    }
}
impl<R> Eq for CursorEntry<R> {}
impl<R> PartialOrd for CursorEntry<R> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<R> Ord for CursorEntry<R> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for min-heap behavior on (key, rank, id).
        other
            .key
            .total_cmp(&self.key)
            .then(other.rank.cmp(&self.rank))
            .then(other.id.cmp(&self.id))
    }
}

/// [`EntrySink`] staging discovered objects with their exact squared
/// distances; the cursor moves them onto its priority queue after the
/// expansion returns. No early abandon: a cursor has no k.
struct StageSink<'a> {
    q: &'a Point,
    metric: &'a dyn Metric,
    staged: Vec<(u64, f64)>,
}

impl EntrySink for StageSink<'_> {
    fn offer(&mut self, oid: u64, p: &Point) {
        self.staged.push((oid, self.metric.distance_sq(self.q, p)));
    }
}

/// Incremental k-nearest-neighbor cursor (Hjaltason–Samet distance
/// browsing) over any [`NodeExpand`] engine: one priority queue holds
/// both unexpanded nodes (by lower bound) and discovered objects (by
/// exact distance); [`next`](Self::next) pops until an object surfaces.
///
/// Yields neighbors in ascending `(distance, oid)` order without a fixed
/// `k` — pulling `n` results reads no more pages than a batch
/// `knn_ctx(q, n, ..)` would, and the yield sequence is exactly the batch
/// answer's prefix (see `tests/executor.rs`). Governance carries over:
/// every page read is admitted by the [`QueryContext`]; a denied read or
/// an exhausted `max_results` cap ends the stream with
/// [`degrade_reason`](Self::degrade_reason) set. Hard storage failures
/// also end the stream and are surfaced by [`take_error`](Self::take_error).
pub struct KnnCursor<'m, E: NodeExpand> {
    ex: E,
    q: Point,
    metric: &'m dyn Metric,
    ctx: QueryContext,
    pq: BinaryHeap<CursorEntry<E::Ref>>,
    visited: HashSet<u64>,
    io: IoStats,
    yielded: usize,
    stopped: Option<DegradeReason>,
    error: Option<IndexError>,
}

impl<'m, E: NodeExpand> KnnCursor<'m, E> {
    /// Opens a cursor positioned before the nearest neighbor.
    pub fn new(ex: E, q: Point, metric: &'m dyn Metric, ctx: QueryContext) -> Self {
        let pq = ex
            .roots()
            .into_iter()
            .map(|r| CursorEntry {
                key: 0.0,
                rank: 0,
                id: ex.node_id(&r),
                node: Some(r),
            })
            .collect();
        KnnCursor {
            ex,
            q,
            metric,
            ctx,
            pq,
            visited: HashSet::new(),
            io: IoStats::default(),
            yielded: 0,
            stopped: None,
            error: None,
        }
    }

    /// The next neighbor in ascending `(distance, oid)` order, or `None`
    /// when the index is exhausted, a governance limit stopped the stream
    /// ([`degrade_reason`](Self::degrade_reason)), or a storage failure
    /// occurred ([`take_error`](Self::take_error)).
    #[allow(clippy::should_implement_trait)] // fallible, stateful next()
    pub fn next(&mut self) -> Option<(u64, f64)> {
        if self.stopped.is_some() || self.error.is_some() {
            return None;
        }
        if let Some(cap) = self.ctx.max_results {
            if self.yielded >= cap {
                self.stopped = Some(DegradeReason::BudgetExhausted);
                return None;
            }
        }
        let dedup = self.ex.dedup_visits();
        loop {
            let entry = self.pq.pop()?;
            let Some(node) = entry.node else {
                self.yielded += 1;
                return Some((entry.id, self.metric.distance_from_sq(entry.key)));
            };
            if dedup && !self.visited.insert(entry.id) {
                continue;
            }
            let mut sink = StageSink {
                q: &self.q,
                metric: self.metric,
                staged: Vec::new(),
            };
            let mut children: Vec<Child<E::Ref>> = Vec::new();
            match self.ex.expand_near(
                node,
                NearQuery {
                    q: &self.q,
                    metric: self.metric,
                },
                &mut self.io,
                &self.ctx,
                &mut sink,
                &mut children,
            ) {
                Ok(_) => {
                    for (oid, d) in sink.staged {
                        self.pq.push(CursorEntry {
                            key: d,
                            rank: 1,
                            id: oid,
                            node: None,
                        });
                    }
                    for c in children {
                        self.pq.push(CursorEntry {
                            key: c.bound,
                            rank: 0,
                            id: self.ex.node_id(&c.node),
                            node: Some(c.node),
                        });
                    }
                }
                Err(e) => {
                    match e.interrupt() {
                        Some(i) => self.stopped = Some(i.into()),
                        None => self.error = Some(e),
                    }
                    return None;
                }
            }
        }
    }

    /// I/O incurred by this cursor so far.
    pub fn io(&self) -> IoStats {
        self.io
    }

    /// Why the stream degraded (stopped early), if it did.
    pub fn degrade_reason(&self) -> Option<DegradeReason> {
        self.stopped
    }

    /// Takes the hard storage failure that ended the stream, if any.
    pub fn take_error(&mut self) -> Option<IndexError> {
        self.error.take()
    }
}

impl<E: NodeExpand> KnnStream for KnnCursor<'_, E> {
    fn next(&mut self) -> Option<(u64, f64)> {
        KnnCursor::next(self)
    }

    fn io(&self) -> IoStats {
        KnnCursor::io(self)
    }

    fn degrade_reason(&self) -> Option<DegradeReason> {
        KnnCursor::degrade_reason(self)
    }

    fn take_error(&mut self) -> Option<IndexError> {
        KnnCursor::take_error(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyt_geom::L2;
    use hyt_page::{Interrupt, PageError};

    /// A leaf's lower bound and its `(oid, coords)` entries.
    type MockLeaf = (f64, Vec<(u64, Vec<f32>)>);

    /// A synthetic two-level engine: one root with `leaves` children,
    /// each leaf holding points. `fail_at` trips an interrupt on the
    /// n-th node visit to exercise settlement.
    struct Mock {
        leaves: Vec<MockLeaf>,
        fail_at: Option<usize>,
        visits: std::cell::Cell<usize>,
    }

    impl Mock {
        fn admit(&self, io: &mut IoStats) -> IndexResult<()> {
            let n = self.visits.get() + 1;
            self.visits.set(n);
            io.logical_reads += 1;
            if self.fail_at == Some(n) {
                return Err(IndexError::Storage(PageError::Interrupted(
                    Interrupt::BudgetExhausted,
                )));
            }
            Ok(())
        }

        fn points(&self, leaf: usize) -> Vec<(u64, Point)> {
            self.leaves[leaf]
                .1
                .iter()
                .map(|(oid, c)| (*oid, Point::new(c.clone())))
                .collect()
        }
    }

    impl NodeExpand for Mock {
        type Ref = usize; // 0 = root, 1.. = leaf index + 1

        fn node_id(&self, r: &usize) -> u64 {
            *r as u64
        }

        fn roots(&self) -> Vec<usize> {
            if self.leaves.is_empty() {
                Vec::new()
            } else {
                vec![0]
            }
        }

        fn expand_box(
            &self,
            r: usize,
            rect: &Rect,
            io: &mut IoStats,
            _ctx: &QueryContext,
            out: &mut Vec<u64>,
            children: &mut Vec<usize>,
        ) -> IndexResult<NodeKind> {
            self.admit(io)?;
            if r == 0 {
                children.extend(1..=self.leaves.len());
                return Ok(NodeKind::Index);
            }
            for (oid, p) in self.points(r - 1) {
                if rect.contains_point(&p) {
                    out.push(oid);
                }
            }
            Ok(NodeKind::Leaf)
        }

        fn expand_range(
            &self,
            r: usize,
            nq: NearQuery<'_>,
            io: &mut IoStats,
            ctx: &QueryContext,
            sink: &mut dyn EntrySink,
            children: &mut Vec<Child<usize>>,
        ) -> IndexResult<NodeKind> {
            self.expand_near(r, nq, io, ctx, sink, children)
        }

        fn expand_near(
            &self,
            r: usize,
            _nq: NearQuery<'_>,
            io: &mut IoStats,
            _ctx: &QueryContext,
            sink: &mut dyn EntrySink,
            children: &mut Vec<Child<usize>>,
        ) -> IndexResult<NodeKind> {
            self.admit(io)?;
            if r == 0 {
                children.extend(self.leaves.iter().enumerate().map(|(i, (bound, _))| Child {
                    bound: *bound,
                    node: i + 1,
                }));
                return Ok(NodeKind::Index);
            }
            for (oid, p) in self.points(r - 1) {
                sink.offer(oid, &p);
            }
            Ok(NodeKind::Leaf)
        }
    }

    fn mock() -> Mock {
        Mock {
            // Bounds are exact min-dists from the origin query.
            leaves: vec![
                (0.0, vec![(1, vec![0.1, 0.0]), (2, vec![0.2, 0.0])]),
                (0.25, vec![(3, vec![0.5, 0.0]), (4, vec![0.6, 0.0])]),
                (4.0, vec![(5, vec![2.0, 0.0])]),
            ],
            fail_at: None,
            visits: std::cell::Cell::new(0),
        }
    }

    #[test]
    fn knn_prunes_far_nodes_and_sorts_hits() {
        let m = mock();
        let q = Point::new(vec![0.0, 0.0]);
        let (outcome, io) = run_knn(&m, &q, 3, &L2, QueryContext::unlimited()).unwrap();
        let hits = outcome.into_results();
        assert_eq!(
            hits.iter().map(|(o, _)| *o).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        // Root + two near leaves; the far leaf (bound 4.0 > 0.5^2) is
        // pruned without a read.
        assert_eq!(io.logical_reads, 3);
    }

    #[test]
    fn interrupt_settles_with_best_so_far() {
        let mut m = mock();
        m.fail_at = Some(3); // root, leaf 1 ok; leaf 2 denied
        let q = Point::new(vec![0.0, 0.0]);
        let (outcome, io) = run_knn(&m, &q, 3, &L2, QueryContext::unlimited()).unwrap();
        assert_eq!(
            outcome.degrade_reason(),
            Some(DegradeReason::BudgetExhausted)
        );
        let hits = outcome.into_results();
        assert_eq!(hits.iter().map(|(o, _)| *o).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(io.logical_reads, 3);
    }

    #[test]
    fn box_query_caps_and_degrades() {
        let m = mock();
        let rect = Rect::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        let ctx = QueryContext::default().with_max_results(1);
        let (outcome, _) = run_box_query(&m, &rect, &ctx).unwrap();
        assert_eq!(
            outcome.degrade_reason(),
            Some(DegradeReason::BudgetExhausted)
        );
        // Depth-first pops the last-emitted child first: leaf 3 (empty in
        // the box), then leaf 2, whose two hits overflow the cap of 1.
        assert_eq!(outcome.into_results(), vec![3]);
    }

    #[test]
    fn range_prunes_by_bound() {
        let m = mock();
        let q = Point::new(vec![0.0, 0.0]);
        let (outcome, io) =
            run_distance_range(&m, &q, 0.3, &L2, QueryContext::unlimited()).unwrap();
        let mut oids = outcome.into_results();
        oids.sort_unstable();
        assert_eq!(oids, vec![1, 2]);
        // Leaf 2 (bound 0.25 > 0.09) and leaf 3 pruned: root + leaf 1.
        assert_eq!(io.logical_reads, 2);
    }

    #[test]
    fn cursor_yields_batch_prefix_in_order() {
        let m = mock();
        let q = Point::new(vec![0.0, 0.0]);
        let (batch, _) = run_knn(&m, &q, 5, &L2, QueryContext::unlimited()).unwrap();
        let batch = batch.into_results();
        let mut cur = KnnCursor::new(mock(), q, &L2, QueryContext::unlimited().clone());
        let mut streamed = Vec::new();
        while let Some(hit) = cur.next() {
            streamed.push(hit);
        }
        assert_eq!(streamed, batch);
        assert_eq!(cur.degrade_reason(), None);
    }

    #[test]
    fn cursor_reports_result_cap() {
        let q = Point::new(vec![0.0, 0.0]);
        let ctx = QueryContext::default().with_max_results(2);
        let mut cur = KnnCursor::new(mock(), q, &L2, ctx);
        assert!(cur.next().is_some());
        assert!(cur.next().is_some());
        assert!(cur.next().is_none());
        assert_eq!(cur.degrade_reason(), Some(DegradeReason::BudgetExhausted));
    }

    #[test]
    fn empty_roots_complete_without_io() {
        let m = Mock {
            leaves: Vec::new(),
            fail_at: None,
            visits: std::cell::Cell::new(0),
        };
        let q = Point::new(vec![0.0, 0.0]);
        let (outcome, io) = run_knn(&m, &q, 3, &L2, QueryContext::unlimited()).unwrap();
        assert!(outcome.is_complete());
        assert!(outcome.into_results().is_empty());
        assert_eq!(io.logical_reads, 0);
    }
}
