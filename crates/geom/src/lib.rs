//! Geometry substrate for the hybrid tree reproduction.
//!
//! This crate provides the vocabulary types shared by every index structure
//! in the workspace:
//!
//! * [`Point`] — a k-dimensional feature vector (`f32` coordinates, as used
//!   by the paper's feature databases),
//! * [`Rect`] — a k-dimensional axis-aligned bounding region (BR),
//! * [`Metric`] — user-supplied distance functions ([`L1`], [`L2`],
//!   [`Lp`], [`Chebyshev`], [`WeightedEuclidean`]) together with the
//!   `MINDIST` lower bounds required for pruning during distance-based
//!   search,
//! * Minkowski-sum volume helpers used by the paper's Expected-Disk-Access
//!   (EDA) cost derivations (§3.2–§3.3).
//!
//! The hybrid tree (ICDE 1999) is a *feature-based* index: partitioning
//! never depends on the distance function, which is chosen per query. This
//! crate therefore keeps metrics strictly separate from the geometric
//! containment/overlap predicates used while building trees.

mod metric;
mod point;
mod rect;

pub use metric::{range_bound_sq, Chebyshev, Lp, Metric, WeightedEuclidean, L1, L2};
pub use point::Point;
pub use rect::Rect;

/// Scalar coordinate type used throughout the workspace.
///
/// The paper's feature vectors (Fourier coefficients, color histogram bins)
/// are single-precision; using `f32` also reproduces the paper's page
/// fanout arithmetic (e.g. a 64-d entry occupies `64 * 4` bytes).
pub type Coord = f32;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exports_are_usable_together() {
        let p = Point::new(vec![0.5, 0.5]);
        let r = Rect::unit(2);
        assert!(r.contains_point(&p));
        assert_eq!(L2.distance(&p, &p), 0.0);
    }
}
