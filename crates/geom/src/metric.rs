//! Distance functions and the pruning bounds they induce.
//!
//! The hybrid tree is a feature-based index: the distance function is
//! supplied *at query time* (§3.5 of the paper), possibly changing between
//! iterations of the same query in a relevance-feedback loop. Distance-based
//! search over any of the indexes needs two things from a metric:
//!
//! 1. the point-to-point distance itself, and
//! 2. `MINDIST(q, BR)` — a lower bound on the distance from the query point
//!    to *any* point inside a bounding region, used to prune subtrees.
//!
//! For the SR-tree baseline, which also stores L2 bounding spheres, a metric
//! additionally provides a norm-equivalence factor so an L2 sphere can be
//! used for pruning under a different query metric without false dismissals.

use crate::{Point, Rect};

/// A distance function usable for range and nearest-neighbor queries.
///
/// Implementations must satisfy, for all `q`, rectangles `R`, and points
/// `p ∈ R`: `min_dist_rect(q, R) <= distance(q, p)`. The provided property
/// tests in this module check the bound for the bundled metrics; custom
/// metrics should be tested the same way (a violated bound causes false
/// dismissals, i.e. silently incomplete query results).
///
/// Metrics are `Sync` so one metric can serve concurrent queries (they
/// are consulted from many threads by the parallel batch runner); all
/// bundled metrics are immutable value types.
pub trait Metric: Sync {
    /// Distance between two points of equal dimensionality.
    fn distance(&self, a: &Point, b: &Point) -> f64;

    /// Lower bound on `distance(q, p)` over all `p` in `rect`.
    fn min_dist_rect(&self, q: &Point, rect: &Rect) -> f64;

    /// Factor `c(k)` such that `||v||_self <= c(k) * ||v||_2` for all
    /// k-dimensional `v`. Used to prune with L2 bounding spheres: any point
    /// within L2 radius `r` of center `c` is within `c(k) * r` under this
    /// metric, hence
    /// `min_dist >= distance(q, c) - c(k) * r`.
    fn l2_equivalence_factor(&self, dim: usize) -> f64;

    /// Lower bound on the distance from `q` to any point inside the L2 ball
    /// `(center, radius)`.
    fn min_dist_sphere(&self, q: &Point, center: &Point, radius: f64) -> f64 {
        (self.distance(q, center) - self.l2_equivalence_factor(q.dim()) * radius).max(0.0)
    }

    /// Comparator-space distance: a strictly monotone transform of
    /// [`distance`](Metric::distance) that is cheaper to compute — for
    /// quadratic metrics (L2, weighted L2) the squared distance (no
    /// `sqrt`), for `L_p` the p-th power (no root), and the identity for
    /// metrics that are already root-free (L1, L∞).
    ///
    /// Query engines compare candidates and pruning bounds in comparator
    /// space and map back with
    /// [`distance_from_sq`](Metric::distance_from_sq) once per *reported*
    /// result, instead of paying one root per candidate. Because the
    /// transform is monotone, every `<`/`<=` decision agrees with actual
    /// space, and because `distance` computes the same accumulation
    /// before its root, `distance_from_sq(distance_sq(a, b))` is
    /// bit-identical to `distance(a, b)` for the bundled metrics.
    ///
    /// Implementations overriding any of `distance_sq`,
    /// [`min_dist_rect_sq`](Metric::min_dist_rect_sq),
    /// [`distance_from_sq`](Metric::distance_from_sq), and
    /// [`distance_to_sq`](Metric::distance_to_sq) must override all four
    /// consistently (same transform everywhere).
    fn distance_sq(&self, a: &Point, b: &Point) -> f64 {
        self.distance(a, b)
    }

    /// Comparator-space form of [`min_dist_rect`](Metric::min_dist_rect):
    /// `distance_to_sq(min_dist_rect(q, rect))` up to rounding, computed
    /// without the root. The lower-bound contract carries over: for all
    /// `p ∈ rect`, `min_dist_rect_sq(q, rect) <= distance_sq(q, p)`.
    fn min_dist_rect_sq(&self, q: &Point, rect: &Rect) -> f64 {
        self.min_dist_rect(q, rect)
    }

    /// Maps a comparator-space value back to an actual distance (the
    /// inverse of the transform; one root per reported result).
    fn distance_from_sq(&self, d_sq: f64) -> f64 {
        d_sq
    }

    /// Maps an actual distance (e.g. a range-query radius) into
    /// comparator space.
    fn distance_to_sq(&self, d: f64) -> f64 {
        d
    }

    /// Partial-distance early-abandon kernel: computes
    /// `distance_sq(a, b)`, but may bail out as soon as the partial
    /// accumulation already exceeds `bound_sq` (sound because every
    /// bundled metric accumulates monotonically — adding a non-negative
    /// term or taking a max never decreases the partial value).
    ///
    /// Returns `Some(d_sq)` iff `distance_sq(a, b) <= bound_sq`, with
    /// `d_sq` bit-identical to the full `distance_sq` (the accumulation
    /// order is unchanged; abandoning only skips work for candidates
    /// that would be rejected anyway); `None` otherwise.
    fn distance_sq_within(&self, a: &Point, b: &Point, bound_sq: f64) -> Option<f64> {
        let d_sq = self.distance_sq(a, b);
        (d_sq <= bound_sq).then_some(d_sq)
    }

    /// Human-readable name for reports.
    fn name(&self) -> &'static str {
        "custom"
    }
}

/// Dimensions scanned between bound checks in the early-abandon kernels:
/// checking every dimension costs more than it saves; every 8 keeps the
/// partial-sum loop tight while still abandoning far candidates early.
const ABANDON_STRIDE: usize = 8;

/// Comparator-space pruning bound for a distance-range query of `radius`.
///
/// `distance_to_sq(radius)` relaxed by one part in 10^12, which dominates
/// the few ulps of rounding the forward transform (`d*d`, `powf`) can
/// lose relative to the comparator value accumulated term-by-term. Using
/// the relaxed bound for node pruning and candidate abandoning can only
/// *admit* borderline candidates, never reject true ones; engines then
/// keep exactly those survivors with `distance_from_sq(d_sq) <= radius`
/// — one root per near-candidate, and a result set identical to
/// filtering on `distance(q, p) <= radius` directly.
pub fn range_bound_sq(metric: &dyn Metric, radius: f64) -> f64 {
    metric.distance_to_sq(radius) * (1.0 + 1e-12)
}

/// Per-dimension distance from a coordinate to an interval; 0 inside.
#[inline]
fn axis_gap(x: f64, lo: f64, hi: f64) -> f64 {
    if x < lo {
        lo - x
    } else if x > hi {
        x - hi
    } else {
        0.0
    }
}

/// Manhattan distance (the metric used for the paper's distance-based
/// experiments, Fig. 7(c,d), following the MARS similarity model).
#[derive(Clone, Copy, Debug, Default)]
pub struct L1;

impl Metric for L1 {
    fn distance(&self, a: &Point, b: &Point) -> f64 {
        debug_assert_eq!(a.dim(), b.dim());
        (0..a.dim())
            .map(|d| (f64::from(a.coord(d)) - f64::from(b.coord(d))).abs())
            .sum()
    }

    fn min_dist_rect(&self, q: &Point, rect: &Rect) -> f64 {
        debug_assert_eq!(q.dim(), rect.dim());
        (0..q.dim())
            .map(|d| {
                axis_gap(
                    f64::from(q.coord(d)),
                    f64::from(rect.lo(d)),
                    f64::from(rect.hi(d)),
                )
            })
            .sum()
    }

    fn l2_equivalence_factor(&self, dim: usize) -> f64 {
        // ||v||_1 <= sqrt(k) ||v||_2 (Cauchy-Schwarz), tight for v ∝ 1.
        (dim as f64).sqrt()
    }

    // L1 is root-free already: comparator space is actual space (the
    // trait defaults), but the early-abandon kernel still pays off.
    fn distance_sq_within(&self, a: &Point, b: &Point, bound_sq: f64) -> Option<f64> {
        debug_assert_eq!(a.dim(), b.dim());
        let mut acc = 0.0f64;
        let mut d = 0;
        while d < a.dim() {
            let end = (d + ABANDON_STRIDE).min(a.dim());
            while d < end {
                acc += (f64::from(a.coord(d)) - f64::from(b.coord(d))).abs();
                d += 1;
            }
            if acc > bound_sq {
                return None;
            }
        }
        Some(acc)
    }

    fn name(&self) -> &'static str {
        "L1"
    }
}

/// Euclidean distance.
#[derive(Clone, Copy, Debug, Default)]
pub struct L2;

impl Metric for L2 {
    fn distance(&self, a: &Point, b: &Point) -> f64 {
        debug_assert_eq!(a.dim(), b.dim());
        (0..a.dim())
            .map(|d| {
                let diff = f64::from(a.coord(d)) - f64::from(b.coord(d));
                diff * diff
            })
            .sum::<f64>()
            .sqrt()
    }

    fn min_dist_rect(&self, q: &Point, rect: &Rect) -> f64 {
        debug_assert_eq!(q.dim(), rect.dim());
        (0..q.dim())
            .map(|d| {
                let g = axis_gap(
                    f64::from(q.coord(d)),
                    f64::from(rect.lo(d)),
                    f64::from(rect.hi(d)),
                );
                g * g
            })
            .sum::<f64>()
            .sqrt()
    }

    fn l2_equivalence_factor(&self, _dim: usize) -> f64 {
        1.0
    }

    fn distance_sq(&self, a: &Point, b: &Point) -> f64 {
        debug_assert_eq!(a.dim(), b.dim());
        // Identical accumulation to `distance`, minus the final sqrt —
        // so `distance_from_sq(distance_sq(..))` is bit-identical.
        (0..a.dim())
            .map(|d| {
                let diff = f64::from(a.coord(d)) - f64::from(b.coord(d));
                diff * diff
            })
            .sum::<f64>()
    }

    fn min_dist_rect_sq(&self, q: &Point, rect: &Rect) -> f64 {
        debug_assert_eq!(q.dim(), rect.dim());
        (0..q.dim())
            .map(|d| {
                let g = axis_gap(
                    f64::from(q.coord(d)),
                    f64::from(rect.lo(d)),
                    f64::from(rect.hi(d)),
                );
                g * g
            })
            .sum::<f64>()
    }

    fn distance_from_sq(&self, d_sq: f64) -> f64 {
        d_sq.sqrt()
    }

    fn distance_to_sq(&self, d: f64) -> f64 {
        d * d
    }

    fn distance_sq_within(&self, a: &Point, b: &Point, bound_sq: f64) -> Option<f64> {
        debug_assert_eq!(a.dim(), b.dim());
        let mut acc = 0.0f64;
        let mut d = 0;
        while d < a.dim() {
            let end = (d + ABANDON_STRIDE).min(a.dim());
            while d < end {
                let diff = f64::from(a.coord(d)) - f64::from(b.coord(d));
                acc += diff * diff;
                d += 1;
            }
            if acc > bound_sq {
                return None;
            }
        }
        Some(acc)
    }

    fn name(&self) -> &'static str {
        "L2"
    }
}

/// General Minkowski metric `L_p`, `p >= 1`.
#[derive(Clone, Copy, Debug)]
pub struct Lp {
    p: f64,
}

impl Lp {
    /// Creates an `L_p` metric.
    ///
    /// # Panics
    /// Panics unless `p >= 1` (otherwise the triangle inequality fails and
    /// pruning bounds would be invalid).
    pub fn new(p: f64) -> Self {
        assert!(p >= 1.0 && p.is_finite(), "Lp requires finite p >= 1");
        Self { p }
    }

    /// The order `p`.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl Metric for Lp {
    fn distance(&self, a: &Point, b: &Point) -> f64 {
        debug_assert_eq!(a.dim(), b.dim());
        (0..a.dim())
            .map(|d| {
                (f64::from(a.coord(d)) - f64::from(b.coord(d)))
                    .abs()
                    .powf(self.p)
            })
            .sum::<f64>()
            .powf(1.0 / self.p)
    }

    fn min_dist_rect(&self, q: &Point, rect: &Rect) -> f64 {
        debug_assert_eq!(q.dim(), rect.dim());
        (0..q.dim())
            .map(|d| {
                axis_gap(
                    f64::from(q.coord(d)),
                    f64::from(rect.lo(d)),
                    f64::from(rect.hi(d)),
                )
                .powf(self.p)
            })
            .sum::<f64>()
            .powf(1.0 / self.p)
    }

    fn l2_equivalence_factor(&self, dim: usize) -> f64 {
        // ||v||_p <= k^(1/p - 1/2) ||v||_2 for p <= 2; ||v||_p <= ||v||_2 for p >= 2.
        if self.p < 2.0 {
            (dim as f64).powf(1.0 / self.p - 0.5)
        } else {
            1.0
        }
    }

    // Comparator space for L_p is the p-th power (root-free).
    fn distance_sq(&self, a: &Point, b: &Point) -> f64 {
        debug_assert_eq!(a.dim(), b.dim());
        (0..a.dim())
            .map(|d| {
                (f64::from(a.coord(d)) - f64::from(b.coord(d)))
                    .abs()
                    .powf(self.p)
            })
            .sum::<f64>()
    }

    fn min_dist_rect_sq(&self, q: &Point, rect: &Rect) -> f64 {
        debug_assert_eq!(q.dim(), rect.dim());
        (0..q.dim())
            .map(|d| {
                axis_gap(
                    f64::from(q.coord(d)),
                    f64::from(rect.lo(d)),
                    f64::from(rect.hi(d)),
                )
                .powf(self.p)
            })
            .sum::<f64>()
    }

    fn distance_from_sq(&self, d_sq: f64) -> f64 {
        d_sq.powf(1.0 / self.p)
    }

    fn distance_to_sq(&self, d: f64) -> f64 {
        d.powf(self.p)
    }

    fn distance_sq_within(&self, a: &Point, b: &Point, bound_sq: f64) -> Option<f64> {
        debug_assert_eq!(a.dim(), b.dim());
        let mut acc = 0.0f64;
        let mut d = 0;
        while d < a.dim() {
            let end = (d + ABANDON_STRIDE).min(a.dim());
            while d < end {
                acc += (f64::from(a.coord(d)) - f64::from(b.coord(d)))
                    .abs()
                    .powf(self.p);
                d += 1;
            }
            if acc > bound_sq {
                return None;
            }
        }
        Some(acc)
    }

    fn name(&self) -> &'static str {
        "Lp"
    }
}

/// Chebyshev / maximum metric (`L_∞`).
#[derive(Clone, Copy, Debug, Default)]
pub struct Chebyshev;

impl Metric for Chebyshev {
    fn distance(&self, a: &Point, b: &Point) -> f64 {
        debug_assert_eq!(a.dim(), b.dim());
        (0..a.dim())
            .map(|d| (f64::from(a.coord(d)) - f64::from(b.coord(d))).abs())
            .fold(0.0, f64::max)
    }

    fn min_dist_rect(&self, q: &Point, rect: &Rect) -> f64 {
        debug_assert_eq!(q.dim(), rect.dim());
        (0..q.dim())
            .map(|d| {
                axis_gap(
                    f64::from(q.coord(d)),
                    f64::from(rect.lo(d)),
                    f64::from(rect.hi(d)),
                )
            })
            .fold(0.0, f64::max)
    }

    fn l2_equivalence_factor(&self, _dim: usize) -> f64 {
        // ||v||_inf <= ||v||_2.
        1.0
    }

    // L∞ is root-free; the running max is monotone, so early abandon is
    // sound here too.
    fn distance_sq_within(&self, a: &Point, b: &Point, bound_sq: f64) -> Option<f64> {
        debug_assert_eq!(a.dim(), b.dim());
        let mut acc = 0.0f64;
        let mut d = 0;
        while d < a.dim() {
            let end = (d + ABANDON_STRIDE).min(a.dim());
            while d < end {
                acc = acc.max((f64::from(a.coord(d)) - f64::from(b.coord(d))).abs());
                d += 1;
            }
            if acc > bound_sq {
                return None;
            }
        }
        Some(acc)
    }

    fn name(&self) -> &'static str {
        "Linf"
    }
}

/// Weighted Euclidean distance — the kind of per-query metric produced by
/// relevance-feedback loops (MindReader/MARS, paper §3.5): the user's
/// feedback re-weights feature dimensions between iterations of the same
/// query, which the hybrid tree supports without rebuilding the index.
#[derive(Clone, Debug)]
pub struct WeightedEuclidean {
    weights: Box<[f64]>,
    max_weight_sqrt: f64,
}

impl WeightedEuclidean {
    /// Creates a weighted Euclidean metric with per-dimension weights.
    ///
    /// # Panics
    /// Panics if any weight is negative or non-finite, or all are zero.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "weights must be non-empty");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        let max = weights.iter().cloned().fold(0.0, f64::max);
        assert!(max > 0.0, "at least one weight must be positive");
        Self {
            weights: weights.into_boxed_slice(),
            max_weight_sqrt: max.sqrt(),
        }
    }

    /// The weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl Metric for WeightedEuclidean {
    fn distance(&self, a: &Point, b: &Point) -> f64 {
        debug_assert_eq!(a.dim(), self.weights.len());
        (0..a.dim())
            .map(|d| {
                let diff = f64::from(a.coord(d)) - f64::from(b.coord(d));
                self.weights[d] * diff * diff
            })
            .sum::<f64>()
            .sqrt()
    }

    fn min_dist_rect(&self, q: &Point, rect: &Rect) -> f64 {
        (0..q.dim())
            .map(|d| {
                let g = axis_gap(
                    f64::from(q.coord(d)),
                    f64::from(rect.lo(d)),
                    f64::from(rect.hi(d)),
                );
                self.weights[d] * g * g
            })
            .sum::<f64>()
            .sqrt()
    }

    fn l2_equivalence_factor(&self, _dim: usize) -> f64 {
        // sqrt(sum w_d v_d^2) <= sqrt(max w) ||v||_2.
        self.max_weight_sqrt
    }

    fn distance_sq(&self, a: &Point, b: &Point) -> f64 {
        debug_assert_eq!(a.dim(), self.weights.len());
        (0..a.dim())
            .map(|d| {
                let diff = f64::from(a.coord(d)) - f64::from(b.coord(d));
                self.weights[d] * diff * diff
            })
            .sum::<f64>()
    }

    fn min_dist_rect_sq(&self, q: &Point, rect: &Rect) -> f64 {
        (0..q.dim())
            .map(|d| {
                let g = axis_gap(
                    f64::from(q.coord(d)),
                    f64::from(rect.lo(d)),
                    f64::from(rect.hi(d)),
                );
                self.weights[d] * g * g
            })
            .sum::<f64>()
    }

    fn distance_from_sq(&self, d_sq: f64) -> f64 {
        d_sq.sqrt()
    }

    fn distance_to_sq(&self, d: f64) -> f64 {
        d * d
    }

    fn distance_sq_within(&self, a: &Point, b: &Point, bound_sq: f64) -> Option<f64> {
        debug_assert_eq!(a.dim(), self.weights.len());
        let mut acc = 0.0f64;
        let mut d = 0;
        while d < a.dim() {
            let end = (d + ABANDON_STRIDE).min(a.dim());
            while d < end {
                let diff = f64::from(a.coord(d)) - f64::from(b.coord(d));
                acc += self.weights[d] * diff * diff;
                d += 1;
            }
            if acc > bound_sq {
                return None;
            }
        }
        Some(acc)
    }

    fn name(&self) -> &'static str {
        "weighted-L2"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(v: &[f32]) -> Point {
        Point::new(v.to_vec())
    }

    #[test]
    fn l1_distance() {
        let d = L1.distance(&p(&[0.0, 0.0]), &p(&[3.0, 4.0]));
        assert_eq!(d, 7.0);
    }

    #[test]
    fn l2_distance() {
        let d = L2.distance(&p(&[0.0, 0.0]), &p(&[3.0, 4.0]));
        assert!((d - 5.0).abs() < 1e-12);
    }

    #[test]
    fn chebyshev_distance() {
        let d = Chebyshev.distance(&p(&[0.0, 0.0]), &p(&[3.0, 4.0]));
        assert_eq!(d, 4.0);
    }

    #[test]
    fn lp_interpolates_l1_l2() {
        let a = p(&[0.0, 0.0]);
        let b = p(&[3.0, 4.0]);
        assert!((Lp::new(1.0).distance(&a, &b) - 7.0).abs() < 1e-9);
        assert!((Lp::new(2.0).distance(&a, &b) - 5.0).abs() < 1e-9);
        let d15 = Lp::new(1.5).distance(&a, &b);
        assert!(d15 > 5.0 && d15 < 7.0);
    }

    #[test]
    #[should_panic(expected = "p >= 1")]
    fn lp_rejects_sub_one() {
        let _ = Lp::new(0.5);
    }

    #[test]
    fn weighted_euclidean_ignores_zero_weight_dims() {
        let m = WeightedEuclidean::new(vec![1.0, 0.0]);
        let d = m.distance(&p(&[0.0, 0.0]), &p(&[3.0, 100.0]));
        assert!((d - 3.0).abs() < 1e-12);
    }

    #[test]
    fn mindist_zero_inside_rect() {
        let r = Rect::unit(2);
        let q = p(&[0.5, 0.5]);
        assert_eq!(L1.min_dist_rect(&q, &r), 0.0);
        assert_eq!(L2.min_dist_rect(&q, &r), 0.0);
        assert_eq!(Chebyshev.min_dist_rect(&q, &r), 0.0);
    }

    #[test]
    fn mindist_outside_rect() {
        let r = Rect::unit(2);
        let q = p(&[2.0, 2.0]);
        assert_eq!(L1.min_dist_rect(&q, &r), 2.0);
        assert!((L2.min_dist_rect(&q, &r) - 2f64.sqrt()).abs() < 1e-12);
        assert_eq!(Chebyshev.min_dist_rect(&q, &r), 1.0);
    }

    #[test]
    fn sphere_bound_is_sane_under_l2() {
        let q = p(&[3.0, 0.0]);
        let c = p(&[0.0, 0.0]);
        assert!((L2.min_dist_sphere(&q, &c, 1.0) - 2.0).abs() < 1e-12);
        // Inside the sphere: bound clamps to 0.
        assert_eq!(L2.min_dist_sphere(&q, &c, 4.0), 0.0);
    }

    proptest! {
        /// MINDIST(q, R) must lower-bound the true distance to every point
        /// in R — the no-false-dismissals contract.
        #[test]
        fn mindist_rect_is_lower_bound(
            q in proptest::collection::vec(-2.0f32..2.0, 4),
            lo in proptest::collection::vec(0.0f32..0.5, 4),
            ext in proptest::collection::vec(0.0f32..0.5, 4),
            t in proptest::collection::vec(0.0f32..1.0, 4),
        ) {
            let hi: Vec<f32> = lo.iter().zip(&ext).map(|(l, e)| l + e).collect();
            let rect = Rect::new(lo.clone(), hi.clone());
            // Interior point: lo + t * ext.
            let inner: Vec<f32> = lo.iter().zip(&ext).zip(&t)
                .map(|((l, e), t)| l + t * e).collect();
            let qp = Point::new(q);
            let ip = Point::new(inner);
            let metrics: Vec<Box<dyn Metric>> = vec![
                Box::new(L1), Box::new(L2), Box::new(Chebyshev),
                Box::new(Lp::new(1.5)), Box::new(Lp::new(3.0)),
                Box::new(WeightedEuclidean::new(vec![0.1, 2.0, 1.0, 0.5])),
            ];
            for m in &metrics {
                let bound = m.min_dist_rect(&qp, &rect);
                let true_dist = m.distance(&qp, &ip);
                prop_assert!(bound <= true_dist + 1e-6,
                    "{}: bound {} > dist {}", m.name(), bound, true_dist);
            }
        }

        /// The L2-sphere pruning bound must never exceed the true distance
        /// to any point inside the sphere (checked via random directions).
        #[test]
        fn sphere_bound_is_lower_bound(
            q in proptest::collection::vec(-2.0f32..2.0, 4),
            c in proptest::collection::vec(-1.0f32..1.0, 4),
            dir in proptest::collection::vec(-1.0f32..1.0, 4),
            radius in 0.0f64..2.0,
            scale in 0.0f64..1.0,
        ) {
            let norm: f64 = dir.iter().map(|x| f64::from(*x) * f64::from(*x))
                .sum::<f64>().sqrt();
            prop_assume!(norm > 1e-3);
            // Point inside the L2 ball of `radius` around c.
            let inner: Vec<f32> = c.iter().zip(&dir)
                .map(|(ci, di)| ci + (f64::from(*di) / norm * radius * scale) as f32)
                .collect();
            let qp = Point::new(q);
            let cp = Point::new(c);
            let ip = Point::new(inner);
            let metrics: Vec<Box<dyn Metric>> = vec![
                Box::new(L1), Box::new(L2), Box::new(Chebyshev),
                Box::new(Lp::new(1.5)), Box::new(Lp::new(3.0)),
                Box::new(WeightedEuclidean::new(vec![0.1, 2.0, 1.0, 0.5])),
            ];
            for m in &metrics {
                let bound = m.min_dist_sphere(&qp, &cp, radius);
                let true_dist = m.distance(&qp, &ip);
                prop_assert!(bound <= true_dist + 1e-6,
                    "{}: bound {} > dist {}", m.name(), bound, true_dist);
            }
        }

        /// Comparator-space consistency: mapping `distance_sq` back must
        /// reproduce `distance` *bit-identically* (same accumulation,
        /// root applied once at the end), the early-abandon kernel must
        /// agree exactly with the full kernel, and the squared rect
        /// bound must keep the no-false-dismissals contract.
        #[test]
        fn comparator_space_is_consistent(
            a in proptest::collection::vec(-2.0f32..2.0, 12),
            b in proptest::collection::vec(-2.0f32..2.0, 12),
            lo in proptest::collection::vec(0.0f32..0.5, 12),
            ext in proptest::collection::vec(0.0f32..0.5, 12),
        ) {
            let hi: Vec<f32> = lo.iter().zip(&ext).map(|(l, e)| l + e).collect();
            let rect = Rect::new(lo, hi);
            let pa = Point::new(a);
            let pb = Point::new(b);
            let metrics: Vec<Box<dyn Metric>> = vec![
                Box::new(L1), Box::new(L2), Box::new(Chebyshev),
                Box::new(Lp::new(1.5)), Box::new(Lp::new(3.0)),
                Box::new(WeightedEuclidean::new(vec![
                    0.1, 2.0, 1.0, 0.5, 1.5, 0.25, 3.0, 1.0, 0.75, 2.5, 0.0, 1.0,
                ])),
            ];
            for m in &metrics {
                let d = m.distance(&pa, &pb);
                let d_sq = m.distance_sq(&pa, &pb);
                prop_assert_eq!(
                    m.distance_from_sq(d_sq).to_bits(), d.to_bits(),
                    "{}: from_sq(distance_sq) must be bit-identical to distance",
                    m.name()
                );
                // Unbounded early-abandon completes with the exact value.
                let within = m.distance_sq_within(&pa, &pb, f64::INFINITY);
                prop_assert_eq!(within.map(f64::to_bits), Some(d_sq.to_bits()),
                    "{}: unbounded kernel must equal distance_sq", m.name());
                // Bounded: Some(d_sq) iff d_sq <= bound, for bounds on
                // both sides of the true value.
                for bound in [d_sq * 0.5, d_sq, d_sq * 2.0 + 1e-9] {
                    let got = m.distance_sq_within(&pa, &pb, bound);
                    if d_sq <= bound {
                        prop_assert_eq!(got.map(f64::to_bits), Some(d_sq.to_bits()));
                    } else {
                        prop_assert!(got.is_none());
                    }
                }
                // Squared MINDIST keeps the lower-bound contract against
                // a rect corner (a point of the rect).
                let corner = Point::new(
                    (0..rect.dim()).map(|d| rect.lo(d)).collect::<Vec<_>>(),
                );
                prop_assert!(
                    m.min_dist_rect_sq(&pa, &rect)
                        <= m.distance_sq(&pa, &corner) + 1e-6,
                    "{}: squared mindist must lower-bound squared distance",
                    m.name()
                );
            }
        }

        /// Triangle inequality sanity for the bundled metrics.
        #[test]
        fn triangle_inequality(
            a in proptest::collection::vec(-1.0f32..1.0, 3),
            b in proptest::collection::vec(-1.0f32..1.0, 3),
            c in proptest::collection::vec(-1.0f32..1.0, 3),
        ) {
            let (pa, pb, pc) = (Point::new(a), Point::new(b), Point::new(c));
            let metrics: Vec<Box<dyn Metric>> = vec![
                Box::new(L1), Box::new(L2), Box::new(Chebyshev),
                Box::new(Lp::new(1.5)),
                Box::new(WeightedEuclidean::new(vec![1.0, 0.5, 2.0])),
            ];
            for m in &metrics {
                prop_assert!(
                    m.distance(&pa, &pc)
                        <= m.distance(&pa, &pb) + m.distance(&pb, &pc) + 1e-9
                );
            }
        }
    }
}
