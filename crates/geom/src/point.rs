//! k-dimensional feature vectors.

use crate::Coord;
use std::fmt;

/// A k-dimensional feature vector.
///
/// Points are the unit of data indexed by every structure in this
/// workspace. They are immutable once constructed; coordinates are stored
/// in a boxed slice so a `Point` is two words plus its payload.
#[derive(Clone, PartialEq)]
pub struct Point {
    coords: Box<[Coord]>,
}

impl Point {
    /// Creates a point from a coordinate vector.
    ///
    /// # Panics
    /// Panics if `coords` is empty or contains a non-finite value: index
    /// construction and the EDA cost model are undefined for NaN/infinite
    /// coordinates, so they are rejected at the boundary.
    pub fn new(coords: Vec<Coord>) -> Self {
        assert!(!coords.is_empty(), "points must have at least 1 dimension");
        assert!(
            coords.iter().all(|c| c.is_finite()),
            "point coordinates must be finite"
        );
        Self {
            coords: coords.into_boxed_slice(),
        }
    }

    /// The dimensionality `k` of the point.
    #[inline]
    pub fn dim(&self) -> usize {
        self.coords.len()
    }

    /// The coordinate along `d`.
    ///
    /// # Panics
    /// Panics if `d >= self.dim()`.
    #[inline]
    pub fn coord(&self, d: usize) -> Coord {
        self.coords[d]
    }

    /// All coordinates as a slice.
    #[inline]
    pub fn coords(&self) -> &[Coord] {
        &self.coords
    }

    /// The origin of a `dim`-dimensional space.
    pub fn origin(dim: usize) -> Self {
        Self::new(vec![0.0; dim])
    }

    /// Exact equality of every coordinate bit pattern.
    ///
    /// Used by deletion to locate the stored copy of a previously inserted
    /// point; `PartialEq` on `f32` suffices because points are rejected at
    /// construction if any coordinate is NaN.
    #[inline]
    pub fn same_coords(&self, other: &Point) -> bool {
        self.coords == other.coords
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Point{:?}", &self.coords[..self.dim().min(8)])?;
        if self.dim() > 8 {
            write!(f, "(+{} dims)", self.dim() - 8)?;
        }
        Ok(())
    }
}

impl From<Vec<Coord>> for Point {
    fn from(v: Vec<Coord>) -> Self {
        Point::new(v)
    }
}

impl From<&[Coord]> for Point {
    fn from(v: &[Coord]) -> Self {
        Point::new(v.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let p = Point::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(p.dim(), 3);
        assert_eq!(p.coord(0), 1.0);
        assert_eq!(p.coord(2), 3.0);
        assert_eq!(p.coords(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "at least 1 dimension")]
    fn empty_point_rejected() {
        let _ = Point::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rejected() {
        let _ = Point::new(vec![0.0, f32::NAN]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinity_rejected() {
        let _ = Point::new(vec![f32::INFINITY]);
    }

    #[test]
    fn origin_is_zero() {
        let p = Point::origin(4);
        assert_eq!(p.coords(), &[0.0; 4]);
    }

    #[test]
    fn same_coords_is_exact() {
        let a = Point::new(vec![0.1, 0.2]);
        let b = Point::new(vec![0.1, 0.2]);
        let c = Point::new(vec![0.1, 0.2000001]);
        assert!(a.same_coords(&b));
        assert!(!a.same_coords(&c));
    }

    #[test]
    fn debug_truncates_high_dims() {
        let p = Point::new(vec![0.0; 20]);
        let s = format!("{p:?}");
        assert!(s.contains("+12 dims"));
    }
}
