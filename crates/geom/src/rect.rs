//! k-dimensional axis-aligned bounding regions (BRs).

use crate::{Coord, Point};
use std::fmt;

/// A k-dimensional axis-aligned rectangle (the paper's "bounding region").
///
/// `min[d] <= max[d]` holds for every dimension. Rectangles are closed on
/// both sides, matching the paper's treatment of kd-split boundaries: a
/// split position belongs to both sides (`lsp = rsp` still yields a valid,
/// non-cascading partition of points).
#[derive(Clone, PartialEq)]
pub struct Rect {
    min: Box<[Coord]>,
    max: Box<[Coord]>,
}

impl Rect {
    /// Creates a rectangle from per-dimension lower and upper bounds.
    ///
    /// # Panics
    /// Panics if the vectors are empty, differ in length, contain
    /// non-finite values, or `min[d] > max[d]` for some `d`.
    pub fn new(min: Vec<Coord>, max: Vec<Coord>) -> Self {
        assert!(!min.is_empty(), "rects must have at least 1 dimension");
        assert_eq!(min.len(), max.len(), "min/max dimensionality mismatch");
        for d in 0..min.len() {
            assert!(
                min[d].is_finite() && max[d].is_finite(),
                "rect bounds must be finite"
            );
            assert!(min[d] <= max[d], "rect min must not exceed max (dim {d})");
        }
        Self {
            min: min.into_boxed_slice(),
            max: max.into_boxed_slice(),
        }
    }

    /// The unit hypercube `[0,1]^dim` — the paper's normalized feature space.
    pub fn unit(dim: usize) -> Self {
        Self::new(vec![0.0; dim], vec![1.0; dim])
    }

    /// The degenerate rectangle containing exactly `p`.
    pub fn from_point(p: &Point) -> Self {
        Self::new(p.coords().to_vec(), p.coords().to_vec())
    }

    /// The minimum bounding rectangle of a non-empty set of points.
    ///
    /// # Panics
    /// Panics if `points` is empty.
    pub fn bounding(points: &[Point]) -> Self {
        assert!(!points.is_empty(), "bounding box of empty point set");
        let mut r = Self::from_point(&points[0]);
        for p in &points[1..] {
            r.extend_to_point(p);
        }
        r
    }

    /// Dimensionality `k`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.min.len()
    }

    /// Lower bound along `d`.
    #[inline]
    pub fn lo(&self, d: usize) -> Coord {
        self.min[d]
    }

    /// Upper bound along `d`.
    #[inline]
    pub fn hi(&self, d: usize) -> Coord {
        self.max[d]
    }

    /// Extent (`hi - lo`, the paper's `s_d`) along `d`.
    #[inline]
    pub fn extent(&self, d: usize) -> f64 {
        f64::from(self.max[d]) - f64::from(self.min[d])
    }

    /// The dimension of maximum extent, breaking ties toward the lowest
    /// index. This is the paper's EDA-optimal data-node split dimension
    /// (§3.2: choose the dimension along which the BR has the largest
    /// extent, independent of data distribution and query size).
    pub fn max_extent_dim(&self) -> usize {
        let mut best = 0;
        let mut best_ext = self.extent(0);
        for d in 1..self.dim() {
            let e = self.extent(d);
            if e > best_ext {
                best = d;
                best_ext = e;
            }
        }
        best
    }

    /// Center point.
    pub fn center(&self) -> Point {
        Point::new(
            (0..self.dim())
                .map(|d| (self.min[d] + self.max[d]) * 0.5)
                .collect(),
        )
    }

    /// Volume (product of extents). Degenerate rectangles have volume 0.
    pub fn volume(&self) -> f64 {
        (0..self.dim()).map(|d| self.extent(d)).product()
    }

    /// Sum of extents over all dimensions ("margin"); proportional to the
    /// surface-area surrogate used when arguing that cubic BRs minimize the
    /// range-query overlap probability (§3.2).
    pub fn margin(&self) -> f64 {
        (0..self.dim()).map(|d| self.extent(d)).sum()
    }

    /// Whether the (closed) rectangle contains `p`.
    pub fn contains_point(&self, p: &Point) -> bool {
        debug_assert_eq!(self.dim(), p.dim());
        (0..self.dim()).all(|d| self.min[d] <= p.coord(d) && p.coord(d) <= self.max[d])
    }

    /// Whether `self` fully contains `other`.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        debug_assert_eq!(self.dim(), other.dim());
        (0..self.dim()).all(|d| self.min[d] <= other.min[d] && other.max[d] <= self.max[d])
    }

    /// Whether the closed rectangles intersect.
    pub fn intersects(&self, other: &Rect) -> bool {
        debug_assert_eq!(self.dim(), other.dim());
        (0..self.dim()).all(|d| self.min[d] <= other.max[d] && other.min[d] <= self.max[d])
    }

    /// Geometric intersection, or `None` when disjoint.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect::new(
            (0..self.dim())
                .map(|d| self.min[d].max(other.min[d]))
                .collect(),
            (0..self.dim())
                .map(|d| self.max[d].min(other.max[d]))
                .collect(),
        ))
    }

    /// The smallest rectangle enclosing both operands.
    pub fn union(&self, other: &Rect) -> Rect {
        debug_assert_eq!(self.dim(), other.dim());
        Rect::new(
            (0..self.dim())
                .map(|d| self.min[d].min(other.min[d]))
                .collect(),
            (0..self.dim())
                .map(|d| self.max[d].max(other.max[d]))
                .collect(),
        )
    }

    /// Grows the rectangle in place so it contains `p`.
    pub fn extend_to_point(&mut self, p: &Point) {
        debug_assert_eq!(self.dim(), p.dim());
        for d in 0..self.dim() {
            self.min[d] = self.min[d].min(p.coord(d));
            self.max[d] = self.max[d].max(p.coord(d));
        }
    }

    /// Grows the rectangle in place so it contains `other`.
    pub fn extend_to_rect(&mut self, other: &Rect) {
        debug_assert_eq!(self.dim(), other.dim());
        for d in 0..self.dim() {
            self.min[d] = self.min[d].min(other.min[d]);
            self.max[d] = self.max[d].max(other.max[d]);
        }
    }

    /// Volume increase of the bounding box needed to accommodate `p`
    /// (the R-tree/hybrid-tree insertion heuristic, §3.5).
    pub fn enlargement_for_point(&self, p: &Point) -> f64 {
        let mut grown = self.clone();
        grown.extend_to_point(p);
        grown.volume() - self.volume()
    }

    /// Restricts the upper bound along `d` to at most `v` (producing the
    /// *left/lower* side of a kd split, `BR ∩ {x_d <= v}`).
    ///
    /// The bound is clamped into the rectangle so the result stays valid
    /// even when `v` lies outside it.
    pub fn clamp_above(&self, d: usize, v: Coord) -> Rect {
        let mut r = self.clone();
        r.max[d] = v.clamp(self.min[d], self.max[d]);
        r
    }

    /// Restricts the lower bound along `d` to at least `v` (the
    /// *right/upper* side of a kd split, `BR ∩ {x_d >= v}`).
    pub fn clamp_below(&self, d: usize, v: Coord) -> Rect {
        let mut r = self.clone();
        r.min[d] = v.clamp(self.min[d], self.max[d]);
        r
    }

    /// Probability that a bounding-box range query with side length `r`,
    /// whose center is uniformly distributed in the unit data space,
    /// overlaps this rectangle: the Minkowski-sum volume
    /// `∏_d (s_d + r)` of the paper's EDA model (§3.2, Fig. 2).
    ///
    /// The value is not clipped to the data-space boundary; the paper's
    /// optimality argument uses the unclipped form.
    pub fn minkowski_volume(&self, r: f64) -> f64 {
        (0..self.dim()).map(|d| self.extent(d) + r).product()
    }

    /// Lower-left corner as a point.
    pub fn lo_point(&self) -> Point {
        Point::new(self.min.to_vec())
    }

    /// Upper-right corner as a point.
    pub fn hi_point(&self) -> Point {
        Point::new(self.max.to_vec())
    }
}

impl fmt::Debug for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let k = self.dim().min(4);
        for d in 0..k {
            if d > 0 {
                write!(f, "x")?;
            }
            write!(f, "[{},{}]", self.min[d], self.max[d])?;
        }
        if self.dim() > 4 {
            write!(f, "(+{} dims)", self.dim() - 4)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r2(min: [Coord; 2], max: [Coord; 2]) -> Rect {
        Rect::new(min.to_vec(), max.to_vec())
    }

    #[test]
    fn unit_cube_basics() {
        let r = Rect::unit(3);
        assert_eq!(r.dim(), 3);
        assert_eq!(r.volume(), 1.0);
        assert_eq!(r.margin(), 3.0);
        assert!(r.contains_point(&Point::new(vec![0.0, 1.0, 0.5])));
        assert!(!r.contains_point(&Point::new(vec![0.0, 1.0001, 0.5])));
    }

    #[test]
    #[should_panic(expected = "min must not exceed max")]
    fn inverted_bounds_rejected() {
        let _ = Rect::new(vec![1.0], vec![0.0]);
    }

    #[test]
    fn bounding_box_of_points() {
        let pts = vec![
            Point::new(vec![0.2, 0.8]),
            Point::new(vec![0.5, 0.1]),
            Point::new(vec![0.9, 0.4]),
        ];
        let r = Rect::bounding(&pts);
        assert_eq!(r.lo(0), 0.2);
        assert_eq!(r.hi(0), 0.9);
        assert_eq!(r.lo(1), 0.1);
        assert_eq!(r.hi(1), 0.8);
        for p in &pts {
            assert!(r.contains_point(p));
        }
    }

    #[test]
    fn intersection_and_union() {
        let a = r2([0.0, 0.0], [0.5, 0.5]);
        let b = r2([0.25, 0.25], [1.0, 1.0]);
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, r2([0.25, 0.25], [0.5, 0.5]));
        let u = a.union(&b);
        assert_eq!(u, r2([0.0, 0.0], [1.0, 1.0]));
        assert!(u.contains_rect(&a) && u.contains_rect(&b));
    }

    #[test]
    fn disjoint_rects_do_not_intersect() {
        let a = r2([0.0, 0.0], [0.2, 0.2]);
        let b = r2([0.3, 0.3], [0.5, 0.5]);
        assert!(!a.intersects(&b));
        assert!(a.intersection(&b).is_none());
    }

    #[test]
    fn touching_rects_intersect() {
        // Closed rectangles: a shared boundary counts as intersection,
        // matching lsp == rsp clean splits.
        let a = r2([0.0, 0.0], [0.5, 1.0]);
        let b = r2([0.5, 0.0], [1.0, 1.0]);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b).unwrap().volume(), 0.0);
    }

    #[test]
    fn max_extent_dim_prefers_larger_then_lower_index() {
        let r = Rect::new(vec![0.0, 0.0, 0.0], vec![0.2, 0.9, 0.9]);
        assert_eq!(r.max_extent_dim(), 1);
    }

    #[test]
    fn clamp_above_and_below_partition_extent() {
        let r = Rect::unit(2);
        let left = r.clamp_above(0, 0.3);
        let right = r.clamp_below(0, 0.3);
        assert_eq!(left.hi(0), 0.3);
        assert_eq!(right.lo(0), 0.3);
        assert_eq!(left.extent(0) + right.extent(0), 1.0);
    }

    #[test]
    fn clamp_is_saturating() {
        let r = r2([0.2, 0.2], [0.8, 0.8]);
        assert_eq!(r.clamp_above(0, 1.5).hi(0), 0.8);
        assert_eq!(r.clamp_below(0, -1.0).lo(0), 0.2);
    }

    #[test]
    fn minkowski_volume_matches_paper_formula() {
        let r = r2([0.0, 0.0], [0.5, 0.25]);
        // (s1 + r)(s2 + r) with r = 0.1
        let v = r.minkowski_volume(0.1);
        assert!((v - (0.6 * 0.35)).abs() < 1e-12);
    }

    #[test]
    fn enlargement_for_contained_point_is_zero() {
        let r = r2([0.0, 0.0], [1.0, 1.0]);
        assert_eq!(r.enlargement_for_point(&Point::new(vec![0.5, 0.5])), 0.0);
        assert!(r.enlargement_for_point(&Point::new(vec![1.5, 0.5])) > 0.0);
    }

    #[test]
    fn extend_to_rect_covers_both() {
        let mut a = r2([0.4, 0.4], [0.6, 0.6]);
        let b = r2([0.0, 0.5], [0.5, 0.9]);
        a.extend_to_rect(&b);
        assert!(a.contains_rect(&b));
        assert_eq!(a, r2([0.0, 0.4], [0.6, 0.9]));
    }
}
