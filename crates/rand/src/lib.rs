//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment cannot reach crates.io, so this workspace member
//! supplies the pieces of `rand` the project actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`]), the [`Rng`] extension
//! methods (`gen`, `gen_range`, `gen_bool`, `fill`), and
//! [`seq::SliceRandom`] (`shuffle`, `choose`). The generator is
//! xoshiro256++ seeded through SplitMix64 — not the ChaCha12 of the real
//! `StdRng`, so *sequences differ from upstream rand*, but every use in
//! this workspace only relies on determinism-for-a-seed and uniformity,
//! never on the exact stream.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of uniformly random 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of rngs from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from OS entropy (falls back to a clock-derived
    /// seed; this shim has no OS RNG dependency).
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(t)
    }
}

/// Types producible uniformly at random (the `Standard` distribution of
/// real rand, folded into one trait for the shim).
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}
impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision (rand's convention).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (rand's convention).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range over empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Modulo bias is < 2^-64 for every span used here.
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range over empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
int_range_impl!(u8, u16, u32, u64, usize);

macro_rules! signed_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range over empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range over empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
signed_range_impl!(i8, i16, i32, i64, isize);

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range over empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}
impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range over empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of any [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }

    /// Fills a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice helpers (`rand::seq` subset).
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random element selection for slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Generator implementations (`rand::rngs` subset).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the ChaCha12 generator of upstream rand — sequences differ —
    /// but it passes the same statistical batteries (BigCrush) and is
    /// fully determined by the seed, which is all the tests and data
    /// generators here rely on.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias used by code written against `SmallRng`.
    pub type SmallRng = StdRng;
}

/// A convenience thread-local-free "thread rng": a fresh entropy-seeded
/// [`rngs::StdRng`]. Unlike the real crate it is not cached per thread;
/// call sites in this workspace only use it for one-off seeding.
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

/// Samples one `Standard` value from a fresh entropy-seeded generator.
pub fn random<T: Standard>() -> T {
    T::sample(&mut thread_rng())
}

/// The `rand::prelude` subset: what `use rand::prelude::*` must bring in.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{random, thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0f64;
        for _ in 0..10_000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&y));
            sum += y;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_hits_bounds_only_inclusively() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.gen_range(2u32..=3);
            assert!(v == 2 || v == 3);
        }
        for _ in 0..1000 {
            let v = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&v));
        }
        for _ in 0..1000 {
            let v = rng.gen_range(-3i64..3);
            assert!((-3..3).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "100 elements virtually never shuffle to id");
    }

    #[test]
    fn choose_and_gen_bool() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = [1, 2, 3];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&heads), "p=0.25 gave {heads}/10000");
    }
}
