//! On-page formats of the SR-tree.

use hyt_geom::{Point, Rect};
use hyt_page::{ByteReader, ByteWriter, PageError, PageId, PageResult};

const TAG_DATA: u8 = 0;
const TAG_INDEX: u8 = 1;

/// Header of a data node (tag + count).
pub const DATA_HEADER_BYTES: usize = 1 + 4;
/// Header of an index node (tag + level + count).
pub const INDEX_HEADER_BYTES: usize = 1 + 2 + 4;

/// Bytes per data entry.
pub fn data_entry_bytes(dim: usize) -> usize {
    4 * dim + 8
}

/// Bytes per index entry: page id, weight, radius, centroid, rectangle.
///
/// This is the SR-tree's `O(k)` per-entry overhead — `12k + 12` bytes —
/// which caps the fanout of a 4 KiB page at ~5 children in 64 dimensions.
pub fn index_entry_bytes(dim: usize) -> usize {
    4 + 4 + 4 + 4 * dim + 8 * dim
}

/// Data entries a page can hold.
pub fn data_capacity(page_size: usize, dim: usize) -> usize {
    page_size.saturating_sub(DATA_HEADER_BYTES) / data_entry_bytes(dim)
}

/// Index entries a page can hold.
pub fn index_capacity(page_size: usize, dim: usize) -> usize {
    page_size.saturating_sub(INDEX_HEADER_BYTES) / index_entry_bytes(dim)
}

/// An index-node entry describing one child: its bounding sphere
/// (centroid of all points beneath + radius) and bounding rectangle.
#[derive(Clone, Debug, PartialEq)]
pub struct ChildEntry {
    /// The child page.
    pub pid: PageId,
    /// Number of data points beneath the child.
    pub weight: u32,
    /// Bounding-sphere radius (L2).
    pub radius: f32,
    /// Centroid of all points beneath the child.
    pub centroid: Point,
    /// Bounding rectangle of all points beneath the child.
    pub rect: Rect,
}

/// A deserialized SR-tree node.
#[derive(Clone, Debug, PartialEq)]
pub enum SrNode {
    /// Leaf page of `(point, oid)` pairs.
    Data(Vec<(Point, u64)>),
    /// Directory page of child entries.
    Index {
        /// Level (1 = children are data nodes).
        level: u16,
        /// Child entries.
        entries: Vec<ChildEntry>,
    },
}

impl SrNode {
    /// Serialized size in bytes.
    pub fn encoded_size(&self, dim: usize) -> usize {
        match self {
            SrNode::Data(e) => DATA_HEADER_BYTES + e.len() * data_entry_bytes(dim),
            SrNode::Index { entries, .. } => {
                INDEX_HEADER_BYTES + entries.len() * index_entry_bytes(dim)
            }
        }
    }

    /// Serializes the node.
    pub fn encode(&self, dim: usize) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(self.encoded_size(dim));
        match self {
            SrNode::Data(entries) => {
                w.put_u8(TAG_DATA);
                w.put_u32(entries.len() as u32);
                for (p, oid) in entries {
                    for d in 0..dim {
                        w.put_f32(p.coord(d));
                    }
                    w.put_u64(*oid);
                }
            }
            SrNode::Index { level, entries } => {
                w.put_u8(TAG_INDEX);
                w.put_u16(*level);
                w.put_u32(entries.len() as u32);
                for e in entries {
                    w.put_u32(e.pid.0);
                    w.put_u32(e.weight);
                    w.put_f32(e.radius);
                    for d in 0..dim {
                        w.put_f32(e.centroid.coord(d));
                    }
                    for d in 0..dim {
                        w.put_f32(e.rect.lo(d));
                    }
                    for d in 0..dim {
                        w.put_f32(e.rect.hi(d));
                    }
                }
            }
        }
        w.into_inner()
    }

    /// Parses a node.
    pub fn decode(buf: &[u8], dim: usize) -> PageResult<Self> {
        let mut r = ByteReader::new(buf);
        match r.get_u8()? {
            TAG_DATA => {
                let n = r.get_u32()? as usize;
                if n * data_entry_bytes(dim) > r.remaining() {
                    return Err(PageError::Corrupt(format!(
                        "SR data node claims {n} entries beyond the page"
                    )));
                }
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let mut coords = Vec::with_capacity(dim);
                    for _ in 0..dim {
                        coords.push(r.get_f32()?);
                    }
                    let oid = r.get_u64()?;
                    entries.push((Point::new(coords), oid));
                }
                Ok(SrNode::Data(entries))
            }
            TAG_INDEX => {
                let level = r.get_u16()?;
                let n = r.get_u32()? as usize;
                if n * index_entry_bytes(dim) > r.remaining() {
                    return Err(PageError::Corrupt(format!(
                        "SR index node claims {n} entries beyond the page"
                    )));
                }
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let pid = PageId(r.get_u32()?);
                    let weight = r.get_u32()?;
                    let radius = r.get_f32()?;
                    let mut c = Vec::with_capacity(dim);
                    for _ in 0..dim {
                        c.push(r.get_f32()?);
                    }
                    let mut lo = Vec::with_capacity(dim);
                    for _ in 0..dim {
                        lo.push(r.get_f32()?);
                    }
                    let mut hi = Vec::with_capacity(dim);
                    for _ in 0..dim {
                        hi.push(r.get_f32()?);
                    }
                    entries.push(ChildEntry {
                        pid,
                        weight,
                        radius,
                        centroid: Point::new(c),
                        rect: Rect::new(lo, hi),
                    });
                }
                Ok(SrNode::Index { level, entries })
            }
            t => Err(PageError::Corrupt(format!("bad SR node tag {t}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanout_collapses_with_dimensionality() {
        // The property the paper's Figure 6 rests on.
        assert!(index_capacity(4096, 8) > 35);
        assert_eq!(index_capacity(4096, 64), 5);
        assert!(index_capacity(4096, 64) < index_capacity(4096, 16));
    }

    #[test]
    fn data_node_roundtrip() {
        let n = SrNode::Data(vec![
            (Point::new(vec![0.1, 0.2]), 1),
            (Point::new(vec![0.3, 0.4]), 2),
        ]);
        let buf = n.encode(2);
        assert_eq!(buf.len(), n.encoded_size(2));
        assert_eq!(SrNode::decode(&buf, 2).unwrap(), n);
    }

    #[test]
    fn index_node_roundtrip() {
        let e = ChildEntry {
            pid: PageId(9),
            weight: 17,
            radius: 0.25,
            centroid: Point::new(vec![0.5, 0.6, 0.7]),
            rect: Rect::new(vec![0.1, 0.2, 0.3], vec![0.9, 0.8, 0.9]),
        };
        let n = SrNode::Index {
            level: 2,
            entries: vec![e.clone(), e],
        };
        let buf = n.encode(3);
        assert_eq!(buf.len(), n.encoded_size(3));
        assert_eq!(SrNode::decode(&buf, 3).unwrap(), n);
    }

    #[test]
    fn decode_rejects_bad_tag() {
        assert!(SrNode::decode(&[42u8, 0, 0, 0, 0], 2).is_err());
    }
}
