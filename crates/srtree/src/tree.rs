//! SR-tree operations.

use crate::node::{data_capacity, index_capacity, ChildEntry, SrNode};
use hyt_exec::{Child, EntrySink, KnnCursor, NearQuery, NodeExpand, NodeKind};
use hyt_geom::{Metric, Point, Rect, L2};
use hyt_index::{
    check_dim, IndexError, IndexResult, KnnStream, MultidimIndex, QueryContext, QueryOutcome,
    StructureStats,
};
use hyt_page::{
    BufferPool, IoStats, MemStorage, NodeCacheStats, PageId, Storage, DEFAULT_PAGE_SIZE,
};
use std::sync::Arc;

/// Construction parameters of an [`SrTree`].
#[derive(Clone, Debug)]
pub struct SrTreeConfig {
    /// Page size in bytes (paper: 4096).
    pub page_size: usize,
    /// Minimum fill fraction guaranteed by splits.
    pub min_fill: f64,
    /// Buffer-pool capacity in pages (0 = cold-cache accounting).
    pub pool_pages: usize,
    /// Decoded-node cache capacity in entries; 0 (the default) disables
    /// it. Enabling it never changes query results or logical I/O
    /// accounting, only the number of `SrNode::decode` invocations.
    pub node_cache_entries: usize,
}

impl Default for SrTreeConfig {
    fn default() -> Self {
        Self {
            page_size: DEFAULT_PAGE_SIZE,
            min_fill: 0.4,
            pool_pages: 0,
            node_cache_entries: 0,
        }
    }
}

enum InsertResult {
    /// Child absorbed the point; its (recomputed) entry follows.
    Updated(ChildEntry),
    /// Child split into two; both entries follow.
    Split(ChildEntry, ChildEntry),
}

enum DelOutcome {
    NotFound,
    Done(ChildEntry, Vec<(Point, u64)>),
    Eliminated(Vec<(Point, u64)>),
}

/// A disk-based SR-tree over k-dimensional `f32` points.
pub struct SrTree<S: Storage = MemStorage> {
    pool: BufferPool<S>,
    root: PageId,
    height: usize,
    dim: usize,
    len: usize,
    cfg: SrTreeConfig,
    data_cap: usize,
    data_min: usize,
    index_cap: usize,
    index_min: usize,
}

impl SrTree<MemStorage> {
    /// Creates an empty SR-tree over in-memory pages.
    pub fn new(dim: usize, cfg: SrTreeConfig) -> IndexResult<Self> {
        let storage = MemStorage::with_page_size(cfg.page_size);
        Self::with_storage(dim, cfg, storage)
    }
}

impl<S: Storage> SrTree<S> {
    /// Creates an empty SR-tree over the given page store.
    pub fn with_storage(dim: usize, cfg: SrTreeConfig, storage: S) -> IndexResult<Self> {
        if storage.page_size() != cfg.page_size {
            return Err(IndexError::Internal(
                "storage/config page size mismatch".into(),
            ));
        }
        let data_cap = data_capacity(cfg.page_size, dim);
        let index_cap = index_capacity(cfg.page_size, dim);
        if data_cap < 2 || index_cap < 2 {
            return Err(IndexError::Internal(format!(
                "page size {} cannot hold an SR-tree of dimension {dim} \
                 (data cap {data_cap}, index cap {index_cap})",
                cfg.page_size
            )));
        }
        let data_min = ((cfg.min_fill * data_cap as f64).floor() as usize).max(1);
        let index_min = ((cfg.min_fill * index_cap as f64).floor() as usize).max(1);
        let pool = BufferPool::with_node_cache(storage, cfg.pool_pages, cfg.node_cache_entries);
        let root = pool.allocate()?;
        pool.write(root, &SrNode::Data(Vec::new()).encode(dim))?;
        Ok(Self {
            pool,
            root,
            height: 1,
            dim,
            len: 0,
            cfg,
            data_cap,
            data_min,
            index_cap,
            index_min,
        })
    }

    /// Height in levels (1 = root is a data node).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Index-node fanout limit — `O(page / k)`, the DP bottleneck.
    pub fn index_capacity(&self) -> usize {
        self.index_cap
    }

    fn read_node(&self, pid: PageId) -> IndexResult<SrNode> {
        let mut io = IoStats::default();
        Ok(self
            .pool
            .read_tracked_with(pid, &mut io, |buf| SrNode::decode(buf, self.dim))??)
    }

    fn read_node_ctx(
        &self,
        pid: PageId,
        io: &mut IoStats,
        ctx: &QueryContext,
    ) -> IndexResult<Arc<SrNode>> {
        self.pool
            .read_decoded_ctx(pid, io, ctx, |buf| Ok(SrNode::decode(buf, self.dim)?))
    }

    fn write_node(&mut self, pid: PageId, node: &SrNode) -> IndexResult<()> {
        let buf = node.encode(self.dim);
        if buf.len() > self.cfg.page_size {
            return Err(IndexError::Internal(format!(
                "SR node for {pid} overflows page ({} bytes)",
                buf.len()
            )));
        }
        self.pool.write(pid, &buf)?;
        Ok(())
    }

    /// Entry metadata for a data node.
    fn entry_for_data(&self, pid: PageId, entries: &[(Point, u64)]) -> ChildEntry {
        debug_assert!(!entries.is_empty());
        let n = entries.len() as f64;
        let centroid = Point::new(
            (0..self.dim)
                .map(|d| {
                    (entries
                        .iter()
                        .map(|(p, _)| f64::from(p.coord(d)))
                        .sum::<f64>()
                        / n) as f32
                })
                .collect(),
        );
        let radius = entries
            .iter()
            .map(|(p, _)| L2.distance(&centroid, p))
            .fold(0.0, f64::max) as f32;
        let rect = Rect::bounding(&entries.iter().map(|(p, _)| p.clone()).collect::<Vec<_>>());
        ChildEntry {
            pid,
            weight: entries.len() as u32,
            radius,
            centroid,
            rect,
        }
    }

    /// Entry metadata for an index node, from its child entries
    /// (the SR-tree radius rule: min of the children-based bound and the
    /// farthest-rectangle-corner distance).
    fn entry_for_index(&self, pid: PageId, entries: &[ChildEntry]) -> ChildEntry {
        debug_assert!(!entries.is_empty());
        let total: u64 = entries.iter().map(|e| u64::from(e.weight)).sum();
        let centroid = Point::new(
            (0..self.dim)
                .map(|d| {
                    (entries
                        .iter()
                        .map(|e| f64::from(e.weight) * f64::from(e.centroid.coord(d)))
                        .sum::<f64>()
                        / total as f64) as f32
                })
                .collect(),
        );
        let mut rect = entries[0].rect.clone();
        for e in &entries[1..] {
            rect.extend_to_rect(&e.rect);
        }
        let by_children = entries
            .iter()
            .map(|e| L2.distance(&centroid, &e.centroid) + f64::from(e.radius))
            .fold(0.0, f64::max);
        let by_corner = (0..self.dim)
            .map(|d| {
                let c = f64::from(centroid.coord(d));
                let lo = (c - f64::from(rect.lo(d))).abs();
                let hi = (f64::from(rect.hi(d)) - c).abs();
                let m = lo.max(hi);
                m * m
            })
            .sum::<f64>()
            .sqrt();
        ChildEntry {
            pid,
            weight: total as u32,
            radius: by_children.min(by_corner) as f32,
            centroid,
            rect,
        }
    }

    fn insert_rec(&mut self, pid: PageId, p: &Point, oid: u64) -> IndexResult<InsertResult> {
        match self.read_node(pid)? {
            SrNode::Data(mut entries) => {
                entries.push((p.clone(), oid));
                if entries.len() > self.data_cap {
                    let (left, right) = split_points(entries, self.data_min, self.dim);
                    let new_pid = self.pool.allocate()?;
                    let le = self.entry_for_data(pid, &left);
                    let re = self.entry_for_data(new_pid, &right);
                    self.write_node(pid, &SrNode::Data(left))?;
                    self.write_node(new_pid, &SrNode::Data(right))?;
                    Ok(InsertResult::Split(le, re))
                } else {
                    let e = self.entry_for_data(pid, &entries);
                    self.write_node(pid, &SrNode::Data(entries))?;
                    Ok(InsertResult::Updated(e))
                }
            }
            SrNode::Index { level, mut entries } => {
                // SS-tree descent: nearest centroid (ties: smaller radius).
                let (best, _) = entries
                    .iter()
                    .enumerate()
                    .map(|(i, e)| (i, L2.distance(&e.centroid, p)))
                    .min_by(|a, b| {
                        a.1.total_cmp(&b.1)
                            .then(entries[a.0].radius.total_cmp(&entries[b.0].radius))
                    })
                    .expect("index node with no entries");
                let child = entries[best].pid;
                match self.insert_rec(child, p, oid)? {
                    InsertResult::Updated(e) => {
                        entries[best] = e;
                        let my = self.entry_for_index(pid, &entries);
                        self.write_node(pid, &SrNode::Index { level, entries })?;
                        Ok(InsertResult::Updated(my))
                    }
                    InsertResult::Split(a, b) => {
                        entries[best] = a;
                        entries.push(b);
                        if entries.len() > self.index_cap {
                            let (l, r) = split_entries(entries, self.index_min, self.dim);
                            let new_pid = self.pool.allocate()?;
                            let le = self.entry_for_index(pid, &l);
                            let re = self.entry_for_index(new_pid, &r);
                            self.write_node(pid, &SrNode::Index { level, entries: l })?;
                            self.write_node(new_pid, &SrNode::Index { level, entries: r })?;
                            Ok(InsertResult::Split(le, re))
                        } else {
                            let my = self.entry_for_index(pid, &entries);
                            self.write_node(pid, &SrNode::Index { level, entries })?;
                            Ok(InsertResult::Updated(my))
                        }
                    }
                }
            }
        }
    }

    fn insert_entry(&mut self, point: Point, oid: u64) -> IndexResult<()> {
        match self.insert_rec(self.root, &point, oid)? {
            InsertResult::Updated(_) => Ok(()),
            InsertResult::Split(a, b) => {
                let new_root = self.pool.allocate()?;
                let level = self.height as u16;
                self.write_node(
                    new_root,
                    &SrNode::Index {
                        level,
                        entries: vec![a, b],
                    },
                )?;
                self.root = new_root;
                self.height += 1;
                Ok(())
            }
        }
    }

    fn delete_rec(
        &mut self,
        pid: PageId,
        p: &Point,
        oid: u64,
        is_root: bool,
    ) -> IndexResult<DelOutcome> {
        match self.read_node(pid)? {
            SrNode::Data(mut entries) => {
                let Some(i) = entries
                    .iter()
                    .position(|(q, o)| *o == oid && q.same_coords(p))
                else {
                    return Ok(DelOutcome::NotFound);
                };
                entries.swap_remove(i);
                if !is_root && entries.len() < self.data_min {
                    return Ok(DelOutcome::Eliminated(entries));
                }
                if entries.is_empty() {
                    // Empty root data node.
                    self.write_node(pid, &SrNode::Data(entries))?;
                    return Ok(DelOutcome::Done(
                        ChildEntry {
                            pid,
                            weight: 0,
                            radius: 0.0,
                            centroid: Point::origin(self.dim),
                            rect: Rect::from_point(&Point::origin(self.dim)),
                        },
                        Vec::new(),
                    ));
                }
                let e = self.entry_for_data(pid, &entries);
                self.write_node(pid, &SrNode::Data(entries))?;
                Ok(DelOutcome::Done(e, Vec::new()))
            }
            SrNode::Index { level, mut entries } => {
                for i in 0..entries.len() {
                    if !entries[i].rect.contains_point(p) {
                        continue;
                    }
                    let child = entries[i].pid;
                    match self.delete_rec(child, p, oid, false)? {
                        DelOutcome::NotFound => continue,
                        DelOutcome::Done(updated, orphans) => {
                            entries[i] = updated;
                            let my = self.entry_for_index(pid, &entries);
                            self.write_node(pid, &SrNode::Index { level, entries })?;
                            return Ok(DelOutcome::Done(my, orphans));
                        }
                        DelOutcome::Eliminated(mut orphans) => {
                            self.pool.free(child)?;
                            entries.swap_remove(i);
                            if entries.is_empty() {
                                return Ok(DelOutcome::Eliminated(orphans));
                            }
                            if entries.len() < 2 && !is_root {
                                for e in entries {
                                    orphans.extend(self.collect_and_free(e.pid)?);
                                }
                                return Ok(DelOutcome::Eliminated(orphans));
                            }
                            let my = self.entry_for_index(pid, &entries);
                            self.write_node(pid, &SrNode::Index { level, entries })?;
                            return Ok(DelOutcome::Done(my, orphans));
                        }
                    }
                }
                Ok(DelOutcome::NotFound)
            }
        }
    }

    fn collect_and_free(&mut self, pid: PageId) -> IndexResult<Vec<(Point, u64)>> {
        let mut out = Vec::new();
        let mut stack = vec![pid];
        while let Some(pid) = stack.pop() {
            match self.read_node(pid)? {
                SrNode::Data(entries) => out.extend(entries),
                SrNode::Index { entries, .. } => stack.extend(entries.iter().map(|e| e.pid)),
            }
            self.pool.free(pid)?;
        }
        Ok(out)
    }

    fn maybe_shrink_root(&mut self) -> IndexResult<()> {
        while self.height > 1 {
            match self.read_node(self.root)? {
                SrNode::Index { entries, .. } if entries.len() == 1 => {
                    let child = entries[0].pid;
                    self.pool.free(self.root)?;
                    self.root = child;
                    self.height -= 1;
                }
                _ => break,
            }
        }
        Ok(())
    }

    /// Comparator-space lower bound on the distance from `q` to anything
    /// inside the entry's region (sphere ∩ rectangle): the max of the
    /// rectangle bound (computed natively in comparator space) and the
    /// sphere bound (actual-space, pushed through
    /// [`Metric::distance_to_sq`] — monotone, so the max is preserved).
    fn min_dist_entry_sq(&self, q: &Point, e: &ChildEntry, metric: &dyn Metric) -> f64 {
        let rect = metric.min_dist_rect_sq(q, &e.rect);
        let sphere =
            metric.distance_to_sq(metric.min_dist_sphere(q, &e.centroid, f64::from(e.radius)));
        rect.max(sphere)
    }
}

/// Splits data points: maximum-variance dimension, position minimizing
/// the sum of the two groups' variances along that dimension (SS-tree).
/// Two groups of `(point, oid)` entries produced by a node split.
type PointSplit = (Vec<(Point, u64)>, Vec<(Point, u64)>);

fn split_points(mut entries: Vec<(Point, u64)>, min_fill: usize, dim: usize) -> PointSplit {
    let n = entries.len();
    let m = min_fill.clamp(1, n / 2);
    let d = max_variance_dim(entries.iter().map(|(p, _)| p), n, dim);
    entries.sort_by(|a, b| a.0.coord(d).total_cmp(&b.0.coord(d)));
    let vals: Vec<f64> = entries.iter().map(|(p, _)| f64::from(p.coord(d))).collect();
    let j = best_variance_split(&vals, m);
    let right = entries.split_off(j);
    (entries, right)
}

/// Splits index entries by centroid, same rule as [`split_points`].
fn split_entries(
    mut entries: Vec<ChildEntry>,
    min_fill: usize,
    dim: usize,
) -> (Vec<ChildEntry>, Vec<ChildEntry>) {
    let n = entries.len();
    let m = min_fill.clamp(1, n / 2);
    let d = max_variance_dim(entries.iter().map(|e| &e.centroid), n, dim);
    entries.sort_by(|a, b| a.centroid.coord(d).total_cmp(&b.centroid.coord(d)));
    let vals: Vec<f64> = entries
        .iter()
        .map(|e| f64::from(e.centroid.coord(d)))
        .collect();
    let j = best_variance_split(&vals, m);
    let right = entries.split_off(j);
    (entries, right)
}

fn max_variance_dim<'a, I: Iterator<Item = &'a Point> + Clone>(
    points: I,
    n: usize,
    dim: usize,
) -> usize {
    let nf = n as f64;
    let mut best = 0;
    let mut best_var = f64::NEG_INFINITY;
    for d in 0..dim {
        let mean: f64 = points.clone().map(|p| f64::from(p.coord(d))).sum::<f64>() / nf;
        let var: f64 = points
            .clone()
            .map(|p| {
                let x = f64::from(p.coord(d)) - mean;
                x * x
            })
            .sum::<f64>()
            / nf;
        if var > best_var {
            best_var = var;
            best = d;
        }
    }
    best
}

/// Given sorted values, returns the split index in `[m, n-m]` minimizing
/// the sum of the two sides' variances (computed with prefix sums).
fn best_variance_split(vals: &[f64], m: usize) -> usize {
    let n = vals.len();
    let mut prefix = vec![0.0; n + 1];
    let mut prefix2 = vec![0.0; n + 1];
    for (i, v) in vals.iter().enumerate() {
        prefix[i + 1] = prefix[i] + v;
        prefix2[i + 1] = prefix2[i] + v * v;
    }
    let var = |a: usize, b: usize| -> f64 {
        // Variance of vals[a..b].
        let cnt = (b - a) as f64;
        let s = prefix[b] - prefix[a];
        let s2 = prefix2[b] - prefix2[a];
        (s2 / cnt - (s / cnt) * (s / cnt)).max(0.0)
    };
    let mut best_j = m;
    let mut best_cost = f64::INFINITY;
    for j in m..=(n - m) {
        let cost = var(0, j) + var(j, n);
        if cost < best_cost {
            best_cost = cost;
            best_j = j;
        }
    }
    best_j
}

/// [`NodeExpand`] adapter: one SR-tree node reference is a page id; all
/// reads go through the decoded-node path, and children are bounded by
/// the sphere-and-rectangle `min_dist_entry_sq`.
struct SrExpand<'t, S: Storage> {
    tree: &'t SrTree<S>,
}

impl<S: Storage> NodeExpand for SrExpand<'_, S> {
    type Ref = PageId;

    fn node_id(&self, r: &PageId) -> u64 {
        u64::from(r.0)
    }

    fn roots(&self) -> Vec<PageId> {
        if self.tree.len == 0 {
            Vec::new()
        } else {
            vec![self.tree.root]
        }
    }

    fn expand_box(
        &self,
        pid: PageId,
        rect: &Rect,
        io: &mut IoStats,
        ctx: &QueryContext,
        out: &mut Vec<u64>,
        children: &mut Vec<PageId>,
    ) -> IndexResult<NodeKind> {
        let node = self.tree.read_node_ctx(pid, io, ctx)?;
        match &*node {
            SrNode::Data(entries) => {
                out.extend(
                    entries
                        .iter()
                        .filter(|(p, _)| rect.contains_point(p))
                        .map(|(_, oid)| *oid),
                );
                Ok(NodeKind::Leaf)
            }
            SrNode::Index { entries, .. } => {
                children.extend(
                    entries
                        .iter()
                        .filter(|e| e.rect.intersects(rect))
                        .map(|e| e.pid),
                );
                Ok(NodeKind::Index)
            }
        }
    }

    fn expand_range(
        &self,
        pid: PageId,
        nq: NearQuery<'_>,
        io: &mut IoStats,
        ctx: &QueryContext,
        sink: &mut dyn EntrySink,
        children: &mut Vec<Child<PageId>>,
    ) -> IndexResult<NodeKind> {
        self.expand_near(pid, nq, io, ctx, sink, children)
    }

    fn expand_near(
        &self,
        pid: PageId,
        nq: NearQuery<'_>,
        io: &mut IoStats,
        ctx: &QueryContext,
        sink: &mut dyn EntrySink,
        children: &mut Vec<Child<PageId>>,
    ) -> IndexResult<NodeKind> {
        let node = self.tree.read_node_ctx(pid, io, ctx)?;
        match &*node {
            SrNode::Data(entries) => {
                for (p, oid) in entries {
                    sink.offer(*oid, p);
                }
                Ok(NodeKind::Leaf)
            }
            SrNode::Index { entries, .. } => {
                children.extend(entries.iter().map(|e| Child {
                    bound: self.tree.min_dist_entry_sq(nq.q, e, nq.metric),
                    node: e.pid,
                }));
                Ok(NodeKind::Index)
            }
        }
    }
}

impl<S: Storage> MultidimIndex for SrTree<S> {
    fn name(&self) -> &'static str {
        "sr-tree"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn len(&self) -> usize {
        self.len
    }

    fn insert(&mut self, point: Point, oid: u64) -> IndexResult<()> {
        check_dim(self.dim, point.dim())?;
        self.insert_entry(point, oid)?;
        self.len += 1;
        Ok(())
    }

    fn delete(&mut self, point: &Point, oid: u64) -> IndexResult<bool> {
        check_dim(self.dim, point.dim())?;
        if self.len == 0 {
            return Ok(false);
        }
        match self.delete_rec(self.root, point, oid, true)? {
            DelOutcome::NotFound => Ok(false),
            DelOutcome::Done(_, orphans) => {
                self.len -= 1;
                self.maybe_shrink_root()?;
                for (p, oid) in orphans {
                    self.insert_entry(p, oid)?;
                }
                Ok(true)
            }
            DelOutcome::Eliminated(orphans) => {
                // The root index node lost everything below; rebuild from
                // scratch with the orphans.
                self.write_node(self.root, &SrNode::Data(Vec::new()))?;
                self.height = 1;
                self.len -= 1;
                for (p, oid) in orphans {
                    self.insert_entry(p, oid)?;
                }
                Ok(true)
            }
        }
    }

    fn box_query_ctx(
        &self,
        rect: &Rect,
        ctx: &QueryContext,
    ) -> IndexResult<(QueryOutcome<Vec<u64>>, IoStats)> {
        check_dim(self.dim, rect.dim())?;
        hyt_exec::run_box_query(&SrExpand { tree: self }, rect, ctx)
    }

    fn distance_range_ctx(
        &self,
        q: &Point,
        radius: f64,
        metric: &dyn Metric,
        ctx: &QueryContext,
    ) -> IndexResult<(QueryOutcome<Vec<u64>>, IoStats)> {
        check_dim(self.dim, q.dim())?;
        hyt_exec::run_distance_range(&SrExpand { tree: self }, q, radius, metric, ctx)
    }

    fn knn_ctx(
        &self,
        q: &Point,
        k: usize,
        metric: &dyn Metric,
        ctx: &QueryContext,
    ) -> IndexResult<(QueryOutcome<Vec<(u64, f64)>>, IoStats)> {
        check_dim(self.dim, q.dim())?;
        hyt_exec::run_knn(&SrExpand { tree: self }, q, k, metric, ctx)
    }

    fn knn_stream<'a>(
        &'a self,
        q: &Point,
        metric: &'a dyn Metric,
        ctx: &QueryContext,
    ) -> IndexResult<Box<dyn KnnStream + 'a>> {
        check_dim(self.dim, q.dim())?;
        Ok(Box::new(KnnCursor::new(
            SrExpand { tree: self },
            q.clone(),
            metric,
            ctx.clone(),
        )))
    }

    fn io_stats(&self) -> IoStats {
        self.pool.stats()
    }

    fn reset_io_stats(&self) {
        self.pool.reset_stats();
        self.pool.node_cache().reset_stats();
    }

    fn cache_stats(&self) -> NodeCacheStats {
        self.pool.node_cache_stats()
    }

    fn structure_stats(&self) -> IndexResult<StructureStats> {
        let mut st = StructureStats {
            height: self.height,
            ..StructureStats::default()
        };
        if self.len == 0 {
            st.total_nodes = 1;
            st.data_nodes = 1;
            return Ok(st);
        }
        let mut fanout_sum = 0usize;
        let mut util = 0.0f64;
        let mut stack = vec![self.root];
        while let Some(pid) = stack.pop() {
            match self.read_node(pid)? {
                SrNode::Data(entries) => {
                    st.data_nodes += 1;
                    util += SrNode::Data(entries).encoded_size(self.dim) as f64
                        / self.cfg.page_size as f64;
                }
                SrNode::Index { entries, .. } => {
                    st.index_nodes += 1;
                    fanout_sum += entries.len();
                    stack.extend(entries.iter().map(|e| e.pid));
                }
            }
        }
        st.total_nodes = st.data_nodes + st.index_nodes;
        st.avg_fanout = if st.index_nodes > 0 {
            fanout_sum as f64 / st.index_nodes as f64
        } else {
            0.0
        };
        st.avg_leaf_utilization = if st.data_nodes > 0 {
            util / st.data_nodes as f64
        } else {
            0.0
        };
        // Every dimension participates in every BR: no implicit reduction.
        st.distinct_split_dims = self.dim;
        Ok(st)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyt_geom::L1;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn cfg() -> SrTreeConfig {
        SrTreeConfig {
            page_size: 512,
            ..SrTreeConfig::default()
        }
    }

    fn points(n: usize, dim: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new((0..dim).map(|_| rng.gen::<f32>()).collect()))
            .collect()
    }

    fn build(pts: &[Point]) -> SrTree {
        let mut t = SrTree::new(pts[0].dim(), cfg()).unwrap();
        for (i, p) in pts.iter().enumerate() {
            t.insert(p.clone(), i as u64).unwrap();
        }
        t
    }

    #[test]
    fn box_query_matches_brute_force() {
        let pts = points(600, 3, 1);
        let t = build(&pts);
        assert!(t.height() > 1);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..30 {
            let lo: Vec<f32> = (0..3).map(|_| rng.gen::<f32>() * 0.7).collect();
            let hi: Vec<f32> = lo.iter().map(|l| l + 0.25).collect();
            let rect = Rect::new(lo, hi);
            let mut got = t.box_query(&rect).unwrap();
            got.sort_unstable();
            let mut want: Vec<u64> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| rect.contains_point(p))
                .map(|(i, _)| i as u64)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn knn_matches_brute_force_multiple_metrics() {
        let pts = points(400, 4, 3);
        let t = build(&pts);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..15 {
            let q = Point::new((0..4).map(|_| rng.gen::<f32>()).collect());
            for metric in [&L1 as &dyn Metric, &L2] {
                let got = t.knn(&q, 7, metric).unwrap();
                let mut want: Vec<f64> = pts.iter().map(|p| metric.distance(&q, p)).collect();
                want.sort_by(f64::total_cmp);
                for (i, (_, d)) in got.iter().enumerate() {
                    assert!(
                        (d - want[i]).abs() < 1e-9,
                        "{}: {d} vs {}",
                        metric.name(),
                        want[i]
                    );
                }
            }
        }
    }

    #[test]
    fn distance_range_l1_matches_brute_force() {
        // The paper's Fig 7(c,d) setting: L1 queries over an SR-tree.
        let pts = points(500, 4, 5);
        let t = build(&pts);
        let q = Point::new(vec![0.5; 4]);
        let mut got = t.distance_range(&q, 0.6, &L1).unwrap();
        got.sort_unstable();
        let mut want: Vec<u64> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| L1.distance(&q, p) <= 0.6)
            .map(|(i, _)| i as u64)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn deletes_preserve_query_correctness() {
        let pts = points(300, 2, 6);
        let mut t = build(&pts);
        let mut live = vec![true; pts.len()];
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..150 {
            let i = rng.gen_range(0..pts.len());
            if live[i] {
                assert!(t.delete(&pts[i], i as u64).unwrap());
                live[i] = false;
            }
        }
        assert_eq!(t.len(), live.iter().filter(|x| **x).count());
        let rect = Rect::new(vec![0.1, 0.1], vec![0.9, 0.9]);
        let mut got = t.box_query(&rect).unwrap();
        got.sort_unstable();
        let mut want: Vec<u64> = pts
            .iter()
            .enumerate()
            .filter(|(i, p)| live[*i] && rect.contains_point(p))
            .map(|(i, _)| i as u64)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn delete_everything() {
        let pts = points(200, 2, 8);
        let mut t = build(&pts);
        for (i, p) in pts.iter().enumerate() {
            assert!(t.delete(p, i as u64).unwrap(), "delete {i}");
        }
        assert!(t.is_empty());
        t.insert(Point::new(vec![0.5, 0.5]), 9).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.box_query(&Rect::unit(2)).unwrap(), vec![9]);
    }

    #[test]
    fn sphere_and_rect_bounds_prune_consistently() {
        // Build and check that no query ever misses results when pruning
        // with the combined bound, under a non-L2 metric.
        let pts = points(300, 3, 9);
        let t = build(&pts);
        let q = Point::new(vec![0.1, 0.9, 0.5]);
        let got = t.distance_range(&q, 0.8, &L1).unwrap();
        let want = pts.iter().filter(|p| L1.distance(&q, p) <= 0.8).count();
        assert_eq!(got.len(), want);
    }

    #[test]
    fn rejects_impossible_geometry() {
        // 64-d entries cannot fit two to a 512-byte page.
        assert!(SrTree::new(64, cfg()).is_err());
    }

    #[test]
    fn structure_stats_reflect_low_fanout_in_high_dim() {
        let pts = points(2000, 16, 10);
        let mut t = SrTree::new(16, SrTreeConfig::default()).unwrap();
        for (i, p) in pts.iter().enumerate() {
            t.insert(p.clone(), i as u64).unwrap();
        }
        let st = t.structure_stats().unwrap();
        assert!(st.index_nodes >= 1);
        // 16-d: index capacity is (4096-7)/204 = 20.
        assert!(st.avg_fanout <= 20.0 + 1e-9);
        assert_eq!(st.distinct_split_dims, 16);
    }
}
