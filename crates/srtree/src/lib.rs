//! SR-tree baseline (Katayama & Satoh, SIGMOD 1997).
//!
//! The SR-tree is the paper's representative *data-partitioning* (DP)
//! competitor (§4): a ball-and-box tree in which every child entry stores
//! a bounding **s**phere and a bounding **r**ectangle; the region of a
//! child is their intersection, which is smaller than either alone and
//! improves pruning over the SS-tree and the R*-tree.
//!
//! What matters for the reproduction is the property the paper exploits:
//! each index entry carries `O(k)` floats (centroid + rectangle), so the
//! fanout *decreases linearly with dimensionality* — at 64 dimensions a
//! 4 KiB page holds only ~5 entries. Combined with heavily overlapping
//! regions in high dimensions, this is why DP trees lose to the hybrid
//! tree as `k` grows (Figures 6–7).
//!
//! Insertion follows the SS-tree policy (descend toward the nearest
//! centroid; split along the dimension of maximum centroid variance at
//! the position minimizing the two groups' variance sum), with sphere
//! radii maintained by the SR-tree rule: the minimum of the
//! children-based bound and the distance to the farthest rectangle
//! corner.

mod node;
mod tree;

pub use node::{ChildEntry, SrNode};
pub use tree::{SrTree, SrTreeConfig};
