//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! member provides the subset of `parking_lot`'s API the project uses,
//! implemented over `std::sync`. The semantics that matter here are the
//! ones `parking_lot` is famous for at the call site: `lock()` / `read()`
//! / `write()` return guards directly (no `Result`), and a panic while a
//! guard is held does not poison the lock for other threads.
//!
//! Fairness, timed locks, and the raw-lock plumbing of the real crate are
//! out of scope; the locking behavior itself defers to the platform
//! primitives underneath `std::sync`, which is exactly what the real
//! `parking_lot` competes with — not what this reproduction measures.

use std::fmt;
use std::sync::TryLockError;

/// A mutual-exclusion lock that never poisons.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Unlike
    /// `std::sync::Mutex::lock` this never returns an error: a poisoned
    /// lock is recovered, matching `parking_lot`'s no-poisoning model.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|p| p.into_inner()),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock that never poisons.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|p| p.into_inner()),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|p| p.into_inner()),
        }
    }

    /// Attempts to acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                inner: p.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.write_str("RwLock { <locked> }"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(7));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || *l.read())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 7);
        }
        *l.write() = 8;
        assert_eq!(*l.read(), 8);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // The real parking_lot never poisons; neither do we.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
