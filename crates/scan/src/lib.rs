//! Sequential (linear) scan baseline.
//!
//! Beyond 10–15 dimensions a plain scan of the data file is a competitive
//! — often winning — search strategy, which is why the paper normalizes
//! every cost against it (§4, citing Beyer et al. and Weber et al.). This
//! implementation stores entries densely in pages and answers every query
//! by reading the whole file through the buffer pool's *sequential* path,
//! which the paper's cost model discounts 10x relative to random accesses.

use hyt_exec::{Child, EntrySink, KnnCursor, NearQuery, NodeExpand, NodeKind};
use hyt_geom::{Metric, Point, Rect};
use hyt_index::{
    check_dim, IndexResult, KnnStream, MultidimIndex, QueryContext, QueryOutcome, StructureStats,
};
use hyt_page::{
    BufferPool, ByteReader, ByteWriter, IoStats, MemStorage, NodeCacheStats, PageId, Storage,
};

/// Entries per page given the page and entry sizes.
fn capacity(page_size: usize, dim: usize) -> usize {
    // Per-page header: u32 count.
    (page_size - 4) / (4 * dim + 8)
}

/// A flat file of `(point, oid)` records scanned in page order.
pub struct SeqScan<S: Storage = MemStorage> {
    pool: BufferPool<S>,
    pages: Vec<PageId>,
    dim: usize,
    len: usize,
    cap: usize,
}

impl SeqScan<MemStorage> {
    /// Creates an empty scan file over in-memory pages with the paper's
    /// default page size.
    pub fn new(dim: usize) -> IndexResult<Self> {
        Self::with_page_size(dim, hyt_page::DEFAULT_PAGE_SIZE)
    }

    /// Creates an empty scan file with a custom page size.
    pub fn with_page_size(dim: usize, page_size: usize) -> IndexResult<Self> {
        let storage = MemStorage::with_page_size(page_size);
        Self::with_storage(dim, storage)
    }

    /// Creates an empty scan file with a custom page size and a
    /// decoded-page cache of `node_cache_entries` entries (0 disables).
    pub fn with_page_size_and_cache(
        dim: usize,
        page_size: usize,
        node_cache_entries: usize,
    ) -> IndexResult<Self> {
        let storage = MemStorage::with_page_size(page_size);
        Self::with_storage_and_cache(dim, storage, node_cache_entries)
    }
}

impl<S: Storage> SeqScan<S> {
    /// Creates an empty scan file over the given store.
    pub fn with_storage(dim: usize, storage: S) -> IndexResult<Self> {
        Self::with_storage_and_cache(dim, storage, 0)
    }

    /// Creates an empty scan file with a decoded-page cache of
    /// `node_cache_entries` entries (0 disables it). The cache changes
    /// only the number of page-decode invocations — never query results
    /// or the sequential I/O accounting.
    pub fn with_storage_and_cache(
        dim: usize,
        storage: S,
        node_cache_entries: usize,
    ) -> IndexResult<Self> {
        let cap = capacity(storage.page_size(), dim);
        if cap == 0 {
            return Err(hyt_index::IndexError::Internal(format!(
                "page size {} cannot hold a {dim}-d entry",
                storage.page_size()
            )));
        }
        Ok(Self {
            pool: BufferPool::with_node_cache(storage, 0, node_cache_entries),
            pages: Vec::new(),
            dim,
            len: 0,
            cap,
        })
    }

    /// Number of pages a full scan reads — the denominator of the paper's
    /// normalized I/O cost.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    fn decode_page(&self, buf: &[u8]) -> IndexResult<Vec<(Point, u64)>> {
        let mut r = ByteReader::new(buf);
        let n = r.get_u32()? as usize;
        if n * (4 * self.dim + 8) > r.remaining() {
            return Err(hyt_index::IndexError::Storage(
                hyt_page::PageError::Corrupt(format!(
                    "scan page claims {n} entries beyond the page"
                )),
            ));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let mut coords = Vec::with_capacity(self.dim);
            for _ in 0..self.dim {
                coords.push(r.get_f32()?);
            }
            let oid = r.get_u64()?;
            out.push((Point::new(coords), oid));
        }
        Ok(out)
    }

    fn encode_page(&self, entries: &[(Point, u64)]) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(4 + entries.len() * (4 * self.dim + 8));
        w.put_u32(entries.len() as u32);
        for (p, oid) in entries {
            for d in 0..self.dim {
                w.put_f32(p.coord(d));
            }
            w.put_u64(*oid);
        }
        w.into_inner()
    }

    /// Decoded entries of one page via the sequential read path: the
    /// read is attributed to `io` as a sequential access (the paper's
    /// cost model discounts it 10x) and admitted by `ctx`, so an
    /// interrupt lands within one pool read.
    fn read_page_ctx(
        &self,
        pid: PageId,
        io: &mut IoStats,
        ctx: &QueryContext,
    ) -> IndexResult<std::sync::Arc<Vec<(Point, u64)>>> {
        self.pool
            .read_decoded_sequential_ctx(pid, io, ctx, |buf| self.decode_page(buf))
    }
}

/// [`NodeExpand`] adapter for the sequential scan: a one-level "tree"
/// whose roots are every data page in file order. All expansions are
/// leaves with no children, so the kernel's drivers degenerate to a
/// page-order walk (box/range; `more_work` = pages left on the stack)
/// and to an everything-at-bound-zero best-first pass (kNN) that reads
/// the whole file before the accumulator can close — exactly the scan
/// semantics the paper normalizes against.
struct ScanExpand<'t, S: Storage> {
    tree: &'t SeqScan<S>,
}

impl<S: Storage> NodeExpand for ScanExpand<'_, S> {
    type Ref = PageId;

    fn node_id(&self, r: &PageId) -> u64 {
        u64::from(r.0)
    }

    fn roots(&self) -> Vec<PageId> {
        self.tree.pages.clone()
    }

    fn expand_box(
        &self,
        pid: PageId,
        rect: &Rect,
        io: &mut IoStats,
        ctx: &QueryContext,
        out: &mut Vec<u64>,
        _children: &mut Vec<PageId>,
    ) -> IndexResult<NodeKind> {
        let entries = self.tree.read_page_ctx(pid, io, ctx)?;
        out.extend(
            entries
                .iter()
                .filter(|(p, _)| rect.contains_point(p))
                .map(|(_, oid)| *oid),
        );
        Ok(NodeKind::Leaf)
    }

    fn expand_range(
        &self,
        pid: PageId,
        nq: NearQuery<'_>,
        io: &mut IoStats,
        ctx: &QueryContext,
        sink: &mut dyn EntrySink,
        children: &mut Vec<Child<PageId>>,
    ) -> IndexResult<NodeKind> {
        self.expand_near(pid, nq, io, ctx, sink, children)
    }

    fn expand_near(
        &self,
        pid: PageId,
        _nq: NearQuery<'_>,
        io: &mut IoStats,
        ctx: &QueryContext,
        sink: &mut dyn EntrySink,
        _children: &mut Vec<Child<PageId>>,
    ) -> IndexResult<NodeKind> {
        let entries = self.tree.read_page_ctx(pid, io, ctx)?;
        for (p, oid) in entries.iter() {
            sink.offer(*oid, p);
        }
        Ok(NodeKind::Leaf)
    }
}

impl<S: Storage> MultidimIndex for SeqScan<S> {
    fn name(&self) -> &'static str {
        "seq-scan"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn len(&self) -> usize {
        self.len
    }

    fn insert(&mut self, point: Point, oid: u64) -> IndexResult<()> {
        check_dim(self.dim, point.dim())?;
        let need_new_page = match self.pages.last() {
            None => true,
            Some(&last) => {
                let buf = self.pool.read(last)?;
                let mut entries = self.decode_page(&buf)?;
                if entries.len() >= self.cap {
                    true
                } else {
                    entries.push((point.clone(), oid));
                    let buf = self.encode_page(&entries);
                    self.pool.write(last, &buf)?;
                    false
                }
            }
        };
        if need_new_page {
            let pid = self.pool.allocate()?;
            let buf = self.encode_page(&[(point, oid)]);
            self.pool.write(pid, &buf)?;
            self.pages.push(pid);
        }
        self.len += 1;
        Ok(())
    }

    fn delete(&mut self, point: &Point, oid: u64) -> IndexResult<bool> {
        check_dim(self.dim, point.dim())?;
        for i in 0..self.pages.len() {
            let pid = self.pages[i];
            let buf = self.pool.read_sequential(pid)?;
            let mut entries = self.decode_page(&buf)?;
            if let Some(j) = entries
                .iter()
                .position(|(p, o)| *o == oid && p.same_coords(point))
            {
                entries.swap_remove(j);
                let buf = self.encode_page(&entries);
                self.pool.write(pid, &buf)?;
                self.len -= 1;
                return Ok(true);
            }
        }
        Ok(false)
    }

    fn box_query_ctx(
        &self,
        rect: &Rect,
        ctx: &QueryContext,
    ) -> IndexResult<(QueryOutcome<Vec<u64>>, IoStats)> {
        check_dim(self.dim, rect.dim())?;
        hyt_exec::run_box_query(&ScanExpand { tree: self }, rect, ctx)
    }

    fn distance_range_ctx(
        &self,
        q: &Point,
        radius: f64,
        metric: &dyn Metric,
        ctx: &QueryContext,
    ) -> IndexResult<(QueryOutcome<Vec<u64>>, IoStats)> {
        check_dim(self.dim, q.dim())?;
        hyt_exec::run_distance_range(&ScanExpand { tree: self }, q, radius, metric, ctx)
    }

    fn knn_ctx(
        &self,
        q: &Point,
        k: usize,
        metric: &dyn Metric,
        ctx: &QueryContext,
    ) -> IndexResult<(QueryOutcome<Vec<(u64, f64)>>, IoStats)> {
        check_dim(self.dim, q.dim())?;
        hyt_exec::run_knn(&ScanExpand { tree: self }, q, k, metric, ctx)
    }

    fn knn_stream<'a>(
        &'a self,
        q: &Point,
        metric: &'a dyn Metric,
        ctx: &QueryContext,
    ) -> IndexResult<Box<dyn KnnStream + 'a>> {
        check_dim(self.dim, q.dim())?;
        Ok(Box::new(KnnCursor::new(
            ScanExpand { tree: self },
            q.clone(),
            metric,
            ctx.clone(),
        )))
    }

    fn io_stats(&self) -> IoStats {
        self.pool.stats()
    }

    fn reset_io_stats(&self) {
        self.pool.reset_stats();
        self.pool.node_cache().reset_stats();
    }

    fn cache_stats(&self) -> NodeCacheStats {
        self.pool.node_cache_stats()
    }

    fn structure_stats(&self) -> IndexResult<StructureStats> {
        Ok(StructureStats {
            height: 1,
            total_nodes: self.pages.len(),
            data_nodes: self.pages.len(),
            avg_leaf_utilization: if self.pages.is_empty() {
                0.0
            } else {
                self.len as f64 / (self.pages.len() * self.cap) as f64
            },
            ..StructureStats::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyt_geom::{L1, L2};
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn points(n: usize, dim: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new((0..dim).map(|_| rng.gen::<f32>()).collect()))
            .collect()
    }

    #[test]
    fn insert_and_scan() {
        let pts = points(300, 4, 1);
        let mut s = SeqScan::with_page_size(4, 256).unwrap();
        for (i, p) in pts.iter().enumerate() {
            s.insert(p.clone(), i as u64).unwrap();
        }
        assert_eq!(s.len(), 300);
        assert!(s.num_pages() > 1);
        let rect = Rect::new(vec![0.2; 4], vec![0.7; 4]);
        let mut got = s.box_query(&rect).unwrap();
        got.sort_unstable();
        let want: Vec<u64> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| rect.contains_point(p))
            .map(|(i, _)| i as u64)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn all_reads_are_sequential() {
        let pts = points(100, 2, 2);
        let mut s = SeqScan::with_page_size(2, 256).unwrap();
        for (i, p) in pts.iter().enumerate() {
            s.insert(p.clone(), i as u64).unwrap();
        }
        s.reset_io_stats();
        s.box_query(&Rect::unit(2)).unwrap();
        let st = s.io_stats();
        assert_eq!(st.logical_reads, 0);
        assert_eq!(st.seq_reads as usize, s.num_pages());
        // Weighted cost is 10x cheaper than the same number of random reads.
        assert!((st.weighted_accesses() - s.num_pages() as f64 * 0.1).abs() < 1e-9);
    }

    #[test]
    fn knn_and_distance_range_match_brute_force() {
        let pts = points(200, 3, 3);
        let mut s = SeqScan::with_page_size(3, 512).unwrap();
        for (i, p) in pts.iter().enumerate() {
            s.insert(p.clone(), i as u64).unwrap();
        }
        let q = Point::new(vec![0.5, 0.5, 0.5]);
        let knn = s.knn(&q, 5, &L2).unwrap();
        assert_eq!(knn.len(), 5);
        let mut want: Vec<f64> = pts.iter().map(|p| L2.distance(&q, p)).collect();
        want.sort_by(f64::total_cmp);
        for (i, (_, d)) in knn.iter().enumerate() {
            assert!((d - want[i]).abs() < 1e-12);
        }
        let got = s.distance_range(&q, 0.5, &L1).unwrap();
        let wantn = pts.iter().filter(|p| L1.distance(&q, p) <= 0.5).count();
        assert_eq!(got.len(), wantn);
    }

    #[test]
    fn delete_removes_entry() {
        let pts = points(50, 2, 4);
        let mut s = SeqScan::with_page_size(2, 256).unwrap();
        for (i, p) in pts.iter().enumerate() {
            s.insert(p.clone(), i as u64).unwrap();
        }
        assert!(s.delete(&pts[10], 10).unwrap());
        assert!(!s.delete(&pts[10], 10).unwrap());
        assert_eq!(s.len(), 49);
        let got = s.box_query(&Rect::unit(2)).unwrap();
        assert_eq!(got.len(), 49);
        assert!(!got.contains(&10));
    }

    #[test]
    fn structure_stats_reports_pages() {
        let pts = points(100, 2, 5);
        let mut s = SeqScan::with_page_size(2, 256).unwrap();
        for (i, p) in pts.iter().enumerate() {
            s.insert(p.clone(), i as u64).unwrap();
        }
        let st = s.structure_stats().unwrap();
        assert_eq!(st.total_nodes, s.num_pages());
        assert!(st.avg_leaf_utilization > 0.5);
    }
}
